//! `stmbench7-service` — an open-loop, request-driven service layer in
//! front of the STMBench7 backends.
//!
//! The paper's engine (§4) is closed-loop: N uniform threads issue
//! operations back-to-back, which measures peak throughput but says
//! nothing about behavior under *offered load* — the regime where
//! queueing delay, tail latency and backpressure dominate. This crate
//! gives the reproduction both views over one shared operation pool:
//!
//! * [`schedule`] — [`Schedule`]: deterministic, seedable arrival
//!   processes (`closed(N)`, `open(rate)` with slot jitter,
//!   `bursty(rate, burst, period)`), each materializing a reproducible
//!   stream of timestamped [`Request`]s drawn from the engine's
//!   [`stmbench7_core::WorkloadMix`];
//! * [`queue`] — [`BoundedQueue`]: a bounded MPMC request queue with
//!   blocking or reject-on-full [`Admission`] control and head-of-line
//!   batch draining. The queue itself lives in `stmbench7-backend`
//!   (re-exported here): its `drain` loop is the combiner core shared
//!   between this worker pool and the RCL-style
//!   `DedicatedServerBackend`;
//! * [`server`] — [`serve`]: dispatcher + worker pool executing requests
//!   through any [`stmbench7_backend::Backend`], with opt-in group-commit
//!   batching (lock-compatible requests merged under one acquisition via
//!   `AccessSpec::union`), shard-affine worker routing with work stealing
//!   ([`Affinity`]), and per-request latency decomposition (queue wait vs
//!   service time, microsecond histograms) surfaced as
//!   [`stmbench7_core::ServiceStats`]; [`run_stream_closed`] runs the
//!   identical stream closed-loop — the sequential-oracle counterpart.
//!
//! The CLI front door is `stmbench7 serve <schedule>`; the lab specs
//! `latency_open`, `latency_bursty` and `saturation` drive the same path
//! with gated JSON results.

#![warn(missing_docs)]

pub use stmbench7_backend::queue;
pub mod metrics;
pub mod schedule;
pub mod server;

pub use metrics::render_prometheus;
pub use queue::{Admission, BoundedQueue};
pub use schedule::{Request, Schedule};
pub use server::{
    run_stream_closed, serve, serve_source, Affinity, Ingress, Offer, ServeConfig, ServeResult,
};
