//! Prometheus text exposition of the flight recorder's live counters.
//!
//! The `net-serve --metrics` endpoint serves this document per scrape
//! (text format version 0.0.4): one `# HELP`/`# TYPE` header per
//! family, counters cumulative since the run started (`_total`), the
//! queue depth as a gauge, and the end-to-end latency as a classic
//! cumulative-bucket histogram. Counters being cumulative is the
//! contract that makes mid-run scrapes meaningful — two scrapes
//! difference to a rate without the server keeping scrape state.

use std::fmt::Write as _;

use stmbench7_core::Histogram;
use stmbench7_obs::FlightTotals;

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, "counter", help);
    let _ = writeln!(out, "{name} {value}");
}

/// Renders the exposition document: `totals` are the cumulative flight
/// counters, `latency` the run-so-far end-to-end histogram (µs
/// resolution), `queue_depth` the admission queue gauge at scrape time.
pub fn render_prometheus(totals: &FlightTotals, latency: &Histogram, queue_depth: u64) -> String {
    let mut out = String::with_capacity(2048);
    counter(
        &mut out,
        "stmbench7_ops_total",
        "Operations executed to an outcome (committed or benignly failed).",
        totals.completed,
    );
    counter(
        &mut out,
        "stmbench7_ops_failed_total",
        "Of the executed operations, benign failures.",
        totals.failed,
    );
    counter(
        &mut out,
        "stmbench7_aborts_total",
        "Aborted-and-retried execution attempts.",
        totals.aborts,
    );
    counter(
        &mut out,
        "stmbench7_rejected_total",
        "Requests dropped by admission control.",
        totals.rejected,
    );
    counter(
        &mut out,
        "stmbench7_batches_total",
        "Worker batches drained from the queue.",
        totals.batches,
    );
    counter(
        &mut out,
        "stmbench7_write_batches_total",
        "Drained batches that group-committed at least one writer.",
        totals.write_batches,
    );
    counter(
        &mut out,
        "stmbench7_steals_total",
        "Batches stolen from a peer worker's sub-queue.",
        totals.steals,
    );
    counter(
        &mut out,
        "stmbench7_reconnects_total",
        "Driver connections accepted beyond the first per slot.",
        totals.reconnects,
    );
    header(
        &mut out,
        "stmbench7_worker_busy_seconds_total",
        "counter",
        "Total time workers spent executing batches.",
    );
    let _ = writeln!(
        out,
        "stmbench7_worker_busy_seconds_total {}",
        totals.busy_ns as f64 / 1e9
    );
    header(
        &mut out,
        "stmbench7_queue_depth",
        "gauge",
        "Requests sitting in the admission queue(s) right now.",
    );
    let _ = writeln!(out, "stmbench7_queue_depth {queue_depth}");

    header(
        &mut out,
        "stmbench7_latency_us",
        "histogram",
        "End-to-end request latency in microseconds.",
    );
    let mut cumulative = 0u64;
    for (upper_us, count) in latency.pairs() {
        cumulative += u64::from(count);
        let _ = writeln!(
            out,
            "stmbench7_latency_us_bucket{{le=\"{upper_us}\"}} {cumulative}"
        );
    }
    // `+Inf` picks up the overflow bucket too, so it always equals
    // `_count` — the invariant scrapers validate.
    let _ = writeln!(
        out,
        "stmbench7_latency_us_bucket{{le=\"+Inf\"}} {}",
        latency.samples()
    );
    let _ = writeln!(out, "stmbench7_latency_us_sum {}", totals.latency_sum_us);
    let _ = writeln!(out, "stmbench7_latency_us_count {}", latency.samples());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (FlightTotals, Histogram) {
        let totals = FlightTotals {
            completed: 120,
            failed: 5,
            aborts: 3,
            rejected: 2,
            batches: 40,
            write_batches: 4,
            steals: 1,
            reconnects: 0,
            busy_ns: 2_500_000_000,
            latency_sum_us: 6_000,
            latency_count: 120,
        };
        let mut latency = Histogram::micros();
        for us in [3u64, 3, 40, 700] {
            latency.record(us * 1_000);
        }
        (totals, latency)
    }

    #[test]
    fn families_render_with_help_and_type_lines() {
        let (totals, latency) = sample();
        let text = render_prometheus(&totals, &latency, 7);
        for family in [
            ("stmbench7_ops_total", "counter"),
            ("stmbench7_queue_depth", "gauge"),
            ("stmbench7_latency_us", "histogram"),
        ] {
            assert!(
                text.contains(&format!("# TYPE {} {}", family.0, family.1)),
                "missing TYPE for {}:\n{text}",
                family.0
            );
            assert!(
                text.contains(&format!("# HELP {} ", family.0)),
                "missing HELP for {}",
                family.0
            );
        }
        assert!(text.contains("stmbench7_ops_total 120"));
        assert!(text.contains("stmbench7_ops_failed_total 5"));
        assert!(text.contains("stmbench7_queue_depth 7"));
        assert!(text.contains("stmbench7_worker_busy_seconds_total 2.5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_inf_equals_count() {
        let (totals, latency) = sample();
        let text = render_prometheus(&totals, &latency, 0);
        // Two 3 µs samples share the first bucket; each later bucket
        // includes everything before it.
        let buckets: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("stmbench7_latency_us_bucket"))
            .collect();
        assert!(buckets.len() >= 3, "bucket lines present:\n{text}");
        let counts: Vec<u64> = buckets
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "cumulative buckets never decrease: {counts:?}"
        );
        assert_eq!(*counts.last().unwrap(), 4, "+Inf equals the sample count");
        assert!(text.contains("stmbench7_latency_us_count 4"));
        assert!(text.contains("stmbench7_latency_us_sum 6000"));
    }

    #[test]
    fn every_sample_line_parses_as_name_value() {
        let (totals, latency) = sample();
        let text = render_prometheus(&totals, &latency, 3);
        assert!(text.ends_with('\n'));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            let name = parts.next().expect("metric name");
            let value = parts.next().expect("metric value");
            assert!(parts.next().is_none(), "extra tokens in {line:?}");
            assert!(
                name.starts_with("stmbench7_"),
                "namespaced metric: {line:?}"
            );
            assert!(value.parse::<f64>().is_ok(), "numeric value: {line:?}");
        }
    }
}
