//! The service core: a dispatcher replaying an arrival schedule into a
//! bounded queue, a worker pool executing requests through a [`Backend`],
//! and per-request latency decomposition (queue wait vs service time).
//!
//! The same request stream can also be run *closed-loop*
//! ([`run_stream_closed`]): one thread, no queue, operations
//! back-to-back. Both paths execute identical operations with identical
//! per-request random choices, which is what the sequential-oracle test
//! leans on: serving a stream must not change any operation's outcome.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use stmbench7_backend::{Backend, TxOperation};
use stmbench7_core::{
    access_spec, run_op, Histogram, OpCtx, OpFilter, OpKind, OpReport, Report, ServiceStats,
    WorkloadMix, WorkloadType,
};
use stmbench7_data::{AccessSpec, OpOutcome, Sb7Tx, StructureParams, TxR};

use crate::queue::{Admission, BoundedQueue};
use crate::schedule::{Request, Schedule};

/// Full configuration of a service run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    pub schedule: Schedule,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bound of the request queue.
    pub queue_cap: usize,
    pub admission: Admission,
    /// Maximum number of read-only requests folded into one backend
    /// execution (1 = batching off).
    pub batch_max: usize,
    pub workload: WorkloadType,
    pub long_traversals: bool,
    pub structure_mods: bool,
    pub filter: OpFilter,
    pub seed: u64,
}

impl ServeConfig {
    /// A deterministic single-purpose configuration: 2 workers, blocking
    /// admission, no batching, all operations on.
    pub fn new(schedule: Schedule, workload: WorkloadType, seed: u64) -> Self {
        ServeConfig {
            schedule,
            workers: 2,
            queue_cap: 1024,
            admission: Admission::Block,
            batch_max: 1,
            workload,
            long_traversals: true,
            structure_mods: true,
            filter: OpFilter::none(),
            seed,
        }
    }

    /// The operation mix this configuration draws requests from — the
    /// same pool the closed-loop engine uses.
    pub fn mix(&self) -> WorkloadMix {
        WorkloadMix::compute(
            self.workload,
            self.long_traversals,
            self.structure_mods,
            &self.filter,
        )
    }

    /// The first `n` requests of this configuration's schedule.
    pub fn generate(&self, n: u64) -> Vec<Request> {
        self.schedule.generate(&self.mix(), self.seed, n)
    }

    /// Every request of this configuration's schedule arriving before
    /// `horizon` (`None` for closed schedules; use [`Self::generate`]).
    pub fn generate_for(&self, horizon: Duration) -> Option<Vec<Request>> {
        self.schedule.generate_for(&self.mix(), self.seed, horizon)
    }
}

/// A completed service run: the merged [`Report`] (with
/// [`ServiceStats`] attached) plus the per-request outcomes, indexed by
/// request id (`None` = rejected by admission control).
pub struct ServeResult {
    pub report: Report,
    pub outcomes: Vec<Option<OpOutcome>>,
}

/// Executes a batch of requests inside one transaction. Every request
/// re-seeds the context RNG from its own `rng_seed`, so retries (STM) and
/// re-executions (fine-grained discovery) replay identical choices, and
/// outcomes are independent of which worker runs the batch.
struct BatchRunner<'a> {
    batch: &'a [Request],
    ctx: &'a mut OpCtx,
}

impl TxOperation<Vec<OpOutcome>> for BatchRunner<'_> {
    fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<Vec<OpOutcome>> {
        let mut outcomes = Vec::with_capacity(self.batch.len());
        for req in self.batch {
            self.ctx.rng = SmallRng::seed_from_u64(req.rng_seed);
            outcomes.push(run_op(req.op, tx, self.ctx)?);
        }
        Ok(outcomes)
    }
}

/// Per-worker, per-operation measurements (mirrors the engine's thread
/// stats, plus the latency decomposition).
struct WorkerStats {
    completed: Vec<u64>,
    failed: Vec<u64>,
    max_ns: Vec<u64>,
    sum_ns: Vec<u64>,
    hist: Vec<Histogram>,
    queue_wait: Histogram,
    service_time: Histogram,
    e2e: Histogram,
    batches: u64,
    outcomes: Vec<(u64, OpOutcome)>,
}

impl WorkerStats {
    fn new() -> Self {
        WorkerStats {
            completed: vec![0; 45],
            failed: vec![0; 45],
            max_ns: vec![0; 45],
            sum_ns: vec![0; 45],
            hist: (0..45).map(|_| Histogram::new()).collect(),
            queue_wait: Histogram::micros(),
            service_time: Histogram::micros(),
            e2e: Histogram::micros(),
            batches: 0,
            outcomes: Vec::new(),
        }
    }

    fn record(&mut self, req: &Request, outcome: OpOutcome, start_ns: u64, end_ns: u64) {
        let service_ns = end_ns - start_ns;
        let i = req.op.index();
        match outcome {
            OpOutcome::Done(_) => {
                self.completed[i] += 1;
                self.max_ns[i] = self.max_ns[i].max(service_ns);
                self.sum_ns[i] += service_ns;
                self.hist[i].record(service_ns);
            }
            OpOutcome::Fail(_) => self.failed[i] += 1,
        }
        self.queue_wait
            .record(start_ns.saturating_sub(req.arrival_ns));
        self.service_time.record(service_ns);
        self.e2e.record(end_ns.saturating_sub(req.arrival_ns));
        self.outcomes.push((req.id, outcome));
    }
}

fn op_specs(params: &StructureParams) -> Vec<AccessSpec> {
    OpKind::ALL
        .iter()
        .map(|op| access_spec(*op, params.assembly_levels))
        .collect()
}

fn batch_spec(specs: &[AccessSpec], batch: &[Request]) -> AccessSpec {
    let mut spec = specs[batch[0].op.index()];
    for req in &batch[1..] {
        spec = spec.union(&specs[req.op.index()]);
    }
    spec
}

fn execute_batch<B: Backend>(
    backend: &B,
    specs: &[AccessSpec],
    batch: &[Request],
    ctx: &mut OpCtx,
    epoch: Instant,
    stats: &mut WorkerStats,
) {
    let spec = batch_spec(specs, batch);
    let t0 = Instant::now();
    let outcomes = backend.execute(&spec, &mut BatchRunner { batch, ctx });
    let end_ns = epoch.elapsed().as_nanos() as u64;
    let start_ns = (t0 - epoch).as_nanos() as u64;
    stats.batches += 1;
    for (req, outcome) in batch.iter().zip(outcomes) {
        stats.record(req, outcome, start_ns, end_ns);
    }
}

/// End-of-run accounting that travels alongside the worker stats.
struct RunTotals {
    elapsed: Duration,
    offered: u64,
    rejected: u64,
    stm: Option<stmbench7_stm::StatsSnapshot>,
}

fn merge_into_report<B: Backend>(
    backend: &B,
    cfg: &ServeConfig,
    mix: &WorkloadMix,
    all_stats: Vec<WorkerStats>,
    totals: RunTotals,
) -> ServeResult {
    let RunTotals {
        elapsed,
        offered,
        rejected,
        stm,
    } = totals;
    let mut per_op: Vec<OpReport> = OpKind::ALL
        .iter()
        .map(|op| OpReport::empty(*op, mix.expected(*op)))
        .collect();
    let mut queue_wait = Histogram::micros();
    let mut service_time = Histogram::micros();
    let mut e2e = Histogram::micros();
    let mut batches = 0;
    let mut outcomes: Vec<Option<OpOutcome>> = vec![None; offered as usize];
    for stats in &all_stats {
        for (i, r) in per_op.iter_mut().enumerate() {
            r.completed += stats.completed[i];
            r.failed += stats.failed[i];
            r.max_ns = r.max_ns.max(stats.max_ns[i]);
            r.sum_ns += stats.sum_ns[i];
            r.hist.merge(&stats.hist[i]);
        }
        queue_wait.merge(&stats.queue_wait);
        service_time.merge(&stats.service_time);
        e2e.merge(&stats.e2e);
        batches += stats.batches;
        for (id, outcome) in &stats.outcomes {
            outcomes[*id as usize] = Some(*outcome);
        }
    }
    let report = Report {
        backend: backend.name().to_string(),
        threads: cfg.workers,
        workload: cfg.workload,
        long_traversals: cfg.long_traversals,
        structure_mods: cfg.structure_mods,
        seed: cfg.seed,
        elapsed,
        per_op,
        stm,
        service: Some(ServiceStats {
            schedule: cfg.schedule.key(),
            workers: cfg.workers,
            queue_cap: cfg.queue_cap,
            batch_max: cfg.batch_max,
            offered,
            rejected,
            batches,
            queue_wait,
            service_time,
            e2e,
        }),
    };
    ServeResult { report, outcomes }
}

/// Serves a request stream: replays the arrival schedule into the queue
/// (open-loop; time is honored — the dispatcher sleeps until each
/// scheduled arrival) and drains it with `cfg.workers` worker threads.
///
/// Queue wait is measured from the *scheduled* arrival, not the enqueue
/// instant, so dispatcher lag and admission backpressure count as
/// queueing delay rather than being silently omitted.
pub fn serve<B: Backend>(
    backend: &B,
    params: &StructureParams,
    cfg: &ServeConfig,
    requests: &[Request],
) -> ServeResult {
    assert!(cfg.workers >= 1, "at least one worker required");
    assert!(cfg.batch_max >= 1, "batch_max must be at least 1");
    let mix = cfg.mix();
    let specs = op_specs(params);
    let queue: BoundedQueue<Request> = BoundedQueue::new(cfg.queue_cap);
    let batch_max = cfg.batch_max;
    let compatible =
        move |a: &Request, b: &Request| batch_max > 1 && a.op.is_read_only() && b.op.is_read_only();

    let stm_before = backend.stm_stats();
    let epoch = Instant::now();
    let mut rejected = 0u64;

    let all_stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.workers);
        for worker_id in 0..cfg.workers {
            let queue = &queue;
            let specs = &specs;
            let compatible = &compatible;
            handles.push(scope.spawn(move || {
                // The context RNG is re-seeded per request from the
                // request itself; the worker seed only covers the (never
                // drawn) idle state.
                let mut ctx = OpCtx::new(
                    params.clone(),
                    cfg.seed ^ (worker_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mut stats = WorkerStats::new();
                loop {
                    let batch = queue.pop_batch(cfg.batch_max, compatible);
                    if batch.is_empty() {
                        break; // closed and drained
                    }
                    execute_batch(backend, specs, &batch, &mut ctx, epoch, &mut stats);
                }
                stats
            }));
        }

        // This thread is the dispatcher: replay the arrival schedule.
        for req in requests {
            let target = epoch + Duration::from_nanos(req.arrival_ns);
            let now = Instant::now();
            if now < target {
                std::thread::sleep(target - now);
            }
            match cfg.admission {
                Admission::Block => queue.push_blocking(*req),
                Admission::Reject => {
                    if queue.try_push(*req).is_err() {
                        rejected += 1;
                    }
                }
            }
        }
        queue.close();

        handles
            .into_iter()
            .map(|h| h.join().expect("service worker panicked"))
            .collect()
    });

    let elapsed = epoch.elapsed();
    let stm = match (stm_before, backend.stm_stats()) {
        (Some(before), Some(after)) => Some(after.delta(&before)),
        _ => None,
    };
    merge_into_report(
        backend,
        cfg,
        &mix,
        all_stats,
        RunTotals {
            elapsed,
            offered: requests.len() as u64,
            rejected,
            stm,
        },
    )
}

/// Runs the same request stream closed-loop: one thread, no queue, no
/// arrival times — operations back-to-back in stream order, exactly as
/// the paper's engine would issue them. The sequential oracle: for a
/// deterministic backend, [`serve`] with one worker must produce the
/// same outcome for every request.
pub fn run_stream_closed<B: Backend>(
    backend: &B,
    params: &StructureParams,
    cfg: &ServeConfig,
    requests: &[Request],
) -> ServeResult {
    let mix = cfg.mix();
    let specs = op_specs(params);
    let stm_before = backend.stm_stats();
    let epoch = Instant::now();
    let mut ctx = OpCtx::new(params.clone(), cfg.seed);
    let mut stats = WorkerStats::new();
    for req in requests {
        execute_batch(
            backend,
            &specs,
            std::slice::from_ref(req),
            &mut ctx,
            epoch,
            &mut stats,
        );
    }
    let elapsed = epoch.elapsed();
    let stm = match (stm_before, backend.stm_stats()) {
        (Some(before), Some(after)) => Some(after.delta(&before)),
        _ => None,
    };
    let mut result = merge_into_report(
        backend,
        cfg,
        &mix,
        vec![stats],
        RunTotals {
            elapsed,
            offered: requests.len() as u64,
            rejected: 0,
            stm,
        },
    );
    // Closed-loop runs are not service runs: threads reflect the single
    // driving thread and no service stats are attached.
    result.report.threads = 1;
    result.report.service = None;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmbench7_backend::{CoarseBackend, SequentialBackend};
    use stmbench7_data::{validate, Workspace};

    fn tiny() -> (StructureParams, Workspace) {
        let params = StructureParams::tiny();
        let ws = Workspace::build(params.clone(), 7);
        (params, ws)
    }

    #[test]
    fn serve_accounts_for_every_request() {
        let (params, ws) = tiny();
        let backend = SequentialBackend::new(ws);
        let cfg = ServeConfig::new(Schedule::Closed { clients: 2 }, WorkloadType::ReadWrite, 42);
        let requests = cfg.generate(300);
        let result = serve(&backend, &params, &cfg, &requests);
        let report = &result.report;
        assert_eq!(report.total_started(), 300);
        let svc = report.service.as_ref().expect("service stats");
        assert_eq!(svc.offered, 300);
        assert_eq!(svc.rejected, 0);
        assert_eq!(svc.queue_wait.samples(), 300);
        assert_eq!(svc.service_time.samples(), 300);
        assert_eq!(svc.e2e.samples(), 300);
        assert!(result.outcomes.iter().all(Option::is_some));
        validate(&backend.export()).expect("structure intact");
    }

    #[test]
    fn reject_admission_drops_excess_load() {
        let (params, ws) = tiny();
        let backend = SequentialBackend::new(ws);
        let mut cfg = ServeConfig::new(Schedule::Closed { clients: 1 }, WorkloadType::ReadWrite, 1);
        // One worker, a 1-slot queue and a burst of simultaneous
        // arrivals: most of the stream must be rejected.
        cfg.workers = 1;
        cfg.queue_cap = 1;
        cfg.admission = Admission::Reject;
        let requests = cfg.generate(200);
        let result = serve(&backend, &params, &cfg, &requests);
        let svc = result.report.service.as_ref().unwrap();
        assert!(svc.rejected > 0, "a 1-slot queue must reject under burst");
        assert_eq!(
            result.report.total_started() + svc.rejected,
            200,
            "every request is either executed or rejected"
        );
        let n_none = result.outcomes.iter().filter(|o| o.is_none()).count();
        assert_eq!(n_none as u64, svc.rejected);
    }

    #[test]
    fn batching_folds_read_only_runs_into_fewer_executions() {
        let (params, ws) = tiny();
        let backend = SequentialBackend::new(ws);
        let mut cfg = ServeConfig::new(
            Schedule::Closed { clients: 1 },
            WorkloadType::ReadDominated,
            3,
        );
        cfg.workers = 1;
        cfg.batch_max = 8;
        let requests = cfg.generate(250);
        let result = serve(&backend, &params, &cfg, &requests);
        let svc = result.report.service.as_ref().unwrap();
        assert!(
            svc.batches < 250,
            "read-dominated stream must batch: {} executions",
            svc.batches
        );
        assert_eq!(result.report.total_started(), 250);
    }

    #[test]
    fn multi_worker_serve_keeps_the_structure_valid() {
        let (params, ws) = tiny();
        let backend = CoarseBackend::new(ws);
        let mut cfg = ServeConfig::new(
            Schedule::Open { rate: 100_000.0 },
            WorkloadType::WriteDominated,
            11,
        );
        cfg.workers = 4;
        cfg.queue_cap = 64;
        let requests = cfg.generate(400);
        let result = serve(&backend, &params, &cfg, &requests);
        assert_eq!(result.report.total_started(), 400);
        validate(&backend.export()).expect("structure intact after writes");
    }
}
