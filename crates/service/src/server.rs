//! The service core: a request source feeding a bounded queue, a worker
//! pool executing requests through a [`Backend`], and per-request latency
//! decomposition (queue wait vs service time).
//!
//! [`serve_source`] is the general engine: the *source* is any closure
//! that offers requests through an [`Ingress`] — the in-process replay
//! dispatcher ([`serve`]) and the network front end (`stmbench7-net`,
//! which decodes requests off TCP connections) are both such sources, so
//! admission control, batching and the latency decomposition are written
//! once. An *observer* callback sees every completed request from the
//! worker that ran it, which is how the network server sends responses
//! without the pool knowing about sockets.
//!
//! The same request stream can also be run *closed-loop*
//! ([`run_stream_closed`]): one thread, no queue, operations
//! back-to-back. Both paths execute identical operations with identical
//! per-request random choices, which is what the sequential-oracle test
//! leans on: serving a stream must not change any operation's outcome.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use stmbench7_backend::{Backend, TxOperation};
use stmbench7_core::{
    access_spec, primary_shard, run_op, CategoryLatency, Histogram, OpCtx, OpFilter, OpKind,
    OpReport, Report, ServiceStats, Timeseries, WorkloadMix, WorkloadType,
};
use stmbench7_data::{AccessSpec, OpOutcome, Sb7Tx, StructureParams, TxR};
use stmbench7_obs::{ContentionSnapshot, EventKind, FlightProbes, FlightRecorder, Layer, Recorder};

use stmbench7_backend::queue::{Admission, BoundedQueue};

use crate::schedule::{Request, Schedule};

/// How the service routes queued requests to workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Affinity {
    /// One shared queue; any idle worker takes the next request.
    #[default]
    None,
    /// Per-worker sub-queues keyed by the request's declared primary
    /// shard ([`primary_shard`]), with work stealing as the fallback, so
    /// a shard's index nodes stay hot in one worker's cache. Requests
    /// without a shard declaration spread round-robin by id.
    Shard,
}

impl Affinity {
    /// Parses a CLI/spec value (`none` | `shard`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(Affinity::None),
            "shard" => Some(Affinity::Shard),
            _ => None,
        }
    }

    /// The stable key used in reports and lab cell names.
    pub fn key(self) -> &'static str {
        match self {
            Affinity::None => "none",
            Affinity::Shard => "shard",
        }
    }
}

/// Full configuration of a service run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The arrival schedule requests are replayed from.
    pub schedule: Schedule,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bound of the request queue (split across sub-queues under shard
    /// affinity).
    pub queue_cap: usize,
    /// What happens when the queue is full (block or reject).
    pub admission: Admission,
    /// Maximum number of lock-compatible requests folded into one
    /// backend execution (1 = batching off). Read-only runs always
    /// merge; writers merge when their access specs are group-commit
    /// compatible ([`AccessSpec::compatible_for_group_commit`]).
    pub batch_max: usize,
    /// Worker routing policy (shared queue vs shard-affine sub-queues).
    pub affinity: Affinity,
    /// The mix requests are drawn from.
    pub workload: WorkloadType,
    /// Whether long traversals are in the mix.
    pub long_traversals: bool,
    /// Whether structure modifications are in the mix.
    pub structure_mods: bool,
    /// The §5 operation filter.
    pub filter: OpFilter,
    /// Seed of the request stream (and, derived, of every request).
    pub seed: u64,
    /// Lifecycle trace recorder (`--trace`); disabled by default.
    pub recorder: Recorder,
    /// Flight-recorder sampling window (`--window`), milliseconds.
    /// `None` disables windowed telemetry (and the live counters the
    /// metrics endpoint reads).
    pub window_ms: Option<u64>,
}

impl ServeConfig {
    /// A deterministic single-purpose configuration: 2 workers, blocking
    /// admission, no batching, all operations on.
    pub fn new(schedule: Schedule, workload: WorkloadType, seed: u64) -> Self {
        ServeConfig {
            schedule,
            workers: 2,
            queue_cap: 1024,
            admission: Admission::Block,
            batch_max: 1,
            affinity: Affinity::None,
            workload,
            long_traversals: true,
            structure_mods: true,
            filter: OpFilter::none(),
            seed,
            recorder: Recorder::default(),
            window_ms: None,
        }
    }

    /// The operation mix this configuration draws requests from — the
    /// same pool the closed-loop engine uses.
    pub fn mix(&self) -> WorkloadMix {
        WorkloadMix::compute(
            self.workload,
            self.long_traversals,
            self.structure_mods,
            &self.filter,
        )
    }

    /// The first `n` requests of this configuration's schedule.
    pub fn generate(&self, n: u64) -> Vec<Request> {
        self.schedule.generate(&self.mix(), self.seed, n)
    }

    /// Every request of this configuration's schedule arriving before
    /// `horizon` (`None` for closed schedules; use [`Self::generate`]).
    pub fn generate_for(&self, horizon: Duration) -> Option<Vec<Request>> {
        self.schedule.generate_for(&self.mix(), self.seed, horizon)
    }
}

/// A completed service run: the merged [`Report`] (with
/// [`ServiceStats`] attached) plus the per-request outcomes, indexed by
/// request id (`None` = rejected by admission control).
pub struct ServeResult {
    /// The merged run report, service stats attached.
    pub report: Report,
    /// Per-request outcomes, indexed by request id.
    pub outcomes: Vec<Option<OpOutcome>>,
}

/// The outcome of a non-blocking offer ([`Ingress::offer_nonblocking`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Offer {
    /// Enqueued; the id is consumed.
    Admitted,
    /// Reject-on-full dropped it; the drop is counted and the id stays
    /// unexecuted (`None`) in the outcome vector.
    Rejected,
    /// Blocking admission found the queue full. The id was rolled back —
    /// the caller keeps the request and retries when the queue drains.
    Saturated,
}

/// The live front door of a running service: offers requests into the
/// bounded queue under the configured admission policy, and hands out
/// timestamps and dense request ids to dynamic sources (the network
/// server) whose streams are not known up front.
///
/// Contract: request ids must be dense `0..offered` — either
/// pre-assigned by a schedule and offered in order, or claimed through
/// [`Ingress::claim_id`] and then offered exactly once. The outcome
/// vector of the run is indexed by them.
pub struct Ingress<'q> {
    /// One queue under [`Affinity::None`]; one per worker under
    /// [`Affinity::Shard`].
    queues: &'q [BoundedQueue<Request>],
    affinity: Affinity,
    params: StructureParams,
    admission: Admission,
    epoch: Instant,
    next_id: AtomicU64,
    offered: AtomicU64,
    rejected: AtomicU64,
    recorder: Recorder,
    /// The run's flight recorder (off when `window_ms` is unset).
    flight: FlightRecorder,
    /// The current window's end-to-end latency histogram — the sampler
    /// swaps it out at every cut.
    lat_window: &'q Mutex<Histogram>,
    /// The run-so-far latency histogram (closed windows merged in) —
    /// what a live scrape's histogram is built from.
    lat_totals: &'q Mutex<Histogram>,
}

impl Ingress<'_> {
    /// Nanoseconds since the run's epoch — what a dynamic source stamps
    /// `Request::arrival_ns` with at decode time.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The sub-queue a request routes to: its declared primary shard's
    /// worker under shard affinity, round-robin by id for requests
    /// without a shard declaration, queue 0 otherwise.
    fn route(&self, req: &Request) -> &BoundedQueue<Request> {
        let idx = match self.affinity {
            Affinity::None => 0,
            Affinity::Shard => primary_shard(req.op, &self.params, req.rng_seed)
                .map_or(req.id as usize % self.queues.len(), |s| {
                    s % self.queues.len()
                }),
        };
        &self.queues[idx]
    }

    /// A fresh dense request id. Every claimed id must be offered.
    pub fn claim_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Offers one request under the admission policy. Returns `false`
    /// when reject-on-full dropped it (the drop is counted; the id stays
    /// unexecuted in the outcome vector).
    pub fn offer(&self, req: Request) -> bool {
        let id = req.id;
        let queue = self.route(&req);
        self.offered.fetch_add(1, Ordering::Relaxed);
        match self.admission {
            Admission::Block => {
                queue.push_blocking(req);
                self.recorder
                    .instant(Layer::Service, EventKind::QueueAdmit, "queue", id);
                true
            }
            Admission::Reject => {
                if queue.try_push(req).is_err() {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    self.flight.add_rejected(1);
                    self.recorder
                        .instant(Layer::Service, EventKind::QueueReject, "queue", id);
                    false
                } else {
                    self.recorder
                        .instant(Layer::Service, EventKind::QueueAdmit, "queue", id);
                    true
                }
            }
        }
    }

    /// Offers one request without ever blocking the caller — the event
    /// loop's front door. `req.id` must be the most recent
    /// [`Self::claim_id`] (claiming first lets the caller route the
    /// response *before* a worker can possibly complete the request). A
    /// full queue under blocking admission returns [`Offer::Saturated`]
    /// and rolls the id back, so ids stay dense; the caller keeps the
    /// request, pauses intake, and retries when the queue drains.
    ///
    /// The rollback assumes a single offering thread (true for the
    /// event-loop server); don't mix this with concurrent
    /// [`Self::claim_id`] callers.
    pub fn offer_nonblocking(&self, req: Request) -> Offer {
        let id = req.id;
        let queue = self.route(&req);
        match self.admission {
            Admission::Reject => {
                self.offered.fetch_add(1, Ordering::Relaxed);
                if queue.try_push(req).is_err() {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    self.flight.add_rejected(1);
                    self.recorder
                        .instant(Layer::Service, EventKind::QueueReject, "queue", id);
                    Offer::Rejected
                } else {
                    self.recorder
                        .instant(Layer::Service, EventKind::QueueAdmit, "queue", id);
                    Offer::Admitted
                }
            }
            Admission::Block => {
                if queue.try_push(req).is_err() {
                    let next = self.next_id.fetch_sub(1, Ordering::Relaxed);
                    debug_assert_eq!(next, id + 1, "rollback needs the latest claimed id");
                    Offer::Saturated
                } else {
                    self.offered.fetch_add(1, Ordering::Relaxed);
                    self.recorder
                        .instant(Layer::Service, EventKind::QueueAdmit, "queue", id);
                    Offer::Admitted
                }
            }
        }
    }

    /// Requests offered so far (admitted or rejected).
    pub fn offered(&self) -> u64 {
        self.offered.load(Ordering::Relaxed)
    }

    /// Requests sitting in the admission queue(s) right now. Racy by
    /// nature — an observation gauge, never a synchronization input.
    pub fn queue_depth(&self) -> u64 {
        self.queues.iter().map(|q| q.len() as u64).sum()
    }

    /// Counts one driver reconnect on the flight recorder (the network
    /// server calls this when an accepted connection reuses a slot a
    /// previous connection died in).
    pub fn note_reconnect(&self) {
        self.flight.add_reconnects(1);
    }

    /// The Prometheus text exposition of the run's live counters —
    /// what the `net-serve --metrics` endpoint serves per scrape. The
    /// latency histogram is the closed-window totals plus the open
    /// window, so a scrape always sees every sample recorded so far.
    /// All-zero (but well-formed) when the flight recorder is off.
    pub fn metrics_text(&self) -> String {
        // One lock at a time — the sampler's cut takes these in the
        // same singly-held fashion, so no ordering deadlock exists.
        let mut latency = self
            .lat_totals
            .lock()
            .expect("latency totals poisoned")
            .clone();
        latency.merge(&self.lat_window.lock().expect("latency window poisoned"));
        crate::metrics::render_prometheus(&self.flight.totals(), &latency, self.queue_depth())
    }
}

/// Executes a batch of requests inside one transaction. Every request
/// re-seeds the context RNG from its own `rng_seed`, so retries (STM) and
/// re-executions (fine-grained discovery) replay identical choices, and
/// outcomes are independent of which worker runs the batch.
struct BatchRunner<'a> {
    batch: &'a [Request],
    ctx: &'a mut OpCtx,
    /// Execution attempts the backend made for this batch; anything past
    /// the first is an abort-and-retry.
    attempts: u64,
}

impl TxOperation<Vec<OpOutcome>> for BatchRunner<'_> {
    fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<Vec<OpOutcome>> {
        let mut outcomes = Vec::with_capacity(self.batch.len());
        for req in self.batch {
            self.ctx.rng = SmallRng::seed_from_u64(req.rng_seed);
            outcomes.push(run_op(req.op, tx, self.ctx)?);
        }
        Ok(outcomes)
    }

    fn begin_attempt(&mut self) {
        self.attempts += 1;
    }
}

/// Per-worker, per-operation measurements (mirrors the engine's thread
/// stats, plus the latency decomposition).
struct WorkerStats {
    completed: Vec<u64>,
    failed: Vec<u64>,
    aborts: Vec<u64>,
    max_ns: Vec<u64>,
    sum_ns: Vec<u64>,
    hist: Vec<Histogram>,
    queue_wait: Histogram,
    service_time: Histogram,
    e2e: Histogram,
    per_category: Vec<CategoryLatency>,
    batches: u64,
    /// Multi-request batches carrying at least one writing request.
    write_batches: u64,
    /// Largest group-committed write batch this worker executed.
    max_write_batch: u64,
    /// Requests this worker stole from peers' sub-queues.
    steals: u64,
    /// Time this worker spent executing batches.
    busy_ns: u64,
    /// Time this worker spent waiting for work (wall time minus busy).
    idle_ns: u64,
    outcomes: Vec<(u64, OpOutcome)>,
}

impl WorkerStats {
    fn new() -> Self {
        WorkerStats {
            completed: vec![0; 45],
            failed: vec![0; 45],
            aborts: vec![0; 45],
            max_ns: vec![0; 45],
            sum_ns: vec![0; 45],
            hist: (0..45).map(|_| Histogram::new()).collect(),
            queue_wait: Histogram::micros(),
            service_time: Histogram::micros(),
            e2e: Histogram::micros(),
            per_category: CategoryLatency::all_empty(),
            batches: 0,
            write_batches: 0,
            max_write_batch: 0,
            steals: 0,
            busy_ns: 0,
            idle_ns: 0,
            outcomes: Vec::new(),
        }
    }

    fn record(&mut self, req: &Request, outcome: OpOutcome, start_ns: u64, end_ns: u64) {
        let service_ns = end_ns - start_ns;
        let queue_ns = start_ns.saturating_sub(req.arrival_ns);
        let i = req.op.index();
        match outcome {
            OpOutcome::Done(_) => {
                self.completed[i] += 1;
                self.max_ns[i] = self.max_ns[i].max(service_ns);
                self.sum_ns[i] += service_ns;
                self.hist[i].record(service_ns);
            }
            OpOutcome::Fail(_) => self.failed[i] += 1,
        }
        self.queue_wait.record(queue_ns);
        self.service_time.record(service_ns);
        self.e2e.record(end_ns.saturating_sub(req.arrival_ns));
        let cat = &mut self.per_category[req.op.category().index()];
        cat.queue_wait.record(queue_ns);
        cat.service_time.record(service_ns);
        self.outcomes.push((req.id, outcome));
    }
}

fn op_specs(params: &StructureParams) -> Vec<AccessSpec> {
    OpKind::ALL
        .iter()
        .map(|op| access_spec(*op, params.assembly_levels))
        .collect()
}

fn batch_spec(specs: &[AccessSpec], batch: &[Request]) -> AccessSpec {
    let mut spec = specs[batch[0].op.index()];
    for req in &batch[1..] {
        spec = spec.union(&specs[req.op.index()]);
    }
    spec
}

/// Pre-computed group-commit compatibility between every pair of
/// operation types: bit `j` of entry `i` says ops `i` and `j` may share
/// a batch. Declared access specs are per-op-type constants, so the
/// whole predicate flattens to one table lookup on the queue's hot path.
fn op_compat_table(specs: &[AccessSpec]) -> [u64; 45] {
    let mut table = [0u64; 45];
    for (i, a) in specs.iter().enumerate() {
        for (j, b) in specs.iter().enumerate() {
            if a.compatible_for_group_commit(b) {
                table[i] |= 1 << j;
            }
        }
    }
    table
}

#[allow(clippy::too_many_arguments)] // Worker-loop plumbing, not an API.
fn execute_batch<B: Backend>(
    backend: &B,
    specs: &[AccessSpec],
    batch: &[Request],
    ctx: &mut OpCtx,
    epoch: Instant,
    recorder: &Recorder,
    flight: &FlightRecorder,
    lat_window: &Mutex<Histogram>,
    stats: &mut WorkerStats,
    observe: &(impl Fn(&Request, &OpOutcome, u64, u64) + ?Sized),
) {
    let spec = batch_spec(specs, batch);
    let trace_t0 = recorder.now_ns();
    let t0 = Instant::now();
    let mut runner = BatchRunner {
        batch,
        ctx,
        attempts: 0,
    };
    let outcomes = backend.execute(&spec, &mut runner);
    let attempts = runner.attempts;
    let end_ns = epoch.elapsed().as_nanos() as u64;
    let start_ns = (t0 - epoch).as_nanos() as u64;
    stats.batches += 1;
    let write_batch = batch.len() > 1 && batch.iter().any(|r| !r.op.is_read_only());
    if write_batch {
        stats.write_batches += 1;
        stats.max_write_batch = stats.max_write_batch.max(batch.len() as u64);
    }
    stats.busy_ns += end_ns.saturating_sub(start_ns);
    // A retried batch is one abort; attribute it to the batch head's
    // operation (batches are homogeneous-enough: group-commit merges
    // only lock-compatible specs).
    stats.aborts[batch[0].op.index()] += attempts.saturating_sub(1);
    if flight.enabled() {
        // Publish the batch's whole footprint in one go — a handful of
        // relaxed adds plus one histogram lock per batch — and do it
        // *before* `observe` hands out responses: once a client holds a
        // response, a live scrape is guaranteed to count it.
        let win_failed = outcomes
            .iter()
            .filter(|o| matches!(o, OpOutcome::Fail(_)))
            .count() as u64;
        flight.add_ops(batch.len() as u64, win_failed, attempts.saturating_sub(1));
        flight.add_batch(write_batch);
        flight.add_busy_ns(end_ns.saturating_sub(start_ns));
        let win_e2e = batch.iter().map(|r| end_ns.saturating_sub(r.arrival_ns));
        let sum_us: u64 = win_e2e.clone().map(|ns| ns / 1_000).sum();
        flight.add_latency_us(sum_us, batch.len() as u64);
        let mut window = lat_window.lock().expect("latency window poisoned");
        for ns in win_e2e {
            window.record(ns);
        }
    }
    for (req, outcome) in batch.iter().zip(outcomes) {
        if recorder.is_enabled() {
            recorder.push(
                Layer::Engine,
                EventKind::Op,
                req.op.name(),
                trace_t0,
                end_ns.saturating_sub(start_ns),
                attempts,
            );
            if matches!(outcome, OpOutcome::Fail(_)) {
                recorder.instant(Layer::Engine, EventKind::OpFail, req.op.name(), req.id);
            }
        }
        observe(req, &outcome, start_ns, end_ns);
        stats.record(req, outcome, start_ns, end_ns);
    }
}

/// End-of-run accounting that travels alongside the worker stats.
struct RunTotals {
    elapsed: Duration,
    offered: u64,
    rejected: u64,
    stm: Option<stmbench7_stm::StatsSnapshot>,
    contention: Option<ContentionSnapshot>,
    timeseries: Option<Timeseries>,
}

fn merge_into_report<B: Backend>(
    backend: &B,
    cfg: &ServeConfig,
    mix: &WorkloadMix,
    all_stats: Vec<WorkerStats>,
    totals: RunTotals,
) -> ServeResult {
    let RunTotals {
        elapsed,
        offered,
        rejected,
        stm,
        contention,
        timeseries,
    } = totals;
    let mut per_op: Vec<OpReport> = OpKind::ALL
        .iter()
        .map(|op| OpReport::empty(*op, mix.expected(*op)))
        .collect();
    let mut queue_wait = Histogram::micros();
    let mut service_time = Histogram::micros();
    let mut e2e = Histogram::micros();
    let mut per_category = CategoryLatency::all_empty();
    let mut batches = 0;
    let mut write_batches = 0u64;
    let mut max_write_batch = 0u64;
    let mut steals = 0u64;
    let mut busy_ns = 0u64;
    let mut idle_ns = 0u64;
    let mut outcomes: Vec<Option<OpOutcome>> = vec![None; offered as usize];
    // Busy time per worker, in worker order. Stolen batches execute on
    // the thief's thread and accrue into the thief's stats, so this is
    // genuinely "who did the work", not "whose queue it sat in".
    let worker_busy_ns: Vec<u64> = all_stats.iter().map(|s| s.busy_ns).collect();
    for stats in &all_stats {
        for (i, r) in per_op.iter_mut().enumerate() {
            r.completed += stats.completed[i];
            r.failed += stats.failed[i];
            r.aborts += stats.aborts[i];
            r.max_ns = r.max_ns.max(stats.max_ns[i]);
            r.sum_ns += stats.sum_ns[i];
            r.hist.merge(&stats.hist[i]);
        }
        queue_wait.merge(&stats.queue_wait);
        service_time.merge(&stats.service_time);
        e2e.merge(&stats.e2e);
        for (merged, worker) in per_category.iter_mut().zip(&stats.per_category) {
            merged.merge(worker);
        }
        batches += stats.batches;
        write_batches += stats.write_batches;
        max_write_batch = max_write_batch.max(stats.max_write_batch);
        steals += stats.steals;
        busy_ns += stats.busy_ns;
        idle_ns += stats.idle_ns;
        for (id, outcome) in &stats.outcomes {
            outcomes[*id as usize] = Some(*outcome);
        }
    }
    let report = Report {
        backend: backend.name().to_string(),
        threads: cfg.workers,
        workload: cfg.workload,
        long_traversals: cfg.long_traversals,
        structure_mods: cfg.structure_mods,
        seed: cfg.seed,
        elapsed,
        per_op,
        stm,
        contention,
        timeseries,
        service: Some(ServiceStats {
            schedule: cfg.schedule.key(),
            workers: cfg.workers,
            queue_cap: cfg.queue_cap,
            batch_max: cfg.batch_max,
            affinity: cfg.affinity.key().to_string(),
            offered,
            rejected,
            reconnects: 0,
            busy_ns,
            idle_ns,
            worker_busy_ns,
            trace_dropped: cfg.recorder.dropped(),
            batches,
            write_batches,
            max_write_batch,
            steals,
            queue_wait,
            service_time,
            e2e,
            network: None,
            per_category,
        }),
    };
    ServeResult { report, outcomes }
}

/// Runs the queue/worker machinery over requests offered by an arbitrary
/// *source*: `feed` runs on the calling thread with an [`Ingress`] handle
/// and offers requests until its stream ends (return closes the queue;
/// the workers drain what remains and stop). `observe` is invoked from
/// the executing worker for every completed request — the hook the
/// network server answers responses from; in-process callers pass a
/// no-op.
///
/// Returns the merged [`ServeResult`] together with whatever `feed`
/// returned.
pub fn serve_source<B: Backend, R>(
    backend: &B,
    params: &StructureParams,
    cfg: &ServeConfig,
    feed: impl FnOnce(&Ingress<'_>) -> R,
    observe: impl Fn(&Request, &OpOutcome, u64, u64) + Sync,
) -> (ServeResult, R) {
    assert!(cfg.workers >= 1, "at least one worker required");
    assert!(cfg.batch_max >= 1, "batch_max must be at least 1");
    let mix = cfg.mix();
    let specs = op_specs(params);
    // Shard affinity gives each worker its own sub-queue (the shared cap
    // split between them); otherwise one shared queue keeps the original
    // any-worker semantics.
    let nqueues = match cfg.affinity {
        Affinity::None => 1,
        Affinity::Shard => cfg.workers,
    };
    let queues: Vec<BoundedQueue<Request>> = (0..nqueues)
        .map(|_| BoundedQueue::new((cfg.queue_cap / nqueues).max(1)))
        .collect();
    let batch_max = cfg.batch_max;
    let compat = op_compat_table(&specs);
    let compatible = move |a: &Request, b: &Request| {
        batch_max > 1 && compat[a.op.index()] >> b.op.index() & 1 == 1
    };

    let stm_before = backend.stm_stats();
    let contention_before = backend.contention();

    // Flight recorder state: workers publish per-batch measurements,
    // the scoped sampler thread cuts windows, live scrapes read the
    // cumulative side through `Ingress::metrics_text`.
    let flight = match cfg.window_ms {
        Some(ms) => FlightRecorder::new(ms),
        None => FlightRecorder::off(),
    };
    let lat_window = Mutex::new(Histogram::micros());
    let lat_totals = Mutex::new(Histogram::micros());
    let depth_probe = || queues.iter().map(|q| q.len() as u64).sum();
    let latency_probe = || {
        let window = std::mem::replace(
            &mut *lat_window.lock().expect("latency window poisoned"),
            Histogram::micros(),
        );
        lat_totals
            .lock()
            .expect("latency totals poisoned")
            .merge(&window);
        window.latency_cut()
    };
    let contention_probe = || backend.contention();

    let epoch = Instant::now();
    let ingress = Ingress {
        queues: &queues,
        affinity: cfg.affinity,
        params: params.clone(),
        admission: cfg.admission,
        epoch,
        next_id: AtomicU64::new(0),
        offered: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        recorder: cfg.recorder.clone(),
        flight: flight.clone(),
        lat_window: &lat_window,
        lat_totals: &lat_totals,
    };

    let (all_stats, fed): (Vec<WorkerStats>, R) = std::thread::scope(|scope| {
        if flight.enabled() {
            let flight = &flight;
            let probes = FlightProbes {
                queue_depth: &depth_probe,
                latency_cut: &latency_probe,
                contention: &contention_probe,
            };
            scope.spawn(move || flight.run_sampler(probes));
        }
        let mut handles = Vec::with_capacity(cfg.workers);
        for worker_id in 0..cfg.workers {
            let queues = &queues;
            let specs = &specs;
            let compatible = &compatible;
            let observe = &observe;
            let flight = &flight;
            let lat_window = &lat_window;
            handles.push(scope.spawn(move || {
                // The context RNG is re-seeded per request from the
                // request itself; the worker seed only covers the (never
                // drawn) idle state.
                let mut ctx = OpCtx::new(
                    params.clone(),
                    cfg.seed ^ (worker_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mut stats = WorkerStats::new();
                let mut steals = 0u64;
                let worker_t0 = Instant::now();
                {
                    let mut run = |batch: Vec<Request>| {
                        execute_batch(
                            backend,
                            specs,
                            &batch,
                            &mut ctx,
                            epoch,
                            &cfg.recorder,
                            flight,
                            lat_window,
                            &mut stats,
                            observe,
                        );
                    };
                    match cfg.affinity {
                        // The shared combiner loop (also the RCL
                        // backend's server loop): batches until closed
                        // and drained.
                        Affinity::None => queues[0].drain(cfg.batch_max, compatible, &mut run),
                        // Shard-affine loop: drain the worker's own
                        // sub-queue, steal from peers when it runs dry,
                        // park briefly when everything is empty.
                        Affinity::Shard => loop {
                            let batch = queues[worker_id].try_pop_batch(cfg.batch_max, compatible);
                            if !batch.is_empty() {
                                run(batch);
                                continue;
                            }
                            let stolen = (1..queues.len()).find_map(|i| {
                                let peer = (worker_id + i) % queues.len();
                                let b = queues[peer].try_pop_batch(cfg.batch_max, compatible);
                                (!b.is_empty()).then_some(b)
                            });
                            if let Some(batch) = stolen {
                                steals += batch.len() as u64;
                                flight.add_steal();
                                run(batch);
                                continue;
                            }
                            if queues.iter().all(BoundedQueue::is_finished) {
                                break;
                            }
                            let batch = queues[worker_id].pop_batch_timeout(
                                cfg.batch_max,
                                compatible,
                                Duration::from_millis(1),
                            );
                            if !batch.is_empty() {
                                run(batch);
                            }
                        },
                    }
                }
                stats.steals = steals;
                // Whatever wall time was not spent in a batch, the worker
                // spent waiting on the queue.
                let total_ns = worker_t0.elapsed().as_nanos() as u64;
                stats.idle_ns = total_ns.saturating_sub(stats.busy_ns);
                stats
            }));
        }

        // This thread is the source: offer until the stream ends.
        let fed = feed(&ingress);
        for queue in &queues {
            queue.close();
        }

        let stats: Vec<WorkerStats> = handles
            .into_iter()
            .map(|h| h.join().expect("service worker panicked"))
            .collect();
        // Cut the final partial window and release the sampler before
        // the scope joins it.
        flight.stop();
        (stats, fed)
    });

    let elapsed = epoch.elapsed();
    let timeseries = flight.window_ms().map(|window_ms| Timeseries {
        window_ms,
        windows: flight.take_samples(),
    });
    let stm = match (stm_before, backend.stm_stats()) {
        (Some(before), Some(after)) => Some(after.delta(&before)),
        _ => None,
    };
    let contention = match (contention_before, backend.contention()) {
        (Some(before), Some(after)) => Some(after.delta(&before)),
        _ => None,
    };
    let result = merge_into_report(
        backend,
        cfg,
        &mix,
        all_stats,
        RunTotals {
            elapsed,
            offered: ingress.offered.load(Ordering::Relaxed),
            rejected: ingress.rejected.load(Ordering::Relaxed),
            stm,
            contention,
            timeseries,
        },
    );
    (result, fed)
}

/// Serves a request stream: replays the arrival schedule into the queue
/// (open-loop; time is honored — the dispatcher sleeps until each
/// scheduled arrival) and drains it with `cfg.workers` worker threads.
///
/// Queue wait is measured from the *scheduled* arrival, not the enqueue
/// instant, so dispatcher lag and admission backpressure count as
/// queueing delay rather than being silently omitted.
pub fn serve<B: Backend>(
    backend: &B,
    params: &StructureParams,
    cfg: &ServeConfig,
    requests: &[Request],
) -> ServeResult {
    serve_source(
        backend,
        params,
        cfg,
        |ingress| {
            for req in requests {
                let target = ingress.epoch + Duration::from_nanos(req.arrival_ns);
                let now = Instant::now();
                if now < target {
                    std::thread::sleep(target - now);
                }
                ingress.offer(*req);
            }
        },
        |_, _, _, _| {},
    )
    .0
}

/// Runs the same request stream closed-loop: one thread, no queue, no
/// arrival times — operations back-to-back in stream order, exactly as
/// the paper's engine would issue them. The sequential oracle: for a
/// deterministic backend, [`serve`] with one worker must produce the
/// same outcome for every request.
pub fn run_stream_closed<B: Backend>(
    backend: &B,
    params: &StructureParams,
    cfg: &ServeConfig,
    requests: &[Request],
) -> ServeResult {
    let mix = cfg.mix();
    let specs = op_specs(params);
    let stm_before = backend.stm_stats();
    let contention_before = backend.contention();
    let epoch = Instant::now();
    let mut ctx = OpCtx::new(params.clone(), cfg.seed);
    let mut stats = WorkerStats::new();
    let observe = |_: &Request, _: &OpOutcome, _: u64, _: u64| {};
    // Closed-loop oracle runs are never sampled: no queue, no windows.
    let flight = FlightRecorder::off();
    let lat_window = Mutex::new(Histogram::micros());
    for req in requests {
        execute_batch(
            backend,
            &specs,
            std::slice::from_ref(req),
            &mut ctx,
            epoch,
            &cfg.recorder,
            &flight,
            &lat_window,
            &mut stats,
            &observe,
        );
    }
    let elapsed = epoch.elapsed();
    let stm = match (stm_before, backend.stm_stats()) {
        (Some(before), Some(after)) => Some(after.delta(&before)),
        _ => None,
    };
    let contention = match (contention_before, backend.contention()) {
        (Some(before), Some(after)) => Some(after.delta(&before)),
        _ => None,
    };
    let mut result = merge_into_report(
        backend,
        cfg,
        &mix,
        vec![stats],
        RunTotals {
            elapsed,
            offered: requests.len() as u64,
            rejected: 0,
            stm,
            contention,
            timeseries: None,
        },
    );
    // Closed-loop runs are not service runs: threads reflect the single
    // driving thread and no service stats are attached.
    result.report.threads = 1;
    result.report.service = None;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmbench7_backend::{CoarseBackend, SequentialBackend};
    use stmbench7_data::{validate, Workspace};

    fn tiny() -> (StructureParams, Workspace) {
        let params = StructureParams::tiny();
        let ws = Workspace::build(params.clone(), 7);
        (params, ws)
    }

    #[test]
    fn serve_accounts_for_every_request() {
        let (params, ws) = tiny();
        let backend = SequentialBackend::new(ws);
        let cfg = ServeConfig::new(Schedule::Closed { clients: 2 }, WorkloadType::ReadWrite, 42);
        let requests = cfg.generate(300);
        let result = serve(&backend, &params, &cfg, &requests);
        let report = &result.report;
        assert_eq!(report.total_started(), 300);
        let svc = report.service.as_ref().expect("service stats");
        assert_eq!(svc.offered, 300);
        assert_eq!(svc.rejected, 0);
        assert_eq!(svc.queue_wait.samples(), 300);
        assert_eq!(svc.service_time.samples(), 300);
        assert_eq!(svc.e2e.samples(), 300);
        assert!(result.outcomes.iter().all(Option::is_some));
        validate(&backend.export()).expect("structure intact");
    }

    #[test]
    fn reject_admission_drops_excess_load() {
        let (params, ws) = tiny();
        let backend = SequentialBackend::new(ws);
        let mut cfg = ServeConfig::new(Schedule::Closed { clients: 1 }, WorkloadType::ReadWrite, 1);
        // One worker, a 1-slot queue and a burst of simultaneous
        // arrivals: most of the stream must be rejected.
        cfg.workers = 1;
        cfg.queue_cap = 1;
        cfg.admission = Admission::Reject;
        let requests = cfg.generate(200);
        let result = serve(&backend, &params, &cfg, &requests);
        let svc = result.report.service.as_ref().unwrap();
        assert!(svc.rejected > 0, "a 1-slot queue must reject under burst");
        assert_eq!(
            result.report.total_started() + svc.rejected,
            200,
            "every request is either executed or rejected"
        );
        let n_none = result.outcomes.iter().filter(|o| o.is_none()).count();
        assert_eq!(n_none as u64, svc.rejected);
    }

    #[test]
    fn batching_folds_read_only_runs_into_fewer_executions() {
        let (params, ws) = tiny();
        let backend = SequentialBackend::new(ws);
        let mut cfg = ServeConfig::new(
            Schedule::Closed { clients: 1 },
            WorkloadType::ReadDominated,
            3,
        );
        cfg.workers = 1;
        cfg.batch_max = 8;
        let requests = cfg.generate(250);
        let result = serve(&backend, &params, &cfg, &requests);
        let svc = result.report.service.as_ref().unwrap();
        assert!(
            svc.batches < 250,
            "read-dominated stream must batch: {} executions",
            svc.batches
        );
        assert_eq!(result.report.total_started(), 250);
    }

    #[test]
    fn serve_source_feeds_dynamically_and_observes_every_request() {
        use std::sync::atomic::{AtomicU64, Ordering};

        let (params, ws) = tiny();
        let backend = SequentialBackend::new(ws);
        let cfg = ServeConfig::new(Schedule::Closed { clients: 1 }, WorkloadType::ReadWrite, 5);
        // A dynamic source in the network server's shape: ops drawn on
        // the fly, ids claimed from the ingress, arrivals stamped at
        // offer time.
        let mix = cfg.mix();
        let observed = AtomicU64::new(0);
        let (result, fed) = serve_source(
            &backend,
            &params,
            &cfg,
            |ingress| {
                let mut rng = SmallRng::seed_from_u64(99);
                for _ in 0..120 {
                    use rand::Rng;
                    let req = Request {
                        id: ingress.claim_id(),
                        arrival_ns: ingress.now_ns(),
                        op: mix.pick(&mut rng),
                        rng_seed: rng.gen(),
                    };
                    ingress.offer(req);
                }
                "stream-done"
            },
            |req, outcome, start_ns, end_ns| {
                assert!(start_ns <= end_ns, "request {} ran backwards", req.id);
                match outcome {
                    OpOutcome::Done(_) | OpOutcome::Fail(_) => {
                        observed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            },
        );
        assert_eq!(fed, "stream-done");
        assert_eq!(observed.load(Ordering::Relaxed), 120);
        assert_eq!(result.report.total_started(), 120);
        assert_eq!(result.outcomes.len(), 120);
        assert!(result.outcomes.iter().all(Option::is_some));
    }

    #[test]
    fn offer_nonblocking_rolls_back_ids_on_saturation() {
        let op = OpKind::ALL[0];
        let req = |id: u64| Request {
            id,
            arrival_ns: 0,
            op,
            rng_seed: id,
        };
        let queue: BoundedQueue<Request> = BoundedQueue::new(1);
        let lat_window = Mutex::new(Histogram::micros());
        let lat_totals = Mutex::new(Histogram::micros());
        let ingress = Ingress {
            queues: std::slice::from_ref(&queue),
            affinity: Affinity::None,
            params: StructureParams::tiny(),
            admission: Admission::Block,
            epoch: Instant::now(),
            next_id: AtomicU64::new(0),
            offered: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            recorder: Recorder::default(),
            flight: FlightRecorder::off(),
            lat_window: &lat_window,
            lat_totals: &lat_totals,
        };
        assert_eq!(
            ingress.offer_nonblocking(req(ingress.claim_id())),
            Offer::Admitted
        );
        assert_eq!(
            ingress.offer_nonblocking(req(ingress.claim_id())),
            Offer::Saturated,
            "blocking admission must not block the event loop"
        );
        assert_eq!(ingress.offered(), 1, "a saturated offer is not counted");
        assert_eq!(queue.pop_batch(1, |_, _| true)[0].id, 0);
        let id = ingress.claim_id();
        assert_eq!(id, 1, "the rolled-back id is reused, keeping ids dense");
        assert_eq!(ingress.offer_nonblocking(req(id)), Offer::Admitted);

        let queue: BoundedQueue<Request> = BoundedQueue::new(1);
        let lat_window = Mutex::new(Histogram::micros());
        let lat_totals = Mutex::new(Histogram::micros());
        let ingress = Ingress {
            queues: std::slice::from_ref(&queue),
            affinity: Affinity::None,
            params: StructureParams::tiny(),
            admission: Admission::Reject,
            epoch: Instant::now(),
            next_id: AtomicU64::new(0),
            offered: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            recorder: Recorder::default(),
            flight: FlightRecorder::off(),
            lat_window: &lat_window,
            lat_totals: &lat_totals,
        };
        assert_eq!(
            ingress.offer_nonblocking(req(ingress.claim_id())),
            Offer::Admitted
        );
        assert_eq!(
            ingress.offer_nonblocking(req(ingress.claim_id())),
            Offer::Rejected,
            "reject-on-full consumes the id: the slot stays None"
        );
        assert_eq!(ingress.offered(), 2);
        assert_eq!(ingress.rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn per_category_split_accounts_for_every_request() {
        let (params, ws) = tiny();
        let backend = SequentialBackend::new(ws);
        let cfg = ServeConfig::new(Schedule::Closed { clients: 2 }, WorkloadType::ReadWrite, 17);
        let requests = cfg.generate(400);
        let result = serve(&backend, &params, &cfg, &requests);
        let svc = result.report.service.as_ref().expect("service stats");
        // Each request lands in exactly one category lane.
        let cat_samples: u64 = svc
            .per_category
            .iter()
            .map(|c| c.queue_wait.samples())
            .sum();
        assert_eq!(cat_samples, 400);
        let svc_samples: u64 = svc
            .per_category
            .iter()
            .map(|c| c.service_time.samples())
            .sum();
        assert_eq!(svc_samples, 400);
        // The rw mix draws all four categories over 400 requests.
        assert!(
            svc.per_category.iter().all(|c| c.queue_wait.samples() > 0),
            "every category sampled"
        );
        // In-process runs carry no network lane.
        assert!(svc.network.is_none());
    }

    #[test]
    fn stolen_work_counts_toward_the_thief() {
        // Two workers under shard affinity, every request declaring a
        // shard that routes to worker 0's sub-queue. Worker 1 can only
        // ever obtain work by stealing — so any busy time it reports is
        // stolen work attributed to the executing worker, not the queue
        // owner.
        let params = StructureParams::tiny().with_shards(2);
        let ws = Workspace::build(params.clone(), 7);
        let backend = CoarseBackend::new(ws);
        let op = OpKind::Op1;
        let seeds: Vec<u64> = (0u64..)
            .filter(|s| primary_shard(op, &params, *s) == Some(0))
            .take(400)
            .collect();
        let requests: Vec<Request> = seeds
            .iter()
            .enumerate()
            .map(|(id, seed)| Request {
                id: id as u64,
                arrival_ns: 0,
                op,
                rng_seed: *seed,
            })
            .collect();
        let mut cfg = ServeConfig::new(Schedule::Closed { clients: 2 }, WorkloadType::ReadWrite, 5);
        cfg.workers = 2;
        cfg.affinity = Affinity::Shard;
        cfg.queue_cap = 8;
        let result = serve(&backend, &params, &cfg, &requests);
        assert_eq!(result.report.total_started(), 400);
        let svc = result.report.service.as_ref().expect("service stats");
        assert_eq!(svc.worker_busy_ns.len(), 2, "one lane per worker");
        assert_eq!(
            svc.worker_busy_ns.iter().sum::<u64>(),
            svc.busy_ns,
            "per-worker lanes sum to the total"
        );
        assert!(svc.steals > 0, "worker 1 found work only by stealing");
        assert!(
            svc.worker_busy_ns[1] > 0,
            "stolen batches execute on — and are billed to — the thief"
        );
    }

    #[test]
    fn windowed_serve_attaches_a_timeseries_and_serves_metrics() {
        let (params, ws) = tiny();
        let backend = SequentialBackend::new(ws);
        let mut cfg =
            ServeConfig::new(Schedule::Closed { clients: 2 }, WorkloadType::ReadWrite, 21);
        cfg.window_ms = Some(1);
        let requests = cfg.generate(300);
        // The feed doubles as a mid-run scraper: the exposition must be
        // servable while workers are still draining.
        let (result, scrape) = serve_source(
            &backend,
            &params,
            &cfg,
            |ingress| {
                for req in &requests {
                    ingress.offer(*req);
                }
                ingress.metrics_text()
            },
            |_, _, _, _| {},
        );
        assert!(scrape.contains("# TYPE stmbench7_ops_total counter"));
        assert!(scrape.contains("# TYPE stmbench7_queue_depth gauge"));
        assert!(scrape.contains("stmbench7_latency_us_bucket"));

        let ts = result.report.timeseries.as_ref().expect("sampled run");
        assert_eq!(ts.window_ms, 1);
        assert!(!ts.windows.is_empty());
        let completed: u64 = ts.windows.iter().map(|w| w.completed).sum();
        assert_eq!(completed, 300, "window deltas sum to the run total");
        let samples: u64 = ts.windows.iter().map(|w| w.latency.samples).sum();
        assert_eq!(samples, 300, "every e2e sample lands in some window");
        let svc = result.report.service.as_ref().expect("service stats");
        let batches: u64 = ts.windows.iter().map(|w| w.batches).sum();
        assert_eq!(batches, svc.batches);

        // Unsampled runs carry no timeseries at all.
        let plain = serve(
            &backend,
            &params,
            &ServeConfig::new(Schedule::Closed { clients: 1 }, WorkloadType::ReadWrite, 21),
            &cfg.generate(50),
        );
        assert!(plain.report.timeseries.is_none());
    }

    #[test]
    fn multi_worker_serve_keeps_the_structure_valid() {
        let (params, ws) = tiny();
        let backend = CoarseBackend::new(ws);
        let mut cfg = ServeConfig::new(
            Schedule::Open { rate: 100_000.0 },
            WorkloadType::WriteDominated,
            11,
        );
        cfg.workers = 4;
        cfg.queue_cap = 64;
        let requests = cfg.generate(400);
        let result = serve(&backend, &params, &cfg, &requests);
        assert_eq!(result.report.total_started(), 400);
        validate(&backend.export()).expect("structure intact after writes");
    }
}
