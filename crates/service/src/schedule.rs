//! Arrival schedules: deterministic, seedable generators of timestamped
//! operation requests.
//!
//! The paper's engine is closed-loop — N threads issue operations
//! back-to-back, measuring peak throughput. A service behaves differently
//! under *offered load*: requests arrive whether or not the system keeps
//! up, and queueing delay dominates the latency a client sees. A
//! [`Schedule`] describes the arrival process; [`Schedule::generate`]
//! materializes it as a reproducible stream of [`Request`]s drawn from the
//! same [`WorkloadMix`] the closed-loop engine uses, so both views share
//! one operation pool.

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use stmbench7_core::{OpKind, WorkloadMix};

/// One timestamped operation request.
///
/// `rng_seed` pins the operation's random parameters to the request — not
/// to the worker that happens to execute it — so a served stream is
/// replayable: the same stream produces the same per-operation choices no
/// matter how it is scheduled onto workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Position in the stream (0-based).
    pub id: u64,
    /// Scheduled arrival, in nanoseconds after the stream's epoch.
    pub arrival_ns: u64,
    /// The operation to execute.
    pub op: OpKind,
    /// Seed of the operation's private random number generator.
    pub rng_seed: u64,
}

/// An arrival process. All three variants generate byte-identical request
/// streams for the same `(schedule, seed)` pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Schedule {
    /// Everything arrives at t=0: the queue is permanently backlogged and
    /// the worker pool runs flat out — the request-driven rendering of
    /// the paper's closed loop.
    Closed {
        /// The suggested worker count.
        clients: usize,
    },
    /// Fixed-rate arrivals (requests per second) with deterministic
    /// jitter: request `i` lands uniformly inside its own interval slot
    /// `[i/rate, (i+1)/rate)`, so offered load is exact per slot but not
    /// metronomic.
    Open {
        /// Offered load, requests per second.
        rate: f64,
    },
    /// Bursty arrivals averaging `rate` requests per second: each period
    /// of `period_ms` opens with a back-to-back burst of up to `burst`
    /// requests, and the period's remaining requests spread evenly over
    /// the rest of it.
    Bursty {
        /// Average offered load, requests per second.
        rate: f64,
        /// Maximum requests in each period-opening burst.
        burst: u64,
        /// Burst period, milliseconds.
        period_ms: u64,
    },
}

impl Schedule {
    /// Parses the CLI spelling: `closed:N`, `open:RATE`, or
    /// `bursty:RATE:BURST:PERIOD_MS`.
    pub fn parse(s: &str) -> Option<Schedule> {
        let (kind, rest) = s.split_once(':')?;
        match kind {
            "closed" => {
                let clients: usize = rest.parse().ok()?;
                (clients >= 1).then_some(Schedule::Closed { clients })
            }
            "open" => {
                let rate: f64 = rest.parse().ok()?;
                (rate.is_finite() && rate > 0.0).then_some(Schedule::Open { rate })
            }
            "bursty" => {
                let mut parts = rest.split(':');
                let rate: f64 = parts.next()?.parse().ok()?;
                let burst: u64 = parts.next()?.parse().ok()?;
                let period_ms: u64 = parts.next()?.parse().ok()?;
                if parts.next().is_some() {
                    return None;
                }
                (rate.is_finite() && rate > 0.0 && burst >= 1 && period_ms >= 1).then_some(
                    Schedule::Bursty {
                        rate,
                        burst,
                        period_ms,
                    },
                )
            }
            _ => None,
        }
    }

    /// Stable short key for cell identities and report labels
    /// (`closed4`, `open2000`, `bursty2000x50@100`).
    pub fn key(&self) -> String {
        let rate_key = |rate: f64| {
            if rate.fract() == 0.0 {
                format!("{}", rate as u64)
            } else {
                format!("{rate}")
            }
        };
        match self {
            Schedule::Closed { clients } => format!("closed{clients}"),
            Schedule::Open { rate } => format!("open{}", rate_key(*rate)),
            Schedule::Bursty {
                rate,
                burst,
                period_ms,
            } => format!("bursty{}x{burst}@{period_ms}", rate_key(*rate)),
        }
    }

    /// The arrival offset of request `i`, given that request's jitter
    /// draw in `[0, 1)`.
    fn arrival_ns(&self, i: u64, jitter: f64) -> u64 {
        match self {
            Schedule::Closed { .. } => 0,
            Schedule::Open { rate } => {
                let interval_ns = 1e9 / rate;
                ((i as f64 + jitter) * interval_ns) as u64
            }
            Schedule::Bursty {
                rate,
                burst,
                period_ms,
            } => {
                let period_ns = period_ms * 1_000_000;
                let per_period = ((rate * *period_ms as f64 / 1_000.0).round() as u64).max(1);
                let period = i / per_period;
                let slot = i % per_period;
                let base = period * period_ns;
                if slot < *burst {
                    base // the burst: back-to-back at the period opening
                } else {
                    // Spread the rest evenly over the remaining period.
                    let rest = per_period - (*burst).min(per_period);
                    let step = period_ns / (rest + 1);
                    base + (slot - burst + 1) * step
                }
            }
        }
    }

    /// The single per-request draw: fixed order — operation, op-rng
    /// seed, arrival jitter — so streams are byte-identical across
    /// [`Self::generate`] and [`Self::generate_for`] for the same
    /// `(schedule, mix, seed)`, and different schedules share the same
    /// operation sequence for the same seed.
    fn draw(&self, mix: &WorkloadMix, rng: &mut SmallRng, id: u64) -> Request {
        let op = mix.pick(rng);
        let rng_seed: u64 = rng.gen();
        let jitter: f64 = rng.gen();
        Request {
            id,
            arrival_ns: self.arrival_ns(id, jitter),
            op,
            rng_seed,
        }
    }

    /// Materializes the first `n` requests of this schedule. Identical
    /// `(schedule, mix, seed)` triples yield identical streams.
    pub fn generate(&self, mix: &WorkloadMix, seed: u64, n: u64) -> Vec<Request> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|id| self.draw(mix, &mut rng, id)).collect()
    }

    /// Materializes every request arriving strictly before `horizon`.
    /// `None` for [`Schedule::Closed`], whose request count is not
    /// duration-bounded (everything arrives at t=0).
    pub fn generate_for(
        &self,
        mix: &WorkloadMix,
        seed: u64,
        horizon: Duration,
    ) -> Option<Vec<Request>> {
        if matches!(self, Schedule::Closed { .. }) {
            return None;
        }
        let horizon_ns = horizon.as_nanos() as u64;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut requests = Vec::new();
        for id in 0.. {
            let req = self.draw(mix, &mut rng, id);
            if req.arrival_ns >= horizon_ns {
                break;
            }
            requests.push(req);
        }
        Some(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmbench7_core::{OpFilter, WorkloadType};

    fn mix() -> WorkloadMix {
        WorkloadMix::compute(WorkloadType::ReadWrite, true, true, &OpFilter::none())
    }

    #[test]
    fn parse_round_trips_the_key() {
        for (text, key) in [
            ("closed:4", "closed4"),
            ("open:2000", "open2000"),
            ("open:2500.5", "open2500.5"),
            ("bursty:2000:50:100", "bursty2000x50@100"),
        ] {
            let sched = Schedule::parse(text).unwrap_or_else(|| panic!("{text} must parse"));
            assert_eq!(sched.key(), key);
        }
        for bad in [
            "open",
            "open:",
            "open:0",
            "open:-5",
            "open:nan",
            "closed:0",
            "closed:x",
            "bursty:100:0:10",
            "bursty:100:5",
            "bursty:100:5:0",
            "bursty:1:2:3:4",
            "poisson:9",
        ] {
            assert!(Schedule::parse(bad).is_none(), "{bad} must not parse");
        }
    }

    #[test]
    fn closed_arrivals_are_all_zero() {
        let reqs = Schedule::Closed { clients: 3 }.generate(&mix(), 9, 50);
        assert_eq!(reqs.len(), 50);
        assert!(reqs.iter().all(|r| r.arrival_ns == 0));
        assert_eq!(reqs.last().unwrap().id, 49);
    }

    #[test]
    fn open_arrivals_stay_in_their_slots_and_are_monotone() {
        let rate = 1000.0; // 1 ms interval
        let reqs = Schedule::Open { rate }.generate(&mix(), 4, 200);
        let interval = 1_000_000u64;
        for r in &reqs {
            let slot = r.id * interval;
            assert!(
                (slot..slot + interval).contains(&r.arrival_ns),
                "request {} left its slot: {}",
                r.id,
                r.arrival_ns
            );
        }
        assert!(reqs.windows(2).all(|w| w[0].arrival_ns < w[1].arrival_ns));
    }

    #[test]
    fn bursty_opens_each_period_with_a_burst() {
        let sched = Schedule::Bursty {
            rate: 1000.0,
            burst: 4,
            period_ms: 10,
        }; // 10 requests per 10 ms period
        let reqs = sched.generate(&mix(), 4, 30);
        let period_ns = 10_000_000u64;
        for p in 0..3u64 {
            let period: Vec<_> = reqs[(p * 10) as usize..((p + 1) * 10) as usize].to_vec();
            // First 4 at the period opening, the remaining 6 strictly
            // inside it, all within the period.
            assert!(period[..4].iter().all(|r| r.arrival_ns == p * period_ns));
            assert!(period[4..]
                .iter()
                .all(|r| r.arrival_ns > p * period_ns && r.arrival_ns < (p + 1) * period_ns));
        }
    }

    #[test]
    fn generate_for_respects_the_horizon() {
        let m = mix();
        let sched = Schedule::Open { rate: 500.0 };
        let reqs = sched
            .generate_for(&m, 11, Duration::from_millis(100))
            .unwrap();
        // 500 req/s over 0.1 s → 50 ± 1.
        assert!((49..=51).contains(&reqs.len()), "got {}", reqs.len());
        assert!(reqs.iter().all(|r| r.arrival_ns < 100_000_000));
        assert!(Schedule::Closed { clients: 1 }
            .generate_for(&m, 11, Duration::from_secs(1))
            .is_none());
    }

    #[test]
    fn streams_share_the_operation_sequence_across_schedules() {
        let m = mix();
        let open = Schedule::Open { rate: 100.0 }.generate(&m, 7, 64);
        let closed = Schedule::Closed { clients: 2 }.generate(&m, 7, 64);
        for (a, b) in open.iter().zip(&closed) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.rng_seed, b.rng_seed);
        }
    }
}
