//! Arrival-schedule determinism properties: the same `(schedule, seed)`
//! pair must yield byte-identical request streams, and `open(rate)` must
//! offer `rate · duration ± 1` requests.

use std::time::Duration;

use proptest::prelude::*;
use stmbench7_core::{OpFilter, WorkloadMix, WorkloadType};
use stmbench7_service::Schedule;

fn mix() -> WorkloadMix {
    WorkloadMix::compute(WorkloadType::ReadWrite, true, true, &OpFilter::none())
}

/// The schedule under test, decoded from three generated integers so the
/// property covers all three variants.
fn schedule(kind: u8, a: u64, b: u64) -> Schedule {
    match kind % 3 {
        0 => Schedule::Closed {
            clients: (a % 16 + 1) as usize,
        },
        1 => Schedule::Open {
            rate: (a % 100_000 + 1) as f64,
        },
        _ => Schedule::Bursty {
            rate: (a % 100_000 + 1) as f64,
            burst: b % 64 + 1,
            period_ms: b % 50 + 1,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Identical `(schedule, seed)` pairs produce byte-identical streams
    /// (compared through the full Debug rendering: ids, arrivals,
    /// operations and per-request seeds).
    #[test]
    fn same_seed_same_stream(kind in 0u8..3, a in 0u64..1_000_000, b in 0u64..1_000_000, seed in 0u64..u64::MAX) {
        let sched = schedule(kind, a, b);
        let m = mix();
        let first = sched.generate(&m, seed, 200);
        let second = sched.generate(&m, seed, 200);
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(format!("{first:?}").into_bytes(), format!("{second:?}").into_bytes());
        // And a different seed moves at least one request (rng_seed
        // collision over 200 draws is astronomically unlikely).
        let other = sched.generate(&m, seed ^ 0xDEAD_BEEF, 200);
        prop_assert_ne!(first, other);
    }

    /// Arrival offsets are non-decreasing in stream order for every
    /// schedule, so queue order equals arrival order.
    #[test]
    fn arrivals_are_monotone(kind in 0u8..3, a in 0u64..1_000_000, b in 0u64..1_000_000, seed in 0u64..u64::MAX) {
        let sched = schedule(kind, a, b);
        let reqs = sched.generate(&mix(), seed, 150);
        for w in reqs.windows(2) {
            prop_assert!(w[0].arrival_ns <= w[1].arrival_ns);
            prop_assert_eq!(w[0].id + 1, w[1].id);
        }
    }

    /// `open(rate)` offers `rate · duration ± 1` requests.
    #[test]
    fn open_rate_times_duration(rate in 1u64..20_000, dur_ms in 1u64..500, seed in 0u64..u64::MAX) {
        let sched = Schedule::Open { rate: rate as f64 };
        let reqs = sched
            .generate_for(&mix(), seed, Duration::from_millis(dur_ms))
            .expect("open schedules are duration-bounded");
        let expected = rate as f64 * dur_ms as f64 / 1_000.0;
        let count = reqs.len() as f64;
        prop_assert!(
            (count - expected).abs() <= 1.0,
            "open({rate}) over {dur_ms} ms offered {count} requests, expected {expected} ± 1"
        );
    }
}
