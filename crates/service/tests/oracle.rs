//! The served-stream-vs-closed-loop sequential oracle: executing an
//! operation stream through the service layer (queue + worker) must
//! produce exactly the same outcome for every request as running the
//! identical stream closed-loop — serving changes *when* operations run,
//! never *what* they compute.

use stmbench7_backend::{strategy_catalog, AnyBackend, Backend, BackendChoice};
use stmbench7_core::WorkloadType;
use stmbench7_data::{validate, StructureParams, Workspace};
use stmbench7_service::{run_stream_closed, serve, Admission, Affinity, Schedule, ServeConfig};

fn oracle_cfg(schedule: Schedule) -> ServeConfig {
    let mut cfg = ServeConfig::new(schedule, WorkloadType::ReadWrite, 42);
    cfg.workers = 1; // single worker ⇒ stream order ⇒ deterministic
    cfg.queue_cap = 32;
    cfg.admission = Admission::Block;
    cfg
}

fn build_with(choice: BackendChoice, params: &StructureParams) -> (StructureParams, AnyBackend) {
    let ws = Workspace::build(params.clone(), 7);
    (params.clone(), AnyBackend::build(choice, ws))
}

fn build(choice: BackendChoice) -> (StructureParams, AnyBackend) {
    build_with(choice, &StructureParams::tiny())
}

/// Runs the oracle for one backend choice and one service configuration.
fn assert_served_equals_closed(choice: BackendChoice, cfg: &ServeConfig, n: u64) {
    assert_served_equals_closed_on(choice, &StructureParams::tiny(), cfg, n);
}

/// The oracle on an explicit structure (e.g. a sharded build).
fn assert_served_equals_closed_on(
    choice: BackendChoice,
    params: &StructureParams,
    cfg: &ServeConfig,
    n: u64,
) {
    let requests = cfg.generate(n);

    let (params, served_backend) = build_with(choice, params);
    let served = serve(&served_backend, &params, cfg, &requests);

    let (params, closed_backend) = build_with(choice, &params);
    let closed = run_stream_closed(&closed_backend, &params, cfg, &requests);

    assert_eq!(served.outcomes.len(), closed.outcomes.len());
    for (i, (s, c)) in served.outcomes.iter().zip(&closed.outcomes).enumerate() {
        assert_eq!(
            s, c,
            "request {i} ({:?}) diverged between served and closed-loop",
            requests[i].op
        );
    }
    for (s, c) in served.report.per_op.iter().zip(&closed.report.per_op) {
        assert_eq!(s.completed, c.completed, "{} completions", s.op.name());
        assert_eq!(s.failed, c.failed, "{} failures", s.op.name());
    }
    // Both final structures are valid and census-identical.
    let census_served = validate(&served_backend.export()).expect("served structure valid");
    let census_closed = validate(&closed_backend.export()).expect("closed structure valid");
    assert_eq!(census_served, census_closed);
}

#[test]
fn sequential_served_stream_matches_closed_loop() {
    assert_served_equals_closed(
        BackendChoice::Sequential,
        &oracle_cfg(Schedule::Open { rate: 500_000.0 }),
        400,
    );
}

#[test]
fn sequential_oracle_holds_under_batching() {
    let mut cfg = oracle_cfg(Schedule::Closed { clients: 1 });
    cfg.batch_max = 8; // read-only batches fold into one transaction each
    assert_served_equals_closed(BackendChoice::Sequential, &cfg, 400);
}

#[test]
fn lock_and_stm_backends_agree_with_the_served_sequential_oracle() {
    // One worker makes every backend deterministic in stream order, so
    // the oracle extends across strategies: coarse locking and TL2 must
    // compute exactly what sequential computes for the same stream.
    let cfg = oracle_cfg(Schedule::Bursty {
        rate: 400_000.0,
        burst: 32,
        period_ms: 1,
    });
    let requests = cfg.generate(300);

    let (params, seq) = build(BackendChoice::Sequential);
    let oracle = serve(&seq, &params, &cfg, &requests);

    for choice in [
        BackendChoice::Coarse,
        BackendChoice::FlatCombining,
        BackendChoice::DedicatedServer,
        BackendChoice::Tl2 {
            granularity: stmbench7_backend::Granularity::Monolithic,
        },
    ] {
        let (params, backend) = build(choice);
        let result = serve(&backend, &params, &cfg, &requests);
        for (i, (a, b)) in oracle.outcomes.iter().zip(&result.outcomes).enumerate() {
            assert_eq!(
                a,
                b,
                "request {i} diverged between sequential and {}",
                backend.name()
            );
        }
    }
}

/// Both delegation backends under the served oracle, including read-only
/// *batching*: a batch folds several requests into one `execute`, which
/// the combiner then runs as one published job — outcomes must still be
/// bit-identical to the closed loop.
#[test]
fn combining_backends_hold_the_served_oracle_batched_and_unbatched() {
    for choice in [BackendChoice::FlatCombining, BackendChoice::DedicatedServer] {
        assert_served_equals_closed(choice, &oracle_cfg(Schedule::Open { rate: 500_000.0 }), 300);
        let mut batched = oracle_cfg(Schedule::Closed { clients: 1 });
        batched.batch_max = 8;
        assert_served_equals_closed(choice, &batched, 300);
    }
}

/// The acceptance gate for group commit + shard affinity: every one of
/// the 13 catalog strategies must agree with its own closed-loop run at
/// `--shards 8` with write batching AND shard-affine dispatch both on.
/// One worker keeps stream order (shard routing collapses to the only
/// sub-queue), so outcome-for-outcome equality is required — merging
/// writers into one acquisition may change *when* transactions run,
/// never *what* they compute.
#[test]
fn all_catalog_strategies_hold_the_oracle_with_batching_and_affinity() {
    let params = StructureParams::tiny().with_shards(8);
    for (name, choice) in strategy_catalog() {
        let mut cfg = oracle_cfg(Schedule::Closed { clients: 1 });
        cfg.batch_max = 8;
        cfg.affinity = Affinity::Shard;
        eprintln!("oracle: {name} with group commit + shard affinity");
        assert_served_equals_closed_on(choice, &params, &cfg, 250);
    }
}

/// Multi-worker shard affinity with group commit: outcomes are no
/// longer stream-order deterministic, but block admission must still
/// complete every request, the final structure must validate, and the
/// run must report its routing (`affinity: shard` surfaces in stats).
#[test]
fn multi_worker_affinity_with_batching_preserves_structure_validity() {
    let params = StructureParams::tiny().with_shards(8);
    for choice in [
        BackendChoice::Medium,
        BackendChoice::Tl2 {
            granularity: stmbench7_backend::Granularity::Sharded,
        },
    ] {
        let mut cfg = ServeConfig::new(
            Schedule::Open { rate: 400_000.0 },
            WorkloadType::ReadWrite,
            99,
        );
        cfg.workers = 4;
        cfg.queue_cap = 64;
        cfg.admission = Admission::Block;
        cfg.batch_max = 8;
        cfg.affinity = Affinity::Shard;
        let requests = cfg.generate(600);

        let (params, backend) = build_with(choice, &params);
        let result = serve(&backend, &params, &cfg, &requests);

        let answered = result.outcomes.iter().filter(|o| o.is_some()).count();
        assert_eq!(answered, 600, "block admission answers every request");
        validate(&backend.export()).expect("structure valid under multi-worker affinity");
        let svc = result
            .report
            .service
            .as_ref()
            .expect("service stats present");
        assert_eq!(svc.affinity, "shard");
        // Batching is on and the stream has writers, so group commits
        // should have formed (4 workers × 600 requests at a hot rate).
        assert!(
            svc.batches > 0,
            "at least one batch must have been executed"
        );
    }
}
