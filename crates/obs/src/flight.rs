//! The flight recorder: always-cheap windowed time-series telemetry.
//!
//! Where the trace recorder captures individual lifecycle *events*, the
//! flight recorder captures *rates*: a sampler thread wakes once per
//! window (default 250 ms), cuts the cumulative counters into
//! per-window deltas, probes the gauges (queue depth, latency
//! percentiles, contention) and appends one [`WindowSample`] to an
//! in-memory series. Off (the default) every probe site is one branch
//! on an `Option`; on, the hot paths pay a relaxed atomic add per bump
//! — cheap enough to leave on for a whole run, which is the point: a
//! transient stall that an end-of-run aggregate averages away is
//! visible as one bad window.
//!
//! Latency percentiles arrive through a probe closure
//! ([`FlightProbes::latency_cut`]) rather than a histogram owned here:
//! `stmbench7-core` depends on this crate, so core's `Histogram` type
//! cannot appear in this API. The owning layer keeps a per-window
//! histogram, swaps it out at each cut, merges it into its running
//! totals (so end-of-run aggregates lose nothing), and hands back the
//! precomputed [`LatencyCut`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::counters::ContentionSnapshot;

/// The default sampling window when `--window` is given no value.
pub const DEFAULT_WINDOW_MS: u64 = 250;

/// Per-window latency percentiles, precomputed by the layer that owns
/// the histogram (see the module doc for why the histogram itself
/// cannot live here). `samples == 0` means the window saw no requests
/// and the percentile fields are meaningless.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyCut {
    /// Median latency in microseconds (bucket upper bound).
    pub p50_us: u64,
    /// 95th-percentile latency in microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: u64,
    /// Latency samples recorded in the window.
    pub samples: u64,
}

/// One closed sampling window: counter *deltas* over the window plus
/// gauges read at the cut.
#[derive(Clone, Copy, Debug, Default)]
pub struct WindowSample {
    /// Zero-based window index.
    pub index: u64,
    /// Window start, milliseconds since the sampler's epoch.
    pub start_ms: u64,
    /// Window end (the cut instant), milliseconds since the epoch.
    pub end_ms: u64,
    /// Operations that executed to an outcome (committed or benignly
    /// failed) in this window.
    pub completed: u64,
    /// Of [`Self::completed`], how many ended in a benign failure.
    pub failed: u64,
    /// STM/lock attempts that aborted and re-ran in this window.
    pub aborts: u64,
    /// Requests rejected by admission control in this window.
    pub rejected: u64,
    /// Worker batches drained in this window.
    pub batches: u64,
    /// Of [`Self::batches`], how many contained a writer.
    pub write_batches: u64,
    /// Batches stolen from a peer's sub-queue in this window.
    pub steals: u64,
    /// Driver reconnects observed in this window.
    pub reconnects: u64,
    /// Worker busy nanoseconds accumulated in this window (across all
    /// workers; divide by `window * workers` for a busy fraction).
    pub busy_ns: u64,
    /// Requests sitting in the admission queue(s) at the cut (gauge).
    pub queue_depth: u64,
    /// Latency percentiles over the window's own samples.
    pub latency: LatencyCut,
    /// Contention counter deltas over the window, when the backend
    /// exposes counters.
    pub contention: Option<ContentionSnapshot>,
}

/// A point-in-time read of the cumulative counters — what a live
/// metrics scrape exports (Prometheus counters must be cumulative,
/// never windowed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlightTotals {
    /// Operations executed to an outcome since the run started.
    pub completed: u64,
    /// Of [`Self::completed`], benign failures.
    pub failed: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// Admission rejections.
    pub rejected: u64,
    /// Worker batches drained.
    pub batches: u64,
    /// Batches containing a writer.
    pub write_batches: u64,
    /// Stolen batches.
    pub steals: u64,
    /// Driver reconnects.
    pub reconnects: u64,
    /// Worker busy nanoseconds.
    pub busy_ns: u64,
    /// Sum of all recorded latencies, microseconds.
    pub latency_sum_us: u64,
    /// Number of recorded latencies.
    pub latency_count: u64,
}

#[derive(Debug, Default)]
struct Counters {
    completed: AtomicU64,
    failed: AtomicU64,
    aborts: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    write_batches: AtomicU64,
    steals: AtomicU64,
    reconnects: AtomicU64,
    busy_ns: AtomicU64,
    latency_sum_us: AtomicU64,
    latency_count: AtomicU64,
}

#[derive(Debug)]
struct FlightInner {
    window: Duration,
    counters: Counters,
    samples: Mutex<Vec<WindowSample>>,
    stop: Mutex<bool>,
    stopped: Condvar,
}

/// Gauge probes the sampler calls at every window cut. Borrowed
/// closures, so the sampler can run inside the owning layer's
/// `thread::scope` and read stack-local state (queues, histograms,
/// backend counters) without `'static` gymnastics.
pub struct FlightProbes<'a> {
    /// Requests currently queued (gauge).
    pub queue_depth: &'a (dyn Fn() -> u64 + Sync),
    /// Swap out the window histogram, fold it into the totals, return
    /// the window's percentiles.
    pub latency_cut: &'a (dyn Fn() -> LatencyCut + Sync),
    /// Cumulative contention snapshot (the sampler differences
    /// consecutive reads itself); `None` when the backend has none.
    pub contention: &'a (dyn Fn() -> Option<ContentionSnapshot> + Sync),
}

impl<'a> FlightProbes<'a> {
    /// Probes that report nothing — for layers without queues or
    /// per-request latencies (the closed-loop engine supplies its own
    /// latency probe but no queue).
    pub fn none() -> FlightProbes<'static> {
        FlightProbes {
            queue_depth: &|| 0,
            latency_cut: &LatencyCut::default,
            contention: &|| None,
        }
    }
}

/// The windowed sampler handle. `Clone` is a reference clone; a
/// disabled recorder ([`FlightRecorder::off`], the default) makes
/// every bump a single predictable branch.
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder(Option<Arc<FlightInner>>);

impl FlightRecorder {
    /// A disabled recorder: all bumps are no-ops, no sampler runs.
    pub fn off() -> FlightRecorder {
        FlightRecorder(None)
    }

    /// An enabled recorder cutting windows every `window_ms`
    /// milliseconds (clamped to at least 1 ms).
    pub fn new(window_ms: u64) -> FlightRecorder {
        FlightRecorder(Some(Arc::new(FlightInner {
            window: Duration::from_millis(window_ms.max(1)),
            counters: Counters::default(),
            samples: Mutex::new(Vec::new()),
            stop: Mutex::new(false),
            stopped: Condvar::new(),
        })))
    }

    /// True when sampling is on.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The configured window length in milliseconds (`None` when off).
    pub fn window_ms(&self) -> Option<u64> {
        self.0.as_ref().map(|i| i.window.as_millis() as u64)
    }

    /// Counts `completed` executed operations, of which `failed`
    /// benignly failed, plus `aborts` aborted attempts.
    #[inline]
    pub fn add_ops(&self, completed: u64, failed: u64, aborts: u64) {
        if let Some(i) = &self.0 {
            i.counters.completed.fetch_add(completed, Ordering::Relaxed);
            if failed > 0 {
                i.counters.failed.fetch_add(failed, Ordering::Relaxed);
            }
            if aborts > 0 {
                i.counters.aborts.fetch_add(aborts, Ordering::Relaxed);
            }
        }
    }

    /// Counts admission rejections.
    #[inline]
    pub fn add_rejected(&self, n: u64) {
        if let Some(i) = &self.0 {
            i.counters.rejected.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts one drained batch; `write` marks a batch containing a
    /// writer.
    #[inline]
    pub fn add_batch(&self, write: bool) {
        if let Some(i) = &self.0 {
            i.counters.batches.fetch_add(1, Ordering::Relaxed);
            if write {
                i.counters.write_batches.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Counts one stolen batch.
    #[inline]
    pub fn add_steal(&self) {
        if let Some(i) = &self.0 {
            i.counters.steals.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts reconnects.
    #[inline]
    pub fn add_reconnects(&self, n: u64) {
        if let Some(i) = &self.0 {
            i.counters.reconnects.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Accumulates worker busy time.
    #[inline]
    pub fn add_busy_ns(&self, ns: u64) {
        if let Some(i) = &self.0 {
            i.counters.busy_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Accumulates `count` latency samples summing to `sum_us`
    /// microseconds (feeds the exposition's `_sum`/`_count`; the
    /// bucketed histogram lives with the owning layer).
    #[inline]
    pub fn add_latency_us(&self, sum_us: u64, count: u64) {
        if let Some(i) = &self.0 {
            i.counters
                .latency_sum_us
                .fetch_add(sum_us, Ordering::Relaxed);
            i.counters.latency_count.fetch_add(count, Ordering::Relaxed);
        }
    }

    /// Reads the cumulative counters (a live scrape's view). All zeros
    /// when disabled.
    pub fn totals(&self) -> FlightTotals {
        match &self.0 {
            None => FlightTotals::default(),
            Some(i) => {
                let c = &i.counters;
                let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
                FlightTotals {
                    completed: load(&c.completed),
                    failed: load(&c.failed),
                    aborts: load(&c.aborts),
                    rejected: load(&c.rejected),
                    batches: load(&c.batches),
                    write_batches: load(&c.write_batches),
                    steals: load(&c.steals),
                    reconnects: load(&c.reconnects),
                    busy_ns: load(&c.busy_ns),
                    latency_sum_us: load(&c.latency_sum_us),
                    latency_count: load(&c.latency_count),
                }
            }
        }
    }

    /// The sampler loop: cuts one [`WindowSample`] per window until
    /// [`Self::stop`], then cuts the final partial window (unless it is
    /// zero-length). Run this on a dedicated (scoped) thread; returns
    /// immediately when the recorder is off.
    pub fn run_sampler(&self, probes: FlightProbes<'_>) {
        let Some(inner) = &self.0 else { return };
        let epoch = Instant::now();
        let mut prev = FlightTotals::default();
        let mut prev_contention = (probes.contention)();
        let mut prev_end_ms = 0u64;
        let mut index = 0u64;
        loop {
            let deadline = inner.window * u32::try_from(index + 1).unwrap_or(u32::MAX);
            let stopping = {
                let mut stop = inner.stop.lock().expect("flight stop poisoned");
                loop {
                    if *stop {
                        break true;
                    }
                    let now = epoch.elapsed();
                    if now >= deadline {
                        break false;
                    }
                    let (guard, _) = inner
                        .stopped
                        .wait_timeout(stop, deadline - now)
                        .expect("flight stop poisoned");
                    stop = guard;
                }
            };
            let end_ms = epoch.elapsed().as_millis() as u64;
            let totals = self.totals();
            // The final cut is skipped only when it would be both
            // zero-length and empty — a same-millisecond stop with new
            // counts still emits, so no tail measurement is lost.
            if !(stopping && end_ms == prev_end_ms && totals == prev) {
                let contention_now = (probes.contention)();
                let contention = match (contention_now, prev_contention) {
                    (Some(now), Some(prev)) => Some(now.delta(&prev)),
                    (now, _) => now,
                };
                let sample = WindowSample {
                    index,
                    start_ms: prev_end_ms,
                    end_ms,
                    completed: totals.completed - prev.completed,
                    failed: totals.failed - prev.failed,
                    aborts: totals.aborts - prev.aborts,
                    rejected: totals.rejected - prev.rejected,
                    batches: totals.batches - prev.batches,
                    write_batches: totals.write_batches - prev.write_batches,
                    steals: totals.steals - prev.steals,
                    reconnects: totals.reconnects - prev.reconnects,
                    busy_ns: totals.busy_ns - prev.busy_ns,
                    queue_depth: (probes.queue_depth)(),
                    latency: (probes.latency_cut)(),
                    contention,
                };
                inner
                    .samples
                    .lock()
                    .expect("flight samples poisoned")
                    .push(sample);
                prev = totals;
                prev_contention = contention_now;
                prev_end_ms = end_ms;
                index += 1;
            }
            if stopping {
                return;
            }
        }
    }

    /// Asks the sampler to cut its final window and exit.
    pub fn stop(&self) {
        if let Some(inner) = &self.0 {
            *inner.stop.lock().expect("flight stop poisoned") = true;
            inner.stopped.notify_all();
        }
    }

    /// A copy of the windows closed so far (a live view; the series
    /// keeps growing until [`Self::stop`]).
    pub fn samples(&self) -> Vec<WindowSample> {
        match &self.0 {
            None => Vec::new(),
            Some(i) => i.samples.lock().expect("flight samples poisoned").clone(),
        }
    }

    /// Takes the finished series (call after the sampler thread has
    /// been joined).
    pub fn take_samples(&self) -> Vec<WindowSample> {
        match &self.0 {
            None => Vec::new(),
            Some(i) => std::mem::take(&mut *i.samples.lock().expect("flight samples poisoned")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let f = FlightRecorder::off();
        assert!(!f.enabled());
        assert_eq!(f.window_ms(), None);
        f.add_ops(5, 1, 2);
        f.add_batch(true);
        assert_eq!(f.totals(), FlightTotals::default());
        f.run_sampler(FlightProbes::none()); // returns immediately
        f.stop();
        assert!(f.take_samples().is_empty());
    }

    #[test]
    fn counters_accumulate_and_windows_hold_deltas() {
        let f = FlightRecorder::new(5);
        assert_eq!(f.window_ms(), Some(5));
        f.add_ops(10, 2, 3);
        f.add_rejected(1);
        f.add_batch(true);
        f.add_batch(false);
        f.add_steal();
        f.add_busy_ns(1_000);
        f.add_latency_us(500, 10);
        let t = f.totals();
        assert_eq!(t.completed, 10);
        assert_eq!(t.failed, 2);
        assert_eq!(t.aborts, 3);
        assert_eq!(t.rejected, 1);
        assert_eq!(t.batches, 2);
        assert_eq!(t.write_batches, 1);
        assert_eq!(t.steals, 1);
        assert_eq!(t.latency_sum_us, 500);
        assert_eq!(t.latency_count, 10);

        let sampler = {
            let f = f.clone();
            std::thread::spawn(move || {
                f.run_sampler(FlightProbes {
                    queue_depth: &|| 7,
                    latency_cut: &|| LatencyCut {
                        p50_us: 10,
                        p95_us: 20,
                        p99_us: 30,
                        samples: 4,
                    },
                    contention: &|| None,
                })
            })
        };
        std::thread::sleep(Duration::from_millis(12));
        f.add_ops(5, 0, 0);
        f.stop();
        sampler.join().expect("sampler");
        let windows = f.take_samples();
        assert!(windows.len() >= 2, "several 5 ms windows closed");
        let total: u64 = windows.iter().map(|w| w.completed).sum();
        assert_eq!(total, 15, "window deltas sum to the cumulative count");
        assert_eq!(windows[0].completed, 10, "first window holds the prefix");
        assert_eq!(windows[0].queue_depth, 7);
        assert_eq!(windows[0].latency.p99_us, 30);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.index, i as u64);
            assert!(w.end_ms >= w.start_ms);
        }
        for pair in windows.windows(2) {
            assert_eq!(pair[0].end_ms, pair[1].start_ms, "windows abut");
        }
    }

    #[test]
    fn contention_windows_are_deltas_of_cumulative_snapshots() {
        let f = FlightRecorder::new(1);
        let calls = AtomicU64::new(0);
        // A cumulative snapshot that grows by 10 acquisitions per read:
        // every window's delta must therefore be exactly 10.
        let probe = || {
            let n = calls.fetch_add(1, Ordering::Relaxed) + 1;
            Some(ContentionSnapshot {
                lock_acquires: 10 * n,
                ..ContentionSnapshot::default()
            })
        };
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                f.run_sampler(FlightProbes {
                    queue_depth: &|| 0,
                    latency_cut: &LatencyCut::default,
                    contention: &probe,
                })
            });
            std::thread::sleep(Duration::from_millis(6));
            f.stop();
            h.join().expect("sampler");
        });
        let windows = f.take_samples();
        assert!(!windows.is_empty());
        for w in &windows {
            let c = w.contention.expect("probe always answers");
            assert_eq!(c.lock_acquires, 10, "each window sees its own delta");
        }
    }
}
