//! The recorder handle threaded through the stack.
//!
//! A [`Recorder`] is either *off* — the default, a `None` that makes
//! every call site one predictable branch — or *on*, a shared handle to
//! a trace in progress. Recording threads each own a private
//! [`Ring`] in thread-local storage, so the hot path takes no locks:
//! a lane flushes its ring into the shared spool only when its thread
//! exits or the thread starts recording into a different trace.
//!
//! Collection ([`Recorder::take_trace`]) therefore expects worker
//! threads to have exited first — which every runner in this workspace
//! guarantees by scoping its workers (`std::thread::scope`) inside the
//! run that owns the recorder.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, EventKind, Layer};
use crate::ring::Ring;

/// Per-thread ring capacity of a default-sized recorder: recent-window
/// tracing, bounded at ~¾ MB of events per thread.
pub const DEFAULT_RING_CAPACITY: usize = 16_384;

/// Every `SAMPLE_PERIOD`-th operation on a thread passes the
/// [`Recorder::sampled`] gate for dispatch-phase profiling.
const SAMPLE_PERIOD: u32 = 32;

#[derive(Debug)]
struct Shared {
    epoch: Instant,
    ring_capacity: usize,
    next_tid: AtomicU32,
    /// Rings flushed by exiting (or re-bound) lanes.
    spool: Mutex<Vec<Event>>,
    dropped: AtomicU64,
}

struct Lane {
    shared: Arc<Shared>,
    tid: u32,
    ring: Ring,
}

impl Lane {
    fn flush(&mut self) {
        let (events, dropped) = self.ring.drain();
        if dropped > 0 {
            self.shared.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
        if !events.is_empty() {
            let mut spool = self.shared.spool.lock().unwrap();
            spool.extend(events);
        }
    }
}

impl Drop for Lane {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LANE: RefCell<Option<Lane>> = const { RefCell::new(None) };
    static SAMPLE_TICK: Cell<u32> = const { Cell::new(0) };
}

/// A finished trace: every recorded event merged across threads in
/// timestamp order, plus how many events the rings had to drop.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All events, sorted by `t_ns` (ties keep lane-flush order).
    pub events: Vec<Event>,
    /// Events lost to ring wraparound across all threads.
    pub dropped: u64,
}

impl Trace {
    /// The distinct layers that produced at least one event.
    pub fn layers(&self) -> Vec<Layer> {
        Layer::all()
            .into_iter()
            .filter(|l| self.events.iter().any(|e| e.layer == *l))
            .collect()
    }
}

/// Cheap, clonable handle to a trace in progress (or to nothing).
///
/// `Recorder::default()` is off: every `record*` call returns after one
/// branch, and [`Recorder::now_ns`] never reads the clock.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    shared: Option<Arc<Shared>>,
}

impl Recorder {
    /// An enabled recorder with the default per-thread ring capacity.
    pub fn enabled() -> Recorder {
        Recorder::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled recorder whose per-thread rings hold `ring_capacity`
    /// events each.
    pub fn with_capacity(ring_capacity: usize) -> Recorder {
        Recorder {
            shared: Some(Arc::new(Shared {
                epoch: Instant::now(),
                ring_capacity,
                next_tid: AtomicU32::new(0),
                spool: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// A disabled recorder (same as `Recorder::default()`).
    pub fn off() -> Recorder {
        Recorder::default()
    }

    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Nanoseconds since this recorder's epoch; 0 when disabled (the
    /// disabled path must not pay for a clock read).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.shared {
            Some(s) => s.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// The sampling gate of the dispatch profiler: true for one in
    /// `SAMPLE_PERIOD` (32) calls per thread, always false when disabled.
    #[inline]
    pub fn sampled(&self) -> bool {
        if self.shared.is_none() {
            return false;
        }
        SAMPLE_TICK.with(|tick| {
            let n = tick.get().wrapping_add(1);
            tick.set(n);
            n % SAMPLE_PERIOD == 0
        })
    }

    /// Records an instant event (no duration).
    #[inline]
    pub fn instant(&self, layer: Layer, kind: EventKind, name: &'static str, arg: u64) {
        if self.shared.is_some() {
            let t_ns = self.now_ns();
            self.push(layer, kind, name, t_ns, 0, arg);
        }
    }

    /// Records a span that started at `t0_ns` (a prior [`Recorder::now_ns`])
    /// and ends now.
    #[inline]
    pub fn span(&self, layer: Layer, kind: EventKind, name: &'static str, t0_ns: u64, arg: u64) {
        if self.shared.is_some() {
            let now = self.now_ns();
            self.push(layer, kind, name, t0_ns, now.saturating_sub(t0_ns), arg);
        }
    }

    /// Records a fully specified event.
    #[inline]
    pub fn push(
        &self,
        layer: Layer,
        kind: EventKind,
        name: &'static str,
        t_ns: u64,
        dur_ns: u64,
        arg: u64,
    ) {
        let Some(shared) = &self.shared else { return };
        LANE.with(|slot| {
            let mut slot = slot.borrow_mut();
            let rebind = match slot.as_ref() {
                Some(lane) => !Arc::ptr_eq(&lane.shared, shared),
                None => true,
            };
            if rebind {
                // Dropping the previous lane (if any) flushes it into
                // its own trace's spool.
                *slot = Some(Lane {
                    shared: Arc::clone(shared),
                    tid: shared.next_tid.fetch_add(1, Ordering::Relaxed),
                    ring: Ring::new(shared.ring_capacity),
                });
            }
            let lane = slot.as_mut().expect("lane bound above");
            let tid = lane.tid;
            lane.ring.push(Event {
                layer,
                kind,
                name,
                t_ns,
                dur_ns,
                arg,
                tid,
            });
        });
    }

    /// Total events dropped so far by flushed lanes (a live lane's
    /// drops only become visible once it flushes).
    pub fn dropped(&self) -> u64 {
        match &self.shared {
            Some(s) => s.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Collects the trace: flushes the calling thread's lane, merges
    /// every flushed ring and sorts by timestamp. Worker threads must
    /// have exited (their lanes flush on thread exit); events recorded
    /// after this call start a fresh trace window on the same handle.
    pub fn take_trace(&self) -> Trace {
        let Some(shared) = &self.shared else {
            return Trace::default();
        };
        LANE.with(|slot| {
            let mut slot = slot.borrow_mut();
            if let Some(lane) = slot.as_mut() {
                if Arc::ptr_eq(&lane.shared, shared) {
                    lane.flush();
                }
            }
        });
        let mut events = std::mem::take(&mut *shared.spool.lock().unwrap());
        events.sort_by_key(|e| e.t_ns);
        Trace {
            events,
            dropped: shared.dropped.swap(0, Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::off();
        assert!(!rec.is_enabled());
        assert_eq!(rec.now_ns(), 0);
        assert!(!rec.sampled());
        rec.instant(Layer::Engine, EventKind::Op, "noop", 0);
        let trace = rec.take_trace();
        assert!(trace.events.is_empty());
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn records_and_collects_on_one_thread() {
        let rec = Recorder::enabled();
        let t0 = rec.now_ns();
        rec.span(Layer::Backend, EventKind::LockWait, "coarse", t0, 0);
        rec.instant(Layer::Service, EventKind::QueueAdmit, "admit", 7);
        let trace = rec.take_trace();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.events[1].arg, 7);
        assert_eq!(
            trace.layers(),
            vec![Layer::Backend, Layer::Service],
            "layers() reports stack order"
        );
    }

    #[test]
    fn cross_thread_merge_is_timestamp_ordered() {
        let rec = Recorder::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    for i in 0..50u64 {
                        rec.instant(Layer::Engine, EventKind::Op, "op", i);
                    }
                });
            }
        });
        rec.instant(Layer::Engine, EventKind::Op, "main", 0);
        let trace = rec.take_trace();
        assert_eq!(trace.events.len(), 4 * 50 + 1);
        assert!(
            trace.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns),
            "merged events are globally timestamp-ordered"
        );
        let mut tids: Vec<u32> = trace.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 5, "each thread got its own lane id");
    }

    #[test]
    fn ring_overflow_surfaces_in_the_trace_drop_count() {
        let rec = Recorder::with_capacity(8);
        for i in 0..20u64 {
            rec.instant(Layer::Engine, EventKind::Op, "op", i);
        }
        let trace = rec.take_trace();
        assert_eq!(trace.events.len(), 8);
        assert_eq!(trace.dropped, 12);
        assert_eq!(
            trace.events.first().map(|e| e.arg),
            Some(12),
            "the surviving window is the most recent one"
        );
    }

    #[test]
    fn take_trace_resets_the_window() {
        let rec = Recorder::enabled();
        rec.instant(Layer::Net, EventKind::FrameDecode, "frame", 1);
        assert_eq!(rec.take_trace().events.len(), 1);
        rec.instant(Layer::Net, EventKind::FrameDecode, "frame", 2);
        let second = rec.take_trace();
        assert_eq!(second.events.len(), 1);
        assert_eq!(second.events[0].arg, 2);
    }

    #[test]
    fn rebinding_a_thread_to_a_new_trace_flushes_the_old_lane() {
        let first = Recorder::enabled();
        first.instant(Layer::Engine, EventKind::Op, "one", 1);
        let second = Recorder::enabled();
        second.instant(Layer::Engine, EventKind::Op, "two", 2);
        // Recording into `second` rebound this thread's lane, flushing
        // the event held for `first`.
        assert_eq!(first.take_trace().events.len(), 1);
        assert_eq!(second.take_trace().events.len(), 1);
    }

    #[test]
    fn sampling_gate_fires_periodically_when_enabled() {
        let rec = Recorder::enabled();
        let hits = (0..640).filter(|_| rec.sampled()).count();
        assert!(hits >= 10, "expected ~20 hits in 640 ticks, got {hits}");
    }
}
