//! Observability for the STMBench7 stack.
//!
//! The source paper insists a TM benchmark must expose *why* a strategy
//! wins — abort rates, contention, per-operation behavior — not just a
//! throughput number. This crate is the plumbing for that: a
//! low-overhead, dependency-free layer every other crate threads a
//! handle through.
//!
//! Three pieces:
//!
//! * [`Recorder`] — a per-thread ring-buffer trace recorder capturing
//!   typed lifecycle [`Event`]s (operation spans, STM retries, lock
//!   acquire-waits, combiner batches, queue admission, net frames).
//!   Cloning is cheap, recording is lock-free on the hot path (a
//!   thread-local ring), and a disabled recorder — the default — costs
//!   one branch per call site. Traces export to Chrome `trace_event`
//!   JSON ([`chrome_trace_json`]) loadable in `chrome://tracing` or
//!   Perfetto, or render as a compact text table ([`summarize`]).
//! * [`ContentionCounters`] — always-on atomic counters a backend owns
//!   (lock waits, CAS retries, shard conflicts) and snapshots into
//!   reports; the contention column every lab spec gains for free.
//! * A sampling gate ([`Recorder::sampled`]) behind which the engine
//!   and backends time `run_op` dispatch phases (discovery /
//!   lock-plan / execute / commit) as [`EventKind::Phase`] spans.
//! * [`FlightRecorder`] — the windowed flight recorder: a sampler
//!   thread cuts cumulative counters into per-window deltas
//!   ([`WindowSample`]: throughput, latency percentiles, queue depth,
//!   busy time, steals, contention deltas), feeding the `timeseries`
//!   report section, the live Prometheus endpoint, and the lab's
//!   windowed SLO gates. Like the trace recorder it costs one branch
//!   per probe site when off.

mod counters;
mod event;
mod export;
mod flight;
mod recorder;
mod ring;

pub use counters::{ContentionCounters, ContentionSnapshot};
pub use event::{Event, EventKind, Layer};
pub use export::{chrome_trace_json, summarize, top_spans, write_json_escaped};
pub use flight::{
    FlightProbes, FlightRecorder, FlightTotals, LatencyCut, WindowSample, DEFAULT_WINDOW_MS,
};
pub use recorder::{Recorder, Trace, DEFAULT_RING_CAPACITY};
pub use ring::Ring;
