//! Trace export: Chrome `trace_event` JSON and a compact text summary.
//!
//! The JSON flavor is the "JSON array format" every Chromium-family
//! viewer accepts (`chrome://tracing`, Perfetto's legacy loader): a
//! flat array of event objects with microsecond timestamps. Spans
//! export as complete events (`"ph":"X"`), instants as `"ph":"i"`, and
//! the trace-wide drop count rides along as one counter event so the
//! viewer shows whether the window is complete.

use std::fmt::Write as _;

use crate::event::{Event, EventKind, Layer};
use crate::recorder::Trace;

/// Writes `s` into `out` as a JSON string body (no surrounding
/// quotes), escaping quotes, backslashes and control characters.
pub fn write_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_micros(out: &mut String, ns: u64) {
    // Microseconds with nanosecond precision kept as decimals.
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

fn push_event(out: &mut String, ev: &Event) {
    out.push_str("{\"name\":\"");
    write_json_escaped(out, ev.name);
    out.push_str("\",\"cat\":\"");
    out.push_str(ev.layer.name());
    out.push_str("\",\"ph\":\"");
    if ev.kind.is_span() {
        out.push_str("X\",\"ts\":");
        push_micros(out, ev.t_ns);
        out.push_str(",\"dur\":");
        push_micros(out, ev.dur_ns);
    } else {
        out.push_str("i\",\"s\":\"t\",\"ts\":");
        push_micros(out, ev.t_ns);
    }
    let _ = write!(
        out,
        ",\"pid\":1,\"tid\":{},\"args\":{{\"kind\":\"{}\",\"arg\":{}}}}}",
        ev.tid,
        ev.kind.name(),
        ev.arg
    );
}

/// Renders a trace as Chrome `trace_event` JSON (array format).
pub fn chrome_trace_json(trace: &Trace) -> String {
    // ~150 bytes per event once rendered.
    let mut out = String::with_capacity(trace.events.len() * 150 + 256);
    out.push('[');
    let mut first = true;
    for ev in &trace.events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        push_event(&mut out, ev);
    }
    if !first {
        out.push_str(",\n");
    }
    // The drop count as a counter event: visible in the viewer, and a
    // machine-readable completeness marker for `trace-summary`.
    let _ = write!(
        out,
        "{{\"name\":\"trace_dropped\",\"cat\":\"obs\",\"ph\":\"C\",\"ts\":0,\"pid\":1,\"tid\":0,\
         \"args\":{{\"dropped\":{}}}}}",
        trace.dropped
    );
    out.push(']');
    out
}

/// Renders a compact per-(layer, name) table of a trace: event counts
/// and, for span kinds, total and maximum duration.
pub fn summarize(trace: &Trace) -> String {
    struct Row {
        layer: Layer,
        kind: EventKind,
        name: &'static str,
        count: u64,
        total_ns: u64,
        max_ns: u64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for ev in &trace.events {
        match rows
            .iter_mut()
            .find(|r| r.layer == ev.layer && r.kind == ev.kind && r.name == ev.name)
        {
            Some(row) => {
                row.count += 1;
                // Saturate: a trace of pathological durations must
                // still summarize, not overflow.
                row.total_ns = row.total_ns.saturating_add(ev.dur_ns);
                row.max_ns = row.max_ns.max(ev.dur_ns);
            }
            None => rows.push(Row {
                layer: ev.layer,
                kind: ev.kind,
                name: ev.name,
                count: 1,
                total_ns: ev.dur_ns,
                max_ns: ev.dur_ns,
            }),
        }
    }
    rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(b.count.cmp(&a.count)));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} events across {} layers, {} dropped",
        trace.events.len(),
        trace.layers().len(),
        trace.dropped
    );
    if rows.is_empty() {
        // A trace can legitimately hold only counter events (e.g. the
        // drop marker); an empty table header would read as a bug.
        let _ = writeln!(out, "  no span/instant events");
        return out;
    }
    let _ = writeln!(
        out,
        "  {:<8} {:<14} {:<12} {:>9} {:>12} {:>12}",
        "layer", "kind", "name", "count", "total ms", "max us"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "  {:<8} {:<14} {:<12} {:>9} {:>12.3} {:>12.1}",
            r.layer.name(),
            r.kind.name(),
            r.name,
            r.count,
            r.total_ns as f64 / 1e6,
            r.max_ns as f64 / 1e3
        );
    }
    out
}

/// Renders the `n` slowest span events per layer, longest first — the
/// `trace-summary --top N` view. Aggregate means (see [`summarize`])
/// hide a single pathological span; this lists the individuals.
pub fn top_spans(trace: &Trace, n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "top {n} slowest spans per layer:");
    let mut any = false;
    for layer in Layer::all() {
        let mut spans: Vec<&Event> = trace
            .events
            .iter()
            .filter(|ev| ev.layer == layer && ev.kind.is_span())
            .collect();
        if spans.is_empty() {
            continue;
        }
        any = true;
        spans.sort_by(|a, b| b.dur_ns.cmp(&a.dur_ns).then(a.t_ns.cmp(&b.t_ns)));
        spans.truncate(n);
        let _ = writeln!(out, "  {}:", layer.name());
        for ev in spans {
            let _ = writeln!(
                out,
                "    {:<14} {:<12} dur {:>12.1} us   at {:>12.1} us   tid {}",
                ev.kind.name(),
                ev.name,
                ev.dur_ns as f64 / 1e3,
                ev.t_ns as f64 / 1e3,
                ev.tid
            );
        }
    }
    if !any {
        let _ = writeln!(out, "  no span events");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(layer: Layer, kind: EventKind, name: &'static str, t: u64, dur: u64) -> Event {
        Event {
            layer,
            kind,
            name,
            t_ns: t,
            dur_ns: dur,
            arg: 3,
            tid: 1,
        }
    }

    #[test]
    fn spans_and_instants_render_with_microsecond_timestamps() {
        let trace = Trace {
            events: vec![
                ev(Layer::Engine, EventKind::Op, "T1", 1_500, 2_250),
                ev(Layer::Service, EventKind::QueueAdmit, "admit", 3_000, 0),
            ],
            dropped: 4,
        };
        let json = chrome_trace_json(&trace);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\",\"ts\":1.500,\"dur\":2.250"));
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\",\"ts\":3.000"));
        assert!(json.contains("\"cat\":\"engine\""));
        assert!(json.contains("\"dropped\":4"));
    }

    #[test]
    fn empty_trace_still_renders_the_drop_marker() {
        let json = chrome_trace_json(&Trace::default());
        assert!(json.contains("trace_dropped"));
        assert!(json.contains("\"dropped\":0"));
    }

    #[test]
    fn names_are_json_escaped() {
        let name: &'static str = Box::leak(String::from("a\"b\\c\nd\u{1}e").into_boxed_str());
        let trace = Trace {
            events: vec![ev(Layer::Backend, EventKind::LockWait, name, 0, 1)],
            dropped: 0,
        };
        let json = chrome_trace_json(&trace);
        assert!(json.contains("a\\\"b\\\\c\\nd\\u0001e"));
        assert!(
            !json.contains('\n') || json.matches('\n').count() == 0 || {
                // Newlines between events are fine; none may appear inside
                // a string value.
                !json.contains("d\ne")
            }
        );
    }

    #[test]
    fn escape_helper_covers_the_control_range() {
        let mut out = String::new();
        write_json_escaped(&mut out, "\t\r\n\u{0}\u{1f}ok");
        assert_eq!(out, "\\t\\r\\n\\u0000\\u001fok");
    }

    #[test]
    fn summary_aggregates_per_name_and_orders_by_total_time() {
        let trace = Trace {
            events: vec![
                ev(Layer::Engine, EventKind::Op, "T1", 0, 5_000_000),
                ev(Layer::Engine, EventKind::Op, "T1", 10, 5_000_000),
                ev(Layer::Backend, EventKind::LockWait, "coarse", 20, 1_000),
            ],
            dropped: 1,
        };
        let text = summarize(&trace);
        assert!(text.contains("3 events across 2 layers, 1 dropped"));
        let t1 = text.find("T1").unwrap();
        let coarse = text.find("coarse").unwrap();
        assert!(t1 < coarse, "heaviest row first");
        assert!(text.contains("10.000"), "total ms of the two T1 spans");
    }

    #[test]
    fn top_spans_lists_the_slowest_individuals_per_layer() {
        let trace = Trace {
            events: vec![
                ev(Layer::Engine, EventKind::Op, "T1", 0, 1_000),
                ev(Layer::Engine, EventKind::Op, "T2", 10, 9_000_000),
                ev(Layer::Engine, EventKind::Op, "OP3", 20, 5_000),
                // Instants never rank: duration-less by definition.
                ev(Layer::Engine, EventKind::OpFail, "T1", 30, 0),
                ev(Layer::Backend, EventKind::LockWait, "coarse", 40, 2_000),
            ],
            dropped: 0,
        };
        let text = top_spans(&trace, 2);
        assert!(text.contains("top 2 slowest spans per layer"));
        assert!(text.contains("engine:"));
        assert!(text.contains("backend:"));
        let t2 = text.find("T2").unwrap();
        let op3 = text.find("OP3").unwrap();
        assert!(t2 < op3, "slowest span first");
        assert!(!text.contains("T1"), "truncated to the top 2, no instants");
        assert!(text.contains("9000.0"), "T2's duration in microseconds");
    }

    #[test]
    fn top_spans_of_a_spanless_trace_says_so() {
        let trace = Trace {
            events: vec![ev(Layer::Service, EventKind::QueueAdmit, "admit", 0, 0)],
            dropped: 0,
        };
        let text = top_spans(&trace, 3);
        assert!(text.contains("no span events"));
    }

    #[test]
    fn summary_of_a_counter_only_trace_says_so_instead_of_an_empty_table() {
        let text = summarize(&Trace {
            events: vec![],
            dropped: 7,
        });
        assert!(text.contains("0 events across 0 layers, 7 dropped"));
        assert!(text.contains("no span/instant events"));
        assert!(!text.contains("total ms"), "no empty table header");
    }
}
