//! A fixed-capacity wraparound event buffer with drop accounting.
//!
//! Each recording thread owns one ring privately, so pushes are plain
//! stores — no atomics, no locking. When the ring is full the oldest
//! event is overwritten and counted as dropped: a trace is a *recent
//! window*, never a reason to stall the benchmark.

use crate::event::Event;

/// Fixed-capacity ring of [`Event`]s (single-owner, not thread-safe —
/// sharing is the [`Recorder`](crate::Recorder)'s job).
#[derive(Debug)]
pub struct Ring {
    buf: Vec<Event>,
    /// Next write position.
    head: usize,
    /// Live events (≤ capacity).
    len: usize,
    dropped: u64,
}

impl Ring {
    /// An empty ring holding at most `capacity` events. A zero capacity
    /// ring drops everything (useful as a counting-only sink).
    pub fn new(capacity: usize) -> Ring {
        Ring {
            buf: Vec::with_capacity(capacity),
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events overwritten (or refused, for a zero-capacity ring) since
    /// the last [`Ring::drain`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends an event, overwriting the oldest one when full.
    pub fn push(&mut self, ev: Event) {
        let cap = self.buf.capacity();
        if cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < cap {
            self.buf.push(ev);
        } else {
            if self.len == cap {
                self.dropped += 1;
            }
            self.buf[self.head] = ev;
        }
        self.head = (self.head + 1) % cap;
        self.len = (self.len + 1).min(cap);
    }

    /// Takes every live event oldest-first and the drop count, leaving
    /// the ring empty.
    pub fn drain(&mut self) -> (Vec<Event>, u64) {
        let cap = self.buf.capacity();
        let mut out = Vec::with_capacity(self.len);
        if self.len > 0 {
            // Oldest event sits `len` slots behind the write head.
            let start = (self.head + cap - self.len) % cap;
            for i in 0..self.len {
                out.push(self.buf[(start + i) % cap]);
            }
        }
        let dropped = self.dropped;
        self.buf.clear();
        self.head = 0;
        self.len = 0;
        self.dropped = 0;
        (out, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Layer};

    fn ev(t: u64) -> Event {
        Event {
            layer: Layer::Engine,
            kind: EventKind::Op,
            name: "t",
            t_ns: t,
            dur_ns: 0,
            arg: 0,
            tid: 0,
        }
    }

    #[test]
    fn fills_then_wraps_and_counts_drops() {
        let mut r = Ring::new(4);
        for t in 0..4 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        // Two more overwrite the two oldest.
        r.push(ev(4));
        r.push(ev(5));
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 2);
        let (evs, dropped) = r.drain();
        let ts: Vec<u64> = evs.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![2, 3, 4, 5], "oldest-first after wraparound");
        assert_eq!(dropped, 2);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0, "drain resets the drop count");
    }

    #[test]
    fn drain_before_wrap_preserves_order() {
        let mut r = Ring::new(8);
        for t in 0..5 {
            r.push(ev(t));
        }
        let (evs, dropped) = r.drain();
        assert_eq!(evs.len(), 5);
        assert!(evs.windows(2).all(|w| w[0].t_ns < w[1].t_ns));
        assert_eq!(dropped, 0);
    }

    #[test]
    fn ring_is_reusable_after_drain() {
        let mut r = Ring::new(2);
        r.push(ev(0));
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.drain().1, 1);
        r.push(ev(9));
        let (evs, dropped) = r.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].t_ns, 9);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut r = Ring::new(0);
        r.push(ev(0));
        r.push(ev(1));
        assert_eq!(r.len(), 0);
        let (evs, dropped) = r.drain();
        assert!(evs.is_empty());
        assert_eq!(dropped, 2);
    }
}
