//! Always-on contention counters.
//!
//! Unlike the trace recorder these are never switched off: a backend
//! owns one [`ContentionCounters`] and bumps it with relaxed atomics on
//! the slow paths only (a lock that had to wait, a CAS that had to
//! retry), so the common uncontended path pays nothing and every run —
//! lab cells included — gets a contention column for free.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic contention counters owned by a backend.
#[derive(Debug, Default)]
pub struct ContentionCounters {
    /// Lock acquisitions that went through a timed slow path.
    pub lock_acquires: AtomicU64,
    /// Acquisitions that found the lock held and had to wait.
    pub lock_contended: AtomicU64,
    /// Total nanoseconds spent waiting in contended acquisitions.
    pub lock_wait_ns: AtomicU64,
    /// CAS loop iterations beyond the first (combiner publication
    /// lists, combiner-lock handoffs).
    pub cas_retries: AtomicU64,
    /// Atomic-part shard lock acquisitions that hit contention — the
    /// sharding axis' conflict measure.
    pub shard_conflicts: AtomicU64,
}

impl ContentionCounters {
    /// Counts one lock acquisition; `wait_ns > 0` means it had to wait.
    /// `shard` marks atomic-part shard locks for conflict attribution.
    #[inline]
    pub fn lock_acquired(&self, wait_ns: u64, shard: bool) {
        self.lock_acquires.fetch_add(1, Ordering::Relaxed);
        if wait_ns > 0 {
            self.lock_contended.fetch_add(1, Ordering::Relaxed);
            self.lock_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
            if shard {
                self.shard_conflicts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Takes a reporting snapshot (counters are read independently;
    /// cross-counter exactness is not required for statistics).
    pub fn snapshot(&self) -> ContentionSnapshot {
        ContentionSnapshot {
            lock_acquires: self.lock_acquires.load(Ordering::Relaxed),
            lock_contended: self.lock_contended.load(Ordering::Relaxed),
            lock_wait_ns: self.lock_wait_ns.load(Ordering::Relaxed),
            cas_retries: self.cas_retries.load(Ordering::Relaxed),
            shard_conflicts: self.shard_conflicts.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ContentionCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContentionSnapshot {
    pub lock_acquires: u64,
    pub lock_contended: u64,
    pub lock_wait_ns: u64,
    pub cas_retries: u64,
    pub shard_conflicts: u64,
}

impl ContentionSnapshot {
    /// Difference of two snapshots (for measuring a window).
    pub fn delta(&self, earlier: &ContentionSnapshot) -> ContentionSnapshot {
        ContentionSnapshot {
            lock_acquires: self.lock_acquires - earlier.lock_acquires,
            lock_contended: self.lock_contended - earlier.lock_contended,
            lock_wait_ns: self.lock_wait_ns - earlier.lock_wait_ns,
            cas_retries: self.cas_retries - earlier.cas_retries,
            shard_conflicts: self.shard_conflicts - earlier.shard_conflicts,
        }
    }

    /// Element-wise sum (for aggregating repetitions in the lab).
    pub fn merge(&self, other: &ContentionSnapshot) -> ContentionSnapshot {
        ContentionSnapshot {
            lock_acquires: self.lock_acquires + other.lock_acquires,
            lock_contended: self.lock_contended + other.lock_contended,
            lock_wait_ns: self.lock_wait_ns + other.lock_wait_ns,
            cas_retries: self.cas_retries + other.cas_retries,
            shard_conflicts: self.shard_conflicts + other.shard_conflicts,
        }
    }

    /// Fraction of timed acquisitions that had to wait.
    pub fn contention_ratio(&self) -> f64 {
        if self.lock_acquires == 0 {
            0.0
        } else {
            self.lock_contended as f64 / self.lock_acquires as f64
        }
    }

    /// True when nothing was counted (e.g. a pure-STM backend).
    pub fn is_zero(&self) -> bool {
        *self == ContentionSnapshot::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_acquired_routes_waits_to_the_contended_counters() {
        let c = ContentionCounters::default();
        c.lock_acquired(0, false);
        c.lock_acquired(150, false);
        c.lock_acquired(50, true);
        let s = c.snapshot();
        assert_eq!(s.lock_acquires, 3);
        assert_eq!(s.lock_contended, 2);
        assert_eq!(s.lock_wait_ns, 200);
        assert_eq!(s.shard_conflicts, 1);
        assert!((s.contention_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn delta_and_merge() {
        let c = ContentionCounters::default();
        c.lock_acquired(100, false);
        let a = c.snapshot();
        c.lock_acquired(100, true);
        c.cas_retries.fetch_add(5, Ordering::Relaxed);
        let b = c.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.lock_acquires, 1);
        assert_eq!(d.lock_wait_ns, 100);
        assert_eq!(d.cas_retries, 5);
        let m = d.merge(&d);
        assert_eq!(m.lock_acquires, 2);
        assert_eq!(m.cas_retries, 10);
    }

    #[test]
    fn zero_snapshot_reports_as_zero() {
        assert!(ContentionSnapshot::default().is_zero());
        assert_eq!(ContentionSnapshot::default().contention_ratio(), 0.0);
    }
}
