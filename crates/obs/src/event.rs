//! The event vocabulary: which layer spoke, what happened, when, and
//! for how long. Events are small `Copy` records so the ring buffer is
//! a flat array and recording is a handful of stores.

/// The stack layer an event was recorded from. Doubles as the Chrome
/// trace category, so traces can be filtered per layer in the viewer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layer {
    /// The benchmark engine / operation dispatch (closed-loop run loop
    /// or the service worker executing a batch).
    Engine,
    /// A locking or combining backend (lock waits, combiner batches).
    Backend,
    /// The STM adapter (aborts and re-runs of the transaction body).
    Stm,
    /// The open-loop service queue (admission decisions).
    Service,
    /// The wire server (frame decode, write flush).
    Net,
}

impl Layer {
    /// Stable lowercase name; the `cat` field of the Chrome trace.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Engine => "engine",
            Layer::Backend => "backend",
            Layer::Stm => "stm",
            Layer::Service => "service",
            Layer::Net => "net",
        }
    }

    /// All layers, in stack order.
    pub fn all() -> [Layer; 5] {
        [
            Layer::Engine,
            Layer::Backend,
            Layer::Stm,
            Layer::Service,
            Layer::Net,
        ]
    }

    /// Inverse of [`Layer::name`]; `None` for foreign categories (the
    /// exported trace also carries an `obs` counter event).
    pub fn parse(name: &str) -> Option<Layer> {
        Layer::all().into_iter().find(|l| l.name() == name)
    }
}

/// What kind of lifecycle moment an [`Event`] records. Span kinds carry
/// a duration; instant kinds have `dur_ns == 0` and render as instant
/// events in the trace viewer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Span: one operation execution, begin-to-outcome. `name` is the
    /// operation (`"T1"`, `"OP3"`, …), `arg` the attempt count.
    Op,
    /// Instant: an operation whose final outcome was a failure.
    OpFail,
    /// Instant: an STM attempt aborted and the body is re-run. `arg` is
    /// the attempt number that failed (1-based).
    StmRetry,
    /// Span: a blocking lock acquisition that had to wait. `name` is
    /// the lock (`"coarse"`, `"sm-gate"`, `"shard"`, …).
    LockWait,
    /// Instant: a combiner formed a batch; `arg` is the batch size.
    CombineBatch,
    /// Instant: the service queue admitted a request; `arg` is its id.
    QueueAdmit,
    /// Instant: the service queue rejected a request; `arg` is its id.
    QueueReject,
    /// Instant: a request frame was decoded off the wire; `arg` is the
    /// request id.
    FrameDecode,
    /// Span: a connection's write buffer was flushed; `arg` is the
    /// number of bytes written.
    NetFlush,
    /// Span: one sampled dispatch-profiler phase (`name` is the phase:
    /// `"discovery"`, `"lock-plan"`, `"execute"`, `"commit"`).
    Phase,
}

impl EventKind {
    /// Stable lowercase name, exported in the Chrome trace `args`.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Op => "op",
            EventKind::OpFail => "op-fail",
            EventKind::StmRetry => "stm-retry",
            EventKind::LockWait => "lock-wait",
            EventKind::CombineBatch => "combine-batch",
            EventKind::QueueAdmit => "queue-admit",
            EventKind::QueueReject => "queue-reject",
            EventKind::FrameDecode => "frame-decode",
            EventKind::NetFlush => "net-flush",
            EventKind::Phase => "phase",
        }
    }

    /// True when events of this kind carry a meaningful duration.
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::Op | EventKind::LockWait | EventKind::NetFlush | EventKind::Phase
        )
    }

    /// Every kind, in declaration order.
    pub fn all() -> [EventKind; 10] {
        [
            EventKind::Op,
            EventKind::OpFail,
            EventKind::StmRetry,
            EventKind::LockWait,
            EventKind::CombineBatch,
            EventKind::QueueAdmit,
            EventKind::QueueReject,
            EventKind::FrameDecode,
            EventKind::NetFlush,
            EventKind::Phase,
        ]
    }

    /// Inverse of [`EventKind::name`].
    pub fn parse(name: &str) -> Option<EventKind> {
        EventKind::all().into_iter().find(|k| k.name() == name)
    }
}

/// One recorded lifecycle moment. 48 bytes, `Copy`, no heap — the ring
/// buffer holds these inline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    pub layer: Layer,
    pub kind: EventKind,
    /// Display name (operation, lock, phase, …). `'static` keeps the
    /// record `Copy`; every producer names events with string literals
    /// or `OpKind::name()`.
    pub name: &'static str,
    /// Start time in nanoseconds since the recorder's epoch.
    pub t_ns: u64,
    /// Duration in nanoseconds; 0 for instant kinds.
    pub dur_ns: u64,
    /// Kind-specific argument (attempt count, batch size, request id,
    /// bytes, …).
    pub arg: u64,
    /// Recorder-assigned lane id of the recording thread.
    pub tid: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_and_kind_names_are_stable() {
        assert_eq!(Layer::Engine.name(), "engine");
        assert_eq!(Layer::Net.name(), "net");
        assert_eq!(EventKind::LockWait.name(), "lock-wait");
        assert_eq!(Layer::all().len(), 5);
    }

    #[test]
    fn names_round_trip_through_parse() {
        for layer in Layer::all() {
            assert_eq!(Layer::parse(layer.name()), Some(layer));
        }
        for kind in EventKind::all() {
            assert_eq!(EventKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(Layer::parse("obs"), None);
        assert_eq!(EventKind::parse("bogus"), None);
    }

    #[test]
    fn span_kinds_are_the_duration_carriers() {
        assert!(EventKind::Op.is_span());
        assert!(EventKind::Phase.is_span());
        assert!(!EventKind::QueueAdmit.is_span());
        assert!(!EventKind::StmRetry.is_span());
    }
}
