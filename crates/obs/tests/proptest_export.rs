//! Property tests for the trace exporter: arbitrary event sequences —
//! arbitrary timestamps, durations, args, and names full of quotes,
//! backslashes, control characters and non-ASCII text — must always
//! render to well-formed output, never panic.

use proptest::prelude::*;

use stmbench7_obs::{chrome_trace_json, summarize, Event, EventKind, Layer, Trace};

fn layer(sel: u8) -> Layer {
    Layer::all()[(sel as usize) % Layer::all().len()]
}

fn kind(sel: u8) -> EventKind {
    match (sel / 5) % 10 {
        0 => EventKind::Op,
        1 => EventKind::OpFail,
        2 => EventKind::StmRetry,
        3 => EventKind::LockWait,
        4 => EventKind::CombineBatch,
        5 => EventKind::QueueAdmit,
        6 => EventKind::QueueReject,
        7 => EventKind::FrameDecode,
        8 => EventKind::NetFlush,
        _ => EventKind::Phase,
    }
}

/// Builds a hostile name from a seed: every nibble picks from a palette
/// of JSON-significant and control characters. Leaked per case — the
/// `'static` bound on [`Event::name`] makes this test-only leak the
/// cheapest way to feed arbitrary strings through.
fn name(seed: u64) -> &'static str {
    const PALETTE: [char; 16] = [
        '"', '\\', '\n', '\r', '\t', '\u{0}', '\u{1f}', '\u{7f}', 'a', 'Z', '0', ' ', 'é', '→',
        '𝕊', '/',
    ];
    let len = (seed % 13) as usize;
    let s: String = (0..len)
        .map(|i| PALETTE[((seed >> (4 * (i % 16))) & 0xf) as usize])
        .collect();
    Box::leak(s.into_boxed_str())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Export never panics and always yields a bracketed JSON array
    /// with one object per event plus the drop marker.
    #[test]
    fn export_never_panics_on_arbitrary_events(
        raw in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u32>()),
            0..60,
        ),
        dropped in any::<u64>(),
    ) {
        let events: Vec<Event> = raw
            .into_iter()
            .map(|(sel, name_seed, t_ns, dur_ns, arg, tid)| Event {
                layer: layer(sel),
                kind: kind(sel),
                name: name(name_seed),
                t_ns,
                dur_ns,
                arg,
                tid,
            })
            .collect();
        let n = events.len();
        let trace = Trace { events, dropped };

        let json = chrome_trace_json(&trace);
        prop_assert!(json.starts_with('['));
        prop_assert!(json.ends_with(']'));
        // One object per event, plus the trailing drop-count marker.
        prop_assert_eq!(json.matches("\"ph\":").count(), n + 1);
        let marker = format!("\"dropped\":{}", dropped);
        prop_assert!(json.contains(&marker));
        // No raw control characters may survive into the JSON text
        // (newlines between objects are the only ones we emit).
        prop_assert!(json.chars().all(|c| c == '\n' || (c as u32) >= 0x20));

        let summary = summarize(&trace);
        let head = format!("{} events", n);
        prop_assert!(summary.contains(&head));
    }
}
