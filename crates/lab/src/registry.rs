//! The built-in spec registry: the named experiments `stmbench7 lab`
//! knows how to run. Each returns a fully pinned [`ExperimentSpec`];
//! CLI flags (`--secs`, `--reps`, `--threads`, `--preset`, `--seed`)
//! override the protocol without touching the grid definition.

use stmbench7_backend::{BackendChoice, Granularity};
use stmbench7_core::WorkloadType;
use stmbench7_data::StructureParams;
use stmbench7_service::{Admission, Affinity, Schedule};
use stmbench7_stm::ContentionManager;

use crate::spec::{
    grid, net_grid, service_grid, sharded_grid, Cell, ExperimentSpec, NetPlan, ServicePlan,
};

/// `(name, one-line description)` of every built-in spec, in display
/// order.
pub fn catalog() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "smoke",
            "CI gate: coarse/medium/tl2-sharded, rw, 1-2 threads, tiny structure",
        ),
        (
            "paper_fig3",
            "Figure 3 grid: coarse vs medium, r and w workloads, all ops on",
        ),
        (
            "paper_fig6",
            "Figure 6 grid: locks vs ASTM under the astm-friendly filter",
        ),
        (
            "scaling",
            "thread-scaling of every serious strategy, rw, no long traversals",
        ),
        (
            "write_storm",
            "4-thread write-dominated contention shootout across strategies",
        ),
        (
            "mixed_custom",
            "update-ratio sweep (u10..u90) on medium locking vs sharded TL2",
        ),
        (
            "latency_open",
            "open-loop latency: medium vs sharded TL2 under fixed-rate arrivals, queue-wait/service split",
        ),
        (
            "latency_bursty",
            "burst absorption: medium vs sharded TL2 under clumped arrivals, same average rate",
        ),
        (
            "saturation",
            "offered-load sweep over the knee on medium locking, reject-on-full",
        ),
        (
            "latency_ramp",
            "open-loop rate ladder on medium locking: latency vs offered load up to the saturation knee",
        ),
        (
            "sharded_scaling",
            "index-sharding axis: medium/fine/sharded-TL2 at 1/4/16 shards, 1-2 threads",
        ),
        (
            "combining_scaling",
            "delegation axis: flatcomb/rcl vs coarse/medium, rw, 1-4 threads",
        ),
        (
            "net_loopback",
            "loopback wire zero point: medium vs sharded TL2 behind net-serve, client/network/server lanes",
        ),
        (
            "net_c10k",
            "connection scaling: thousands of idle connections plus a hot pipelined subset on the event-loop server",
        ),
        (
            "affinity_batching",
            "group-commit batching + shard-affine workers vs the plain shared queue, medium/sharded-TL2 at 8 shards",
        ),
        (
            "slo_burst",
            "windowed SLO gate: rare bursts on medium vs sharded TL2 — burst windows breach a p99 the aggregate satisfies",
        ),
    ]
}

fn astm_paper() -> BackendChoice {
    BackendChoice::Astm {
        granularity: Granularity::Monolithic,
        cm: ContentionManager::Polka,
        visible: false,
    }
}

fn spec(
    name: &str,
    params: StructureParams,
    secs_per_cell: f64,
    warmup_secs: f64,
    repetitions: u32,
    cells: Vec<crate::spec::Cell>,
) -> ExperimentSpec {
    let description = catalog()
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, d)| (*d).to_string())
        .expect("spec must be in the catalog");
    ExperimentSpec {
        name: name.to_string(),
        description,
        params,
        secs_per_cell,
        warmup_secs,
        repetitions,
        seed: 1,
        cells,
    }
}

/// Builds a built-in spec by name.
pub fn build(name: &str) -> Option<ExperimentSpec> {
    Some(match name {
        "smoke" => spec(
            "smoke",
            StructureParams::tiny(),
            0.2,
            0.05,
            3,
            grid(
                &[
                    BackendChoice::Coarse,
                    BackendChoice::Medium,
                    BackendChoice::Tl2 {
                        granularity: Granularity::Sharded,
                    },
                ],
                &[WorkloadType::ReadWrite],
                &[1, 2],
                true,
                true,
                false,
            ),
        ),
        "paper_fig3" => spec(
            "paper_fig3",
            StructureParams::small(),
            1.0,
            0.1,
            3,
            grid(
                &[BackendChoice::Coarse, BackendChoice::Medium],
                &[WorkloadType::ReadDominated, WorkloadType::WriteDominated],
                &[1, 2, 4, 8],
                true,
                true,
                false,
            ),
        ),
        "paper_fig6" => spec(
            "paper_fig6",
            StructureParams::small(),
            1.0,
            0.1,
            3,
            grid(
                &[BackendChoice::Coarse, BackendChoice::Medium, astm_paper()],
                &WorkloadType::all(),
                &[1, 2, 4, 8],
                false,
                true,
                true,
            ),
        ),
        "scaling" => spec(
            "scaling",
            StructureParams::small(),
            0.5,
            0.1,
            2,
            grid(
                &[
                    BackendChoice::Coarse,
                    BackendChoice::Medium,
                    BackendChoice::Fine,
                    BackendChoice::Tl2 {
                        granularity: Granularity::Sharded,
                    },
                    BackendChoice::Norec {
                        granularity: Granularity::Sharded,
                    },
                ],
                &[WorkloadType::ReadWrite],
                &[1, 2, 4, 8],
                false,
                true,
                false,
            ),
        ),
        "write_storm" => spec(
            "write_storm",
            StructureParams::small(),
            0.5,
            0.1,
            3,
            grid(
                &[
                    BackendChoice::Coarse,
                    BackendChoice::Medium,
                    BackendChoice::Fine,
                    BackendChoice::Astm {
                        granularity: Granularity::Sharded,
                        cm: ContentionManager::Polka,
                        visible: false,
                    },
                    BackendChoice::Tl2 {
                        granularity: Granularity::Sharded,
                    },
                    BackendChoice::Norec {
                        granularity: Granularity::Sharded,
                    },
                ],
                &[WorkloadType::WriteDominated],
                &[4],
                false,
                true,
                false,
            ),
        ),
        "mixed_custom" => spec(
            "mixed_custom",
            StructureParams::small(),
            0.5,
            0.1,
            2,
            grid(
                &[
                    BackendChoice::Medium,
                    BackendChoice::Tl2 {
                        granularity: Granularity::Sharded,
                    },
                ],
                &[10u8, 25, 50, 75, 90].map(|update_pct| WorkloadType::Custom { update_pct }),
                &[4],
                false,
                true,
                false,
            ),
        ),
        "latency_open" => spec(
            "latency_open",
            StructureParams::tiny(),
            0.2,
            0.05,
            2,
            service_grid(
                &latency_backends(),
                WorkloadType::ReadWrite,
                2,
                // ~1/10 of the tiny-structure single-thread capacity:
                // queue wait reflects arrival jitter, not saturation.
                &[Schedule::Open { rate: 20_000.0 }],
                false,
                |schedule| ServicePlan::open_loop(schedule, 256, 4_000),
            ),
        ),
        "latency_bursty" => spec(
            "latency_bursty",
            StructureParams::tiny(),
            0.2,
            0.05,
            2,
            service_grid(
                &latency_backends(),
                WorkloadType::ReadWrite,
                2,
                // Same 20k average rate as latency_open, but clumped:
                // each 10 ms period opens with a 100-request burst.
                &[Schedule::Bursty {
                    rate: 20_000.0,
                    burst: 100,
                    period_ms: 10,
                }],
                false,
                |schedule| ServicePlan::open_loop(schedule, 256, 4_000),
            ),
        ),
        "saturation" => spec(
            "saturation",
            StructureParams::tiny(),
            0.2,
            0.05,
            2,
            service_grid(
                &[BackendChoice::Medium],
                WorkloadType::ReadWrite,
                2,
                // Below, near and beyond the tiny-structure capacity; the
                // queue-wait knee and the reject counts locate the cliff.
                &[
                    Schedule::Open { rate: 50_000.0 },
                    Schedule::Open { rate: 200_000.0 },
                    Schedule::Open { rate: 800_000.0 },
                ],
                false,
                |schedule| ServicePlan {
                    schedule,
                    queue_cap: 128,
                    admission: Admission::Reject,
                    batch_max: 8,
                    affinity: Affinity::None,
                    requests: 10_000,
                },
            ),
        ),
        "latency_ramp" => spec(
            "latency_ramp",
            StructureParams::tiny(),
            0.2,
            0.05,
            2,
            service_grid(
                &[BackendChoice::Medium],
                WorkloadType::ReadWrite,
                2,
                // A geometric ladder from ~1/40 to ~4/5 of the
                // tiny-structure capacity: the p99 queue-wait knee along
                // this axis *is* the saturation point. Each rung offers
                // the same 100 ms of work (requests = rate / 10), so the
                // ladder measures rate, not duration.
                &[
                    Schedule::Open { rate: 5_000.0 },
                    Schedule::Open { rate: 10_000.0 },
                    Schedule::Open { rate: 20_000.0 },
                    Schedule::Open { rate: 40_000.0 },
                    Schedule::Open { rate: 80_000.0 },
                    Schedule::Open { rate: 160_000.0 },
                ],
                false,
                |schedule| {
                    let Schedule::Open { rate } = schedule else {
                        unreachable!("the ramp axis is open-loop by construction");
                    };
                    ServicePlan::open_loop(schedule, 256, (rate / 10.0).round() as u64)
                },
            ),
        ),
        "sharded_scaling" => spec(
            "sharded_scaling",
            StructureParams::tiny(),
            0.2,
            0.05,
            2,
            // The backends whose lock/variable sets actually scale with
            // the shard axis: medium (per-shard atomic locks), fine
            // (per-shard date index), sharded TL2 (per-shard variables).
            // Long traversals are off so the short-operation mix — where
            // narrowing applies — dominates.
            sharded_grid(
                &[
                    BackendChoice::Medium,
                    BackendChoice::Fine,
                    BackendChoice::Tl2 {
                        granularity: Granularity::Sharded,
                    },
                ],
                WorkloadType::ReadWrite,
                &[1, 4, 16],
                &[1, 2],
            ),
        ),
        "combining_scaling" => spec(
            "combining_scaling",
            StructureParams::tiny(),
            0.2,
            0.05,
            2,
            // The delegation question from the paper's Figures 3–6: does
            // moving operations to the lock (flat combining, RCL) beat
            // moving the lock between threads (coarse/medium)? Long
            // traversals off, so the short-operation mix — where the
            // convoy forms — dominates.
            grid(
                &[
                    BackendChoice::Coarse,
                    BackendChoice::Medium,
                    BackendChoice::FlatCombining,
                    BackendChoice::DedicatedServer,
                ],
                &[WorkloadType::ReadWrite],
                &[1, 2, 4],
                false,
                true,
                false,
            ),
        ),
        "net_loopback" => spec(
            "net_loopback",
            StructureParams::tiny(),
            0.2,
            0.05,
            2,
            net_grid(
                &latency_backends(),
                WorkloadType::ReadWrite,
                2,
                // The latency_open rate, now crossing a loopback socket
                // over two connections: the delta against latency_open's
                // lanes *is* the wire's price (see EXPERIMENTS.md).
                &[Schedule::Open { rate: 20_000.0 }],
                false,
                |schedule| NetPlan::hot(schedule, 256, 2, 4_000),
            ),
        ),
        "net_c10k" => spec(
            "net_c10k",
            StructureParams::tiny(),
            0.2,
            0.05,
            2,
            net_grid(
                &[BackendChoice::Medium],
                WorkloadType::ReadWrite,
                2,
                // The net_loopback rate concentrated on a hot subset of 8
                // pipelined connections, while 5000 idle connections sit
                // on the same event loop: the cell's lanes must match
                // net_loopback's — idle readiness is not allowed to cost.
                &[Schedule::Open { rate: 20_000.0 }],
                false,
                |schedule| NetPlan {
                    schedule,
                    queue_cap: 256,
                    connections: 8,
                    requests: 4_000,
                    inflight: 8,
                    idle_conns: 5_000,
                },
            ),
        ),
        "affinity_batching" => {
            // The before/after pair for the hot-path engine work: each
            // backend runs the same open-loop stream through the plain
            // shared queue (batch 1, no affinity) and through
            // group-commit batching + shard-affine workers. 8 index
            // shards so the shard router has real spread; long
            // traversals off so the short, narrowable operations — the
            // ones batching and affinity help — dominate.
            let mut cells = Vec::new();
            for &backend in &latency_backends() {
                for (batch_max, affinity) in [(1, Affinity::None), (8, Affinity::Shard)] {
                    cells.push(Cell {
                        backend,
                        workload: WorkloadType::ReadWrite,
                        threads: 2,
                        shards: Some(8),
                        long_traversals: false,
                        structure_mods: true,
                        astm_friendly: false,
                        service: Some(ServicePlan {
                            schedule: Schedule::Open { rate: 20_000.0 },
                            queue_cap: 256,
                            admission: Admission::Block,
                            batch_max,
                            affinity,
                            requests: 4_000,
                        }),
                        net: None,
                        trace: false,
                        window_ms: None,
                        slo: None,
                    });
                }
            }
            spec(
                "affinity_batching",
                StructureParams::tiny(),
                0.2,
                0.05,
                2,
                cells,
            )
        }
        "slo_burst" => {
            // The flight recorder's reason to exist: a stream that is
            // healthy on average but stalls during rare bursts. Each
            // 1000 ms period opens with 150 back-to-back requests —
            // 0.75% of the run's traffic, so the *aggregate* p99 barely
            // moves, but the 50 ms windows containing a burst see the
            // whole convoy's queueing delay. The per-cell SLO bounds the
            // per-window p99: burst windows are expected to breach it
            // (that is what proves the gate can see them — see
            // EXPERIMENTS.md), and `max_violation_windows` tolerates
            // exactly those; a regression that slows the steady windows
            // too blows past the allowance and fails `--compare`.
            let mut cells = service_grid(
                &latency_backends(),
                WorkloadType::ReadWrite,
                2,
                &[Schedule::Bursty {
                    rate: 20_000.0,
                    burst: 150,
                    period_ms: 1_000,
                }],
                false,
                |schedule| ServicePlan::open_loop(schedule, 512, 40_000),
            );
            // 1500 us sits in the gap of the observed bimodal window
            // p99s: steady windows land in the 127–1023 us histogram
            // buckets, burst windows in 2047–4095 us, and the aggregate
            // p99 stays ≤ 1023 us — so the objective is satisfied in
            // aggregate yet breached by individual burst windows. The
            // allowance (16 of ~40 windows) is 2× the breach count
            // observed on a 1-vCPU runner, leaving headroom for noise.
            for cell in &mut cells {
                cell.window_ms = Some(50);
                cell.slo = Some(crate::spec::Slo {
                    p99_us: 1_500,
                    max_violation_windows: 16,
                });
            }
            spec("slo_burst", StructureParams::tiny(), 2.0, 0.05, 1, cells)
        }
        _ => return None,
    })
}

fn latency_backends() -> Vec<BackendChoice> {
    vec![
        BackendChoice::Medium,
        BackendChoice::Tl2 {
            granularity: Granularity::Sharded,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_entry_builds() {
        for (name, _) in catalog() {
            let spec = build(name).unwrap_or_else(|| panic!("{name} must build"));
            assert_eq!(spec.name, name);
            assert!(!spec.cells.is_empty(), "{name} has cells");
            assert!(spec.repetitions >= 1);
            assert!(spec.secs_per_cell > 0.0);
            // Cell keys are unique within a spec (compare relies on it).
            let mut keys: Vec<String> = spec.cells.iter().map(|c| c.key()).collect();
            let before = keys.len();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), before, "{name} has duplicate cell keys");
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(build("nope").is_none());
    }

    #[test]
    fn latency_specs_are_service_cells() {
        for name in [
            "latency_open",
            "latency_bursty",
            "saturation",
            "latency_ramp",
        ] {
            let spec = build(name).unwrap();
            assert!(
                spec.cells.iter().all(|c| c.service.is_some()),
                "{name}: every cell must run through the service layer"
            );
            let offered: u64 = spec
                .cells
                .iter()
                .map(|c| c.service.as_ref().unwrap().requests * u64::from(spec.repetitions))
                .sum();
            assert!(offered <= 100_000, "{name} must stay CI-sized: {offered}");
        }
        // The saturation sweep rejects on overflow; the latency pair
        // blocks (no lost requests below the knee).
        let sat = build("saturation").unwrap();
        assert!(sat
            .cells
            .iter()
            .all(|c| c.service.as_ref().unwrap().admission == Admission::Reject));
        let open = build("latency_open").unwrap();
        assert!(open
            .cells
            .iter()
            .all(|c| c.service.as_ref().unwrap().admission == Admission::Block));
        assert_eq!(open.cells[0].key(), "medium/rw/2t/no-lt/open20000/q256");
    }

    #[test]
    fn net_loopback_is_a_net_spec_and_stays_ci_sized() {
        let spec = build("net_loopback").unwrap();
        assert_eq!(spec.cells.len(), 2, "medium + tl2-sharded");
        assert!(
            spec.cells
                .iter()
                .all(|c| c.net.is_some() && c.service.is_none()),
            "every cell crosses the wire"
        );
        let offered: u64 = spec
            .cells
            .iter()
            .map(|c| c.net.as_ref().unwrap().requests * u64::from(spec.repetitions))
            .sum();
        assert!(offered <= 100_000, "must stay CI-sized: {offered}");
        assert_eq!(
            spec.cells[0].key(),
            "medium/rw/2t/no-lt/open20000/q256/net2c"
        );
    }

    #[test]
    fn latency_ramp_climbs_a_geometric_rate_ladder() {
        let spec = build("latency_ramp").unwrap();
        assert_eq!(spec.cells.len(), 6, "one backend × six rungs");
        let rates: Vec<f64> = spec
            .cells
            .iter()
            .map(|c| match c.service.as_ref().unwrap().schedule {
                Schedule::Open { rate } => rate,
                other => panic!("ramp rung is not open-loop: {other:?}"),
            })
            .collect();
        for pair in rates.windows(2) {
            assert_eq!(pair[1], pair[0] * 2.0, "the ladder is geometric");
        }
        // Every rung offers the same wall-clock window of work.
        for cell in &spec.cells {
            let plan = cell.service.as_ref().unwrap();
            let Schedule::Open { rate } = plan.schedule else {
                unreachable!()
            };
            assert_eq!(plan.requests as f64, rate / 10.0);
        }
        assert_eq!(spec.cells[0].key(), "medium/rw/2t/no-lt/open5000/q256");
    }

    #[test]
    fn net_c10k_holds_an_idle_herd_next_to_a_hot_pipelined_subset() {
        let spec = build("net_c10k").unwrap();
        assert_eq!(spec.cells.len(), 1);
        let plan = spec.cells[0].net.as_ref().unwrap();
        assert!(plan.idle_conns >= 5_000, "the c10k axis needs the herd");
        assert_eq!(plan.inflight, 8, "the hot subset pipelines");
        assert_eq!(
            spec.cells[0].key(),
            "medium/rw/2t/no-lt/open20000/q256/net8c/in8/idle5000"
        );
        let offered = plan.requests * u64::from(spec.repetitions);
        assert!(offered <= 100_000, "must stay CI-sized: {offered}");
    }

    #[test]
    fn sharded_scaling_spans_the_shard_axis_and_stays_ci_sized() {
        let spec = build("sharded_scaling").unwrap();
        assert_eq!(spec.cells.len(), 18, "3 backends × 3 shard counts × 2t");
        assert!(spec.cells.iter().all(|c| c.shards.is_some()));
        let mut shard_counts: Vec<usize> = spec.cells.iter().filter_map(|c| c.shards).collect();
        shard_counts.sort_unstable();
        shard_counts.dedup();
        assert_eq!(shard_counts, vec![1, 4, 16]);
        assert_eq!(spec.cells[0].key(), "medium/rw/1t/s1/no-lt");
        assert!(spec.measured_secs() < 10.0, "must stay CI-sized");
    }

    #[test]
    fn combining_scaling_sweeps_delegation_against_locks_and_stays_ci_sized() {
        let spec = build("combining_scaling").unwrap();
        assert_eq!(spec.cells.len(), 12, "4 backends × 3 thread counts");
        let mut backends: Vec<&str> = spec.cells.iter().map(|c| c.backend.key()).collect();
        backends.sort_unstable();
        backends.dedup();
        assert_eq!(backends, vec!["coarse", "flatcomb", "medium", "rcl"]);
        assert_eq!(spec.cells[0].key(), "coarse/rw/1t/no-lt");
        assert!(spec.measured_secs() < 10.0, "must stay CI-sized");
    }

    #[test]
    fn slo_burst_declares_a_windowed_objective_on_every_cell() {
        let spec = build("slo_burst").unwrap();
        assert_eq!(spec.cells.len(), 2, "medium + tl2-sharded");
        let mut offered = 0;
        for cell in &spec.cells {
            let plan = cell.service.as_ref().expect("service cell");
            assert!(
                matches!(plan.schedule, Schedule::Bursty { .. }),
                "the spec is about bursts"
            );
            assert_eq!(cell.window_ms, Some(50), "windows finer than the period");
            let slo = cell.slo.expect("windowed SLO declared");
            assert!(slo.p99_us > 0);
            assert!(
                slo.max_violation_windows > 0,
                "burst windows are expected to breach; the allowance covers them"
            );
            // Observation axes stay out of the cell identity, so the
            // baseline comparison matches windowed runs against any.
            let mut unobserved = cell.clone();
            unobserved.window_ms = None;
            unobserved.slo = None;
            assert_eq!(cell.key(), unobserved.key());
            offered += plan.requests * u64::from(spec.repetitions);
        }
        assert_eq!(
            spec.cells[0].key(),
            "medium/rw/2t/no-lt/bursty20000x150@1000/q512"
        );
        assert!(offered <= 100_000, "must stay CI-sized: {offered}");
    }

    #[test]
    fn smoke_is_ci_sized() {
        let spec = build("smoke").unwrap();
        assert_eq!(spec.cells.len(), 6);
        assert!(spec.measured_secs() < 10.0, "smoke must stay CI-sized");
    }
}
