//! The spec runner: executes every cell of an [`ExperimentSpec`] —
//! warmup, then `repetitions` measured runs, each on a freshly built
//! structure — and aggregates the repetitions into a [`SpecResult`] that
//! serializes to the versioned `results/BENCH_<spec>.json` document.

use stmbench7_backend::AnyBackend;
use stmbench7_core::{
    run_benchmark, CategoryLatency, Histogram, JsonValue, Report, ServiceStats, Timeseries,
};
use stmbench7_data::Workspace;
use stmbench7_obs::{ContentionSnapshot, Recorder, Trace};

use crate::spec::{Cell, ExperimentSpec};
use crate::stats::Summary;

/// The version tag every results document leads with; bump on any
/// incompatible schema change. Version 7 adds the per-cell `timeseries`
/// array (one flight-recorder window series per repetition, null for
/// unwindowed cells) and the `slo` object echoing the cell's windowed
/// latency objective; readers accept [`FORMAT_V6`], [`FORMAT_V5`],
/// [`FORMAT_V4`], [`FORMAT_V3`], [`FORMAT_V2`] and [`FORMAT_V1`]
/// documents unchanged.
pub const FORMAT: &str = "stmbench7-lab/7";

/// Version 6 (adds the `write_batches`/`max_write_batch`/`steals`
/// counters to `service` objects), still accepted by every reader.
pub const FORMAT_V6: &str = "stmbench7-lab/6";

/// Version 5 (adds the per-cell `contention` object and the
/// `busy_ns`/`idle_ns`/`trace_dropped` counters to `service` objects),
/// still accepted by every reader.
pub const FORMAT_V5: &str = "stmbench7-lab/5";

/// Version 4 (adds the `reconnects` counter to `service` objects), still
/// accepted by every reader.
pub const FORMAT_V4: &str = "stmbench7-lab/4";

/// Version 3 (adds the `network_us` lane and the per-category
/// `categories` split to `service` objects), still accepted by every
/// reader.
pub const FORMAT_V3: &str = "stmbench7-lab/3";

/// Version 2 (the service layer's format: per-cell `service` objects,
/// no network lane or category split), still accepted by every reader.
pub const FORMAT_V2: &str = "stmbench7-lab/2";

/// Version 1 (no `service` objects at all), still accepted by every
/// reader.
pub const FORMAT_V1: &str = "stmbench7-lab/1";

/// True for every document version this crate can read.
pub fn format_supported(format: &str) -> bool {
    format == FORMAT
        || format == FORMAT_V6
        || format == FORMAT_V5
        || format == FORMAT_V4
        || format == FORMAT_V3
        || format == FORMAT_V2
        || format == FORMAT_V1
}

/// One measured repetition, condensed.
#[derive(Clone, Copy, Debug)]
pub struct RepResult {
    pub elapsed_s: f64,
    pub completed: u64,
    pub failed: u64,
    pub throughput: f64,
    pub attempted: f64,
    pub abort_ratio: f64,
}

impl RepResult {
    fn from_report(report: &Report) -> RepResult {
        RepResult {
            elapsed_s: report.elapsed.as_secs_f64(),
            completed: report.total_completed(),
            failed: report.total_failed(),
            throughput: report.throughput(),
            attempted: report.throughput_attempted(),
            abort_ratio: report.stm.as_ref().map_or(0.0, |s| s.abort_ratio()),
        }
    }
}

/// Aggregated measurements of one cell across its repetitions.
#[derive(Clone, Debug)]
pub struct CellResult {
    pub cell: Cell,
    /// The backend's self-reported name (may be finer-grained than the
    /// cell key, e.g. contention-manager variants).
    pub backend_label: String,
    /// Successful / benignly failed operations, summed over repetitions.
    pub completed: u64,
    pub failed: u64,
    /// STM commits and aborts summed over repetitions (0 for locks).
    pub commits: u64,
    pub aborts: u64,
    pub throughput: Summary,
    pub attempted: Summary,
    /// `(category name, completed, failed, max_ms)` rollups, summed over
    /// repetitions (max_ms is the max across them).
    pub categories: Vec<(String, u64, u64, f64)>,
    pub reps: Vec<RepResult>,
    /// Latency decomposition, present for service cells: histograms
    /// merged across repetitions, counters summed.
    pub service: Option<ServiceAgg>,
    /// Always-on contention counters summed over repetitions (`None`
    /// for backends that keep none).
    pub contention: Option<ContentionSnapshot>,
    /// The lifecycle trace of a traced cell (all repetitions merged);
    /// written to a per-cell file by the CLI, never embedded in the
    /// results document.
    pub trace: Option<Trace>,
    /// Flight-recorder window series, one per repetition that produced
    /// one (empty for unwindowed cells). Unlike `trace`, these ARE
    /// embedded in the results document — they are what the windowed
    /// SLO gate reads.
    pub timeseries: Vec<Timeseries>,
}

/// Service-cell measurements aggregated across repetitions (also the
/// client-side aggregate of net cells, whose `network` lane is present).
#[derive(Clone, Debug)]
pub struct ServiceAgg {
    pub offered: u64,
    pub rejected: u64,
    /// Worker-affinity routing key of the repetitions (`none` or
    /// `shard`; also encoded in the cell key's `/affS` suffix).
    pub affinity: String,
    /// Broken connections the net driver re-established, summed across
    /// repetitions (always 0 for in-process service cells).
    pub reconnects: u64,
    /// Worker busy/idle time summed across workers and repetitions.
    pub busy_ns: u64,
    pub idle_ns: u64,
    /// Trace-ring drops summed across repetitions (0 when untraced).
    pub trace_dropped: u64,
    pub batches: u64,
    /// Multi-request batches with at least one writer, summed across
    /// repetitions (group commit; 0 when batching is off).
    pub write_batches: u64,
    /// Largest group-committed write batch across repetitions.
    pub max_write_batch: u64,
    /// Work-stealing pulls under shard affinity, summed across
    /// repetitions (0 when affinity is off).
    pub steals: u64,
    pub queue_wait: Histogram,
    pub service_time: Histogram,
    pub e2e: Histogram,
    /// Transport overhead lane; present exactly when every repetition
    /// crossed a wire.
    pub network: Option<Histogram>,
    /// Per-category queue-wait/service-time split, merged across
    /// repetitions.
    pub per_category: Vec<CategoryLatency>,
}

impl ServiceAgg {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("offered", JsonValue::num(self.offered as f64)),
            ("rejected", JsonValue::num(self.rejected as f64)),
            ("affinity", JsonValue::str(&self.affinity)),
            ("reconnects", JsonValue::num(self.reconnects as f64)),
            ("busy_ns", JsonValue::num(self.busy_ns as f64)),
            ("idle_ns", JsonValue::num(self.idle_ns as f64)),
            ("trace_dropped", JsonValue::num(self.trace_dropped as f64)),
            ("batches", JsonValue::num(self.batches as f64)),
            ("write_batches", JsonValue::num(self.write_batches as f64)),
            (
                "max_write_batch",
                JsonValue::num(self.max_write_batch as f64),
            ),
            ("steals", JsonValue::num(self.steals as f64)),
            (
                "queue_wait_us",
                ServiceStats::latency_json(&self.queue_wait),
            ),
            (
                "service_time_us",
                ServiceStats::latency_json(&self.service_time),
            ),
            ("e2e_us", ServiceStats::latency_json(&self.e2e)),
            (
                "network_us",
                match &self.network {
                    None => JsonValue::Null,
                    Some(h) => ServiceStats::latency_json(h),
                },
            ),
            (
                "categories",
                ServiceStats::categories_json(&self.per_category),
            ),
        ])
    }
}

impl CellResult {
    /// Aborts per commit over all repetitions.
    pub fn abort_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.aborts as f64 / self.commits as f64
        }
    }

    fn to_json(&self) -> JsonValue {
        let categories = self
            .categories
            .iter()
            .map(|(name, completed, failed, max_ms)| {
                (
                    name.clone(),
                    JsonValue::obj(vec![
                        ("completed", JsonValue::num(*completed as f64)),
                        ("failed", JsonValue::num(*failed as f64)),
                        ("max_ms", JsonValue::num(*max_ms)),
                    ]),
                )
            })
            .collect();
        let reps = self
            .reps
            .iter()
            .map(|r| {
                JsonValue::obj(vec![
                    ("elapsed_s", JsonValue::num(r.elapsed_s)),
                    ("completed", JsonValue::num(r.completed as f64)),
                    ("failed", JsonValue::num(r.failed as f64)),
                    ("throughput", JsonValue::num(r.throughput)),
                    ("attempted", JsonValue::num(r.attempted)),
                    ("abort_ratio", JsonValue::num(r.abort_ratio)),
                ])
            })
            .collect();
        JsonValue::obj(vec![
            ("key", JsonValue::str(self.cell.key())),
            ("backend", JsonValue::str(self.cell.backend.key())),
            ("backend_label", JsonValue::str(&self.backend_label)),
            ("workload", JsonValue::str(self.cell.workload_key())),
            ("threads", JsonValue::num(self.cell.threads as f64)),
            (
                // Additive (readers match cells by key): the shard-count
                // axis, null when the cell inherits the preset's.
                "shards",
                match self.cell.shards {
                    None => JsonValue::Null,
                    Some(n) => JsonValue::num(n as f64),
                },
            ),
            (
                "long_traversals",
                JsonValue::Bool(self.cell.long_traversals),
            ),
            ("structure_mods", JsonValue::Bool(self.cell.structure_mods)),
            ("astm_friendly", JsonValue::Bool(self.cell.astm_friendly)),
            ("completed", JsonValue::num(self.completed as f64)),
            ("failed", JsonValue::num(self.failed as f64)),
            ("commits", JsonValue::num(self.commits as f64)),
            ("aborts", JsonValue::num(self.aborts as f64)),
            ("abort_ratio", JsonValue::num(self.abort_ratio())),
            ("throughput", self.throughput.to_json()),
            ("attempted", self.attempted.to_json()),
            ("categories", JsonValue::Obj(categories)),
            ("reps", JsonValue::Arr(reps)),
            (
                "contention",
                match &self.contention {
                    None => JsonValue::Null,
                    Some(c) => JsonValue::obj(vec![
                        ("lock_acquires", JsonValue::num(c.lock_acquires as f64)),
                        ("lock_contended", JsonValue::num(c.lock_contended as f64)),
                        ("lock_wait_ns", JsonValue::num(c.lock_wait_ns as f64)),
                        ("cas_retries", JsonValue::num(c.cas_retries as f64)),
                        ("shard_conflicts", JsonValue::num(c.shard_conflicts as f64)),
                        ("contention_ratio", JsonValue::num(c.contention_ratio())),
                    ]),
                },
            ),
            (
                "service",
                match &self.service {
                    None => JsonValue::Null,
                    Some(agg) => agg.to_json(),
                },
            ),
            (
                "timeseries",
                if self.timeseries.is_empty() {
                    JsonValue::Null
                } else {
                    JsonValue::Arr(
                        self.timeseries
                            .iter()
                            .map(Timeseries::to_json_value)
                            .collect(),
                    )
                },
            ),
            (
                "slo",
                match &self.cell.slo {
                    None => JsonValue::Null,
                    Some(slo) => JsonValue::obj(vec![
                        ("p99_us", JsonValue::num(slo.p99_us as f64)),
                        (
                            "max_violation_windows",
                            JsonValue::num(slo.max_violation_windows as f64),
                        ),
                    ]),
                },
            ),
        ])
    }
}

/// The verdict of one cell's windowed SLO: how many windows breached the
/// per-window p99 bound, across every repetition's series.
#[derive(Clone, Debug)]
pub struct SloCheck {
    /// The cell's key.
    pub key: String,
    /// The declared objective.
    pub slo: crate::spec::Slo,
    /// Windows (with at least one latency sample) whose p99 exceeded
    /// the bound.
    pub violations: u64,
    /// Worst per-window p99 observed, in microseconds.
    pub worst_p99_us: u64,
    /// The run's aggregate p99 (µs) over the `e2e` lane, when the cell
    /// kept one — shown so a failure report can say "aggregate fine,
    /// windows not".
    pub aggregate_p99_us: Option<u64>,
}

impl SloCheck {
    /// True when the cell met its objective.
    pub fn pass(&self) -> bool {
        self.violations <= self.slo.max_violation_windows
    }
}

/// Evaluates every cell that declares a windowed SLO against its own
/// flight-recorder series. Cells without an SLO are skipped; a cell
/// with an SLO but no timeseries (mis-specified: no `window_ms`) counts
/// every repetition as violating nothing but reports `worst_p99_us` 0 —
/// the caller should treat an empty series as a spec bug.
pub fn check_slos(result: &SpecResult) -> Vec<SloCheck> {
    result
        .cells
        .iter()
        .filter_map(|cell| {
            let slo = cell.cell.slo?;
            let mut violations = 0u64;
            let mut worst = 0u64;
            for window in cell.timeseries.iter().flat_map(|ts| &ts.windows) {
                if window.latency.samples == 0 {
                    continue;
                }
                worst = worst.max(window.latency.p99_us);
                if window.latency.p99_us > slo.p99_us {
                    violations += 1;
                }
            }
            Some(SloCheck {
                key: cell.cell.key(),
                slo,
                violations,
                worst_p99_us: worst,
                aggregate_p99_us: cell
                    .service
                    .as_ref()
                    .and_then(|s| s.e2e.percentile_us(99.0)),
            })
        })
        .collect()
}

/// A completed spec run: protocol echo plus one [`CellResult`] per cell.
#[derive(Clone, Debug)]
pub struct SpecResult {
    pub spec_name: String,
    pub description: String,
    pub preset: String,
    pub secs_per_cell: f64,
    pub warmup_secs: f64,
    pub repetitions: u32,
    pub seed: u64,
    pub cells: Vec<CellResult>,
}

impl SpecResult {
    /// The versioned results document written to `results/BENCH_*.json`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("format", JsonValue::str(FORMAT)),
            ("spec", JsonValue::str(&self.spec_name)),
            ("description", JsonValue::str(&self.description)),
            ("preset", JsonValue::str(&self.preset)),
            ("secs_per_cell", JsonValue::num(self.secs_per_cell)),
            ("warmup_secs", JsonValue::num(self.warmup_secs)),
            ("repetitions", JsonValue::num(f64::from(self.repetitions))),
            // Seeds are 64-bit identifiers, not quantities: a decimal
            // string survives the f64 number path exactly.
            ("seed", JsonValue::str(self.seed.to_string())),
            (
                "cells",
                JsonValue::Arr(self.cells.iter().map(CellResult::to_json).collect()),
            ),
        ])
    }
}

/// Runs every cell of the spec. `progress` receives one line per
/// completed cell (empty closure to run silently).
pub fn run_spec(spec: &ExperimentSpec, mut progress: impl FnMut(&str)) -> SpecResult {
    let mut cells = Vec::with_capacity(spec.cells.len());
    for (i, cell) in spec.cells.iter().enumerate() {
        let result = run_one_cell(spec, cell);
        progress(&format!(
            "[{}/{}] {:<32} median {:>9.1} op/s  (min {:.1}, max {:.1}, aborts/commit {:.3})",
            i + 1,
            spec.cells.len(),
            result.cell.key(),
            result.throughput.median,
            result.throughput.min,
            result.throughput.max,
            result.abort_ratio(),
        ));
        cells.push(result);
    }
    SpecResult {
        spec_name: spec.name.clone(),
        description: spec.description.clone(),
        preset: spec.params.preset_name().unwrap_or("custom").to_string(),
        secs_per_cell: spec.secs_per_cell,
        warmup_secs: spec.warmup_secs,
        repetitions: spec.repetitions,
        seed: spec.seed,
        cells,
    }
}

fn run_one_cell(spec: &ExperimentSpec, cell: &Cell) -> CellResult {
    // The cell may override the preset's shard count (the sharding axis).
    let params = cell.params(&spec.params);
    // One recorder for the whole cell: repetitions accumulate into the
    // same trace, which the CLI writes to one file per cell.
    let recorder = if cell.trace {
        Recorder::enabled()
    } else {
        Recorder::off()
    };
    let mut reports: Vec<Report> = Vec::with_capacity(spec.repetitions as usize);
    for rep in 0..spec.repetitions.max(1) {
        let ws = Workspace::build(params.clone(), spec.seed);
        let backend = AnyBackend::build_traced(cell.backend, ws, recorder.clone());
        if spec.warmup_secs > 0.0 {
            // Discarded warmup on this repetition's fresh structure:
            // fills caches and pre-faults the heap before measurement.
            // Service cells warm up closed-loop too — the structure and
            // code paths are shared; only the driving differs.
            let cfg = spec.bench_config(cell, spec.warmup_secs, u32::MAX);
            let _ = run_benchmark(&backend, &params, &cfg);
        }
        let seed = spec.seed.wrapping_add(u64::from(rep));
        if let Some((mut server_cfg, drive_cfg)) = cell.net_configs(seed) {
            server_cfg.recorder = recorder.clone();
            // Net cell: this backend behind a real (loopback) socket on
            // an ephemeral port, measured from the client side.
            let plan = cell.net.as_ref().expect("net_configs implies plan");
            if plan.idle_conns > 0 {
                // The herd needs file descriptors on both ends of the
                // loopback plus headroom for the hot subset; CI runners
                // default to a 1024 soft limit.
                let want = (plan.idle_conns * 2 + plan.connections * 2 + 512) as u64;
                stmbench7_poll::raise_nofile_limit(want).expect("raise RLIMIT_NOFILE");
            }
            let requests = drive_cfg.generate(plan.requests);
            let listener =
                std::net::TcpListener::bind("127.0.0.1:0").expect("ephemeral loopback port");
            let addr = listener.local_addr().expect("bound socket has an address");
            let client = std::thread::scope(|scope| {
                let backend = &backend;
                let params = &params;
                let server_cfg = &server_cfg;
                let server = scope.spawn(move || {
                    stmbench7_net::serve_net(backend, params, server_cfg, listener, None)
                });
                // The c10k axis: open the idle herd first and hold it for
                // the whole drive — the event loop must carry these
                // connections (registered, never speaking) without
                // spawning threads or starving the hot subset.
                let idle: Vec<std::net::TcpStream> = (0..plan.idle_conns)
                    .map(|_| std::net::TcpStream::connect(addr).expect("idle connection"))
                    .collect();
                // Shut the server down even when the drive failed —
                // panicking first would leave the scope joining a server
                // blocked in accept(), hanging the run instead of
                // reporting the error.
                let client = stmbench7_net::drive(addr, &drive_cfg, &requests);
                drop(idle); // hang up the herd before the shutdown drain
                let shutdown = stmbench7_net::shutdown(addr);
                server
                    .join()
                    .expect("net cell server panicked")
                    .expect("net cell server exits cleanly");
                let client = client.expect("net cell drive");
                shutdown.expect("net cell shutdown");
                client
            });
            reports.push(client.report);
            continue;
        }
        match cell.serve_config(seed) {
            Some(mut serve_cfg) => {
                serve_cfg.recorder = recorder.clone();
                let plan = cell.service.as_ref().expect("serve_config implies plan");
                let requests = serve_cfg.generate(plan.requests);
                let result = stmbench7_service::serve(&backend, &params, &serve_cfg, &requests);
                reports.push(result.report);
            }
            None => {
                let mut cfg = spec.bench_config(cell, spec.secs_per_cell, rep);
                cfg.recorder = recorder.clone();
                reports.push(run_benchmark(&backend, &params, &cfg));
            }
        }
    }
    // Every backend (including the RCL server thread, whose ring flushes
    // at backend drop) is gone by now, so the trace is complete.
    let trace = cell.trace.then(|| recorder.take_trace());
    aggregate(cell, &reports, trace)
}

fn aggregate(cell: &Cell, reports: &[Report], trace: Option<Trace>) -> CellResult {
    let throughputs: Vec<f64> = reports.iter().map(Report::throughput).collect();
    let attempted: Vec<f64> = reports.iter().map(Report::throughput_attempted).collect();
    let mut categories: Vec<(String, u64, u64, f64)> = Vec::new();
    for cat in stmbench7_core::Category::all() {
        let mut completed = 0;
        let mut failed = 0;
        let mut max_ms = 0.0f64;
        for r in reports {
            let (c, f, m) = r.category_rollup(cat);
            completed += c;
            failed += f;
            max_ms = max_ms.max(m);
        }
        categories.push((cat.name().to_string(), completed, failed, max_ms));
    }
    let per_rep_service: Vec<&stmbench7_core::ServiceStats> =
        reports.iter().filter_map(|r| r.service.as_ref()).collect();
    let service = (per_rep_service.len() == reports.len() && !reports.is_empty()).then(|| {
        let mut agg = ServiceAgg {
            offered: 0,
            rejected: 0,
            affinity: per_rep_service[0].affinity.clone(),
            reconnects: 0,
            busy_ns: 0,
            idle_ns: 0,
            trace_dropped: 0,
            batches: 0,
            write_batches: 0,
            max_write_batch: 0,
            steals: 0,
            queue_wait: Histogram::micros(),
            service_time: Histogram::micros(),
            e2e: Histogram::micros(),
            network: None,
            per_category: CategoryLatency::all_empty(),
        };
        for svc in per_rep_service {
            agg.offered += svc.offered;
            agg.rejected += svc.rejected;
            agg.reconnects += svc.reconnects;
            agg.busy_ns += svc.busy_ns;
            agg.idle_ns += svc.idle_ns;
            agg.trace_dropped = agg.trace_dropped.max(svc.trace_dropped);
            agg.batches += svc.batches;
            agg.write_batches += svc.write_batches;
            agg.max_write_batch = agg.max_write_batch.max(svc.max_write_batch);
            agg.steals += svc.steals;
            agg.queue_wait.merge(&svc.queue_wait);
            agg.service_time.merge(&svc.service_time);
            agg.e2e.merge(&svc.e2e);
            if let Some(network) = &svc.network {
                agg.network
                    .get_or_insert_with(Histogram::micros)
                    .merge(network);
            }
            for (merged, rep) in agg.per_category.iter_mut().zip(&svc.per_category) {
                merged.merge(rep);
            }
        }
        agg
    });
    CellResult {
        cell: cell.clone(),
        backend_label: reports
            .first()
            .map_or_else(String::new, |r| r.backend.clone()),
        completed: reports.iter().map(Report::total_completed).sum(),
        failed: reports.iter().map(Report::total_failed).sum(),
        commits: reports
            .iter()
            .filter_map(|r| r.stm.as_ref())
            .map(|s| s.commits)
            .sum(),
        aborts: reports
            .iter()
            .filter_map(|r| r.stm.as_ref())
            .map(|s| s.aborts)
            .sum(),
        throughput: Summary::from_samples(&throughputs).expect("at least one repetition"),
        attempted: Summary::from_samples(&attempted).expect("at least one repetition"),
        categories,
        reps: reports.iter().map(RepResult::from_report).collect(),
        service,
        contention: reports.iter().filter_map(|r| r.contention.as_ref()).fold(
            None,
            |acc: Option<ContentionSnapshot>, c| {
                Some(match acc {
                    None => *c,
                    Some(sum) => sum.merge(c),
                })
            },
        ),
        trace,
        timeseries: reports
            .iter()
            .filter_map(|r| r.timeseries.clone())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::grid;
    use stmbench7_backend::BackendChoice;
    use stmbench7_core::WorkloadType;
    use stmbench7_data::StructureParams;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "unit".into(),
            description: "unit-test spec".into(),
            params: StructureParams::tiny(),
            secs_per_cell: 0.03,
            warmup_secs: 0.01,
            repetitions: 2,
            seed: 7,
            cells: grid(
                &[BackendChoice::Coarse],
                &[WorkloadType::ReadWrite],
                &[1],
                true,
                true,
                false,
            ),
        }
    }

    #[test]
    fn run_spec_aggregates_repetitions() {
        let spec = tiny_spec();
        let mut lines = Vec::new();
        let result = run_spec(&spec, |l| lines.push(l.to_string()));
        assert_eq!(result.cells.len(), 1);
        assert_eq!(lines.len(), 1);
        let cell = &result.cells[0];
        assert_eq!(cell.reps.len(), 2);
        assert!(cell.completed > 0);
        assert!(cell.throughput.min <= cell.throughput.median);
        assert!(cell.throughput.median <= cell.throughput.max);
        assert_eq!(cell.backend_label, "coarse");
        // Category rollups sum to the cell totals.
        let cat_completed: u64 = cell.categories.iter().map(|(_, c, _, _)| c).sum();
        assert_eq!(cat_completed, cell.completed);
    }

    #[test]
    fn service_cells_run_and_serialize_their_latency_split() {
        use crate::spec::ServicePlan;
        use stmbench7_service::Schedule;

        let mut spec = tiny_spec();
        spec.cells[0].service = Some(ServicePlan::open_loop(
            Schedule::Open { rate: 100_000.0 },
            64,
            300,
        ));
        let result = run_spec(&spec, |_| {});
        let cell = &result.cells[0];
        let agg = cell.service.as_ref().expect("service aggregation");
        assert_eq!(agg.offered, 600, "300 requests × 2 repetitions");
        assert_eq!(agg.rejected, 0, "blocking admission loses nothing");
        assert_eq!(agg.queue_wait.samples(), 600);
        assert_eq!(agg.service_time.samples(), 600);
        assert_eq!(cell.completed + cell.failed, 600);

        let doc = result.to_json();
        let json_cell = &doc.get("cells").unwrap().as_array().unwrap()[0];
        assert_eq!(
            json_cell.get("key").and_then(JsonValue::as_str),
            Some("coarse/rw/1t/open100000/q64")
        );
        let svc = json_cell.get("service").expect("service object");
        assert_eq!(svc.get("offered").and_then(JsonValue::as_u64), Some(600));
        for key in ["queue_wait_us", "service_time_us", "e2e_us"] {
            assert!(
                svc.get(key).and_then(|l| l.get("p99")).is_some(),
                "missing {key}.p99"
            );
        }
    }

    #[test]
    fn closed_loop_cells_serialize_a_null_service() {
        let result = run_spec(&tiny_spec(), |_| {});
        assert!(result.cells[0].service.is_none());
        let doc = result.to_json();
        let json_cell = &doc.get("cells").unwrap().as_array().unwrap()[0];
        assert_eq!(json_cell.get("service"), Some(&JsonValue::Null));
    }

    #[test]
    fn all_format_versions_are_supported() {
        assert!(format_supported(FORMAT));
        assert!(format_supported(FORMAT_V6));
        assert!(format_supported(FORMAT_V5));
        assert!(format_supported(FORMAT_V4));
        assert!(format_supported(FORMAT_V3));
        assert!(format_supported(FORMAT_V2));
        assert!(format_supported(FORMAT_V1));
        assert!(!format_supported("stmbench7-lab/8"));
        assert!(!format_supported("other/1"));
    }

    #[test]
    fn net_cells_run_over_loopback_and_serialize_the_network_lane() {
        use crate::spec::NetPlan;
        use stmbench7_service::Schedule;

        let mut spec = tiny_spec();
        spec.repetitions = 2;
        spec.cells[0].net = Some(NetPlan::hot(Schedule::Open { rate: 100_000.0 }, 64, 2, 200));
        let result = run_spec(&spec, |_| {});
        let cell = &result.cells[0];
        let agg = cell
            .service
            .as_ref()
            .expect("net cells aggregate service stats");
        assert_eq!(agg.offered, 400, "200 requests × 2 repetitions");
        assert_eq!(agg.queue_wait.samples(), 400);
        let network = agg.network.as_ref().expect("net cells have a network lane");
        assert_eq!(network.samples(), 400);
        let per_cat: u64 = agg
            .per_category
            .iter()
            .map(|c| c.queue_wait.samples())
            .sum();
        assert_eq!(per_cat, 400);

        let doc = result.to_json();
        let json_cell = &doc.get("cells").unwrap().as_array().unwrap()[0];
        assert_eq!(
            json_cell.get("key").and_then(JsonValue::as_str),
            Some("coarse/rw/1t/open100000/q64/net2c")
        );
        let svc = json_cell.get("service").expect("service object");
        let net = svc.get("network_us").expect("network lane serialized");
        assert_eq!(net.get("samples").and_then(JsonValue::as_u64), Some(400));
        assert!(
            svc.get("categories")
                .and_then(|c| c.get("short operations"))
                .is_some(),
            "category split serialized"
        );
    }

    #[test]
    fn service_cells_serialize_a_null_network_lane() {
        use crate::spec::ServicePlan;
        use stmbench7_service::Schedule;

        let mut spec = tiny_spec();
        spec.cells[0].service = Some(ServicePlan::open_loop(
            Schedule::Open { rate: 100_000.0 },
            64,
            150,
        ));
        let result = run_spec(&spec, |_| {});
        assert!(result.cells[0].service.as_ref().unwrap().network.is_none());
        let doc = result.to_json();
        let json_cell = &doc.get("cells").unwrap().as_array().unwrap()[0];
        assert_eq!(
            json_cell.get("service").unwrap().get("network_us"),
            Some(&JsonValue::Null)
        );
    }

    #[test]
    fn windowed_service_cells_embed_their_timeseries_and_the_slo_gate_reads_it() {
        use crate::spec::{ServicePlan, Slo};
        use stmbench7_service::Schedule;

        let mut spec = tiny_spec();
        spec.repetitions = 1;
        spec.cells[0].service = Some(ServicePlan::open_loop(
            Schedule::Open { rate: 100_000.0 },
            64,
            400,
        ));
        spec.cells[0].window_ms = Some(1);
        // An objective nothing real can meet: every sampled window
        // violates, so the gate must fail the cell …
        spec.cells[0].slo = Some(Slo {
            p99_us: 0,
            max_violation_windows: 0,
        });
        let result = run_spec(&spec, |_| {});
        let cell = &result.cells[0];
        assert_eq!(cell.timeseries.len(), 1, "one series per repetition");
        let ts = &cell.timeseries[0];
        assert_eq!(ts.window_ms, 1);
        let completed: u64 = ts.windows.iter().map(|w| w.completed).sum();
        assert_eq!(completed, 400);

        let checks = check_slos(&result);
        assert_eq!(checks.len(), 1);
        assert!(checks[0].violations > 0);
        assert!(!checks[0].pass());
        assert!(checks[0].worst_p99_us > 0);

        // … while an unreachable bound passes.
        let mut relaxed = result.clone();
        relaxed.cells[0].cell.slo = Some(Slo {
            p99_us: u64::MAX,
            max_violation_windows: 0,
        });
        let checks = check_slos(&relaxed);
        assert!(checks[0].pass());

        // The document embeds the series and echoes the objective.
        let doc = result.to_json();
        let json_cell = &doc.get("cells").unwrap().as_array().unwrap()[0];
        let series = json_cell
            .get("timeseries")
            .and_then(JsonValue::as_array)
            .expect("timeseries array");
        assert_eq!(series.len(), 1);
        assert_eq!(
            series[0].get("window_ms").and_then(JsonValue::as_u64),
            Some(1)
        );
        assert!(series[0]
            .get("windows")
            .and_then(JsonValue::as_array)
            .is_some_and(|w| !w.is_empty()));
        assert_eq!(
            json_cell
                .get("slo")
                .and_then(|s| s.get("max_violation_windows"))
                .and_then(JsonValue::as_u64),
            Some(0)
        );
        // Unwindowed cells stay null.
        let plain = run_spec(&tiny_spec(), |_| {});
        let doc = plain.to_json();
        let json_cell = &doc.get("cells").unwrap().as_array().unwrap()[0];
        assert_eq!(json_cell.get("timeseries"), Some(&JsonValue::Null));
        assert_eq!(json_cell.get("slo"), Some(&JsonValue::Null));
    }

    #[test]
    fn results_document_is_versioned_and_parseable() {
        let spec = tiny_spec();
        let result = run_spec(&spec, |_| {});
        let doc = result.to_json();
        assert_eq!(doc.get("format").and_then(JsonValue::as_str), Some(FORMAT));
        assert_eq!(doc.get("preset").and_then(JsonValue::as_str), Some("tiny"));
        let text = doc.render();
        let back = crate::json::parse(&text).expect("own output must parse");
        let cells = back.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(
            cells[0].get("key").and_then(JsonValue::as_str),
            Some("coarse/rw/1t")
        );
        assert_eq!(
            cells[0].get("completed").and_then(JsonValue::as_u64),
            Some(result.cells[0].completed)
        );
    }
}
