//! The reader half of the offline JSON path: parses standard JSON text
//! into [`stmbench7_core::JsonValue`] (whose `render` is the writer
//! half). Recursive descent, byte-positioned errors, no dependencies.

use stmbench7_core::JsonValue;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {}", self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let first = self.hex4()?;
        // Surrogate pair: a high surrogate must be followed by \uDCxx.
        let code = if (0xD800..0xDC00).contains(&first) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..0xE000).contains(&low) {
                    return Err(self.err("invalid low surrogate"));
                }
                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
            } else {
                return Err(self.err("lone high surrogate"));
            }
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-3.5e2").unwrap(), JsonValue::Num(-350.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), JsonValue::str("a\nb"));
        assert_eq!(parse("\"\\u00e9\"").unwrap(), JsonValue::str("é"));
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), JsonValue::str("😀"));
    }

    #[test]
    fn parses_containers() {
        let doc = parse(r#"{"a": [1, 2, {"b": false}], "c": {}}"#).unwrap();
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(doc.get("c"), Some(&JsonValue::Obj(vec![])));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"\\q\"",
            "\"\\ud800x\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn round_trips_rendered_documents() {
        let doc = JsonValue::obj(vec![
            ("format", JsonValue::str("stmbench7-lab/1")),
            (
                "xs",
                JsonValue::Arr(vec![JsonValue::num(1.0), JsonValue::num(2.5)]),
            ),
            ("note", JsonValue::str("quote \" backslash \\ tab\t")),
            ("none", JsonValue::Null),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
        // Idempotent: render(parse(render(x))) == render(x).
        assert_eq!(parse(&text).unwrap().render(), text);
    }
}
