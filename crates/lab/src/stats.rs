//! Repetition aggregation: a [`Summary`] condenses the per-repetition
//! samples of one metric into median/min/max/p95 plus mean and standard
//! deviation.

use stmbench7_core::JsonValue;

/// Order statistics over one metric's repetition samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    pub median: f64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p95: f64,
    /// Population standard deviation (0 for a single sample).
    pub stddev: f64,
}

impl Summary {
    /// Aggregates the samples; `None` when empty.
    pub fn from_samples(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let variance = sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        Some(Summary {
            median: percentile(&sorted, 50.0),
            mean,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p95: percentile(&sorted, 95.0),
            stddev: variance.sqrt(),
        })
    }

    /// The JSON object embedded in results documents.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("median", JsonValue::num(self.median)),
            ("mean", JsonValue::num(self.mean)),
            ("min", JsonValue::num(self.min)),
            ("max", JsonValue::num(self.max)),
            ("p95", JsonValue::num(self.p95)),
            ("stddev", JsonValue::num(self.stddev)),
        ])
    }

    /// Reads a summary object back (the inverse of [`Summary::to_json`]).
    pub fn from_json(v: &JsonValue) -> Option<Summary> {
        Some(Summary {
            median: v.get("median")?.as_f64()?,
            mean: v.get("mean")?.as_f64()?,
            min: v.get("min")?.as_f64()?,
            max: v.get("max")?.as_f64()?,
            p95: v.get("p95")?.as_f64()?,
            stddev: v.get("stddev")?.as_f64()?,
        })
    }
}

/// Linear-interpolation percentile over an already sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_summary() {
        assert_eq!(Summary::from_samples(&[]), None);
    }

    #[test]
    fn single_sample_is_every_statistic() {
        let s = Summary::from_samples(&[7.0]).unwrap();
        assert_eq!(
            (s.median, s.mean, s.min, s.max, s.p95),
            (7.0, 7.0, 7.0, 7.0, 7.0)
        );
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn order_statistics() {
        let s = Summary::from_samples(&[4.0, 1.0, 3.0, 2.0, 5.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert!((s.p95 - 4.8).abs() < 1e-9);
        assert!((s.stddev - 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn json_round_trip() {
        let s = Summary::from_samples(&[1.5, 2.5, 10.0]).unwrap();
        let back = Summary::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }
}
