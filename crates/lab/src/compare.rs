//! Baseline regression gating: compares a fresh results document against
//! a committed baseline, cell by cell, and reports throughput
//! regressions beyond a configurable tolerance.

use std::fmt::Write as _;

use stmbench7_core::JsonValue;

use crate::run::{format_supported, FORMAT};

/// The allowed slowdown factor. `1.25` means a cell may be up to 25%
/// slower than baseline before it counts as a regression.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerance(pub f64);

impl Tolerance {
    /// Parses `NN%` (relative slack), `NNx` (multiplicative factor, for
    /// cross-hardware shape checks), or a bare factor like `1.5`.
    pub fn parse(s: &str) -> Option<Tolerance> {
        let factor = if let Some(pct) = s.strip_suffix('%') {
            1.0 + pct.trim().parse::<f64>().ok()? / 100.0
        } else if let Some(x) = s.strip_suffix('x') {
            x.trim().parse::<f64>().ok()?
        } else {
            s.parse::<f64>().ok()?
        };
        (factor >= 1.0 && factor.is_finite()).then_some(Tolerance(factor))
    }
}

/// One cell's baseline-vs-current verdict.
#[derive(Clone, Debug)]
pub struct CellComparison {
    pub key: String,
    /// Median throughput in the baseline document.
    pub baseline: f64,
    /// Median throughput in the current document.
    pub current: f64,
    /// Slowdown factor `baseline / current` (> 1 means slower now).
    pub slowdown: f64,
    pub regressed: bool,
}

/// The full comparison of two results documents.
#[derive(Clone, Debug)]
pub struct Comparison {
    pub tolerance: Tolerance,
    pub cells: Vec<CellComparison>,
    /// Baseline cell keys absent from the current run — treated as
    /// regressions (a vanished configuration must not pass the gate).
    pub missing: Vec<String>,
}

impl Comparison {
    /// True when no cell regressed and none disappeared.
    pub fn ok(&self) -> bool {
        self.missing.is_empty() && self.cells.iter().all(|c| !c.regressed)
    }

    /// Number of regressed cells (missing cells included).
    pub fn regression_count(&self) -> usize {
        self.cells.iter().filter(|c| c.regressed).count() + self.missing.len()
    }

    /// The human-readable regression report the CLI prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "baseline comparison (tolerance {:.2}x, {} cells):",
            self.tolerance.0,
            self.cells.len()
        );
        for c in &self.cells {
            let verdict = if c.regressed {
                "REGRESSED"
            } else if c.slowdown < 1.0 {
                "improved"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "  {:<40} baseline {:>10.1} op/s   now {:>10.1} op/s   {:>5.2}x  {}",
                c.key, c.baseline, c.current, c.slowdown, verdict
            );
        }
        for key in &self.missing {
            let _ = writeln!(out, "  {key:<40} MISSING from current run (REGRESSED)");
        }
        let _ = match self.regression_count() {
            0 => writeln!(out, "verdict: OK — no cell slower than tolerance allows"),
            n => writeln!(
                out,
                "verdict: {n} REGRESSION(S) beyond {:.2}x",
                self.tolerance.0
            ),
        };
        out
    }
}

fn cell_map(doc: &JsonValue) -> Result<Vec<(&str, f64)>, String> {
    let format = doc
        .get("format")
        .and_then(JsonValue::as_str)
        .ok_or("document has no \"format\" field")?;
    if !format_supported(format) {
        return Err(format!(
            "unsupported results format {format:?} (expected {FORMAT:?} or older)"
        ));
    }
    let cells = doc
        .get("cells")
        .and_then(JsonValue::as_array)
        .ok_or("document has no \"cells\" array")?;
    cells
        .iter()
        .map(|cell| {
            let key = cell
                .get("key")
                .and_then(JsonValue::as_str)
                .ok_or("cell has no \"key\"")?;
            let median = cell
                .get("throughput")
                .and_then(|t| t.get("median"))
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("cell {key} has no throughput.median"))?;
            Ok((key, median))
        })
        .collect()
}

/// Compares `current` against `baseline`, matching cells by key. Cells
/// only present in the current run are ignored (a grown grid is not a
/// regression); cells only present in the baseline are.
pub fn compare_documents(
    baseline: &JsonValue,
    current: &JsonValue,
    tolerance: Tolerance,
) -> Result<Comparison, String> {
    let base_cells = cell_map(baseline)?;
    let cur_cells = cell_map(current)?;
    let mut cells = Vec::new();
    let mut missing = Vec::new();
    for (key, base_median) in base_cells {
        match cur_cells.iter().find(|(k, _)| *k == key) {
            None => missing.push(key.to_string()),
            Some(&(_, cur_median)) => {
                let slowdown = if cur_median > 0.0 {
                    base_median / cur_median
                } else {
                    f64::INFINITY
                };
                cells.push(CellComparison {
                    key: key.to_string(),
                    baseline: base_median,
                    current: cur_median,
                    slowdown,
                    regressed: slowdown > tolerance.0,
                });
            }
        }
    }
    Ok(Comparison {
        tolerance,
        cells,
        missing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(cells: &[(&str, f64)]) -> JsonValue {
        JsonValue::obj(vec![
            ("format", JsonValue::str(FORMAT)),
            (
                "cells",
                JsonValue::Arr(
                    cells
                        .iter()
                        .map(|(key, median)| {
                            JsonValue::obj(vec![
                                ("key", JsonValue::str(*key)),
                                (
                                    "throughput",
                                    JsonValue::obj(vec![("median", JsonValue::num(*median))]),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn tolerance_parsing() {
        assert_eq!(Tolerance::parse("25%"), Some(Tolerance(1.25)));
        assert_eq!(Tolerance::parse("10x"), Some(Tolerance(10.0)));
        assert_eq!(Tolerance::parse("1.5"), Some(Tolerance(1.5)));
        assert_eq!(
            Tolerance::parse("0.5x"),
            None,
            "speedup-only gate is nonsense"
        );
        assert_eq!(Tolerance::parse("abc"), None);
    }

    #[test]
    fn detects_regressions_and_improvements() {
        let baseline = doc(&[("a/rw/1t", 1000.0), ("b/rw/1t", 1000.0)]);
        let current = doc(&[("a/rw/1t", 500.0), ("b/rw/1t", 2000.0)]);
        let cmp = compare_documents(&baseline, &current, Tolerance(1.25)).unwrap();
        assert!(!cmp.ok());
        assert_eq!(cmp.regression_count(), 1);
        assert!(cmp.cells[0].regressed);
        assert!((cmp.cells[0].slowdown - 2.0).abs() < 1e-9);
        assert!(!cmp.cells[1].regressed);
        let report = cmp.render();
        assert!(report.contains("REGRESSED"));
        assert!(report.contains("improved"));
        assert!(report.contains("1 REGRESSION"));
    }

    #[test]
    fn loose_tolerance_passes_the_same_pair() {
        let baseline = doc(&[("a/rw/1t", 1000.0)]);
        let current = doc(&[("a/rw/1t", 500.0)]);
        let cmp = compare_documents(&baseline, &current, Tolerance(10.0)).unwrap();
        assert!(cmp.ok());
        assert!(cmp.render().contains("verdict: OK"));
    }

    #[test]
    fn missing_cells_fail_extra_cells_pass() {
        let baseline = doc(&[("a/rw/1t", 1000.0)]);
        let current = doc(&[("b/rw/1t", 1000.0)]);
        let cmp = compare_documents(&baseline, &current, Tolerance(2.0)).unwrap();
        assert!(!cmp.ok());
        assert_eq!(cmp.missing, vec!["a/rw/1t".to_string()]);
        // Extra current-only cells don't fail the gate.
        let cmp2 = compare_documents(&doc(&[]), &current, Tolerance(2.0)).unwrap();
        assert!(cmp2.ok());
    }

    #[test]
    fn v1_and_v2_baselines_gate_v3_runs() {
        // Committed baselines from before the service layer (v1) and
        // before the network layer (v2) must still gate fresh v3
        // documents.
        for old_format in [crate::run::FORMAT_V1, crate::run::FORMAT_V2] {
            let mut baseline = doc(&[("a/rw/1t", 1000.0)]);
            if let JsonValue::Obj(pairs) = &mut baseline {
                pairs[0].1 = JsonValue::str(old_format);
            }
            let current = doc(&[("a/rw/1t", 900.0)]);
            let cmp = compare_documents(&baseline, &current, Tolerance(1.25)).unwrap();
            assert!(cmp.ok(), "{old_format} baseline must gate");
            // And the other direction (old binary's document as current).
            let cmp = compare_documents(&current, &baseline, Tolerance(1.25)).unwrap();
            assert!(cmp.ok(), "{old_format} current must compare");
        }
    }

    #[test]
    fn rejects_wrong_format() {
        let bad = JsonValue::obj(vec![("format", JsonValue::str("other/9"))]);
        let good = doc(&[]);
        assert!(compare_documents(&bad, &good, Tolerance(1.5)).is_err());
        assert!(compare_documents(&good, &bad, Tolerance(1.5)).is_err());
    }

    #[test]
    fn zero_current_throughput_is_infinite_slowdown() {
        let baseline = doc(&[("a/rw/1t", 100.0)]);
        let current = doc(&[("a/rw/1t", 0.0)]);
        let cmp = compare_documents(&baseline, &current, Tolerance(1000.0)).unwrap();
        assert!(!cmp.ok());
    }
}
