//! `stmbench7-lab` — the declarative experiment harness.
//!
//! STMBench7's contribution is a *measurement methodology*; this crate
//! turns the reproduction into a living benchmark by making experiments
//! first-class values:
//!
//! * [`spec`] — [`spec::ExperimentSpec`]: a named grid of backend ×
//!   workload × threads cells with structure preset, duration, warmup,
//!   repetition count and pinned seeds; plus [`spec::SweepOpts`] /
//!   [`spec::run_cell`], the single sweep engine shared with the
//!   figure/table binaries;
//! * [`registry`] — the built-in specs (`smoke`, `paper_fig3`,
//!   `paper_fig6`, `scaling`, `write_storm`, `mixed_custom`);
//! * [`run`] — executes a spec, aggregating repetitions into
//!   median/min/max/p95 with abort rates and per-category rollups;
//! * [`json`] — the parser matching `stmbench7_core::JsonValue::render`
//!   (the build is offline; no serde);
//! * [`compare`] — baseline regression gating over two results
//!   documents with a configurable tolerance.
//!
//! The CLI front door is `stmbench7 lab <spec> [--compare baseline.json]`;
//! results land in versioned `results/BENCH_<spec>.json` documents.

pub mod compare;
pub mod json;
pub mod registry;
pub mod run;
pub mod spec;
pub mod stats;

pub use compare::{compare_documents, Comparison, Tolerance};
pub use run::{
    check_slos, format_supported, run_spec, CellResult, RepResult, ServiceAgg, SloCheck,
    SpecResult, FORMAT, FORMAT_V1, FORMAT_V2,
};
pub use spec::{
    grid, net_grid, run_cell, service_grid, Cell, ExperimentSpec, NetPlan, ServicePlan, Slo,
    SweepOpts,
};
pub use stats::Summary;
