//! The experiment vocabulary: one [`Cell`] is a single benchmark
//! configuration, an [`ExperimentSpec`] is a named grid of cells plus the
//! measurement protocol (structure preset, duration, warmup, repetition
//! count, seed). [`SweepOpts`]/[`run_cell`] are the command-line face the
//! figure/table binaries share.

use std::time::Duration;

use stmbench7_backend::{AnyBackend, BackendChoice};
use stmbench7_core::{run_benchmark, BenchConfig, OpFilter, Report, RunMode, WorkloadType};
use stmbench7_data::{StructureParams, Workspace};
use stmbench7_service::{Admission, Affinity, Schedule};

/// Service-layer protocol of one cell: run through `stmbench7-service`'s
/// open-loop queue instead of the closed-loop engine. `threads` on the
/// owning [`Cell`] becomes the worker-pool size.
#[derive(Clone, Debug, PartialEq)]
pub struct ServicePlan {
    pub schedule: Schedule,
    /// Bound of the request queue.
    pub queue_cap: usize,
    pub admission: Admission,
    /// Maximum group-commit batch size (1 = batching off).
    pub batch_max: usize,
    /// Worker routing policy (shared queue vs shard-affine sub-queues).
    pub affinity: Affinity,
    /// Length of the request stream; duration follows from the schedule
    /// (`requests / rate` for open arrivals), keeping lab runs
    /// deterministic in work rather than wall time.
    pub requests: u64,
}

impl ServicePlan {
    /// An open-loop plan with blocking admission, no batching, no
    /// affinity routing.
    pub fn open_loop(schedule: Schedule, queue_cap: usize, requests: u64) -> ServicePlan {
        ServicePlan {
            schedule,
            queue_cap,
            admission: Admission::Block,
            batch_max: 1,
            affinity: Affinity::None,
            requests,
        }
    }

    /// The key suffix identifying this plan inside a cell key.
    fn key_suffix(&self) -> String {
        let mut key = format!("/{}/q{}", self.schedule.key(), self.queue_cap);
        if self.admission == Admission::Reject {
            key.push_str("/reject");
        }
        if self.batch_max > 1 {
            key.push_str(&format!("/b{}", self.batch_max));
        }
        if self.affinity == Affinity::Shard {
            key.push_str("/affS");
        }
        key
    }
}

/// Network protocol of one cell: the cell's backend runs behind
/// `stmbench7-net`'s TCP server on an ephemeral loopback port, and the
/// remote load driver replays the schedule over sockets. `threads` on
/// the owning [`Cell`] becomes the *server* worker-pool size; the
/// measured report is the *client's*, so the cell's throughput and
/// latency include the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct NetPlan {
    pub schedule: Schedule,
    /// Bound of the server-side request queue (blocking admission).
    pub queue_cap: usize,
    /// Client connections the stream is striped over.
    pub connections: usize,
    /// Length of the request stream (see [`ServicePlan::requests`] for
    /// why lab runs are deterministic in work, not wall time).
    pub requests: u64,
    /// Per-connection pipelining window of the driver (0 = unbounded —
    /// requests are issued purely by schedule).
    pub inflight: usize,
    /// Extra mostly-idle connections the runner opens and holds for the
    /// duration of the drive — the c10k axis: the event-loop server must
    /// carry them without spawning threads or dropping frames.
    pub idle_conns: usize,
}

impl NetPlan {
    /// A hot-connections-only plan (no pipelining window, no idle herd) —
    /// the shape every pre-c10k net cell had.
    pub fn hot(schedule: Schedule, queue_cap: usize, connections: usize, requests: u64) -> NetPlan {
        NetPlan {
            schedule,
            queue_cap,
            connections,
            requests,
            inflight: 0,
            idle_conns: 0,
        }
    }

    /// The key suffix identifying this plan inside a cell key.
    fn key_suffix(&self) -> String {
        let mut key = format!(
            "/{}/q{}/net{}c",
            self.schedule.key(),
            self.queue_cap,
            self.connections
        );
        if self.inflight > 0 {
            key.push_str(&format!("/in{}", self.inflight));
        }
        if self.idle_conns > 0 {
            key.push_str(&format!("/idle{}", self.idle_conns));
        }
        key
    }
}

/// A windowed service-level objective on one cell: the run's
/// [`Timeseries`](stmbench7_core::Timeseries) windows are checked
/// individually against `p99_us`, and the cell fails its SLO when more
/// than `max_violation_windows` windows breach it. This is the gate the
/// aggregate p99 cannot express: a run that is fine on average but
/// stalls for a few windows during bursts fails here and nowhere else.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slo {
    /// Per-window p99 latency bound, in microseconds.
    pub p99_us: u64,
    /// Number of breaching windows tolerated before the cell fails.
    pub max_violation_windows: u64,
}

/// One sweep cell: a backend × workload × thread-count configuration,
/// optionally run through the service layer ([`ServicePlan`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    pub backend: BackendChoice,
    pub workload: WorkloadType,
    pub threads: usize,
    /// Index shard count override (`StructureParams::index_shards`);
    /// `None` inherits the spec preset's. The `--shards` axis of
    /// `sharded_scaling`.
    pub shards: Option<usize>,
    pub long_traversals: bool,
    pub structure_mods: bool,
    pub astm_friendly: bool,
    /// When set, the cell runs open-loop through `stmbench7-service`
    /// (`threads` = worker-pool size) instead of the closed-loop engine.
    pub service: Option<ServicePlan>,
    /// When set, the cell runs over a loopback socket through
    /// `stmbench7-net` (`threads` = server worker-pool size); mutually
    /// exclusive with `service`.
    pub net: Option<NetPlan>,
    /// Record a lifecycle trace while running this cell. Deliberately
    /// NOT part of [`Cell::key`]: a traced run is the *same* experiment
    /// (only observed), so baseline comparison can put a traced run
    /// against an untraced one — exactly what the overhead gate does.
    pub trace: bool,
    /// Flight-recorder window for this cell, in milliseconds. Like
    /// `trace`, NOT part of [`Cell::key`]: a windowed run is the same
    /// experiment observed, so the sampler-overhead gate can compare a
    /// windowed run against an unwindowed baseline.
    pub window_ms: Option<u64>,
    /// Windowed SLO this cell must meet (requires `window_ms`). Also
    /// excluded from [`Cell::key`]: the SLO judges the run, it does not
    /// change what runs.
    pub slo: Option<Slo>,
}

impl Cell {
    /// A cell with the paper's default switches (long traversals and
    /// structure modifications on, no operation filter).
    pub fn new(backend: BackendChoice, workload: WorkloadType, threads: usize) -> Cell {
        Cell {
            backend,
            workload,
            threads,
            shards: None,
            long_traversals: true,
            structure_mods: true,
            astm_friendly: false,
            service: None,
            net: None,
            trace: false,
            window_ms: None,
            slo: None,
        }
    }

    /// The structure parameters this cell builds with: the spec preset,
    /// with the cell's shard override applied when present.
    pub fn params(&self, preset: &StructureParams) -> StructureParams {
        match self.shards {
            Some(n) => preset.clone().with_shards(n),
            None => preset.clone(),
        }
    }

    /// Stable short key for the workload axis (`r`, `rw`, `w`, `uNN`).
    pub fn workload_key(&self) -> String {
        match self.workload {
            WorkloadType::Custom { update_pct } => format!("u{update_pct}"),
            other => other.name().to_string(),
        }
    }

    /// The engine configuration for running this cell for `secs`
    /// seconds with the given seed — the single cell-to-config mapping
    /// behind both [`run_cell`] and the spec runner.
    pub fn bench_config(&self, secs: f64, seed: u64) -> BenchConfig {
        BenchConfig {
            threads: self.threads,
            mode: RunMode::Timed(Duration::from_secs_f64(secs)),
            workload: self.workload,
            long_traversals: self.long_traversals,
            structure_mods: self.structure_mods,
            filter: if self.astm_friendly {
                OpFilter::astm_friendly()
            } else {
                OpFilter::none()
            },
            seed,
            histograms: false,
            recorder: stmbench7_obs::Recorder::default(),
            window_ms: self.window_ms,
        }
    }

    /// Stable identity of this cell inside a results document; baseline
    /// comparison matches cells by this key.
    pub fn key(&self) -> String {
        let mut key = format!(
            "{}/{}/{}t",
            self.backend.key(),
            self.workload_key(),
            self.threads
        );
        if let Some(shards) = self.shards {
            key.push_str(&format!("/s{shards}"));
        }
        if !self.long_traversals {
            key.push_str("/no-lt");
        }
        if !self.structure_mods {
            key.push_str("/no-sm");
        }
        if self.astm_friendly {
            key.push_str("/astm-friendly");
        }
        debug_assert!(
            self.service.is_none() || self.net.is_none(),
            "a cell is either a service cell or a net cell, not both"
        );
        if let Some(plan) = &self.service {
            key.push_str(&plan.key_suffix());
        }
        if let Some(plan) = &self.net {
            key.push_str(&plan.key_suffix());
        }
        key
    }

    /// The service configuration for running this cell's plan with the
    /// given seed; `None` for closed-loop cells.
    pub fn serve_config(&self, seed: u64) -> Option<stmbench7_service::ServeConfig> {
        let plan = self.service.as_ref()?;
        Some(stmbench7_service::ServeConfig {
            schedule: plan.schedule,
            workers: self.threads,
            queue_cap: plan.queue_cap,
            admission: plan.admission,
            batch_max: plan.batch_max,
            affinity: plan.affinity,
            workload: self.workload,
            long_traversals: self.long_traversals,
            structure_mods: self.structure_mods,
            filter: if self.astm_friendly {
                OpFilter::astm_friendly()
            } else {
                OpFilter::none()
            },
            seed,
            recorder: stmbench7_obs::Recorder::default(),
            window_ms: self.window_ms,
        })
    }

    /// The server and driver configurations for running this cell's
    /// network plan with the given seed; `None` for cells without one.
    pub fn net_configs(
        &self,
        seed: u64,
    ) -> Option<(stmbench7_service::ServeConfig, stmbench7_net::DriveConfig)> {
        let plan = self.net.as_ref()?;
        let filter = if self.astm_friendly {
            OpFilter::astm_friendly()
        } else {
            OpFilter::none()
        };
        let server = stmbench7_service::ServeConfig {
            // The server takes arrivals off the wire; its schedule field
            // is inert and overwritten with `net:<addr>` in its report.
            schedule: plan.schedule,
            workers: self.threads,
            queue_cap: plan.queue_cap,
            admission: Admission::Block,
            batch_max: 1,
            affinity: Affinity::None,
            workload: self.workload,
            long_traversals: self.long_traversals,
            structure_mods: self.structure_mods,
            filter: filter.clone(),
            seed,
            recorder: stmbench7_obs::Recorder::default(),
            window_ms: self.window_ms,
        };
        let driver = stmbench7_net::DriveConfig {
            schedule: plan.schedule,
            connections: plan.connections,
            inflight: plan.inflight,
            workload: self.workload,
            long_traversals: self.long_traversals,
            structure_mods: self.structure_mods,
            filter,
            seed,
        };
        Some((server, driver))
    }
}

/// The full cross product of backends × workloads × thread counts with
/// shared switches — the grid constructor every built-in spec uses.
pub fn grid(
    backends: &[BackendChoice],
    workloads: &[WorkloadType],
    threads: &[usize],
    long_traversals: bool,
    structure_mods: bool,
    astm_friendly: bool,
) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(backends.len() * workloads.len() * threads.len());
    for &workload in workloads {
        for &backend in backends {
            for &t in threads {
                cells.push(Cell {
                    backend,
                    workload,
                    threads: t,
                    shards: None,
                    long_traversals,
                    structure_mods,
                    astm_friendly,
                    service: None,
                    net: None,
                    trace: false,
                    window_ms: None,
                    slo: None,
                });
            }
        }
    }
    cells
}

/// A grid over the sharding axis: backends × shard counts × thread
/// counts, one workload, long traversals off (the short-operation mix is
/// where per-shard locking shows) — the constructor behind
/// `sharded_scaling`.
pub fn sharded_grid(
    backends: &[BackendChoice],
    workload: WorkloadType,
    shards: &[usize],
    threads: &[usize],
) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(backends.len() * shards.len() * threads.len());
    for &backend in backends {
        for &s in shards {
            for &t in threads {
                cells.push(Cell {
                    backend,
                    workload,
                    threads: t,
                    shards: Some(s),
                    long_traversals: false,
                    structure_mods: true,
                    astm_friendly: false,
                    service: None,
                    net: None,
                    trace: false,
                    window_ms: None,
                    slo: None,
                });
            }
        }
    }
    cells
}

/// A grid of *service* cells: backends × arrival schedules × one worker
/// count, each running `plan_of(schedule)` open-loop — the constructor
/// behind the latency specs.
pub fn service_grid(
    backends: &[BackendChoice],
    workload: WorkloadType,
    workers: usize,
    schedules: &[Schedule],
    long_traversals: bool,
    plan_of: impl Fn(Schedule) -> ServicePlan,
) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(backends.len() * schedules.len());
    for &schedule in schedules {
        for &backend in backends {
            cells.push(Cell {
                backend,
                workload,
                threads: workers,
                shards: None,
                long_traversals,
                structure_mods: true,
                astm_friendly: false,
                service: Some(plan_of(schedule)),
                net: None,
                trace: false,
                window_ms: None,
                slo: None,
            });
        }
    }
    cells
}

/// A grid of *network* cells: backends × arrival schedules × one server
/// worker count, each driven over loopback sockets by `plan_of(schedule)`
/// — the constructor behind `net_loopback`.
pub fn net_grid(
    backends: &[BackendChoice],
    workload: WorkloadType,
    workers: usize,
    schedules: &[Schedule],
    long_traversals: bool,
    plan_of: impl Fn(Schedule) -> NetPlan,
) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(backends.len() * schedules.len());
    for &schedule in schedules {
        for &backend in backends {
            cells.push(Cell {
                backend,
                workload,
                threads: workers,
                shards: None,
                long_traversals,
                structure_mods: true,
                astm_friendly: false,
                service: None,
                net: Some(plan_of(schedule)),
                trace: false,
                window_ms: None,
                slo: None,
            });
        }
    }
    cells
}

/// A named, fully pinned experiment: the grid plus the measurement
/// protocol. Everything needed to reproduce a results document.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    pub name: String,
    pub description: String,
    pub params: StructureParams,
    /// Measured duration of every cell repetition, in seconds.
    pub secs_per_cell: f64,
    /// Discarded warmup run before the measured repetitions (0 = none).
    pub warmup_secs: f64,
    /// Measured repetitions per cell; aggregates are computed across
    /// them. Each repetition runs on a freshly built structure.
    pub repetitions: u32,
    pub seed: u64,
    pub cells: Vec<Cell>,
}

impl ExperimentSpec {
    /// Replaces the thread axis: every unique cell modulo thread count is
    /// re-crossed with `threads` (deduplicated, order preserved — cell
    /// keys must stay unique for baseline comparison).
    pub fn with_threads(mut self, threads: &[usize]) -> Self {
        let mut threads_axis: Vec<usize> = Vec::new();
        for &t in threads {
            if !threads_axis.contains(&t) {
                threads_axis.push(t);
            }
        }
        let mut base: Vec<Cell> = Vec::new();
        for cell in &self.cells {
            let mut c = cell.clone();
            c.threads = 0;
            if !base.contains(&c) {
                base.push(c);
            }
        }
        self.cells = base
            .into_iter()
            .flat_map(|c| {
                threads_axis.iter().map(move |&t| {
                    let mut cell = c.clone();
                    cell.threads = t;
                    cell
                })
            })
            .collect();
        self
    }

    /// Replaces the arrival-rate axis: every unique open-loop cell modulo
    /// its schedule's rate is re-crossed with `rates` (deduplicated,
    /// order preserved), scaling each plan's request count with the rate
    /// so every cell measures the same wall-clock window. Closed-loop
    /// cells (no service/net plan, or a non-open schedule) pass through
    /// unchanged.
    pub fn with_rates(mut self, rates: &[f64]) -> Self {
        let mut axis: Vec<f64> = Vec::new();
        for &r in rates {
            if !axis.contains(&r) {
                axis.push(r);
            }
        }
        let mut cells: Vec<Cell> = Vec::new();
        for cell in &self.cells {
            let old_rate = match (&cell.service, &cell.net) {
                (Some(p), _) => match p.schedule {
                    Schedule::Open { rate } => Some(rate),
                    _ => None,
                },
                (_, Some(p)) => match p.schedule {
                    Schedule::Open { rate } => Some(rate),
                    _ => None,
                },
                _ => None,
            };
            let Some(old_rate) = old_rate else {
                if !cells.contains(cell) {
                    cells.push(cell.clone());
                }
                continue;
            };
            for &rate in &axis {
                let mut c = cell.clone();
                let scale = |requests: u64| ((requests as f64) * rate / old_rate).round() as u64;
                if let Some(p) = &mut c.service {
                    p.requests = scale(p.requests).max(1);
                    p.schedule = Schedule::Open { rate };
                }
                if let Some(p) = &mut c.net {
                    p.requests = scale(p.requests).max(1);
                    p.schedule = Schedule::Open { rate };
                }
                if !cells.contains(&c) {
                    cells.push(c);
                }
            }
        }
        self.cells = cells;
        self
    }

    /// The engine configuration for one cell under this spec's protocol.
    pub fn bench_config(&self, cell: &Cell, secs: f64, rep: u32) -> BenchConfig {
        cell.bench_config(secs, self.seed.wrapping_add(u64::from(rep)))
    }

    /// Total measured benchmark seconds (excluding warmup and builds) —
    /// printed up front so the user knows what they signed up for.
    pub fn measured_secs(&self) -> f64 {
        self.cells.len() as f64 * self.secs_per_cell * f64::from(self.repetitions)
    }
}

/// Sweep-wide options parsed from the command line — the shared flag
/// vocabulary of every figure/table binary (`--preset`, `--secs`,
/// `--threads`, `--seed`).
#[derive(Clone, Debug)]
pub struct SweepOpts {
    pub params: StructureParams,
    pub secs_per_cell: f64,
    pub threads: Vec<usize>,
    pub seed: u64,
}

impl SweepOpts {
    /// Parses the common flags of every binary:
    /// `--preset tiny|small|standard`, `--secs F`, `--threads a,b,c`,
    /// `--seed N`.
    pub fn from_args() -> SweepOpts {
        let mut opts = SweepOpts {
            params: StructureParams::small(),
            secs_per_cell: 1.0,
            threads: vec![1, 2, 3, 4, 6, 8],
            seed: 1,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let val = |i: &mut usize| -> String {
                *i += 1;
                argv.get(*i).cloned().unwrap_or_else(|| {
                    eprintln!("missing value for {}", argv[*i - 1]);
                    std::process::exit(2);
                })
            };
            match argv[i].as_str() {
                "--preset" => {
                    let v = val(&mut i);
                    opts.params = StructureParams::parse(&v).unwrap_or_else(|| {
                        eprintln!("unknown preset '{v}'");
                        std::process::exit(2);
                    });
                }
                "--secs" => opts.secs_per_cell = val(&mut i).parse().expect("--secs"),
                "--threads" => {
                    opts.threads = val(&mut i)
                        .split(',')
                        .map(|t| t.parse().expect("--threads"))
                        .collect();
                }
                "--seed" => opts.seed = val(&mut i).parse().expect("--seed"),
                other => {
                    eprintln!("unknown argument '{other}'");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        opts
    }
}

/// Runs one cell on a freshly built structure and returns its report —
/// the single sweep engine behind both the lab runner and every
/// figure/table binary.
pub fn run_cell(opts: &SweepOpts, cell: &Cell) -> Report {
    let params = cell.params(&opts.params);
    let ws = Workspace::build(params.clone(), opts.seed);
    let backend = AnyBackend::build(cell.backend, ws);
    let cfg = cell.bench_config(opts.secs_per_cell, opts.seed);
    run_benchmark(&backend, &params, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_a_full_cross_product() {
        let cells = grid(
            &[BackendChoice::Coarse, BackendChoice::Medium],
            &[WorkloadType::ReadDominated, WorkloadType::WriteDominated],
            &[1, 2, 4],
            false,
            true,
            false,
        );
        assert_eq!(cells.len(), 12);
        assert!(cells.iter().all(|c| !c.long_traversals && c.structure_mods));
    }

    #[test]
    fn cell_keys_are_distinct_and_stable() {
        let a = Cell::new(BackendChoice::Coarse, WorkloadType::ReadWrite, 2);
        assert_eq!(a.key(), "coarse/rw/2t");
        let mut b = a.clone();
        b.long_traversals = false;
        b.astm_friendly = true;
        assert_eq!(b.key(), "coarse/rw/2t/no-lt/astm-friendly");
        let custom = Cell::new(
            BackendChoice::Medium,
            WorkloadType::Custom { update_pct: 25 },
            4,
        );
        assert_eq!(custom.key(), "medium/u25/4t");
    }

    #[test]
    fn with_threads_regrids_preserving_other_axes() {
        let spec = ExperimentSpec {
            name: "t".into(),
            description: String::new(),
            params: StructureParams::tiny(),
            secs_per_cell: 0.1,
            warmup_secs: 0.0,
            repetitions: 1,
            seed: 1,
            cells: grid(
                &[BackendChoice::Coarse, BackendChoice::Medium],
                &[WorkloadType::ReadWrite],
                &[1, 2],
                true,
                true,
                false,
            ),
        };
        let re = spec.with_threads(&[8]);
        assert_eq!(re.cells.len(), 2);
        assert!(re.cells.iter().all(|c| c.threads == 8));
    }

    #[test]
    fn with_threads_dedups_the_axis() {
        let spec = ExperimentSpec {
            name: "t".into(),
            description: String::new(),
            params: StructureParams::tiny(),
            secs_per_cell: 0.1,
            warmup_secs: 0.0,
            repetitions: 1,
            seed: 1,
            cells: grid(
                &[BackendChoice::Coarse],
                &[WorkloadType::ReadWrite],
                &[1],
                true,
                true,
                false,
            ),
        };
        let re = spec.with_threads(&[2, 1, 2, 2]);
        let keys: Vec<String> = re.cells.iter().map(|c| c.key()).collect();
        assert_eq!(keys, vec!["coarse/rw/2t", "coarse/rw/1t"]);
    }

    #[test]
    fn run_cell_smoke() {
        let opts = SweepOpts {
            params: StructureParams::tiny(),
            secs_per_cell: 0.05,
            threads: vec![1],
            seed: 1,
        };
        let cell = Cell::new(BackendChoice::Coarse, WorkloadType::ReadWrite, 1);
        let report = run_cell(&opts, &cell);
        assert!(report.total_started() > 0);
    }
}
