//! Round-trip guarantee of the offline JSON path: a real `Report`
//! emitted by `Report::to_json_value()` (core's writer) must parse back
//! through the lab's reader with throughput, operation counts and STM
//! abort statistics intact.

use stmbench7_backend::{AnyBackend, BackendChoice};
use stmbench7_core::{run_benchmark, BenchConfig, JsonValue, Report, WorkloadType};
use stmbench7_data::{StructureParams, Workspace};
use stmbench7_lab::json::parse;

fn real_report(choice: BackendChoice) -> Report {
    let params = StructureParams::tiny();
    let ws = Workspace::build(params.clone(), 7);
    let backend = AnyBackend::build(choice, ws);
    let cfg = BenchConfig::deterministic(WorkloadType::ReadWrite, 300, 42);
    run_benchmark(&backend, &params, &cfg)
}

fn roundtrip(report: &Report) -> JsonValue {
    let rendered = report.to_json_value().render();
    parse(&rendered).expect("report JSON must parse back")
}

#[test]
fn lock_report_round_trips() {
    let report = real_report(BackendChoice::Coarse);
    let doc = roundtrip(&report);
    assert_eq!(
        doc.get("backend").and_then(JsonValue::as_str),
        Some("coarse")
    );
    assert_eq!(
        doc.get("completed").and_then(JsonValue::as_u64),
        Some(report.total_completed())
    );
    assert_eq!(
        doc.get("failed").and_then(JsonValue::as_u64),
        Some(report.total_failed())
    );
    let throughput = doc.get("throughput").and_then(JsonValue::as_f64).unwrap();
    assert!((throughput - report.throughput()).abs() < 1e-9 * report.throughput().max(1.0));
    // Locks have no STM statistics.
    assert_eq!(doc.get("stm"), Some(&JsonValue::Null));
    // Per-op rows cover exactly the operations that started.
    let per_op = doc.get("per_op").and_then(JsonValue::as_array).unwrap();
    let started = report.per_op.iter().filter(|o| o.started() > 0).count();
    assert_eq!(per_op.len(), started);
    let completed_sum: u64 = per_op
        .iter()
        .map(|o| o.get("completed").and_then(JsonValue::as_u64).unwrap())
        .sum();
    assert_eq!(completed_sum, report.total_completed());
}

#[test]
fn stm_report_round_trips_abort_counts() {
    let report = real_report(BackendChoice::Tl2 {
        granularity: stmbench7_backend::Granularity::Monolithic,
    });
    let doc = roundtrip(&report);
    let stm = report.stm.as_ref().expect("tl2 reports STM statistics");
    let stm_doc = doc.get("stm").expect("stm object present");
    assert_eq!(
        stm_doc.get("commits").and_then(JsonValue::as_u64),
        Some(stm.commits)
    );
    assert_eq!(
        stm_doc.get("aborts").and_then(JsonValue::as_u64),
        Some(stm.aborts)
    );
    assert_eq!(
        stm_doc.get("validation_steps").and_then(JsonValue::as_u64),
        Some(stm.validation_steps)
    );
    let ratio = stm_doc
        .get("abort_ratio")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!((ratio - stm.abort_ratio()).abs() < 1e-12);
}

#[test]
fn rendering_is_stable_through_a_parse_cycle() {
    let report = real_report(BackendChoice::Medium);
    let first = report.to_json_value().render();
    let second = parse(&first).unwrap().render();
    assert_eq!(
        first, second,
        "render∘parse must be the identity on rendered docs"
    );
}
