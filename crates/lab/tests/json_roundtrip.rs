//! Round-trip guarantee of the offline JSON path: a real `Report`
//! emitted by `Report::to_json_value()` (core's writer) must parse back
//! through the lab's reader with throughput, operation counts and STM
//! abort statistics intact.

use stmbench7_backend::{AnyBackend, BackendChoice};
use stmbench7_core::{run_benchmark, BenchConfig, JsonValue, Report, WorkloadType};
use stmbench7_data::{StructureParams, Workspace};
use stmbench7_lab::json::parse;

fn real_report(choice: BackendChoice) -> Report {
    let params = StructureParams::tiny();
    let ws = Workspace::build(params.clone(), 7);
    let backend = AnyBackend::build(choice, ws);
    let cfg = BenchConfig::deterministic(WorkloadType::ReadWrite, 300, 42);
    run_benchmark(&backend, &params, &cfg)
}

fn roundtrip(report: &Report) -> JsonValue {
    let rendered = report.to_json_value().render();
    parse(&rendered).expect("report JSON must parse back")
}

#[test]
fn lock_report_round_trips() {
    let report = real_report(BackendChoice::Coarse);
    let doc = roundtrip(&report);
    assert_eq!(
        doc.get("backend").and_then(JsonValue::as_str),
        Some("coarse")
    );
    assert_eq!(
        doc.get("completed").and_then(JsonValue::as_u64),
        Some(report.total_completed())
    );
    assert_eq!(
        doc.get("failed").and_then(JsonValue::as_u64),
        Some(report.total_failed())
    );
    let throughput = doc.get("throughput").and_then(JsonValue::as_f64).unwrap();
    assert!((throughput - report.throughput()).abs() < 1e-9 * report.throughput().max(1.0));
    // Locks have no STM statistics.
    assert_eq!(doc.get("stm"), Some(&JsonValue::Null));
    // Per-op rows cover exactly the operations that started.
    let per_op = doc.get("per_op").and_then(JsonValue::as_array).unwrap();
    let started = report.per_op.iter().filter(|o| o.started() > 0).count();
    assert_eq!(per_op.len(), started);
    let completed_sum: u64 = per_op
        .iter()
        .map(|o| o.get("completed").and_then(JsonValue::as_u64).unwrap())
        .sum();
    assert_eq!(completed_sum, report.total_completed());
}

#[test]
fn stm_report_round_trips_abort_counts() {
    let report = real_report(BackendChoice::Tl2 {
        granularity: stmbench7_backend::Granularity::Monolithic,
    });
    let doc = roundtrip(&report);
    let stm = report.stm.as_ref().expect("tl2 reports STM statistics");
    let stm_doc = doc.get("stm").expect("stm object present");
    assert_eq!(
        stm_doc.get("commits").and_then(JsonValue::as_u64),
        Some(stm.commits)
    );
    assert_eq!(
        stm_doc.get("aborts").and_then(JsonValue::as_u64),
        Some(stm.aborts)
    );
    assert_eq!(
        stm_doc.get("validation_steps").and_then(JsonValue::as_u64),
        Some(stm.validation_steps)
    );
    let ratio = stm_doc
        .get("abort_ratio")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!((ratio - stm.abort_ratio()).abs() < 1e-12);
}

#[test]
fn service_report_round_trips_the_latency_split() {
    use stmbench7_service::{serve, Schedule, ServeConfig};

    let params = StructureParams::tiny();
    let ws = Workspace::build(params.clone(), 7);
    let backend = AnyBackend::build(BackendChoice::Coarse, ws);
    let cfg = ServeConfig::new(
        Schedule::Open { rate: 200_000.0 },
        WorkloadType::ReadWrite,
        42,
    );
    let requests = cfg.generate(300);
    let report = serve(&backend, &params, &cfg, &requests).report;

    let doc = roundtrip(&report);
    let svc_doc = doc.get("service").expect("service object present");
    let svc = report.service.as_ref().unwrap();
    assert_eq!(
        svc_doc.get("schedule").and_then(JsonValue::as_str),
        Some("open200000")
    );
    assert_eq!(
        svc_doc.get("offered").and_then(JsonValue::as_u64),
        Some(svc.offered)
    );
    assert_eq!(
        svc_doc.get("rejected").and_then(JsonValue::as_u64),
        Some(svc.rejected)
    );
    for (key, hist) in [
        ("queue_wait_us", &svc.queue_wait),
        ("service_time_us", &svc.service_time),
        ("e2e_us", &svc.e2e),
    ] {
        let lat = svc_doc.get(key).unwrap_or_else(|| panic!("missing {key}"));
        assert_eq!(
            lat.get("p95").and_then(JsonValue::as_u64),
            hist.percentile_us(95.0),
            "{key}.p95"
        );
        assert_eq!(
            lat.get("samples").and_then(JsonValue::as_u64),
            Some(hist.samples()),
            "{key}.samples"
        );
    }
}

#[test]
fn version_1_documents_still_read_and_gate() {
    use stmbench7_lab::{compare_documents, format_supported, Tolerance, FORMAT_V1};

    // A hand-written v1 document, exactly as the pre-service binary
    // emitted it: no `service` keys anywhere.
    let v1_text = r#"{
  "format": "stmbench7-lab/1",
  "spec": "smoke",
  "cells": [
    {
      "key": "coarse/rw/1t",
      "completed": 1000,
      "throughput": {
        "median": 5000.0
      }
    }
  ]
}"#;
    let v1 = parse(v1_text).expect("v1 documents must parse");
    assert_eq!(
        v1.get("format").and_then(JsonValue::as_str),
        Some(FORMAT_V1)
    );
    assert!(format_supported(FORMAT_V1));

    // v1 as baseline against a v2 current document.
    let current = parse(
        &v1_text
            .replace("stmbench7-lab/1", "stmbench7-lab/2")
            .replace("5000.0", "4800.0"),
    )
    .unwrap();
    let cmp = compare_documents(&v1, &current, Tolerance(1.25)).unwrap();
    assert!(cmp.ok(), "4% slowdown is within 25% tolerance");
    assert_eq!(cmp.cells.len(), 1);
}

#[test]
fn rendering_is_stable_through_a_parse_cycle() {
    let report = real_report(BackendChoice::Medium);
    let first = report.to_json_value().render();
    let second = parse(&first).unwrap().render();
    assert_eq!(
        first, second,
        "render∘parse must be the identity on rendered docs"
    );
}
