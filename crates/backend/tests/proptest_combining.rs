//! Property tests for the delegation machinery: under arbitrary
//! interleavings of publish and combine, no operation is lost, each
//! executes exactly once, and per-thread program order is preserved.
//!
//! The end-to-end properties run real concurrent publishers against both
//! delegation backends; the queue property exercises the shared
//! submission queue (`BoundedQueue::drain`) directly.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use stmbench7_backend::{
    Backend, BoundedQueue, CombiningStats, DedicatedServerBackend, FlatCombiningBackend,
    TxOperation,
};
use stmbench7_data::{AccessSpec, AtomicPartId, Mode, Sb7Tx, StructureParams, TxR, Workspace};

/// Collects every atomic part id, so each publisher thread can own one.
struct CollectIds;
impl TxOperation<Vec<AtomicPartId>> for CollectIds {
    fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<Vec<AtomicPartId>> {
        tx.all_atomic_ids()
    }
}

/// Writes `step` into the thread's own atomic part and returns the
/// previous value — the program-order probe: if the thread's prior
/// operation was lost, reordered or doubly applied, the returned value
/// cannot be `step - 1`. The shared counter catches re-execution even
/// when the workspace state happens to look right.
struct StepOp<'a> {
    id: AtomicPartId,
    step: i32,
    executions: &'a AtomicU64,
}

impl TxOperation<i32> for StepOp<'_> {
    fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<i32> {
        self.executions.fetch_add(1, Ordering::Relaxed);
        let step = self.step;
        tx.atomic_mut(self.id, |p| {
            let prev = p.x;
            p.x = step;
            prev
        })
    }
}

fn write_spec() -> AccessSpec {
    AccessSpec::new().regular().atomics(Mode::Write)
}

/// Drives `threads` concurrent publishers, each issuing `ops_per_thread`
/// sequenced writes to its own atomic part, and checks the exactly-once
/// and program-order properties plus the backend's combiner ledger.
fn check_delegation<B: Backend + HasCombiningStats>(
    backend: &B,
    threads: usize,
    ops_per_thread: i32,
) -> CombiningStats {
    let ids = backend.execute(&write_spec(), &mut CollectIds);
    assert!(ids.len() >= threads, "tiny structure has a part per thread");
    // One execution counter per (thread, step), shared with the ops.
    let counters: Vec<AtomicU64> = (0..threads * ops_per_thread as usize)
        .map(|_| AtomicU64::new(0))
        .collect();
    std::thread::scope(|scope| {
        for (t, &id) in ids.iter().enumerate().take(threads) {
            let counters = &counters;
            let backend = &backend;
            scope.spawn(move || {
                for step in 1..=ops_per_thread {
                    let slot = t * ops_per_thread as usize + (step as usize - 1);
                    let prev = backend.execute(
                        &write_spec(),
                        &mut StepOp {
                            id,
                            step,
                            executions: &counters[slot],
                        },
                    );
                    // Program order: this thread's previous write (and
                    // nothing else) is what the combiner applied last to
                    // this part.
                    if step > 1 {
                        assert_eq!(prev, step - 1, "thread {t}: step {step} observed {prev}");
                    }
                }
            });
        }
    });
    for (slot, counter) in counters.iter().enumerate() {
        assert_eq!(
            counter.load(Ordering::Relaxed),
            1,
            "operation {slot} must execute exactly once"
        );
    }
    backend.stats()
}

/// Small helper trait so the checker can read either backend's ledger.
trait HasCombiningStats {
    fn stats(&self) -> CombiningStats;
}
impl HasCombiningStats for FlatCombiningBackend {
    fn stats(&self) -> CombiningStats {
        self.combining_stats()
    }
}
impl HasCombiningStats for DedicatedServerBackend {
    fn stats(&self) -> CombiningStats {
        self.combining_stats()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // Each case runs real threads against both backends.
        ..ProptestConfig::default()
    })]

    /// Arbitrary publisher interleavings through both delegation
    /// backends: nothing lost, nothing doubled, program order intact,
    /// and the combiner ledger accounts for every operation (the +1 is
    /// the id-collection op).
    #[test]
    fn delegation_is_exactly_once_and_in_program_order(
        threads in 1usize..=4,
        ops_per_thread in 1i32..=32,
        build_seed in 0u64..1_000,
        shards in prop_oneof![Just(1usize), Just(8usize)],
    ) {
        let params = StructureParams::tiny().with_shards(shards);
        let total = 1 + (threads as u64) * (ops_per_thread as u64);

        let fc = FlatCombiningBackend::new(Workspace::build(params.clone(), build_seed));
        let stats = check_delegation(&fc, threads, ops_per_thread);
        prop_assert_eq!(stats.combined, total, "flatcomb ledger");
        prop_assert!(stats.combines >= 1);
        prop_assert!(stats.handoffs >= 1);

        let rcl = DedicatedServerBackend::new(Workspace::build(params, build_seed));
        let stats = check_delegation(&rcl, threads, ops_per_thread);
        prop_assert_eq!(stats.combined, total, "rcl ledger");
        prop_assert_eq!(stats.handoffs, 1, "the server never yields the role");
    }

    /// The shared submission queue (the drain loop both the RCL server
    /// and the service worker pool run): concurrent producers pushing
    /// disjoint sequences through one draining consumer lose nothing,
    /// deliver nothing twice, and keep each producer's order.
    #[test]
    fn submission_queue_drain_is_exactly_once_and_fifo_per_producer(
        producers in 1usize..=4,
        items_per_producer in 1u32..=64,
        cap in 1usize..=16,
        batch_max in 1usize..=8,
    ) {
        let queue: BoundedQueue<(usize, u32)> = BoundedQueue::new(cap);
        let delivered = std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut seen = Vec::new();
                queue.drain(batch_max, |_, _| true, |batch| seen.extend(batch));
                seen
            });
            std::thread::scope(|inner| {
                for p in 0..producers {
                    let queue = &queue;
                    inner.spawn(move || {
                        for i in 0..items_per_producer {
                            queue.push_blocking((p, i));
                        }
                    });
                }
            });
            queue.close();
            consumer.join().expect("consumer must finish")
        });
        prop_assert_eq!(
            delivered.len(),
            producers * items_per_producer as usize,
            "no item lost or doubled"
        );
        // Per-producer FIFO: each producer's items arrive in push order.
        let mut next = vec![0u32; producers];
        for (p, i) in delivered {
            prop_assert_eq!(i, next[p], "producer {} out of order", p);
            next[p] += 1;
        }
    }
}
