//! A bounded MPMC submission queue with two admission-control policies
//! and head-of-line batch draining.
//!
//! This lives in the backend crate because it is the combiner core shared
//! by two layers: the service worker pool (`stmbench7-service` drains
//! request batches through it) and the dedicated-server delegation
//! backend ([`crate::combining::DedicatedServerBackend`] drains submitted
//! operations through it). Both consume the queue via [`BoundedQueue::drain`],
//! so batching and shutdown are written once.
//!
//! Built on `std::sync::{Mutex, Condvar}` — the vendored `parking_lot`
//! stand-in has no condition variables, and the queue is not the hot path
//! (operations are; the queue hands them out).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// What to do with an arrival when the queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Apply backpressure: the producer waits for space (no request is
    /// ever lost, but the arrival process stalls).
    Block,
    /// Reject-on-full: the request is dropped and counted; the arrival
    /// process never stalls (the paper-realistic overload behavior).
    Reject,
}

impl Admission {
    /// Parses the CLI spelling (`block` / `reject`).
    pub fn parse(s: &str) -> Option<Admission> {
        match s {
            "block" => Some(Admission::Block),
            "reject" => Some(Admission::Reject),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn key(&self) -> &'static str {
        match self {
            Admission::Block => "block",
            Admission::Reject => "reject",
        }
    }
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO shared between producers (dispatchers, publishers) and
/// consumers (workers, the dedicated server).
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// An open queue holding at most `cap` items.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(cap),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        }
    }

    /// Enqueues, waiting while the queue is full ([`Admission::Block`]).
    pub fn push_blocking(&self, item: T) {
        let mut state = self.state.lock().expect("queue poisoned");
        while state.items.len() >= self.cap {
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
    }

    /// Enqueues unless the queue is full ([`Admission::Reject`]); returns
    /// the rejected item on overflow.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.items.len() >= self.cap {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues a batch: blocks for the first item, then greedily drains
    /// up to `max - 1` more items from the head while `compatible(first,
    /// next)` holds (never blocking for them). Returns an empty vector
    /// once the queue is closed and drained — the consumers' shutdown
    /// signal.
    pub fn pop_batch(&self, max: usize, compatible: impl Fn(&T, &T) -> bool) -> Vec<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(first) = state.items.pop_front() {
                let mut batch = vec![first];
                while batch.len() < max {
                    match state.items.front() {
                        Some(next) if compatible(&batch[0], next) => {
                            let next = state.items.pop_front().expect("peeked");
                            batch.push(next);
                        }
                        _ => break,
                    }
                }
                drop(state);
                // Space opened up for a blocked producer; batch drains can
                // free more than one slot.
                self.not_full.notify_all();
                return batch;
            }
            if state.closed {
                return Vec::new();
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Like [`Self::pop_batch`], but never blocks: returns an empty
    /// vector immediately when nothing is queued (whether or not the
    /// queue is closed). The shard-affine worker loop uses this to try
    /// its own sub-queue and then steal from peers without sleeping on
    /// any single queue's condvar.
    pub fn try_pop_batch(&self, max: usize, compatible: impl Fn(&T, &T) -> bool) -> Vec<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        let Some(first) = state.items.pop_front() else {
            return Vec::new();
        };
        let mut batch = vec![first];
        while batch.len() < max {
            match state.items.front() {
                Some(next) if compatible(&batch[0], next) => {
                    let next = state.items.pop_front().expect("peeked");
                    batch.push(next);
                }
                _ => break,
            }
        }
        drop(state);
        self.not_full.notify_all();
        batch
    }

    /// Like [`Self::pop_batch`], but waits at most `timeout` for the
    /// first item. Returns an empty vector on timeout *or* once the
    /// queue is closed and drained — callers that need to distinguish
    /// the two check [`Self::is_finished`].
    pub fn pop_batch_timeout(
        &self,
        max: usize,
        compatible: impl Fn(&T, &T) -> bool,
        timeout: std::time::Duration,
    ) -> Vec<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(first) = state.items.pop_front() {
                let mut batch = vec![first];
                while batch.len() < max {
                    match state.items.front() {
                        Some(next) if compatible(&batch[0], next) => {
                            let next = state.items.pop_front().expect("peeked");
                            batch.push(next);
                        }
                        _ => break,
                    }
                }
                drop(state);
                self.not_full.notify_all();
                return batch;
            }
            if state.closed {
                return Vec::new();
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Vec::new();
            }
            let (next_state, _timed_out) = self
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("queue poisoned");
            state = next_state;
        }
    }

    /// True once the queue is closed *and* fully drained: the stream has
    /// ended and no future pop can return anything.
    pub fn is_finished(&self) -> bool {
        let state = self.state.lock().expect("queue poisoned");
        state.closed && state.items.is_empty()
    }

    /// The combiner loop: pops batches (via [`Self::pop_batch`]) and
    /// hands each to `run` until the queue is closed and drained. The
    /// service worker pool and the dedicated-server backend both consume
    /// the queue through this one loop.
    pub fn drain(
        &self,
        max: usize,
        compatible: impl Fn(&T, &T) -> bool,
        mut run: impl FnMut(Vec<T>),
    ) {
        loop {
            let batch = self.pop_batch(max, &compatible);
            if batch.is_empty() {
                return; // closed and drained
            }
            run(batch);
        }
    }

    /// Closes the queue: consumers drain the remaining items and then
    /// observe the end of the stream.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Items currently queued (racy by nature; for observation only).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// True when nothing is queued (racy by nature; for observation only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_close() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push_blocking(i);
        }
        q.close();
        let a = q.pop_batch(1, |_, _| true);
        assert_eq!(a, vec![0]);
        let rest = q.pop_batch(10, |_, _| true);
        assert_eq!(rest, vec![1, 2, 3, 4]);
        assert!(q.pop_batch(1, |_, _| true).is_empty(), "closed and drained");
    }

    #[test]
    fn try_push_rejects_on_full() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
        q.pop_batch(1, |_, _| true);
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn batch_stops_at_the_first_incompatible_item() {
        let q = BoundedQueue::new(8);
        for x in [2, 4, 6, 7, 8] {
            q.push_blocking(x);
        }
        // Compatible = same parity as the batch head.
        let batch = q.pop_batch(5, |a, b| a % 2 == b % 2);
        assert_eq!(batch, vec![2, 4, 6]);
        q.close();
        assert_eq!(q.pop_batch(5, |a, b| a % 2 == b % 2), vec![7]);
        assert_eq!(q.pop_batch(5, |a, b| a % 2 == b % 2), vec![8]);
    }

    #[test]
    fn batch_respects_max() {
        let q = BoundedQueue::new(8);
        for x in 0..6 {
            q.push_blocking(x);
        }
        assert_eq!(q.pop_batch(4, |_, _| true).len(), 4);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn blocking_producer_resumes_after_consumption() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push_blocking(0u32);
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_blocking(1))
        };
        // The producer is blocked on a full queue until we drain it.
        assert_eq!(q.pop_batch(1, |_, _| true), vec![0]);
        producer.join().expect("producer must finish");
        q.close();
        assert_eq!(q.pop_batch(1, |_, _| true), vec![1]);
    }

    #[test]
    fn consumers_wake_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(1, |_, _| true))
        };
        q.close();
        assert!(consumer.join().expect("consumer must finish").is_empty());
    }

    #[test]
    fn try_pop_never_blocks_and_respects_compatibility() {
        let q = BoundedQueue::new(8);
        assert!(q.try_pop_batch(4, |_, _| true).is_empty(), "empty queue");
        for x in [2, 4, 5] {
            q.push_blocking(x);
        }
        assert_eq!(q.try_pop_batch(4, |a, b| a % 2 == b % 2), vec![2, 4]);
        assert_eq!(q.try_pop_batch(4, |_, _| true), vec![5]);
        assert!(!q.is_finished(), "open queues are never finished");
        q.close();
        assert!(q.try_pop_batch(4, |_, _| true).is_empty());
        assert!(q.is_finished(), "closed and drained");
    }

    #[test]
    fn pop_batch_timeout_returns_empty_on_deadline_and_on_close() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let t0 = std::time::Instant::now();
        let batch = q.pop_batch_timeout(4, |_, _| true, std::time::Duration::from_millis(5));
        assert!(batch.is_empty());
        assert!(t0.elapsed() >= std::time::Duration::from_millis(4));
        assert!(!q.is_finished(), "timeout is not end-of-stream");
        q.push_blocking(9);
        assert_eq!(
            q.pop_batch_timeout(4, |_, _| true, std::time::Duration::from_secs(1)),
            vec![9]
        );
        q.close();
        assert!(q
            .pop_batch_timeout(4, |_, _| true, std::time::Duration::from_secs(1))
            .is_empty());
        assert!(q.is_finished());
    }

    #[test]
    fn drain_consumes_everything_then_stops_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(16));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                q.drain(4, |_, _| true, |batch| seen.extend(batch));
                seen
            })
        };
        for x in 0..10 {
            q.push_blocking(x);
        }
        q.close();
        let seen = consumer.join().expect("drain must finish");
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }
}
