//! The lock-based synchronization strategies.
//!
//! * **Sequential** — a single mutex; every operation is exclusive. Used
//!   as the determinism oracle in tests and the single-thread floor in
//!   benches.
//! * **Coarse-grained** — the paper's baseline: one read-write lock
//!   protects the whole structure; read-only operations share it,
//!   updating ones take it exclusively.
//! * **Medium-grained** — the paper's Figure 5: one read-write lock per
//!   assembly level, one for all composite parts, one for all documents,
//!   one for the manual, plus a structure-modification gate (write mode
//!   for SM1–SM8, read mode for everything else). The atomic-part group —
//!   the contention hot spot §5 diagnoses — is split into
//!   `StructureParams::index_shards` lock shards ([`AtomicLockShard`]):
//!   each shard owns the parts whose raw id routes to it *and* that
//!   shard's slices of indexes 1 and 2, so an operation whose
//!   [`AccessSpec::atomic_shards`] is narrowed (the OP1/OP9/OP15 family)
//!   locks only the shards it touches. Locks are always acquired in one
//!   canonical order — gate, levels top-down, composites, atomic shards
//!   ascending, documents, manual — so deadlock is impossible by
//!   construction.

use std::time::Instant;

use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use stmbench7_obs::{ContentionCounters, ContentionSnapshot, EventKind, Layer, Recorder};

use stmbench7_data::access::PoolKind;
use stmbench7_data::btree::BTree;
use stmbench7_data::sharded::MAX_SHARDS;
use stmbench7_data::spec::{AccessSpec, Mode, MAX_LEVELS};
use stmbench7_data::workspace::{
    AtomicGroup, BaseGroup, ComplexLevelGroup, CompositeGroup, DirectTx, DocGroup, SmState, Store,
    Workspace,
};
use stmbench7_data::{
    AtomicPart, AtomicPartId, BaseAssembly, BaseAssemblyId, ComplexAssembly, ComplexAssemblyId,
    CompositePart, CompositePartId, Document, DocumentId, Manual, Module, Sb7Tx, StructureParams,
    TxErr, TxR,
};

use crate::{Backend, TxOperation};

/// The observability pair a lock backend owns: always-on contention
/// counters plus an (off by default) trace recorder handle.
#[derive(Debug, Default)]
pub(crate) struct LockObs {
    pub recorder: Recorder,
    pub counters: ContentionCounters,
}

impl LockObs {
    /// Timed read acquisition: the uncontended try-path pays no clock
    /// read; a blocked one is counted and traced as a lock-wait span.
    /// `shard` marks atomic-shard locks for conflict attribution.
    fn read<'a, T>(
        &self,
        lock: &'a RwLock<T>,
        name: &'static str,
        shard: bool,
    ) -> RwLockReadGuard<'a, T> {
        match lock.try_read() {
            Some(g) => {
                self.counters.lock_acquired(0, false);
                g
            }
            None => self.read_slow(lock, name, shard),
        }
    }

    #[cold]
    fn read_slow<'a, T>(
        &self,
        lock: &'a RwLock<T>,
        name: &'static str,
        shard: bool,
    ) -> RwLockReadGuard<'a, T> {
        let t0 = Instant::now();
        let g = lock.read();
        self.waited(t0, name, shard);
        g
    }

    /// Timed write acquisition (see [`LockObs::read`]).
    fn write<'a, T>(
        &self,
        lock: &'a RwLock<T>,
        name: &'static str,
        shard: bool,
    ) -> RwLockWriteGuard<'a, T> {
        match lock.try_write() {
            Some(g) => {
                self.counters.lock_acquired(0, false);
                g
            }
            None => self.write_slow(lock, name, shard),
        }
    }

    #[cold]
    fn write_slow<'a, T>(
        &self,
        lock: &'a RwLock<T>,
        name: &'static str,
        shard: bool,
    ) -> RwLockWriteGuard<'a, T> {
        let t0 = Instant::now();
        let g = lock.write();
        self.waited(t0, name, shard);
        g
    }

    fn waited(&self, t0: Instant, name: &'static str, shard: bool) {
        let wait_ns = (t0.elapsed().as_nanos() as u64).max(1);
        self.counters.lock_acquired(wait_ns, shard);
        if self.recorder.is_enabled() {
            let now = self.recorder.now_ns();
            self.recorder.push(
                Layer::Backend,
                EventKind::LockWait,
                name,
                now.saturating_sub(wait_ns),
                wait_ns,
                0,
            );
        }
    }
}

/// Single-mutex backend: fully serialized execution.
pub struct SequentialBackend {
    ws: Mutex<Workspace>,
}

impl SequentialBackend {
    /// Wraps a built workspace.
    pub fn new(ws: Workspace) -> Self {
        SequentialBackend { ws: Mutex::new(ws) }
    }
}

impl Backend for SequentialBackend {
    fn execute<R: Send, O: TxOperation<R> + Send>(&self, _spec: &AccessSpec, op: &mut O) -> R {
        let mut ws = self.ws.lock();
        let mut tx = DirectTx::writing(&mut ws);
        op.begin_attempt();
        unwrap_lock_result(op.run(&mut tx))
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn export(&self) -> Workspace {
        self.ws.lock().clone()
    }
}

/// The paper's coarse-grained strategy: one read-write lock.
pub struct CoarseBackend {
    ws: RwLock<Workspace>,
    obs: LockObs,
}

impl CoarseBackend {
    /// Wraps a built workspace.
    pub fn new(ws: Workspace) -> Self {
        CoarseBackend {
            ws: RwLock::new(ws),
            obs: LockObs::default(),
        }
    }

    /// Attaches a trace recorder (builder style, before sharing).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.obs.recorder = recorder;
        self
    }
}

impl Backend for CoarseBackend {
    fn execute<R: Send, O: TxOperation<R> + Send>(&self, spec: &AccessSpec, op: &mut O) -> R {
        let rec = &self.obs.recorder;
        let sampled = rec.sampled();
        let t0 = if sampled { rec.now_ns() } else { 0 };
        if spec.any_write() {
            let mut ws = self.obs.write(&self.ws, "coarse", false);
            if sampled {
                rec.span(Layer::Backend, EventKind::Phase, "lock-plan", t0, 0);
            }
            let t1 = if sampled { rec.now_ns() } else { 0 };
            let mut tx = DirectTx::writing(&mut ws);
            op.begin_attempt();
            let r = op.run(&mut tx);
            if sampled {
                rec.span(Layer::Backend, EventKind::Phase, "execute", t1, 0);
            }
            unwrap_lock_result(r)
        } else {
            let ws = self.obs.read(&self.ws, "coarse", false);
            if sampled {
                rec.span(Layer::Backend, EventKind::Phase, "lock-plan", t0, 0);
            }
            let t1 = if sampled { rec.now_ns() } else { 0 };
            let mut tx = DirectTx::reading(&ws);
            op.begin_attempt();
            let r = op.run(&mut tx);
            if sampled {
                rec.span(Layer::Backend, EventKind::Phase, "execute", t1, 0);
            }
            unwrap_lock_result(r)
        }
    }

    fn name(&self) -> &'static str {
        "coarse"
    }

    fn export(&self) -> Workspace {
        self.ws.read().clone()
    }

    fn contention(&self) -> Option<ContentionSnapshot> {
        Some(self.obs.counters.snapshot())
    }
}

pub(crate) fn unwrap_lock_result<R>(r: TxR<R>) -> R {
    match r {
        Ok(v) => v,
        Err(TxErr::Abort) => unreachable!("lock-based transactions cannot abort"),
        Err(TxErr::Invariant(msg)) => panic!("operation violated its access spec: {msg}"),
    }
}

/// One lock shard of the atomic-part group: the parts whose raw id routes
/// here (stored densely at `raw / shards`) plus this shard's slices of
/// index 1 (id) and index 2 (build date — whose `(date, id)` entries
/// route by id, so a date update touches exactly one shard).
pub struct AtomicLockShard {
    shards: usize,
    store: Store<AtomicPart>,
    by_id: BTree<u32, ()>,
    by_date: BTree<(i32, u32), ()>,
}

impl AtomicLockShard {
    fn local(&self, raw: u32) -> u32 {
        raw / self.shards as u32
    }

    fn get(&self, raw: u32) -> Option<&AtomicPart> {
        self.store.get(self.local(raw))
    }

    fn get_mut(&mut self, raw: u32) -> Option<&mut AtomicPart> {
        let local = self.local(raw);
        self.store.get_mut(local)
    }

    fn create(&mut self, p: AtomicPart) {
        let raw = p.id.raw();
        self.by_id.insert(raw, ());
        self.by_date.insert((p.build_date, raw), ());
        let local = self.local(raw);
        self.store.insert(local, p);
    }

    fn delete(&mut self, raw: u32) -> Option<AtomicPart> {
        let local = self.local(raw);
        let p = self.store.remove(local)?;
        self.by_id.remove(&raw);
        self.by_date.remove(&(p.build_date, raw));
        Some(p)
    }

    /// Fills the store during construction, when the index slices are
    /// already populated (they arrive pre-split from the workspace).
    fn create_store_only(&mut self, raw: u32, p: AtomicPart) {
        let local = self.local(raw);
        self.store.insert(local, p);
    }

    fn set_date(&mut self, raw: u32, date: i32) -> bool {
        let local = self.local(raw);
        let Some(p) = self.store.get_mut(local) else {
            return false;
        };
        let old = p.build_date;
        p.build_date = date;
        self.by_date.remove(&(old, raw));
        self.by_date.insert((date, raw), ());
        true
    }
}

/// The paper's medium-grained strategy (Figure 5), with the atomic-part
/// group split into per-shard locks (see module docs).
pub struct MediumBackend {
    params: StructureParams,
    module: Module,
    sm: RwLock<SmState>,
    bases: RwLock<BaseGroup>,
    complexes: Vec<RwLock<ComplexLevelGroup>>,
    composites: RwLock<CompositeGroup>,
    atomics: Vec<RwLock<AtomicLockShard>>,
    documents: RwLock<DocGroup>,
    manual: RwLock<Manual>,
    obs: LockObs,
}

impl MediumBackend {
    /// Partitions a built workspace along the Figure 5 lock groups,
    /// splitting the atomic-part group `params.index_shards` ways.
    pub fn new(ws: Workspace) -> Self {
        let shards = ws.params.effective_shards();
        let local_max = ws.params.max_atomics() / shards as u32;
        let by_id_shards = ws.atomics.by_id.into_shards();
        let by_date_shards = ws.atomics.by_date.into_shards();
        let mut atomics: Vec<AtomicLockShard> = by_id_shards
            .into_iter()
            .zip(by_date_shards)
            .map(|(by_id, by_date)| AtomicLockShard {
                shards,
                store: Store::new(local_max),
                by_id,
                by_date,
            })
            .collect();
        for (raw, part) in ws.atomics.store.into_entries() {
            atomics[raw as usize % shards].create_store_only(raw, part);
        }
        MediumBackend {
            params: ws.params,
            module: ws.module,
            sm: RwLock::new(ws.sm),
            bases: RwLock::new(ws.bases),
            complexes: ws.complexes.into_iter().map(RwLock::new).collect(),
            composites: RwLock::new(ws.composites),
            atomics: atomics.into_iter().map(RwLock::new).collect(),
            documents: RwLock::new(ws.documents),
            manual: RwLock::new(ws.manual),
            obs: LockObs::default(),
        }
    }

    /// Attaches a trace recorder (builder style, before sharing).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.obs.recorder = recorder;
        self
    }

    /// Number of assembly levels configured.
    fn levels(&self) -> usize {
        self.complexes.len() + 1
    }
}

impl Backend for MediumBackend {
    fn execute<R: Send, O: TxOperation<R> + Send>(&self, spec: &AccessSpec, op: &mut O) -> R {
        // Canonical acquisition order (see module docs): the SM gate, then
        // assembly levels top-down, then composites, atomic shards
        // ascending, documents, manual. All operations declare the gate,
        // so it always comes first, which is what isolates SM operations
        // from everything.
        let rec = &self.obs.recorder;
        let sampled = rec.sampled();
        let t0 = if sampled { rec.now_ns() } else { 0 };
        let sm = Guard::acquire(&self.sm, spec.sm, &self.obs, "sm-gate", false);
        // Fixed-size guard arrays: the lock plan lives entirely on the
        // stack, so the hot path allocates nothing per execute.
        let mut complexes: [Guard<'_, ComplexLevelGroup>; MAX_LEVELS - 1] =
            std::array::from_fn(|_| Guard::None);
        let mut bases = Guard::None;
        for level in (1..=self.levels()).rev() {
            let mode = spec.levels[level - 1];
            if level == 1 {
                bases = Guard::acquire(&self.bases, mode, &self.obs, "bases", false);
            } else {
                complexes[level - 2] = Guard::acquire(
                    &self.complexes[level - 2],
                    mode,
                    &self.obs,
                    "complex",
                    false,
                );
            }
        }
        let composites = Guard::acquire(
            &self.composites,
            spec.composites,
            &self.obs,
            "composites",
            false,
        );
        // Per-shard atomic locks: only the declared shards are taken, so
        // narrowed operations on different shards run concurrently.
        let mut atomics: [Guard<'_, AtomicLockShard>; MAX_SHARDS] =
            std::array::from_fn(|_| Guard::None);
        for (s, lock) in self.atomics.iter().enumerate() {
            if spec.atomic_shards.contains(s) {
                atomics[s] = Guard::acquire(lock, spec.atomics, &self.obs, "shard", true);
            }
        }
        let documents = Guard::acquire(
            &self.documents,
            spec.documents,
            &self.obs,
            "documents",
            false,
        );
        let manual = Guard::acquire(&self.manual, spec.manual, &self.obs, "manual", false);
        if sampled {
            rec.span(Layer::Backend, EventKind::Phase, "lock-plan", t0, 0);
        }
        let t1 = if sampled { rec.now_ns() } else { 0 };

        let mut tx = MediumTx {
            module: &self.module,
            sm,
            bases,
            complexes,
            complex_levels: self.complexes.len(),
            composites,
            atomics,
            shards: self.atomics.len(),
            documents,
            manual,
        };
        op.begin_attempt();
        let r = op.run(&mut tx);
        if sampled {
            rec.span(Layer::Backend, EventKind::Phase, "execute", t1, 0);
        }
        let t2 = if sampled { rec.now_ns() } else { 0 };
        drop(tx);
        if sampled {
            rec.span(Layer::Backend, EventKind::Phase, "commit", t2, 0);
        }
        unwrap_lock_result(r)
    }

    fn name(&self) -> &'static str {
        "medium"
    }

    fn export(&self) -> Workspace {
        let mut atomics =
            AtomicGroup::new(self.params.max_atomics(), self.params.effective_shards());
        for shard in &self.atomics {
            let shard = shard.read();
            for (_, part) in shard.store.iter() {
                atomics.create(part.clone());
            }
        }
        Workspace {
            params: self.params.clone(),
            module: self.module.clone(),
            manual: self.manual.read().clone(),
            sm: self.sm.read().clone(),
            bases: self.bases.read().clone(),
            complexes: self.complexes.iter().map(|g| g.read().clone()).collect(),
            composites: self.composites.read().clone(),
            atomics,
            documents: self.documents.read().clone(),
        }
    }

    fn contention(&self) -> Option<ContentionSnapshot> {
        Some(self.obs.counters.snapshot())
    }
}

/// A possibly-held read-write lock guard.
enum Guard<'a, T> {
    None,
    Read(RwLockReadGuard<'a, T>),
    Write(RwLockWriteGuard<'a, T>),
}

impl<'a, T> Guard<'a, T> {
    fn acquire(
        lock: &'a RwLock<T>,
        mode: Mode,
        obs: &LockObs,
        name: &'static str,
        shard: bool,
    ) -> Self {
        match mode {
            Mode::None => Guard::None,
            Mode::Read => Guard::Read(obs.read(lock, name, shard)),
            Mode::Write => Guard::Write(obs.write(lock, name, shard)),
        }
    }

    fn get(&self) -> TxR<&T> {
        match self {
            Guard::None => Err(TxErr::Invariant("group accessed without its lock")),
            Guard::Read(g) => Ok(g),
            Guard::Write(g) => Ok(g),
        }
    }

    fn get_mut(&mut self) -> TxR<&mut T> {
        match self {
            Guard::None => Err(TxErr::Invariant("group accessed without its lock")),
            Guard::Read(_) => Err(TxErr::Invariant("group written under a read lock")),
            Guard::Write(g) => Ok(g),
        }
    }
}

/// The medium-grained transaction: a set of held guards (one per atomic
/// shard for the atomic-part group). The guard sets are fixed-capacity
/// stack arrays sized for the workspace maxima; `complex_levels` and
/// `shards` record how many slots are actually configured.
pub struct MediumTx<'a> {
    module: &'a Module,
    sm: Guard<'a, SmState>,
    bases: Guard<'a, BaseGroup>,
    complexes: [Guard<'a, ComplexLevelGroup>; MAX_LEVELS - 1],
    complex_levels: usize,
    composites: Guard<'a, CompositeGroup>,
    atomics: [Guard<'a, AtomicLockShard>; MAX_SHARDS],
    shards: usize,
    documents: Guard<'a, DocGroup>,
    manual: Guard<'a, Manual>,
}

const MISSING: TxErr = TxErr::Invariant("object not found");

impl MediumTx<'_> {
    /// The held shard an atomic raw id routes to; `Invariant` when the
    /// operation did not declare that shard (a narrowing bug — the
    /// backend panics on it, exactly as for undeclared groups).
    fn atomic_shard(&self, raw: u32) -> TxR<&AtomicLockShard> {
        self.atomics[raw as usize % self.shards].get()
    }

    /// Mutable variant of [`MediumTx::atomic_shard`].
    fn atomic_shard_mut(&mut self, raw: u32) -> TxR<&mut AtomicLockShard> {
        let shard = raw as usize % self.shards;
        self.atomics[shard].get_mut()
    }

    fn complex_group(&self, level: u8) -> TxR<&ComplexLevelGroup> {
        self.complexes[..self.complex_levels]
            .get(usize::from(level) - 2)
            .ok_or(TxErr::Invariant("assembly level out of range"))?
            .get()
    }

    fn complex_group_mut(&mut self, level: u8) -> TxR<&mut ComplexLevelGroup> {
        self.complexes[..self.complex_levels]
            .get_mut(usize::from(level) - 2)
            .ok_or(TxErr::Invariant("assembly level out of range"))?
            .get_mut()
    }

    fn complex_level_of(&self, raw: u32) -> TxR<u8> {
        self.sm
            .get()?
            .complex_index
            .get(&raw)
            .copied()
            .ok_or(MISSING)
    }
}

impl Sb7Tx for MediumTx<'_> {
    fn module<R>(&mut self, f: impl FnOnce(&Module) -> R) -> TxR<R> {
        Ok(f(self.module))
    }

    fn manual_text_len(&mut self) -> TxR<usize> {
        Ok(self.manual.get()?.text.len())
    }

    fn manual_count_char(&mut self, c: char) -> TxR<usize> {
        Ok(stmbench7_data::text::count_char(
            &self.manual.get()?.text,
            c,
        ))
    }

    fn manual_first_last_equal(&mut self) -> TxR<bool> {
        Ok(stmbench7_data::text::first_last_equal(
            &self.manual.get()?.text,
        ))
    }

    fn manual_swap_case(&mut self) -> TxR<usize> {
        Ok(stmbench7_data::text::swap_manual_case(
            &mut self.manual.get_mut()?.text,
        ))
    }

    fn set_design_root(&mut self, _root: ComplexAssemblyId) -> TxR<()> {
        Err(TxErr::Invariant(
            "the module is immutable once a backend is constructed",
        ))
    }

    fn atomic<R>(&mut self, id: AtomicPartId, f: impl FnOnce(&AtomicPart) -> R) -> TxR<R> {
        self.atomic_shard(id.raw())?
            .get(id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn composite<R>(&mut self, id: CompositePartId, f: impl FnOnce(&CompositePart) -> R) -> TxR<R> {
        self.composites
            .get()?
            .store
            .get(id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn base<R>(&mut self, id: BaseAssemblyId, f: impl FnOnce(&BaseAssembly) -> R) -> TxR<R> {
        self.bases.get()?.store.get(id.raw()).map(f).ok_or(MISSING)
    }

    fn complex<R>(
        &mut self,
        id: ComplexAssemblyId,
        f: impl FnOnce(&ComplexAssembly) -> R,
    ) -> TxR<R> {
        let level = self.complex_level_of(id.raw())?;
        self.complex_group(level)?
            .store
            .get(id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn document<R>(&mut self, id: DocumentId, f: impl FnOnce(&Document) -> R) -> TxR<R> {
        self.documents
            .get()?
            .store
            .get(id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn atomic_mut<R>(&mut self, id: AtomicPartId, f: impl FnOnce(&mut AtomicPart) -> R) -> TxR<R> {
        self.atomic_shard_mut(id.raw())?
            .get_mut(id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn composite_mut<R>(
        &mut self,
        id: CompositePartId,
        f: impl FnOnce(&mut CompositePart) -> R,
    ) -> TxR<R> {
        self.composites
            .get_mut()?
            .store
            .get_mut(id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn base_mut<R>(
        &mut self,
        id: BaseAssemblyId,
        f: impl FnOnce(&mut BaseAssembly) -> R,
    ) -> TxR<R> {
        self.bases
            .get_mut()?
            .store
            .get_mut(id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn complex_mut<R>(
        &mut self,
        id: ComplexAssemblyId,
        f: impl FnOnce(&mut ComplexAssembly) -> R,
    ) -> TxR<R> {
        let level = self.complex_level_of(id.raw())?;
        self.complex_group_mut(level)?
            .store
            .get_mut(id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn document_mut<R>(&mut self, id: DocumentId, f: impl FnOnce(&mut Document) -> R) -> TxR<R> {
        self.documents
            .get_mut()?
            .store
            .get_mut(id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn set_atomic_build_date(&mut self, id: AtomicPartId, date: i32) -> TxR<()> {
        if self.atomic_shard_mut(id.raw())?.set_date(id.raw(), date) {
            Ok(())
        } else {
            Err(MISSING)
        }
    }

    fn lookup_atomic(&mut self, raw: u32) -> TxR<Option<AtomicPartId>> {
        Ok(self
            .atomic_shard(raw)?
            .by_id
            .get(&raw)
            .map(|_| AtomicPartId(raw)))
    }

    fn lookup_composite(&mut self, raw: u32) -> TxR<Option<CompositePartId>> {
        Ok(self
            .composites
            .get()?
            .by_id
            .get(&raw)
            .map(|_| CompositePartId(raw)))
    }

    fn lookup_base(&mut self, raw: u32) -> TxR<Option<BaseAssemblyId>> {
        Ok(self
            .bases
            .get()?
            .by_id
            .get(&raw)
            .map(|_| BaseAssemblyId(raw)))
    }

    fn lookup_complex(&mut self, raw: u32) -> TxR<Option<ComplexAssemblyId>> {
        Ok(self
            .sm
            .get()?
            .complex_index
            .get(&raw)
            .map(|_| ComplexAssemblyId(raw)))
    }

    fn lookup_document(&mut self, title: &str) -> TxR<Option<DocumentId>> {
        Ok(self
            .documents
            .get()?
            .by_title
            .get(&title.to_string())
            .map(|raw| DocumentId(*raw)))
    }

    fn atomics_in_date_range(&mut self, lo: i32, hi: i32) -> TxR<Vec<AtomicPartId>> {
        // Range scans span all shards; each per-shard slice is sorted, so
        // one global sort restores the monolithic `(date, id)` order.
        let mut entries: Vec<(i32, u32)> = Vec::new();
        for shard in &self.atomics[..self.shards] {
            shard
                .get()?
                .by_date
                .for_range(&(lo, 0), &(hi, u32::MAX), |k, _| entries.push(*k));
        }
        Ok(stmbench7_data::sharded::merge_date_entries(entries))
    }

    fn all_atomic_ids(&mut self) -> TxR<Vec<AtomicPartId>> {
        let mut out = Vec::new();
        for shard in &self.atomics[..self.shards] {
            shard.get()?.by_id.for_each(|raw, _| out.push(*raw));
        }
        out.sort_unstable();
        Ok(out.into_iter().map(AtomicPartId).collect())
    }

    fn all_base_ids(&mut self) -> TxR<Vec<BaseAssemblyId>> {
        let group = self.bases.get()?;
        let mut out = Vec::with_capacity(group.store.live());
        group
            .by_id
            .for_each(|raw, _| out.push(BaseAssemblyId(*raw)));
        Ok(out)
    }

    fn pool_capacity(&mut self, kind: PoolKind) -> TxR<usize> {
        let pools = &self.sm.get()?.pools;
        let pool = match kind {
            PoolKind::Atomic => &pools.atomic,
            PoolKind::Composite => &pools.composite,
            PoolKind::Document => &pools.document,
            PoolKind::Base => &pools.base,
            PoolKind::Complex => &pools.complex,
        };
        Ok(pool.capacity() as usize - pool.live())
    }

    fn create_atomic(
        &mut self,
        make: impl FnOnce(AtomicPartId) -> AtomicPart,
    ) -> TxR<Option<AtomicPartId>> {
        let Some(raw) = self.sm.get_mut()?.pools.atomic.alloc() else {
            return Ok(None);
        };
        let id = AtomicPartId(raw);
        let part = make(id);
        self.atomic_shard_mut(raw)?.create(part);
        Ok(Some(id))
    }

    fn create_composite(
        &mut self,
        make: impl FnOnce(CompositePartId) -> CompositePart,
    ) -> TxR<Option<CompositePartId>> {
        let Some(raw) = self.sm.get_mut()?.pools.composite.alloc() else {
            return Ok(None);
        };
        let id = CompositePartId(raw);
        self.composites.get_mut()?.create(make(id));
        Ok(Some(id))
    }

    fn create_document(
        &mut self,
        make: impl FnOnce(DocumentId) -> Document,
    ) -> TxR<Option<DocumentId>> {
        let Some(raw) = self.sm.get_mut()?.pools.document.alloc() else {
            return Ok(None);
        };
        let id = DocumentId(raw);
        self.documents.get_mut()?.create(make(id));
        Ok(Some(id))
    }

    fn create_base(
        &mut self,
        make: impl FnOnce(BaseAssemblyId) -> BaseAssembly,
    ) -> TxR<Option<BaseAssemblyId>> {
        let Some(raw) = self.sm.get_mut()?.pools.base.alloc() else {
            return Ok(None);
        };
        let id = BaseAssemblyId(raw);
        self.bases.get_mut()?.create(make(id));
        Ok(Some(id))
    }

    fn create_complex(
        &mut self,
        level: u8,
        make: impl FnOnce(ComplexAssemblyId) -> ComplexAssembly,
    ) -> TxR<Option<ComplexAssemblyId>> {
        let Some(raw) = self.sm.get_mut()?.pools.complex.alloc() else {
            return Ok(None);
        };
        let id = ComplexAssemblyId(raw);
        self.sm.get_mut()?.complex_index.insert(raw, level);
        self.complex_group_mut(level)?.store.insert(raw, make(id));
        Ok(Some(id))
    }

    fn delete_atomic(&mut self, id: AtomicPartId) -> TxR<AtomicPart> {
        let p = self
            .atomic_shard_mut(id.raw())?
            .delete(id.raw())
            .ok_or(MISSING)?;
        assert!(self.sm.get_mut()?.pools.atomic.free(id.raw()), "pool drift");
        Ok(p)
    }

    fn delete_composite(&mut self, id: CompositePartId) -> TxR<CompositePart> {
        let c = self.composites.get_mut()?.delete(id.raw()).ok_or(MISSING)?;
        assert!(
            self.sm.get_mut()?.pools.composite.free(id.raw()),
            "pool drift"
        );
        Ok(c)
    }

    fn delete_document(&mut self, id: DocumentId) -> TxR<Document> {
        let d = self.documents.get_mut()?.delete(id.raw()).ok_or(MISSING)?;
        assert!(
            self.sm.get_mut()?.pools.document.free(id.raw()),
            "pool drift"
        );
        Ok(d)
    }

    fn delete_base(&mut self, id: BaseAssemblyId) -> TxR<BaseAssembly> {
        let b = self.bases.get_mut()?.delete(id.raw()).ok_or(MISSING)?;
        assert!(self.sm.get_mut()?.pools.base.free(id.raw()), "pool drift");
        Ok(b)
    }

    fn delete_complex(&mut self, id: ComplexAssemblyId) -> TxR<ComplexAssembly> {
        let level = self.complex_level_of(id.raw())?;
        let c = self
            .complex_group_mut(level)?
            .store
            .remove(id.raw())
            .ok_or(MISSING)?;
        let sm = self.sm.get_mut()?;
        sm.complex_index.remove(&id.raw());
        assert!(sm.pools.complex.free(id.raw()), "pool drift");
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmbench7_data::Mode;

    struct ReadRoot;
    impl TxOperation<u32> for ReadRoot {
        fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<u32> {
            tx.module(|m| m.design_root.raw())
        }
    }

    struct SwapManual;
    impl TxOperation<usize> for SwapManual {
        fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<usize> {
            tx.manual_swap_case()
        }
    }

    fn read_spec() -> AccessSpec {
        AccessSpec::new().regular()
    }

    fn manual_write_spec() -> AccessSpec {
        AccessSpec::new().regular().manual(Mode::Write)
    }

    #[test]
    fn all_lock_backends_run_simple_ops() {
        let ws = Workspace::build(StructureParams::tiny(), 5);
        let root = ws.module.design_root.raw();
        let seq = SequentialBackend::new(ws.clone());
        let coarse = CoarseBackend::new(ws.clone());
        let medium = MediumBackend::new(ws);
        assert_eq!(seq.execute(&read_spec(), &mut ReadRoot), root);
        assert_eq!(coarse.execute(&read_spec(), &mut ReadRoot), root);
        assert_eq!(medium.execute(&read_spec(), &mut ReadRoot), root);
        assert!(seq.execute(&manual_write_spec(), &mut SwapManual) > 0);
        assert!(coarse.execute(&manual_write_spec(), &mut SwapManual) > 0);
        assert!(medium.execute(&manual_write_spec(), &mut SwapManual) > 0);
    }

    #[test]
    #[should_panic(expected = "access spec")]
    fn medium_catches_undeclared_writes() {
        let ws = Workspace::build(StructureParams::tiny(), 5);
        let medium = MediumBackend::new(ws);
        // SwapManual writes the manual but declares nothing.
        medium.execute(&read_spec(), &mut SwapManual);
    }

    #[test]
    #[should_panic(expected = "access spec")]
    fn coarse_catches_writes_under_read_mode() {
        let ws = Workspace::build(StructureParams::tiny(), 5);
        let coarse = CoarseBackend::new(ws);
        // The spec requests no writes, so coarse takes a read lock and the
        // DirectTx is read-only.
        coarse.execute(&read_spec(), &mut SwapManual);
    }

    /// Reads atomic part `raw` through index 1.
    struct ReadAtomic(u32);
    impl TxOperation<i64> for ReadAtomic {
        fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<i64> {
            let id = tx.lookup_atomic(self.0)?.expect("part exists");
            tx.atomic(id, |p| i64::from(p.x) + i64::from(p.y))
        }
    }

    #[test]
    fn medium_narrowed_shard_spec_suffices() {
        use stmbench7_data::ShardSet;
        let shards = 8usize;
        let ws = Workspace::build(StructureParams::tiny().with_shards(shards), 5);
        let medium = MediumBackend::new(ws);
        for raw in 1..=16u32 {
            let spec = AccessSpec::new()
                .regular()
                .atomics(Mode::Read)
                .atomics_shards(ShardSet::of(raw as usize % shards));
            medium.execute(&spec, &mut ReadAtomic(raw));
        }
        stmbench7_data::validate(&medium.export()).unwrap();
    }

    #[test]
    #[should_panic(expected = "access spec")]
    fn medium_catches_access_outside_the_declared_shard() {
        use stmbench7_data::ShardSet;
        let shards = 8usize;
        let ws = Workspace::build(StructureParams::tiny().with_shards(shards), 5);
        let medium = MediumBackend::new(ws);
        // Part 1 routes to shard 1; declaring only shard 2 must trip the
        // same undeclared-access panic as an undeclared group.
        let spec = AccessSpec::new()
            .regular()
            .atomics(Mode::Read)
            .atomics_shards(ShardSet::of(2));
        medium.execute(&spec, &mut ReadAtomic(1));
    }

    #[test]
    fn export_round_trips() {
        let ws = Workspace::build(StructureParams::tiny(), 9);
        let medium = MediumBackend::new(ws.clone());
        let out = medium.export();
        stmbench7_data::validate(&out).unwrap();
        assert_eq!(out.module.design_root, ws.module.design_root);
        assert_eq!(out.atomics.store.live(), ws.atomics.store.live());
    }

    #[test]
    fn medium_sharded_export_equals_unsharded() {
        // The shard split is pure representation: building at 8 shards
        // and exporting must reproduce the monolithic structure.
        let mono = Workspace::build(StructureParams::tiny(), 9);
        let ws = Workspace::build(StructureParams::tiny().with_shards(8), 9);
        let out = MediumBackend::new(ws).export();
        stmbench7_data::validate(&out).unwrap();
        assert_eq!(out.atomics.store.live(), mono.atomics.store.live());
        assert_eq!(out.atomics.by_id.len(), mono.atomics.by_id.len());
        let collect = |ws: &Workspace| {
            let mut v = Vec::new();
            ws.atomics.by_date.for_each(|k, _| v.push(*k));
            v
        };
        assert_eq!(collect(&out), collect(&mono));
    }

    #[test]
    fn medium_parallel_readers_and_writers() {
        let ws = Workspace::build(StructureParams::tiny().with_shards(4), 11);
        let medium = std::sync::Arc::new(MediumBackend::new(ws));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&medium);
                s.spawn(move || {
                    for _ in 0..50 {
                        m.execute(&read_spec(), &mut ReadRoot);
                        m.execute(&manual_write_spec(), &mut SwapManual);
                    }
                });
            }
        });
        stmbench7_data::validate(&medium.export()).unwrap();
    }
}
