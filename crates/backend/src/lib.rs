//! Synchronization backends for STMBench7.
//!
//! The paper ships two lock strategies (coarse- and medium-grained) that
//! are "merged with the core STMBench7 code at compile time", and runs the
//! same core over ASTM. This crate is the Rust equivalent: every backend
//! implements [`Backend`], executing operations written once against
//! [`stmbench7_data::Sb7Tx`]:
//!
//! * [`locks::SequentialBackend`] — one mutex; the determinism oracle and
//!   single-thread floor,
//! * [`locks::CoarseBackend`] — one read-write lock over everything
//!   (the paper's "coarse-grained" strategy),
//! * [`locks::MediumBackend`] — the paper's Figure 5 strategy: a
//!   structure-modification gate plus one read-write lock per assembly
//!   level, composite parts, atomic parts, documents and the manual,
//! * [`stm::StmBackend`] — the STM adapter, generic over the runtimes of
//!   `stmbench7-stm` (ASTM-like and TL2-like), with monolithic or sharded
//!   representation of the indexes and the manual
//!   ([`stm::Granularity`]),
//! * [`combining::FlatCombiningBackend`] — flat combining: contending
//!   threads publish operations and the lock holder executes the whole
//!   batch — one lock hand-off per batch instead of per operation,
//! * [`combining::DedicatedServerBackend`] — RCL-style delegation: one
//!   dedicated server thread drains a submission queue
//!   ([`queue::BoundedQueue`], the combiner loop `stmbench7-service`'s
//!   worker pool also runs).

#![warn(missing_docs)]

pub mod choice;
pub mod combining;
pub mod fine;
pub mod locks;
pub mod queue;
pub mod stm;

use stmbench7_data::{AccessSpec, Sb7Tx, TxR, Workspace};
use stmbench7_obs::ContentionSnapshot;
use stmbench7_stm::StatsSnapshot;

/// An operation that can run under any backend.
///
/// This is the rank-2 trick that lets each backend choose its own
/// transaction type: implementors must be generic over *every* `Sb7Tx`.
/// Backends may call [`TxOperation::run`] multiple times (STM retries), so
/// implementations must tolerate re-execution — all STMBench7 operations
/// do, by construction.
pub trait TxOperation<R> {
    /// Executes the operation body inside transaction `tx`.
    fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<R>;

    /// Called by the backend immediately before every execution attempt.
    ///
    /// Implementations reset any per-attempt state — in practice the
    /// operation's random number generator — so that all attempts of one
    /// logical operation replay *identical* choices. This mirrors the
    /// original Java benchmark, where random parameters are drawn before
    /// the transaction begins, and it is what allows the fine-grained
    /// backend to pre-discover an operation's exact lock set.
    fn begin_attempt(&mut self) {}
}

/// A synchronization strategy executing STMBench7 operations.
pub trait Backend: Send + Sync {
    /// Executes `op` atomically under this strategy. `spec` declares the
    /// lock groups the operation touches (ignored by optimistic
    /// backends).
    ///
    /// The operation and its result are `Send` because delegation
    /// backends (flat combining, dedicated server) may execute `op` on
    /// whichever thread currently holds the combiner role; the caller
    /// blocks until its result is back either way.
    ///
    /// # Panics
    ///
    /// Panics if the operation violates its own `spec` (e.g. writes a
    /// group it declared read-only) — that is a bug in the benchmark, not
    /// a runtime condition.
    fn execute<R: Send, O: TxOperation<R> + Send>(&self, spec: &AccessSpec, op: &mut O) -> R;

    /// Strategy name for reports ("coarse", "medium", "astm", …).
    fn name(&self) -> &'static str;

    /// Materializes the current structure as a plain workspace for
    /// validation. Callers must guarantee quiescence.
    fn export(&self) -> Workspace;

    /// STM statistics, if this backend is transactional.
    fn stm_stats(&self) -> Option<StatsSnapshot> {
        None
    }

    /// Always-on contention counters, if this backend maintains them
    /// (lock waits, CAS retries, shard conflicts; see
    /// [`stmbench7_obs::ContentionCounters`]).
    fn contention(&self) -> Option<ContentionSnapshot> {
        None
    }
}

pub use choice::{strategy_catalog, AnyBackend, BackendChoice};
pub use combining::{CombiningStats, DedicatedServerBackend, FlatCombiningBackend};
pub use fine::{FineBackend, FineStats};
pub use locks::{CoarseBackend, MediumBackend, SequentialBackend};
pub use queue::{Admission, BoundedQueue};
pub use stm::{Granularity, StmBackend};

/// Convenience alias: the ASTM-like backend the paper evaluates.
pub type AstmBackend = StmBackend<stmbench7_stm::AstmRuntime>;
/// Convenience alias: the TL2-like remedy backend.
pub type Tl2Backend = StmBackend<stmbench7_stm::Tl2Runtime>;
/// Convenience alias: the NOrec-style remedy backend.
pub type NorecBackend = StmBackend<stmbench7_stm::NorecRuntime>;
