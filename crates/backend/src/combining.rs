//! Delegation/combining synchronization strategies.
//!
//! The coarse lock's failure mode in the paper's Figures 3–6 is the
//! convoy: every thread fights for one lock, and the lock's hand-off cost
//! is paid once per operation. Delegation attacks exactly that hand-off:
//! instead of moving the *lock* between threads, it moves the
//! *operations* to wherever the lock already is.
//!
//! * [`FlatCombiningBackend`] — flat combining (Hendler, Incze, Shavit,
//!   Tzafrir): threads publish their operation on a shared publication
//!   list; whoever acquires the workspace lock becomes the *combiner* and
//!   executes the whole published batch sequentially before releasing.
//!   Uncontended, it degrades to exactly the sequential backend's cost.
//! * [`DedicatedServerBackend`] — RCL-style (Remote Core Locking):
//!   one dedicated server thread owns the workspace outright and drains a
//!   bounded submission queue ([`crate::queue::BoundedQueue`] — the same
//!   combiner loop the `stmbench7-service` worker pool runs); client
//!   threads only publish and wait.
//!
//! Both execute every operation exclusively through `DirectTx::writing`
//! (the access spec is ignored, as in the sequential backend), so a
//! transaction can never abort and `TxErr::Invariant` is a benchmark bug.
//!
//! # Safety model
//!
//! `Backend::execute` is generic over the operation type, so operations
//! cannot be stored in a homogeneous list. Instead each publisher erases
//! its operation to a raw `dyn FnMut(&mut DirectTx)` pointer into its own
//! stack frame, paired with a `done: AtomicBool`. The publisher *blocks*
//! inside `execute` until `done` is set (store with `Release`, load with
//! `Acquire`), so the frame — operation, result slot and closure — stays
//! alive and unaliased for as long as any other thread may dereference
//! the pointer. This is why [`crate::Backend::execute`] bounds `R` and
//! the operation by `Send`: the operation genuinely crosses threads.

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use stmbench7_obs::{ContentionSnapshot, EventKind, Layer, Recorder};

use stmbench7_data::spec::AccessSpec;
use stmbench7_data::workspace::{DirectTx, Workspace};
use stmbench7_data::TxR;

use crate::locks::{unwrap_lock_result, LockObs};
use crate::queue::BoundedQueue;
use crate::{Backend, TxOperation};

/// A type-erased, publishable operation: runs the real `TxOperation`
/// against the executor's transaction and stores the result back into the
/// publisher's stack frame.
type Job<'e> = dyn for<'w> FnMut(&mut DirectTx<'w>) + Send + 'e;

/// Erases a job closure to a publishable raw pointer.
///
/// The returned pointer is dereferenced by whichever thread executes the
/// job; the caller must keep the closure alive (and otherwise untouched)
/// until the accompanying `done` flag is set with `Release` and observed
/// with `Acquire`.
fn erase_job<'e, F>(job: &mut F) -> *mut Job<'static>
where
    F: for<'w> FnMut(&mut DirectTx<'w>) + Send + 'e,
{
    let job: &mut Job<'e> = job;
    let job: *mut Job<'e> = job;
    // Safety: lifetime erasure only — same pointer, same vtable. Validity
    // is governed by the done-flag protocol documented above.
    unsafe { std::mem::transmute::<*mut Job<'e>, *mut Job<'static>>(job) }
}

/// Counters shared by both delegation strategies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CombiningStats {
    /// Non-empty combine passes (one pass = one workspace acquisition
    /// executing a whole batch).
    pub combines: u64,
    /// Operations executed inside combine passes. Delegation executes
    /// every operation exactly once, so after quiescence this equals the
    /// number of `execute` calls ever made.
    pub combined: u64,
    /// Largest single combine pass.
    pub max_batch: u64,
    /// Combine passes whose combiner was a different thread than the
    /// previous pass (the first pass counts). Always 1 for the dedicated
    /// server; for flat combining it measures how often the combiner
    /// role changed hands.
    pub handoffs: u64,
}

/// Small dense per-thread token for combiner hand-off accounting
/// (`std::thread::ThreadId` has no stable integer form).
fn thread_token() -> u64 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TOKEN: Cell<u64> = const { Cell::new(0) };
    }
    TOKEN.with(|t| {
        let mut v = t.get();
        if v == 0 {
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            t.set(v);
        }
        v
    })
}

/// One node of the publication list, allocated on the publisher's stack.
struct PubRecord {
    /// Erased pointer into the publisher's frame; valid until `done`.
    job: *mut Job<'static>,
    done: AtomicBool,
    next: AtomicPtr<PubRecord>,
}

/// Flat combining over the STMBench7 workspace.
///
/// `execute` pushes a publication record onto a Treiber-style list
/// and then alternates between checking its own `done` flag and trying
/// the workspace lock. Whoever wins the lock becomes the combiner: it
/// repeatedly swaps the whole list out and executes every published
/// operation (oldest first) before releasing. Everyone else's operations
/// complete without those threads ever touching the workspace lock —
/// the convoy's per-operation hand-off is replaced by one hand-off per
/// *batch*.
pub struct FlatCombiningBackend {
    ws: Mutex<Workspace>,
    /// Publication list head; publishers CAS themselves on, the combiner
    /// swaps the whole list off.
    head: AtomicPtr<PubRecord>,
    combines: AtomicU64,
    combined: AtomicU64,
    max_batch: AtomicU64,
    handoffs: AtomicU64,
    last_combiner: AtomicU64,
    obs: LockObs,
}

impl FlatCombiningBackend {
    /// Wraps a built workspace.
    pub fn new(ws: Workspace) -> Self {
        FlatCombiningBackend {
            ws: Mutex::new(ws),
            head: AtomicPtr::new(ptr::null_mut()),
            combines: AtomicU64::new(0),
            combined: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            handoffs: AtomicU64::new(0),
            last_combiner: AtomicU64::new(0),
            obs: LockObs::default(),
        }
    }

    /// Attaches a trace recorder (builder style, before sharing).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.obs.recorder = recorder;
        self
    }

    /// Combiner counters so far. Exact only at quiescence.
    pub fn combining_stats(&self) -> CombiningStats {
        CombiningStats {
            combines: self.combines.load(Ordering::Relaxed),
            combined: self.combined.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            handoffs: self.handoffs.load(Ordering::Relaxed),
        }
    }

    fn publish(&self, record: &PubRecord) {
        let node = record as *const PubRecord as *mut PubRecord;
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            record.next.store(head, Ordering::Relaxed);
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => {
                    // A lost publication race is this backend's unit of
                    // contention.
                    self.obs
                        .counters
                        .cas_retries
                        .fetch_add(1, Ordering::Relaxed);
                    head = actual;
                }
            }
        }
    }

    /// Spins until `record.done`, becoming the combiner whenever the
    /// workspace lock is free. A published record is only ever completed
    /// by a thread inside `combine`, and `combine` never returns with the
    /// list non-empty, so this terminates: either some other combiner
    /// executes our record, or we eventually win the lock and do it
    /// ourselves.
    fn wait(&self, record: &PubRecord) {
        let mut spins: u32 = 0;
        while !record.done.load(Ordering::Acquire) {
            if let Some(mut ws) = self.ws.try_lock() {
                self.combine(&mut ws);
            } else if spins < 64 {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Executes every published operation, repeating the swap until the
    /// list stays empty. Runs with the workspace lock held.
    fn combine(&self, ws: &mut Workspace) {
        let mut counted_pass = false;
        loop {
            let mut node = self.head.swap(ptr::null_mut(), Ordering::Acquire);
            if node.is_null() {
                return;
            }
            if !counted_pass {
                counted_pass = true;
                self.combines.fetch_add(1, Ordering::Relaxed);
                let me = thread_token();
                if self.last_combiner.swap(me, Ordering::Relaxed) != me {
                    self.handoffs.fetch_add(1, Ordering::Relaxed);
                }
            }
            // The CAS list is newest-first; reverse it so the batch runs
            // in publication order. (Fairness, not correctness: each
            // publisher has at most one outstanding operation, so
            // per-thread program order holds either way.)
            let mut prev: *mut PubRecord = ptr::null_mut();
            while !node.is_null() {
                // Safety: records on the list are alive — their
                // publishers are blocked in `wait` until we set `done`.
                let next = unsafe { (*node).next.load(Ordering::Relaxed) };
                unsafe { (*node).next.store(prev, Ordering::Relaxed) };
                prev = node;
                node = next;
            }
            let mut batch: u64 = 0;
            let mut cur = prev;
            while !cur.is_null() {
                // Read everything out of the record *before* setting
                // `done`: that store releases the record (and the job it
                // points into) back to its publisher's stack frame.
                let (job, next) = unsafe { ((*cur).job, (*cur).next.load(Ordering::Relaxed)) };
                {
                    // One transaction per operation, as in every other
                    // backend.
                    let mut tx = DirectTx::writing(ws);
                    // Safety: see the module-level safety model.
                    unsafe { (*job)(&mut tx) };
                }
                unsafe { (*cur).done.store(true, Ordering::Release) };
                cur = next;
                batch += 1;
            }
            self.combined.fetch_add(batch, Ordering::Relaxed);
            self.max_batch.fetch_max(batch, Ordering::Relaxed);
            self.obs
                .recorder
                .instant(Layer::Backend, EventKind::CombineBatch, "flatcomb", batch);
        }
    }
}

impl Backend for FlatCombiningBackend {
    fn execute<R: Send, O: TxOperation<R> + Send>(&self, _spec: &AccessSpec, op: &mut O) -> R {
        let mut result: Option<TxR<R>> = None;
        {
            let slot = &mut result;
            let mut job = move |tx: &mut DirectTx<'_>| {
                op.begin_attempt();
                *slot = Some(op.run(tx));
            };
            let record = PubRecord {
                job: erase_job(&mut job),
                done: AtomicBool::new(false),
                next: AtomicPtr::new(ptr::null_mut()),
            };
            self.publish(&record);
            self.wait(&record);
        }
        unwrap_lock_result(result.expect("published operation must have executed"))
    }

    fn name(&self) -> &'static str {
        "flatcomb"
    }

    fn export(&self) -> Workspace {
        self.ws.lock().clone()
    }

    fn contention(&self) -> Option<ContentionSnapshot> {
        Some(self.obs.counters.snapshot())
    }
}

/// How many queued submissions the dedicated server folds into one
/// workspace acquisition.
const SERVER_BATCH: usize = 32;

/// Submission-queue capacity: enough that clients only block when the
/// server is genuinely behind.
const SERVER_QUEUE_CAP: usize = 1024;

/// One submitted operation; both pointers target the publisher's stack
/// frame.
struct Submission {
    job: *mut Job<'static>,
    done: *const AtomicBool,
}

// Safety: the pointers are dereferenced only by the server thread, and
// the publisher keeps the pointees alive (blocked in `execute`) until the
// server's `done` store is observed.
unsafe impl Send for Submission {}

struct ServerShared {
    ws: Mutex<Workspace>,
    queue: BoundedQueue<Submission>,
    combines: AtomicU64,
    combined: AtomicU64,
    max_batch: AtomicU64,
    recorder: Recorder,
}

/// RCL-style delegation: one dedicated server thread, spawned at
/// construction, drains the submission queue for the backend's whole
/// lifetime — the combiner role never moves. Client `execute` calls
/// publish a type-erased job and wait for its completion flag.
///
/// The server consumes the queue through [`BoundedQueue::drain`] — the
/// identical combiner loop the `stmbench7-service` worker pool runs —
/// batching up to `SERVER_BATCH` submissions per workspace
/// acquisition. Dropping the backend closes the queue and joins the
/// server.
pub struct DedicatedServerBackend {
    shared: Arc<ServerShared>,
    server: Option<JoinHandle<()>>,
}

impl DedicatedServerBackend {
    /// Wraps a built workspace and spawns the server thread.
    pub fn new(ws: Workspace) -> Self {
        Self::with_recorder(ws, Recorder::default())
    }

    /// As [`DedicatedServerBackend::new`], with a trace recorder the
    /// server thread records its batches into. The server's ring only
    /// flushes when the server exits, so traces containing its events
    /// must be collected after the backend is dropped.
    pub fn with_recorder(ws: Workspace, recorder: Recorder) -> Self {
        let shared = Arc::new(ServerShared {
            ws: Mutex::new(ws),
            queue: BoundedQueue::new(SERVER_QUEUE_CAP),
            combines: AtomicU64::new(0),
            combined: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            recorder,
        });
        let server = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("stmbench7-rcl-server".into())
                .spawn(move || Self::serve(&shared))
                .expect("failed to spawn the rcl server thread")
        };
        DedicatedServerBackend {
            shared,
            server: Some(server),
        }
    }

    fn serve(shared: &ServerShared) {
        shared.queue.drain(
            SERVER_BATCH,
            |_, _| true,
            |batch| {
                let mut ws = shared.ws.lock();
                let n = batch.len() as u64;
                for sub in batch {
                    {
                        let mut tx = DirectTx::writing(&mut ws);
                        // Safety: see the module-level safety model.
                        unsafe { (*sub.job)(&mut tx) };
                    }
                    // Safety: the flag lives in the (still blocked)
                    // publisher's frame; this store is its release.
                    unsafe { &*sub.done }.store(true, Ordering::Release);
                }
                shared.combines.fetch_add(1, Ordering::Relaxed);
                shared.combined.fetch_add(n, Ordering::Relaxed);
                shared.max_batch.fetch_max(n, Ordering::Relaxed);
                shared
                    .recorder
                    .instant(Layer::Backend, EventKind::CombineBatch, "rcl", n);
            },
        );
    }

    /// Server counters so far. Exact only at quiescence.
    pub fn combining_stats(&self) -> CombiningStats {
        CombiningStats {
            combines: self.shared.combines.load(Ordering::Relaxed),
            combined: self.shared.combined.load(Ordering::Relaxed),
            max_batch: self.shared.max_batch.load(Ordering::Relaxed),
            // The server is the combiner from its first batch onward.
            handoffs: u64::from(self.shared.combines.load(Ordering::Relaxed) > 0),
        }
    }
}

impl Drop for DedicatedServerBackend {
    fn drop(&mut self) {
        self.shared.queue.close();
        if let Some(server) = self.server.take() {
            let _ = server.join();
        }
    }
}

impl Backend for DedicatedServerBackend {
    fn execute<R: Send, O: TxOperation<R> + Send>(&self, _spec: &AccessSpec, op: &mut O) -> R {
        let mut result: Option<TxR<R>> = None;
        let done = AtomicBool::new(false);
        {
            let slot = &mut result;
            let mut job = move |tx: &mut DirectTx<'_>| {
                op.begin_attempt();
                *slot = Some(op.run(tx));
            };
            self.shared.queue.push_blocking(Submission {
                job: erase_job(&mut job),
                done: &done,
            });
            let mut spins: u32 = 0;
            while !done.load(Ordering::Acquire) {
                if spins < 64 {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        unwrap_lock_result(result.expect("submitted operation must have executed"))
    }

    fn name(&self) -> &'static str {
        "rcl"
    }

    fn export(&self) -> Workspace {
        self.ws().clone()
    }
}

impl DedicatedServerBackend {
    fn ws(&self) -> parking_lot::MutexGuard<'_, Workspace> {
        self.shared.ws.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmbench7_data::{Mode, Sb7Tx, StructureParams};

    struct ReadRoot;
    impl TxOperation<u32> for ReadRoot {
        fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<u32> {
            tx.module(|m| m.design_root.raw())
        }
    }

    struct SwapManual;
    impl TxOperation<usize> for SwapManual {
        fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<usize> {
            tx.manual_swap_case()
        }
    }

    fn read_spec() -> AccessSpec {
        AccessSpec::new().regular()
    }

    fn manual_write_spec() -> AccessSpec {
        AccessSpec::new().regular().manual(Mode::Write)
    }

    #[test]
    fn both_delegation_backends_run_simple_ops() {
        let ws = Workspace::build(StructureParams::tiny(), 5);
        let root = ws.module.design_root.raw();
        let fc = FlatCombiningBackend::new(ws.clone());
        let rcl = DedicatedServerBackend::new(ws);
        assert_eq!(fc.execute(&read_spec(), &mut ReadRoot), root);
        assert_eq!(rcl.execute(&read_spec(), &mut ReadRoot), root);
        assert!(fc.execute(&manual_write_spec(), &mut SwapManual) > 0);
        assert!(rcl.execute(&manual_write_spec(), &mut SwapManual) > 0);
        stmbench7_data::validate(&fc.export()).unwrap();
        stmbench7_data::validate(&rcl.export()).unwrap();
    }

    #[test]
    fn flatcomb_counts_every_operation_exactly_once() {
        let ws = Workspace::build(StructureParams::tiny(), 5);
        let fc = FlatCombiningBackend::new(ws);
        for _ in 0..10 {
            fc.execute(&read_spec(), &mut ReadRoot);
        }
        let stats = fc.combining_stats();
        assert_eq!(stats.combined, 10);
        assert!(stats.combines >= 1 && stats.combines <= 10);
        assert!(stats.max_batch >= 1);
        // A single thread never hands the combiner role off.
        assert_eq!(stats.handoffs, 1);
    }

    #[test]
    fn rcl_counts_every_operation_exactly_once() {
        let ws = Workspace::build(StructureParams::tiny(), 5);
        let rcl = DedicatedServerBackend::new(ws);
        for _ in 0..10 {
            rcl.execute(&read_spec(), &mut ReadRoot);
        }
        let stats = rcl.combining_stats();
        assert_eq!(stats.combined, 10);
        assert_eq!(stats.handoffs, 1, "the server never yields the role");
    }

    #[test]
    fn flatcomb_hands_the_combiner_role_between_threads() {
        let ws = Workspace::build(StructureParams::tiny(), 5);
        let fc = FlatCombiningBackend::new(ws);
        // Two strictly sequential phases from two different threads: each
        // phase's only active thread must combine its own operations, so
        // the role provably changes hands.
        std::thread::scope(|scope| {
            scope
                .spawn(|| fc.execute(&manual_write_spec(), &mut SwapManual))
                .join()
                .unwrap();
            scope
                .spawn(|| fc.execute(&manual_write_spec(), &mut SwapManual))
                .join()
                .unwrap();
        });
        let stats = fc.combining_stats();
        assert_eq!(stats.combined, 2);
        assert_eq!(stats.handoffs, 2, "two distinct combiner threads");
    }

    #[test]
    #[should_panic(expected = "access spec")]
    fn flatcomb_surfaces_invariant_violations_at_the_publisher() {
        // Delegation executes everything exclusively, so a spec violation
        // can only come from an operation breaking the DirectTx contract
        // — and the panic must land on the publishing caller, not the
        // combiner. A read-only *transaction* cannot be constructed here
        // (combiners always write), so trip the invariant directly.
        struct BadOp;
        impl TxOperation<()> for BadOp {
            fn run<T: Sb7Tx>(&mut self, _tx: &mut T) -> TxR<()> {
                Err(stmbench7_data::TxErr::Invariant("test"))
            }
        }
        let ws = Workspace::build(StructureParams::tiny(), 5);
        let fc = FlatCombiningBackend::new(ws);
        fc.execute(&read_spec(), &mut BadOp);
    }
}
