//! The fine-grained locking strategy — the paper's stated future work.
//!
//! §4 of the paper sketches it: "locking each assembly and composite part
//! separately could result in better scalability. However … there is a
//! need for each operation to build a list of objects it wants to access,
//! sort the list and then acquire locks in the right order to avoid
//! deadlocks." §6 calls a "fine-grained, highly-optimized locking
//! strategy" the missing "ultimate baseline". This module implements that
//! strategy.
//!
//! # Granularity
//!
//! Following the paper ("it would probably make no sense to protect each
//! atomic part with a single lock"), the lockable units are:
//!
//! * one read-write lock per **base assembly**,
//! * one read-write lock per **complex assembly**,
//! * one read-write lock per **composite cell** — a composite part
//!   together with its document and its whole graph of atomic parts
//!   (the "group small objects" §5 remedy, applied to locks),
//! * one lock for the **manual**,
//! * one lock for the **build-date index** (index 2) — the only index a
//!   non-SM operation can mutate,
//! * the **structure-modification gate**, held in read mode by every
//!   regular operation and in write mode by SM1–SM8.
//!
//! All remaining indexes, the id pools and the graph *topology* (links,
//! object existence) change only under the gate in write mode, so regular
//! operations — which hold the gate in read mode for their whole duration —
//! may read them without further locking.
//!
//! # The discover / sort / acquire / execute cycle
//!
//! Exactly as the paper prescribes, every regular operation runs twice:
//!
//! 1. **Discovery** executes the operation body against a `DiscoverTx`
//!    that takes momentary per-object read locks (never more than one at
//!    a time — deadlock-free by construction), buffers writes in a local
//!    overlay so read-your-own-write control flow is preserved, and
//!    records the set of locks the operation needs.
//! 2. The recorded plan is **sorted** into one canonical lock order and
//!    all locks are **acquired** in that order (ordered acquisition —
//!    deadlock-free).
//! 3. **Execution** re-runs the operation body (with identical random
//!    choices, see [`TxOperation::begin_attempt`]) against an `ExecTx`
//!    holding the acquired guards; this run's effects are real.
//!
//! Because the topology is frozen under the gate, discovery is exact for
//! every operation whose access set is topology-determined — all of them
//! except the build-date range scans (OP2, OP3, OP10), whose result can
//! change if another thread commits a date update between discovery and
//! acquisition. Execution detects any access outside the planned lock set
//! and aborts; the backend retries discovery a bounded number of times and
//! finally falls back to exclusive (gate-write) execution, guaranteeing
//! progress.
//!
//! This cost — an extra uncommitted execution of every operation, plus
//! sorting — is exactly the "additional overhead which, together with the
//! significant engineering cost, would be difficult to justify" that the
//! paper predicts; the `ultimate_baseline` bench quantifies it.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use stmbench7_data::access::PoolKind;
use stmbench7_data::btree::BTree;
use stmbench7_data::sharded::ShardedIndex;
use stmbench7_data::spec::AccessSpec;
use stmbench7_data::workspace::{
    AtomicGroup, BaseGroup, ComplexLevelGroup, CompositeGroup, DocGroup, SmState, Store, Workspace,
};
use stmbench7_data::{
    AtomicPart, AtomicPartId, BaseAssembly, BaseAssemblyId, ComplexAssembly, ComplexAssemblyId,
    CompositePart, CompositePartId, Document, DocumentId, Manual, Module, Sb7Tx, StructureParams,
    TxErr, TxR,
};

use crate::{Backend, TxOperation};

/// Retries of the discover/acquire/execute cycle before falling back to
/// exclusive execution. Plans only go stale through build-date index
/// races, so the bound is generous.
const MAX_PLAN_RETRIES: u32 = 8;

const MISSING: TxErr = TxErr::Invariant("object not found");
const GATED: TxErr = TxErr::Invariant("create/delete outside the SM gate");
/// An access fell outside the planned lock set (a stale plan, possible
/// only through build-date index races); reported as `Abort` so the
/// backend re-discovers.
const UNPLANNED: TxErr = TxErr::Abort;

// ---------------------------------------------------------------------------
// Lock identities and plans
// ---------------------------------------------------------------------------

/// Identity of one fine-grained lock.
///
/// The derived `Ord` *is* the canonical acquisition order: the date-index
/// shards first in shard order (they gate plan stability), then base
/// assemblies, complex assemblies and composite cells by raw id, then the
/// manual. The SM gate is not part of the plan — it is always acquired
/// first, before discovery.
///
/// The date index is sharded `index_shards` ways, routed by part id (the
/// same routing as [`ShardedIndex`]): an OP15-style date update plans
/// exactly the shards of the parts it touches, so updates on different
/// shards no longer serialize on one index lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum LockKey {
    DateShard(u32),
    Base(u32),
    Complex(u32),
    Composite(u32),
    Manual,
}

/// The lock set discovery produced: key → exclusive?
#[derive(Clone, Debug, Default)]
struct Plan {
    locks: BTreeMap<LockKey, bool>,
}

impl Plan {
    /// Records a lock requirement, upgrading read → write and never
    /// downgrading.
    fn need(&mut self, key: LockKey, write: bool) {
        let entry = self.locks.entry(key).or_insert(false);
        *entry |= write;
    }

    /// Number of planned locks.
    fn len(&self) -> usize {
        self.locks.len()
    }
}

/// A held per-object guard.
enum Held<'a, T> {
    Read(RwLockReadGuard<'a, T>),
    Write(RwLockWriteGuard<'a, T>),
}

impl<T> Held<'_, T> {
    fn get(&self) -> &T {
        match self {
            Held::Read(g) => g,
            Held::Write(g) => g,
        }
    }

    /// Exclusive access; a read guard means the plan under-approximated
    /// (stale plan), so the caller retries.
    fn get_mut(&mut self) -> TxR<&mut T> {
        match self {
            Held::Read(_) => Err(UNPLANNED),
            Held::Write(g) => Ok(g),
        }
    }
}

// ---------------------------------------------------------------------------
// The world
// ---------------------------------------------------------------------------

/// A composite part with everything that lives and dies with it: its
/// document and its graph of atomic parts. One lock protects the cell.
///
/// The members are optional because SM2 dismantles a cell in steps
/// (composite, then document, then parts); the cell is garbage-collected
/// when the last member goes. All such steps happen under the gate in
/// write mode, so regular operations never observe a tombstone.
#[derive(Clone, Debug, Default)]
struct CompositeCell {
    comp: Option<CompositePart>,
    doc: Option<Document>,
    parts: HashMap<u32, AtomicPart>,
}

impl CompositeCell {
    fn is_tombstone(&self) -> bool {
        self.comp.is_none() && self.doc.is_none() && self.parts.is_empty()
    }
}

/// Everything behind the SM gate.
///
/// The plain `BTree` members (`complex index` inside [`SmState`],
/// `base_ids`, `composite_ids`, `atomic_owner`, `doc_owner`, `by_title`)
/// and the id pools are mutated only while the gate is held in write
/// mode; regular operations hold the gate in read mode and read them
/// lock-free. Only `by_date` — which OP15 and the T3 family mutate — and
/// the per-object cells need interior locks.
struct FineWorld {
    sm: SmState,
    manual: RwLock<Manual>,
    bases: Store<RwLock<BaseAssembly>>,
    base_ids: ShardedIndex<u32, ()>,
    complexes: Store<RwLock<ComplexAssembly>>,
    cells: Store<RwLock<CompositeCell>>,
    composite_ids: ShardedIndex<u32, ()>,
    /// Atomic part raw id → owning composite raw id (doubles as index 1).
    atomic_owner: BTree<u32, u32>,
    /// Document raw id → owning composite raw id.
    doc_owner: BTree<u32, u32>,
    /// Index 4: document title → document raw id.
    by_title: ShardedIndex<String, u32>,
    /// Index 2 — the only index regular operations mutate — split into
    /// per-shard locks, routed by part id (shard `s` holds the entries of
    /// parts with `id % shards == s`).
    by_date: Vec<RwLock<BTree<(i32, u32), ()>>>,
}

impl FineWorld {
    /// The date-index shard a part id routes to.
    fn date_shard_of(&self, raw: u32) -> usize {
        raw as usize % self.by_date.len()
    }
}

/// Counters describing how the fine-grained strategy behaved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FineStats {
    /// Operations executed through the discover/acquire/execute cycle.
    pub planned_ops: u64,
    /// Operations executed under the exclusive gate (SM operations).
    pub exclusive_ops: u64,
    /// Per-object locks acquired by execution phases (gate excluded).
    pub locks_acquired: u64,
    /// Plans that went stale and were re-discovered.
    pub plan_retries: u64,
    /// Operations that exhausted retries and fell back to the gate.
    pub fallbacks: u64,
}

#[derive(Default)]
struct FineCounters {
    planned_ops: AtomicU64,
    exclusive_ops: AtomicU64,
    locks_acquired: AtomicU64,
    plan_retries: AtomicU64,
    fallbacks: AtomicU64,
}

/// The fine-grained locking backend (see module docs).
///
/// # Examples
///
/// ```
/// use stmbench7_backend::{Backend, FineBackend, TxOperation};
/// use stmbench7_data::{AccessSpec, Sb7Tx, StructureParams, TxR, Workspace};
///
/// struct RootId;
/// impl TxOperation<u32> for RootId {
///     fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<u32> {
///         tx.module(|m| m.design_root.raw())
///     }
/// }
///
/// let backend = FineBackend::new(Workspace::build(StructureParams::tiny(), 1));
/// let root = backend.execute(&AccessSpec::new().regular(), &mut RootId);
/// assert_ne!(root, 0);
/// assert_eq!(backend.fine_stats().planned_ops, 1);
/// ```
pub struct FineBackend {
    params: StructureParams,
    module: Module,
    gate: RwLock<FineWorld>,
    counters: FineCounters,
}

impl FineBackend {
    /// Partitions a built workspace into per-object lock cells.
    pub fn new(ws: Workspace) -> Self {
        let mut cells: Store<RwLock<CompositeCell>> = Store::new(ws.params.max_comps());
        let mut atomic_owner = BTree::new();
        let mut doc_owner = BTree::new();
        for (raw, comp) in ws.composites.store.iter() {
            let doc = ws
                .documents
                .store
                .get(comp.doc.raw())
                .expect("composite document exists")
                .clone();
            doc_owner.insert(comp.doc.raw(), raw);
            let mut parts = HashMap::with_capacity(comp.parts.len());
            for pid in &comp.parts {
                let part = ws
                    .atomics
                    .store
                    .get(pid.raw())
                    .expect("composite part graph exists")
                    .clone();
                atomic_owner.insert(pid.raw(), raw);
                parts.insert(pid.raw(), part);
            }
            cells.insert(
                raw,
                RwLock::new(CompositeCell {
                    comp: Some(comp.clone()),
                    doc: Some(doc),
                    parts,
                }),
            );
        }

        let mut bases: Store<RwLock<BaseAssembly>> = Store::new(ws.params.max_bases());
        for (raw, b) in ws.bases.store.iter() {
            bases.insert(raw, RwLock::new(b.clone()));
        }
        let mut complexes: Store<RwLock<ComplexAssembly>> = Store::new(ws.params.max_complexes());
        for group in &ws.complexes {
            for (raw, c) in group.store.iter() {
                complexes.insert(raw, RwLock::new(c.clone()));
            }
        }

        FineBackend {
            module: ws.module,
            gate: RwLock::new(FineWorld {
                sm: ws.sm,
                manual: RwLock::new(ws.manual),
                bases,
                base_ids: ws.bases.by_id,
                complexes,
                cells,
                composite_ids: ws.composites.by_id,
                atomic_owner,
                doc_owner,
                by_title: ws.documents.by_title,
                by_date: ws
                    .atomics
                    .by_date
                    .into_shards()
                    .into_iter()
                    .map(RwLock::new)
                    .collect(),
            }),
            params: ws.params,
            counters: FineCounters::default(),
        }
    }

    /// Snapshot of the strategy's behaviour counters.
    pub fn fine_stats(&self) -> FineStats {
        FineStats {
            planned_ops: self.counters.planned_ops.load(Ordering::Relaxed),
            exclusive_ops: self.counters.exclusive_ops.load(Ordering::Relaxed),
            locks_acquired: self.counters.locks_acquired.load(Ordering::Relaxed),
            plan_retries: self.counters.plan_retries.load(Ordering::Relaxed),
            fallbacks: self.counters.fallbacks.load(Ordering::Relaxed),
        }
    }
}

impl Backend for FineBackend {
    fn execute<R: Send, O: TxOperation<R> + Send>(&self, spec: &AccessSpec, op: &mut O) -> R {
        if spec.sm.is_write() {
            // Structure modifications run in isolation, exactly as under
            // the medium-grained strategy: the gate serializes them
            // against everything.
            let mut world = self.gate.write();
            self.counters.exclusive_ops.fetch_add(1, Ordering::Relaxed);
            op.begin_attempt();
            let mut tx = FullTx {
                module: &self.module,
                world: &mut world,
            };
            return unwrap_lock_result(op.run(&mut tx));
        }

        let world = self.gate.read();
        for _attempt in 0..MAX_PLAN_RETRIES {
            // Phase 1: discovery.
            op.begin_attempt();
            let mut disc = DiscoverTx {
                module: &self.module,
                world: &world,
                plan: Plan::default(),
                overlay: Overlay::default(),
            };
            match op.run(&mut disc) {
                Ok(_) => {}
                Err(TxErr::Abort) => unreachable!("discovery cannot abort"),
                Err(TxErr::Invariant(msg)) => {
                    panic!("operation violated an invariant during lock discovery: {msg}")
                }
            }
            let plan = disc.plan;

            // Phases 2 + 3: ordered acquisition, then the real run.
            let mut exec = ExecTx::acquire(&self.module, &world, &plan);
            self.counters
                .locks_acquired
                .fetch_add(plan.len() as u64, Ordering::Relaxed);
            op.begin_attempt();
            match op.run(&mut exec) {
                Ok(r) => {
                    self.counters.planned_ops.fetch_add(1, Ordering::Relaxed);
                    return r;
                }
                // The plan went stale (a date-index race); re-discover.
                Err(TxErr::Abort) => {
                    self.counters.plan_retries.fetch_add(1, Ordering::Relaxed);
                }
                Err(TxErr::Invariant(msg)) => {
                    panic!("operation violated its discovered lock plan: {msg}")
                }
            }
        }

        // Fallback: run exclusively. Guarantees progress for plans that
        // keep racing the date index.
        drop(world);
        let mut world = self.gate.write();
        self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
        op.begin_attempt();
        let mut tx = FullTx {
            module: &self.module,
            world: &mut world,
        };
        unwrap_lock_result(op.run(&mut tx))
    }

    fn name(&self) -> &'static str {
        "fine"
    }

    fn export(&self) -> Workspace {
        let mut world = self.gate.write();
        let world = &mut *world;
        let mut ws = Workspace::new(self.params.clone());
        ws.module = self.module.clone();
        ws.manual = world.manual.get_mut().clone();
        ws.sm = world.sm.clone();

        let mut bases = BaseGroup {
            store: Store::new(self.params.max_bases()),
            by_id: world.base_ids.clone(),
        };
        for (raw, cell) in world.bases.iter() {
            bases.store.insert(raw, cell.read().clone());
        }
        ws.bases = bases;

        let levels = usize::from(self.params.assembly_levels);
        let mut per_level: Vec<Store<ComplexAssembly>> = (2..=levels)
            .map(|_| Store::new(self.params.max_complexes()))
            .collect();
        for (raw, cell) in world.complexes.iter() {
            let ca = cell.read().clone();
            per_level[usize::from(ca.level) - 2].insert(raw, ca);
        }
        ws.complexes = per_level
            .into_iter()
            .map(|store| ComplexLevelGroup { store })
            .collect();

        let mut composites = CompositeGroup {
            store: Store::new(self.params.max_comps()),
            by_id: world.composite_ids.clone(),
        };
        let mut atomics = AtomicGroup {
            store: Store::new(self.params.max_atomics()),
            by_id: ShardedIndex::new(self.params.effective_shards()),
            by_date: ShardedIndex::from_shards(
                world
                    .by_date
                    .iter_mut()
                    .map(|lock| lock.get_mut().clone())
                    .collect(),
            ),
        };
        let mut documents = DocGroup {
            store: Store::new(self.params.max_comps()),
            by_title: world.by_title.clone(),
        };
        for (raw, cell) in world.cells.iter() {
            let cell = cell.read();
            if let Some(comp) = &cell.comp {
                composites.store.insert(raw, comp.clone());
            }
            if let Some(doc) = &cell.doc {
                documents.store.insert(doc.id.raw(), doc.clone());
            }
            for (praw, part) in &cell.parts {
                atomics.by_id.insert(*praw, ());
                atomics.store.insert(*praw, part.clone());
            }
        }
        ws.composites = composites;
        ws.atomics = atomics;
        ws.documents = documents;
        ws
    }
}

fn unwrap_lock_result<R>(r: TxR<R>) -> R {
    match r {
        Ok(v) => v,
        Err(TxErr::Abort) => unreachable!("exclusive execution cannot abort"),
        Err(TxErr::Invariant(msg)) => panic!("operation violated its access spec: {msg}"),
    }
}

// ---------------------------------------------------------------------------
// Discovery
// ---------------------------------------------------------------------------

/// Write buffer keeping discovery's control flow identical to a real
/// execution (read-your-own-write), without publishing anything.
#[derive(Default)]
struct Overlay {
    bases: HashMap<u32, BaseAssembly>,
    complexes: HashMap<u32, ComplexAssembly>,
    comps: HashMap<u32, CompositePart>,
    docs: HashMap<u32, Document>,
    parts: HashMap<u32, AtomicPart>,
    manual: Option<Manual>,
}

/// Phase-1 transaction: runs the operation body with momentary per-object
/// read locks (at most one held at a time), records the lock plan and
/// buffers writes locally.
struct DiscoverTx<'a> {
    module: &'a Module,
    world: &'a FineWorld,
    plan: Plan,
    overlay: Overlay,
}

impl DiscoverTx<'_> {
    fn owner_of_atomic(&self, raw: u32) -> TxR<u32> {
        self.world.atomic_owner.get(&raw).copied().ok_or(MISSING)
    }

    fn owner_of_doc(&self, raw: u32) -> TxR<u32> {
        self.world.doc_owner.get(&raw).copied().ok_or(MISSING)
    }

    /// Clones an object out of its cell under a momentary read lock.
    fn snapshot<T>(&self, owner: u32, pick: impl FnOnce(&CompositeCell) -> Option<&T>) -> TxR<T>
    where
        T: Clone,
    {
        let cell = self.world.cells.get(owner).ok_or(MISSING)?.read();
        pick(&cell).cloned().ok_or(MISSING)
    }
}

impl Sb7Tx for DiscoverTx<'_> {
    fn module<R>(&mut self, f: impl FnOnce(&Module) -> R) -> TxR<R> {
        Ok(f(self.module))
    }

    fn manual_text_len(&mut self) -> TxR<usize> {
        self.plan.need(LockKey::Manual, false);
        if let Some(m) = &self.overlay.manual {
            return Ok(m.text.len());
        }
        Ok(self.world.manual.read().text.len())
    }

    fn manual_count_char(&mut self, c: char) -> TxR<usize> {
        self.plan.need(LockKey::Manual, false);
        if let Some(m) = &self.overlay.manual {
            return Ok(stmbench7_data::text::count_char(&m.text, c));
        }
        Ok(stmbench7_data::text::count_char(
            &self.world.manual.read().text,
            c,
        ))
    }

    fn manual_first_last_equal(&mut self) -> TxR<bool> {
        self.plan.need(LockKey::Manual, false);
        if let Some(m) = &self.overlay.manual {
            return Ok(stmbench7_data::text::first_last_equal(&m.text));
        }
        Ok(stmbench7_data::text::first_last_equal(
            &self.world.manual.read().text,
        ))
    }

    fn manual_swap_case(&mut self) -> TxR<usize> {
        self.plan.need(LockKey::Manual, true);
        let m = match &mut self.overlay.manual {
            Some(m) => m,
            slot @ None => {
                *slot = Some(self.world.manual.read().clone());
                slot.as_mut().expect("just filled")
            }
        };
        Ok(stmbench7_data::text::swap_manual_case(&mut m.text))
    }

    fn set_design_root(&mut self, _root: ComplexAssemblyId) -> TxR<()> {
        Err(TxErr::Invariant(
            "the module is immutable once a backend is constructed",
        ))
    }

    fn atomic<R>(&mut self, id: AtomicPartId, f: impl FnOnce(&AtomicPart) -> R) -> TxR<R> {
        let owner = self.owner_of_atomic(id.raw())?;
        self.plan.need(LockKey::Composite(owner), false);
        if let Some(p) = self.overlay.parts.get(&id.raw()) {
            return Ok(f(p));
        }
        let cell = self.world.cells.get(owner).ok_or(MISSING)?.read();
        cell.parts.get(&id.raw()).map(f).ok_or(MISSING)
    }

    fn composite<R>(&mut self, id: CompositePartId, f: impl FnOnce(&CompositePart) -> R) -> TxR<R> {
        self.plan.need(LockKey::Composite(id.raw()), false);
        if let Some(c) = self.overlay.comps.get(&id.raw()) {
            return Ok(f(c));
        }
        let cell = self.world.cells.get(id.raw()).ok_or(MISSING)?.read();
        cell.comp.as_ref().map(f).ok_or(MISSING)
    }

    fn base<R>(&mut self, id: BaseAssemblyId, f: impl FnOnce(&BaseAssembly) -> R) -> TxR<R> {
        self.plan.need(LockKey::Base(id.raw()), false);
        if let Some(b) = self.overlay.bases.get(&id.raw()) {
            return Ok(f(b));
        }
        let b = self.world.bases.get(id.raw()).ok_or(MISSING)?.read();
        Ok(f(&b))
    }

    fn complex<R>(
        &mut self,
        id: ComplexAssemblyId,
        f: impl FnOnce(&ComplexAssembly) -> R,
    ) -> TxR<R> {
        self.plan.need(LockKey::Complex(id.raw()), false);
        if let Some(c) = self.overlay.complexes.get(&id.raw()) {
            return Ok(f(c));
        }
        let c = self.world.complexes.get(id.raw()).ok_or(MISSING)?.read();
        Ok(f(&c))
    }

    fn document<R>(&mut self, id: DocumentId, f: impl FnOnce(&Document) -> R) -> TxR<R> {
        let owner = self.owner_of_doc(id.raw())?;
        self.plan.need(LockKey::Composite(owner), false);
        if let Some(d) = self.overlay.docs.get(&id.raw()) {
            return Ok(f(d));
        }
        let cell = self.world.cells.get(owner).ok_or(MISSING)?.read();
        cell.doc.as_ref().map(f).ok_or(MISSING)
    }

    fn atomic_mut<R>(&mut self, id: AtomicPartId, f: impl FnOnce(&mut AtomicPart) -> R) -> TxR<R> {
        let owner = self.owner_of_atomic(id.raw())?;
        self.plan.need(LockKey::Composite(owner), true);
        if !self.overlay.parts.contains_key(&id.raw()) {
            let p = self.snapshot(owner, |cell| cell.parts.get(&id.raw()))?;
            self.overlay.parts.insert(id.raw(), p);
        }
        Ok(f(self
            .overlay
            .parts
            .get_mut(&id.raw())
            .expect("just inserted")))
    }

    fn composite_mut<R>(
        &mut self,
        id: CompositePartId,
        f: impl FnOnce(&mut CompositePart) -> R,
    ) -> TxR<R> {
        self.plan.need(LockKey::Composite(id.raw()), true);
        if !self.overlay.comps.contains_key(&id.raw()) {
            let c = self.snapshot(id.raw(), |cell| cell.comp.as_ref())?;
            self.overlay.comps.insert(id.raw(), c);
        }
        Ok(f(self
            .overlay
            .comps
            .get_mut(&id.raw())
            .expect("just inserted")))
    }

    fn base_mut<R>(
        &mut self,
        id: BaseAssemblyId,
        f: impl FnOnce(&mut BaseAssembly) -> R,
    ) -> TxR<R> {
        self.plan.need(LockKey::Base(id.raw()), true);
        if !self.overlay.bases.contains_key(&id.raw()) {
            let b = self
                .world
                .bases
                .get(id.raw())
                .ok_or(MISSING)?
                .read()
                .clone();
            self.overlay.bases.insert(id.raw(), b);
        }
        Ok(f(self
            .overlay
            .bases
            .get_mut(&id.raw())
            .expect("just inserted")))
    }

    fn complex_mut<R>(
        &mut self,
        id: ComplexAssemblyId,
        f: impl FnOnce(&mut ComplexAssembly) -> R,
    ) -> TxR<R> {
        self.plan.need(LockKey::Complex(id.raw()), true);
        if !self.overlay.complexes.contains_key(&id.raw()) {
            let c = self
                .world
                .complexes
                .get(id.raw())
                .ok_or(MISSING)?
                .read()
                .clone();
            self.overlay.complexes.insert(id.raw(), c);
        }
        Ok(f(self
            .overlay
            .complexes
            .get_mut(&id.raw())
            .expect("just inserted")))
    }

    fn document_mut<R>(&mut self, id: DocumentId, f: impl FnOnce(&mut Document) -> R) -> TxR<R> {
        let owner = self.owner_of_doc(id.raw())?;
        self.plan.need(LockKey::Composite(owner), true);
        if !self.overlay.docs.contains_key(&id.raw()) {
            let d = self.snapshot(owner, |cell| cell.doc.as_ref())?;
            self.overlay.docs.insert(id.raw(), d);
        }
        Ok(f(self
            .overlay
            .docs
            .get_mut(&id.raw())
            .expect("just inserted")))
    }

    fn set_atomic_build_date(&mut self, id: AtomicPartId, date: i32) -> TxR<()> {
        let shard = self.world.date_shard_of(id.raw()) as u32;
        self.plan.need(LockKey::DateShard(shard), true);
        self.atomic_mut(id, |p| p.build_date = date)
    }

    fn lookup_atomic(&mut self, raw: u32) -> TxR<Option<AtomicPartId>> {
        Ok(self.world.atomic_owner.get(&raw).map(|_| AtomicPartId(raw)))
    }

    fn lookup_composite(&mut self, raw: u32) -> TxR<Option<CompositePartId>> {
        Ok(self
            .world
            .composite_ids
            .get(&raw)
            .map(|_| CompositePartId(raw)))
    }

    fn lookup_base(&mut self, raw: u32) -> TxR<Option<BaseAssemblyId>> {
        Ok(self.world.base_ids.get(&raw).map(|_| BaseAssemblyId(raw)))
    }

    fn lookup_complex(&mut self, raw: u32) -> TxR<Option<ComplexAssemblyId>> {
        Ok(self
            .world
            .sm
            .complex_index
            .get(&raw)
            .map(|_| ComplexAssemblyId(raw)))
    }

    fn lookup_document(&mut self, title: &str) -> TxR<Option<DocumentId>> {
        Ok(self
            .world
            .by_title
            .get(&title.to_string())
            .map(|raw| DocumentId(*raw)))
    }

    fn atomics_in_date_range(&mut self, lo: i32, hi: i32) -> TxR<Vec<AtomicPartId>> {
        // A range spans every date shard; plan them all (read mode), read
        // each momentarily, and restore the global (date, id) order.
        let mut entries: Vec<(i32, u32)> = Vec::new();
        for (s, shard) in self.world.by_date.iter().enumerate() {
            self.plan.need(LockKey::DateShard(s as u32), false);
            shard
                .read()
                .for_range(&(lo, 0), &(hi, u32::MAX), |k, _| entries.push(*k));
        }
        Ok(stmbench7_data::sharded::merge_date_entries(entries))
    }

    fn all_atomic_ids(&mut self) -> TxR<Vec<AtomicPartId>> {
        let mut out = Vec::new();
        self.world
            .atomic_owner
            .for_each(|raw, _| out.push(AtomicPartId(*raw)));
        Ok(out)
    }

    fn all_base_ids(&mut self) -> TxR<Vec<BaseAssemblyId>> {
        let mut out = Vec::new();
        self.world
            .base_ids
            .for_each(|raw, _| out.push(BaseAssemblyId(*raw)));
        Ok(out)
    }

    fn pool_capacity(&mut self, kind: PoolKind) -> TxR<usize> {
        Ok(pool_capacity_of(&self.world.sm, kind))
    }

    fn create_atomic(
        &mut self,
        _make: impl FnOnce(AtomicPartId) -> AtomicPart,
    ) -> TxR<Option<AtomicPartId>> {
        Err(GATED)
    }

    fn create_composite(
        &mut self,
        _make: impl FnOnce(CompositePartId) -> CompositePart,
    ) -> TxR<Option<CompositePartId>> {
        Err(GATED)
    }

    fn create_document(
        &mut self,
        _make: impl FnOnce(DocumentId) -> Document,
    ) -> TxR<Option<DocumentId>> {
        Err(GATED)
    }

    fn create_base(
        &mut self,
        _make: impl FnOnce(BaseAssemblyId) -> BaseAssembly,
    ) -> TxR<Option<BaseAssemblyId>> {
        Err(GATED)
    }

    fn create_complex(
        &mut self,
        _level: u8,
        _make: impl FnOnce(ComplexAssemblyId) -> ComplexAssembly,
    ) -> TxR<Option<ComplexAssemblyId>> {
        Err(GATED)
    }

    fn delete_atomic(&mut self, _id: AtomicPartId) -> TxR<AtomicPart> {
        Err(GATED)
    }

    fn delete_composite(&mut self, _id: CompositePartId) -> TxR<CompositePart> {
        Err(GATED)
    }

    fn delete_document(&mut self, _id: DocumentId) -> TxR<Document> {
        Err(GATED)
    }

    fn delete_base(&mut self, _id: BaseAssemblyId) -> TxR<BaseAssembly> {
        Err(GATED)
    }

    fn delete_complex(&mut self, _id: ComplexAssemblyId) -> TxR<ComplexAssembly> {
        Err(GATED)
    }
}

fn pool_capacity_of(sm: &SmState, kind: PoolKind) -> usize {
    let pool = match kind {
        PoolKind::Atomic => &sm.pools.atomic,
        PoolKind::Composite => &sm.pools.composite,
        PoolKind::Document => &sm.pools.document,
        PoolKind::Base => &sm.pools.base,
        PoolKind::Complex => &sm.pools.complex,
    };
    pool.capacity() as usize - pool.live()
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// A possibly-held guard over one date-index shard.
type HeldDateShard<'a> = Option<Held<'a, BTree<(i32, u32), ()>>>;

/// Phase-3 transaction: every access resolves against a guard acquired in
/// canonical order from the discovered plan. Accesses outside the plan
/// return [`UNPLANNED`] (an `Abort`), making the backend re-discover.
struct ExecTx<'a> {
    module: &'a Module,
    world: &'a FineWorld,
    /// Held date-index shards, slot `s` for shard `s`.
    date: Vec<HeldDateShard<'a>>,
    bases: HashMap<u32, Held<'a, BaseAssembly>>,
    complexes: HashMap<u32, Held<'a, ComplexAssembly>>,
    cells: HashMap<u32, Held<'a, CompositeCell>>,
    manual: Option<Held<'a, Manual>>,
}

impl<'a> ExecTx<'a> {
    /// Acquires every planned lock, in `BTreeMap` (= canonical) order.
    fn acquire(module: &'a Module, world: &'a FineWorld, plan: &Plan) -> Self {
        let mut tx = ExecTx {
            module,
            world,
            date: (0..world.by_date.len()).map(|_| None).collect(),
            bases: HashMap::new(),
            complexes: HashMap::new(),
            cells: HashMap::new(),
            manual: None,
        };
        for (&key, &write) in &plan.locks {
            match key {
                LockKey::DateShard(s) => {
                    tx.date[s as usize] = Some(held(&world.by_date[s as usize], write));
                }
                LockKey::Base(raw) => {
                    // Planned objects can only vanish through SM
                    // operations, which the held gate excludes.
                    let lock = world.bases.get(raw).expect("planned base exists");
                    tx.bases.insert(raw, held(lock, write));
                }
                LockKey::Complex(raw) => {
                    let lock = world.complexes.get(raw).expect("planned complex exists");
                    tx.complexes.insert(raw, held(lock, write));
                }
                LockKey::Composite(raw) => {
                    let lock = world.cells.get(raw).expect("planned cell exists");
                    tx.cells.insert(raw, held(lock, write));
                }
                LockKey::Manual => {
                    tx.manual = Some(held(&world.manual, write));
                }
            }
        }
        tx
    }

    fn cell(&self, owner: u32) -> TxR<&CompositeCell> {
        self.cells.get(&owner).map(Held::get).ok_or(UNPLANNED)
    }

    fn cell_mut(&mut self, owner: u32) -> TxR<&mut CompositeCell> {
        self.cells.get_mut(&owner).ok_or(UNPLANNED)?.get_mut()
    }

    fn owner_of_atomic(&self, raw: u32) -> TxR<u32> {
        self.world.atomic_owner.get(&raw).copied().ok_or(MISSING)
    }

    fn owner_of_doc(&self, raw: u32) -> TxR<u32> {
        self.world.doc_owner.get(&raw).copied().ok_or(MISSING)
    }
}

fn held<T>(lock: &RwLock<T>, write: bool) -> Held<'_, T> {
    if write {
        Held::Write(lock.write())
    } else {
        Held::Read(lock.read())
    }
}

impl Sb7Tx for ExecTx<'_> {
    fn module<R>(&mut self, f: impl FnOnce(&Module) -> R) -> TxR<R> {
        Ok(f(self.module))
    }

    fn manual_text_len(&mut self) -> TxR<usize> {
        Ok(self.manual.as_ref().ok_or(UNPLANNED)?.get().text.len())
    }

    fn manual_count_char(&mut self, c: char) -> TxR<usize> {
        Ok(stmbench7_data::text::count_char(
            &self.manual.as_ref().ok_or(UNPLANNED)?.get().text,
            c,
        ))
    }

    fn manual_first_last_equal(&mut self) -> TxR<bool> {
        Ok(stmbench7_data::text::first_last_equal(
            &self.manual.as_ref().ok_or(UNPLANNED)?.get().text,
        ))
    }

    fn manual_swap_case(&mut self) -> TxR<usize> {
        Ok(stmbench7_data::text::swap_manual_case(
            &mut self.manual.as_mut().ok_or(UNPLANNED)?.get_mut()?.text,
        ))
    }

    fn set_design_root(&mut self, _root: ComplexAssemblyId) -> TxR<()> {
        Err(TxErr::Invariant(
            "the module is immutable once a backend is constructed",
        ))
    }

    fn atomic<R>(&mut self, id: AtomicPartId, f: impl FnOnce(&AtomicPart) -> R) -> TxR<R> {
        let owner = self.owner_of_atomic(id.raw())?;
        self.cell(owner)?.parts.get(&id.raw()).map(f).ok_or(MISSING)
    }

    fn composite<R>(&mut self, id: CompositePartId, f: impl FnOnce(&CompositePart) -> R) -> TxR<R> {
        self.cell(id.raw())?.comp.as_ref().map(f).ok_or(MISSING)
    }

    fn base<R>(&mut self, id: BaseAssemblyId, f: impl FnOnce(&BaseAssembly) -> R) -> TxR<R> {
        Ok(f(self.bases.get(&id.raw()).ok_or(UNPLANNED)?.get()))
    }

    fn complex<R>(
        &mut self,
        id: ComplexAssemblyId,
        f: impl FnOnce(&ComplexAssembly) -> R,
    ) -> TxR<R> {
        Ok(f(self.complexes.get(&id.raw()).ok_or(UNPLANNED)?.get()))
    }

    fn document<R>(&mut self, id: DocumentId, f: impl FnOnce(&Document) -> R) -> TxR<R> {
        let owner = self.owner_of_doc(id.raw())?;
        self.cell(owner)?.doc.as_ref().map(f).ok_or(MISSING)
    }

    fn atomic_mut<R>(&mut self, id: AtomicPartId, f: impl FnOnce(&mut AtomicPart) -> R) -> TxR<R> {
        let owner = self.owner_of_atomic(id.raw())?;
        self.cell_mut(owner)?
            .parts
            .get_mut(&id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn composite_mut<R>(
        &mut self,
        id: CompositePartId,
        f: impl FnOnce(&mut CompositePart) -> R,
    ) -> TxR<R> {
        self.cell_mut(id.raw())?.comp.as_mut().map(f).ok_or(MISSING)
    }

    fn base_mut<R>(
        &mut self,
        id: BaseAssemblyId,
        f: impl FnOnce(&mut BaseAssembly) -> R,
    ) -> TxR<R> {
        Ok(f(self
            .bases
            .get_mut(&id.raw())
            .ok_or(UNPLANNED)?
            .get_mut()?))
    }

    fn complex_mut<R>(
        &mut self,
        id: ComplexAssemblyId,
        f: impl FnOnce(&mut ComplexAssembly) -> R,
    ) -> TxR<R> {
        Ok(f(self
            .complexes
            .get_mut(&id.raw())
            .ok_or(UNPLANNED)?
            .get_mut()?))
    }

    fn document_mut<R>(&mut self, id: DocumentId, f: impl FnOnce(&mut Document) -> R) -> TxR<R> {
        let owner = self.owner_of_doc(id.raw())?;
        self.cell_mut(owner)?.doc.as_mut().map(f).ok_or(MISSING)
    }

    fn set_atomic_build_date(&mut self, id: AtomicPartId, date: i32) -> TxR<()> {
        let owner = self.owner_of_atomic(id.raw())?;
        // The date index entry moves together with the attribute.
        let old = {
            let part = self
                .cell_mut(owner)?
                .parts
                .get_mut(&id.raw())
                .ok_or(MISSING)?;
            let old = part.build_date;
            part.build_date = date;
            old
        };
        let shard = self.world.date_shard_of(id.raw());
        let index = self.date[shard].as_mut().ok_or(UNPLANNED)?.get_mut()?;
        index.remove(&(old, id.raw()));
        index.insert((date, id.raw()), ());
        Ok(())
    }

    fn lookup_atomic(&mut self, raw: u32) -> TxR<Option<AtomicPartId>> {
        Ok(self.world.atomic_owner.get(&raw).map(|_| AtomicPartId(raw)))
    }

    fn lookup_composite(&mut self, raw: u32) -> TxR<Option<CompositePartId>> {
        Ok(self
            .world
            .composite_ids
            .get(&raw)
            .map(|_| CompositePartId(raw)))
    }

    fn lookup_base(&mut self, raw: u32) -> TxR<Option<BaseAssemblyId>> {
        Ok(self.world.base_ids.get(&raw).map(|_| BaseAssemblyId(raw)))
    }

    fn lookup_complex(&mut self, raw: u32) -> TxR<Option<ComplexAssemblyId>> {
        Ok(self
            .world
            .sm
            .complex_index
            .get(&raw)
            .map(|_| ComplexAssemblyId(raw)))
    }

    fn lookup_document(&mut self, title: &str) -> TxR<Option<DocumentId>> {
        Ok(self
            .world
            .by_title
            .get(&title.to_string())
            .map(|raw| DocumentId(*raw)))
    }

    fn atomics_in_date_range(&mut self, lo: i32, hi: i32) -> TxR<Vec<AtomicPartId>> {
        // Every shard must be in the plan (discovery plans them all for
        // range scans); merge the sorted slices back into global order.
        let mut entries: Vec<(i32, u32)> = Vec::new();
        for slot in &self.date {
            let index = slot.as_ref().ok_or(UNPLANNED)?.get();
            index.for_range(&(lo, 0), &(hi, u32::MAX), |k, _| entries.push(*k));
        }
        Ok(stmbench7_data::sharded::merge_date_entries(entries))
    }

    fn all_atomic_ids(&mut self) -> TxR<Vec<AtomicPartId>> {
        let mut out = Vec::new();
        self.world
            .atomic_owner
            .for_each(|raw, _| out.push(AtomicPartId(*raw)));
        Ok(out)
    }

    fn all_base_ids(&mut self) -> TxR<Vec<BaseAssemblyId>> {
        let mut out = Vec::new();
        self.world
            .base_ids
            .for_each(|raw, _| out.push(BaseAssemblyId(*raw)));
        Ok(out)
    }

    fn pool_capacity(&mut self, kind: PoolKind) -> TxR<usize> {
        Ok(pool_capacity_of(&self.world.sm, kind))
    }

    fn create_atomic(
        &mut self,
        _make: impl FnOnce(AtomicPartId) -> AtomicPart,
    ) -> TxR<Option<AtomicPartId>> {
        Err(GATED)
    }

    fn create_composite(
        &mut self,
        _make: impl FnOnce(CompositePartId) -> CompositePart,
    ) -> TxR<Option<CompositePartId>> {
        Err(GATED)
    }

    fn create_document(
        &mut self,
        _make: impl FnOnce(DocumentId) -> Document,
    ) -> TxR<Option<DocumentId>> {
        Err(GATED)
    }

    fn create_base(
        &mut self,
        _make: impl FnOnce(BaseAssemblyId) -> BaseAssembly,
    ) -> TxR<Option<BaseAssemblyId>> {
        Err(GATED)
    }

    fn create_complex(
        &mut self,
        _level: u8,
        _make: impl FnOnce(ComplexAssemblyId) -> ComplexAssembly,
    ) -> TxR<Option<ComplexAssemblyId>> {
        Err(GATED)
    }

    fn delete_atomic(&mut self, _id: AtomicPartId) -> TxR<AtomicPart> {
        Err(GATED)
    }

    fn delete_composite(&mut self, _id: CompositePartId) -> TxR<CompositePart> {
        Err(GATED)
    }

    fn delete_document(&mut self, _id: DocumentId) -> TxR<Document> {
        Err(GATED)
    }

    fn delete_base(&mut self, _id: BaseAssemblyId) -> TxR<BaseAssembly> {
        Err(GATED)
    }

    fn delete_complex(&mut self, _id: ComplexAssemblyId) -> TxR<ComplexAssembly> {
        Err(GATED)
    }
}

// ---------------------------------------------------------------------------
// Exclusive execution (SM operations and the fallback path)
// ---------------------------------------------------------------------------

/// Gate-exclusive transaction with direct mutable access; the only one
/// allowed to create and delete objects.
struct FullTx<'a> {
    module: &'a Module,
    world: &'a mut FineWorld,
}

impl FullTx<'_> {
    fn owner_of_atomic(&self, raw: u32) -> TxR<u32> {
        self.world.atomic_owner.get(&raw).copied().ok_or(MISSING)
    }

    fn owner_of_doc(&self, raw: u32) -> TxR<u32> {
        self.world.doc_owner.get(&raw).copied().ok_or(MISSING)
    }

    fn cell_mut(&mut self, owner: u32) -> TxR<&mut CompositeCell> {
        Ok(self.world.cells.get_mut(owner).ok_or(MISSING)?.get_mut())
    }

    /// Removes a cell once its last member is gone.
    fn gc_cell(&mut self, owner: u32) {
        let empty = self
            .world
            .cells
            .get_mut(owner)
            .map(|c| c.get_mut().is_tombstone())
            .unwrap_or(false);
        if empty {
            self.world.cells.remove(owner);
        }
    }
}

impl Sb7Tx for FullTx<'_> {
    fn module<R>(&mut self, f: impl FnOnce(&Module) -> R) -> TxR<R> {
        Ok(f(self.module))
    }

    fn manual_text_len(&mut self) -> TxR<usize> {
        Ok(self.world.manual.get_mut().text.len())
    }

    fn manual_count_char(&mut self, c: char) -> TxR<usize> {
        Ok(stmbench7_data::text::count_char(
            &self.world.manual.get_mut().text,
            c,
        ))
    }

    fn manual_first_last_equal(&mut self) -> TxR<bool> {
        Ok(stmbench7_data::text::first_last_equal(
            &self.world.manual.get_mut().text,
        ))
    }

    fn manual_swap_case(&mut self) -> TxR<usize> {
        Ok(stmbench7_data::text::swap_manual_case(
            &mut self.world.manual.get_mut().text,
        ))
    }

    fn set_design_root(&mut self, _root: ComplexAssemblyId) -> TxR<()> {
        Err(TxErr::Invariant(
            "the module is immutable once a backend is constructed",
        ))
    }

    fn atomic<R>(&mut self, id: AtomicPartId, f: impl FnOnce(&AtomicPart) -> R) -> TxR<R> {
        let owner = self.owner_of_atomic(id.raw())?;
        self.cell_mut(owner)?
            .parts
            .get(&id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn composite<R>(&mut self, id: CompositePartId, f: impl FnOnce(&CompositePart) -> R) -> TxR<R> {
        self.cell_mut(id.raw())?.comp.as_ref().map(f).ok_or(MISSING)
    }

    fn base<R>(&mut self, id: BaseAssemblyId, f: impl FnOnce(&BaseAssembly) -> R) -> TxR<R> {
        Ok(f(self
            .world
            .bases
            .get_mut(id.raw())
            .ok_or(MISSING)?
            .get_mut()))
    }

    fn complex<R>(
        &mut self,
        id: ComplexAssemblyId,
        f: impl FnOnce(&ComplexAssembly) -> R,
    ) -> TxR<R> {
        Ok(f(self
            .world
            .complexes
            .get_mut(id.raw())
            .ok_or(MISSING)?
            .get_mut()))
    }

    fn document<R>(&mut self, id: DocumentId, f: impl FnOnce(&Document) -> R) -> TxR<R> {
        let owner = self.owner_of_doc(id.raw())?;
        self.cell_mut(owner)?.doc.as_ref().map(f).ok_or(MISSING)
    }

    fn atomic_mut<R>(&mut self, id: AtomicPartId, f: impl FnOnce(&mut AtomicPart) -> R) -> TxR<R> {
        let owner = self.owner_of_atomic(id.raw())?;
        self.cell_mut(owner)?
            .parts
            .get_mut(&id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn composite_mut<R>(
        &mut self,
        id: CompositePartId,
        f: impl FnOnce(&mut CompositePart) -> R,
    ) -> TxR<R> {
        self.cell_mut(id.raw())?.comp.as_mut().map(f).ok_or(MISSING)
    }

    fn base_mut<R>(
        &mut self,
        id: BaseAssemblyId,
        f: impl FnOnce(&mut BaseAssembly) -> R,
    ) -> TxR<R> {
        Ok(f(self
            .world
            .bases
            .get_mut(id.raw())
            .ok_or(MISSING)?
            .get_mut()))
    }

    fn complex_mut<R>(
        &mut self,
        id: ComplexAssemblyId,
        f: impl FnOnce(&mut ComplexAssembly) -> R,
    ) -> TxR<R> {
        Ok(f(self
            .world
            .complexes
            .get_mut(id.raw())
            .ok_or(MISSING)?
            .get_mut()))
    }

    fn document_mut<R>(&mut self, id: DocumentId, f: impl FnOnce(&mut Document) -> R) -> TxR<R> {
        let owner = self.owner_of_doc(id.raw())?;
        self.cell_mut(owner)?.doc.as_mut().map(f).ok_or(MISSING)
    }

    fn set_atomic_build_date(&mut self, id: AtomicPartId, date: i32) -> TxR<()> {
        let owner = self.owner_of_atomic(id.raw())?;
        let part = self
            .cell_mut(owner)?
            .parts
            .get_mut(&id.raw())
            .ok_or(MISSING)?;
        let old = part.build_date;
        part.build_date = date;
        let shard = self.world.date_shard_of(id.raw());
        let index = self.world.by_date[shard].get_mut();
        index.remove(&(old, id.raw()));
        index.insert((date, id.raw()), ());
        Ok(())
    }

    fn lookup_atomic(&mut self, raw: u32) -> TxR<Option<AtomicPartId>> {
        Ok(self.world.atomic_owner.get(&raw).map(|_| AtomicPartId(raw)))
    }

    fn lookup_composite(&mut self, raw: u32) -> TxR<Option<CompositePartId>> {
        Ok(self
            .world
            .composite_ids
            .get(&raw)
            .map(|_| CompositePartId(raw)))
    }

    fn lookup_base(&mut self, raw: u32) -> TxR<Option<BaseAssemblyId>> {
        Ok(self.world.base_ids.get(&raw).map(|_| BaseAssemblyId(raw)))
    }

    fn lookup_complex(&mut self, raw: u32) -> TxR<Option<ComplexAssemblyId>> {
        Ok(self
            .world
            .sm
            .complex_index
            .get(&raw)
            .map(|_| ComplexAssemblyId(raw)))
    }

    fn lookup_document(&mut self, title: &str) -> TxR<Option<DocumentId>> {
        Ok(self
            .world
            .by_title
            .get(&title.to_string())
            .map(|raw| DocumentId(*raw)))
    }

    fn atomics_in_date_range(&mut self, lo: i32, hi: i32) -> TxR<Vec<AtomicPartId>> {
        let mut entries: Vec<(i32, u32)> = Vec::new();
        for lock in &mut self.world.by_date {
            lock.get_mut()
                .for_range(&(lo, 0), &(hi, u32::MAX), |k, _| entries.push(*k));
        }
        Ok(stmbench7_data::sharded::merge_date_entries(entries))
    }

    fn all_atomic_ids(&mut self) -> TxR<Vec<AtomicPartId>> {
        let mut out = Vec::new();
        self.world
            .atomic_owner
            .for_each(|raw, _| out.push(AtomicPartId(*raw)));
        Ok(out)
    }

    fn all_base_ids(&mut self) -> TxR<Vec<BaseAssemblyId>> {
        let mut out = Vec::new();
        self.world
            .base_ids
            .for_each(|raw, _| out.push(BaseAssemblyId(*raw)));
        Ok(out)
    }

    fn pool_capacity(&mut self, kind: PoolKind) -> TxR<usize> {
        Ok(pool_capacity_of(&self.world.sm, kind))
    }

    fn create_atomic(
        &mut self,
        make: impl FnOnce(AtomicPartId) -> AtomicPart,
    ) -> TxR<Option<AtomicPartId>> {
        let Some(raw) = self.world.sm.pools.atomic.alloc() else {
            return Ok(None);
        };
        let id = AtomicPartId(raw);
        let part = make(id);
        debug_assert_eq!(part.id, id);
        let owner = part.owner.raw();
        let shard = self.world.date_shard_of(raw);
        self.world.by_date[shard]
            .get_mut()
            .insert((part.build_date, raw), ());
        self.world.atomic_owner.insert(raw, owner);
        let cell = self
            .cell_mut(owner)
            .expect("atomic parts are created into existing cells");
        let previous = cell.parts.insert(raw, part);
        debug_assert!(previous.is_none(), "atomic id {raw} reused while live");
        Ok(Some(id))
    }

    fn create_composite(
        &mut self,
        make: impl FnOnce(CompositePartId) -> CompositePart,
    ) -> TxR<Option<CompositePartId>> {
        let Some(raw) = self.world.sm.pools.composite.alloc() else {
            return Ok(None);
        };
        let id = CompositePartId(raw);
        let comp = make(id);
        debug_assert_eq!(comp.id, id);
        self.world.composite_ids.insert(raw, ());
        match self.world.cells.get_mut(raw) {
            // A tombstone with this id can only linger within one SM
            // operation (the gate excludes everything else); reuse it.
            Some(cell) => {
                let cell = cell.get_mut();
                debug_assert!(cell.comp.is_none(), "composite id {raw} reused while live");
                cell.comp = Some(comp);
            }
            None => self.world.cells.insert(
                raw,
                RwLock::new(CompositeCell {
                    comp: Some(comp),
                    doc: None,
                    parts: HashMap::new(),
                }),
            ),
        }
        Ok(Some(id))
    }

    fn create_document(
        &mut self,
        make: impl FnOnce(DocumentId) -> Document,
    ) -> TxR<Option<DocumentId>> {
        let Some(raw) = self.world.sm.pools.document.alloc() else {
            return Ok(None);
        };
        let id = DocumentId(raw);
        let doc = make(id);
        debug_assert_eq!(doc.id, id);
        let owner = doc.part.raw();
        self.world.doc_owner.insert(raw, owner);
        self.world.by_title.insert(doc.title.clone(), raw);
        let cell = self
            .cell_mut(owner)
            .expect("documents are created into existing cells");
        debug_assert!(cell.doc.is_none(), "cell {owner} already has a document");
        cell.doc = Some(doc);
        Ok(Some(id))
    }

    fn create_base(
        &mut self,
        make: impl FnOnce(BaseAssemblyId) -> BaseAssembly,
    ) -> TxR<Option<BaseAssemblyId>> {
        let Some(raw) = self.world.sm.pools.base.alloc() else {
            return Ok(None);
        };
        let id = BaseAssemblyId(raw);
        let b = make(id);
        debug_assert_eq!(b.id, id);
        self.world.base_ids.insert(raw, ());
        self.world.bases.insert(raw, RwLock::new(b));
        Ok(Some(id))
    }

    fn create_complex(
        &mut self,
        level: u8,
        make: impl FnOnce(ComplexAssemblyId) -> ComplexAssembly,
    ) -> TxR<Option<ComplexAssemblyId>> {
        let Some(raw) = self.world.sm.pools.complex.alloc() else {
            return Ok(None);
        };
        let id = ComplexAssemblyId(raw);
        let c = make(id);
        debug_assert_eq!(c.id, id);
        debug_assert_eq!(c.level, level);
        self.world.sm.complex_index.insert(raw, level);
        self.world.complexes.insert(raw, RwLock::new(c));
        Ok(Some(id))
    }

    fn delete_atomic(&mut self, id: AtomicPartId) -> TxR<AtomicPart> {
        let raw = id.raw();
        let owner = self.world.atomic_owner.remove(&raw).ok_or(MISSING)?;
        let part = self
            .cell_mut(owner)?
            .parts
            .remove(&raw)
            .expect("owner table and cell agree");
        let shard = self.world.date_shard_of(raw);
        self.world.by_date[shard]
            .get_mut()
            .remove(&(part.build_date, raw));
        assert!(self.world.sm.pools.atomic.free(raw), "pool drift");
        self.gc_cell(owner);
        Ok(part)
    }

    fn delete_composite(&mut self, id: CompositePartId) -> TxR<CompositePart> {
        let raw = id.raw();
        let comp = self.cell_mut(raw)?.comp.take().ok_or(MISSING)?;
        self.world.composite_ids.remove(&raw);
        assert!(self.world.sm.pools.composite.free(raw), "pool drift");
        self.gc_cell(raw);
        Ok(comp)
    }

    fn delete_document(&mut self, id: DocumentId) -> TxR<Document> {
        let raw = id.raw();
        let owner = self.world.doc_owner.remove(&raw).ok_or(MISSING)?;
        let doc = self
            .cell_mut(owner)?
            .doc
            .take()
            .expect("owner table and cell agree");
        self.world.by_title.remove(&doc.title);
        assert!(self.world.sm.pools.document.free(raw), "pool drift");
        self.gc_cell(owner);
        Ok(doc)
    }

    fn delete_base(&mut self, id: BaseAssemblyId) -> TxR<BaseAssembly> {
        let raw = id.raw();
        let cell = self.world.bases.remove(raw).ok_or(MISSING)?;
        self.world.base_ids.remove(&raw);
        assert!(self.world.sm.pools.base.free(raw), "pool drift");
        Ok(cell.into_inner())
    }

    fn delete_complex(&mut self, id: ComplexAssemblyId) -> TxR<ComplexAssembly> {
        let raw = id.raw();
        let cell = self.world.complexes.remove(raw).ok_or(MISSING)?;
        self.world.sm.complex_index.remove(&raw);
        assert!(self.world.sm.pools.complex.free(raw), "pool drift");
        Ok(cell.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmbench7_data::Mode;

    struct ReadRoot;
    impl TxOperation<u32> for ReadRoot {
        fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<u32> {
            tx.module(|m| m.design_root.raw())
        }
    }

    struct SwapManual;
    impl TxOperation<usize> for SwapManual {
        fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<usize> {
            tx.manual_swap_case()
        }
    }

    /// Swaps x/y of one atomic part reached through its composite.
    struct SwapFirstPart;
    impl TxOperation<(i32, i32)> for SwapFirstPart {
        fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<(i32, i32)> {
            let comp = tx.lookup_composite(1)?.expect("composite 1 exists");
            let part = tx.composite(comp, |c| c.root_part)?;
            tx.atomic_mut(part, |p| {
                p.swap_xy();
                (p.x, p.y)
            })
        }
    }

    fn regular() -> AccessSpec {
        AccessSpec::new().regular()
    }

    fn build(seed: u64) -> FineBackend {
        FineBackend::new(Workspace::build(StructureParams::tiny(), seed))
    }

    #[test]
    fn read_write_and_export_round_trip() {
        let backend = build(5);
        let root = backend.execute(&regular(), &mut ReadRoot);
        assert_ne!(root, 0);
        assert!(backend.execute(&regular().manual(Mode::Write), &mut SwapManual) > 0);
        let (x1, y1) = backend.execute(&regular(), &mut SwapFirstPart);
        let (x2, y2) = backend.execute(&regular(), &mut SwapFirstPart);
        assert_eq!((x1, y1), (y2, x2));
        let ws = backend.export();
        stmbench7_data::validate(&ws).unwrap();
        assert_eq!(ws.module.design_root.raw(), root);
    }

    #[test]
    fn plans_are_counted() {
        let backend = build(6);
        backend.execute(&regular(), &mut ReadRoot);
        backend.execute(&regular(), &mut SwapFirstPart);
        let stats = backend.fine_stats();
        assert_eq!(stats.planned_ops, 2);
        assert_eq!(stats.exclusive_ops, 0);
        // ReadRoot locks nothing; SwapFirstPart locks exactly one cell.
        assert_eq!(stats.locks_acquired, 1);
        assert_eq!(stats.plan_retries, 0);
        assert_eq!(stats.fallbacks, 0);
    }

    #[test]
    fn sm_ops_run_exclusively() {
        let backend = build(7);
        struct Sm1Like;
        impl TxOperation<bool> for Sm1Like {
            fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<bool> {
                let params = StructureParams::tiny();
                let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(3);
                Ok(
                    stmbench7_data::builder::create_composite_with_graph(tx, &params, &mut rng)?
                        .is_some(),
                )
            }
        }
        let spec = AccessSpec::new().sm_op().composites(Mode::Write);
        assert!(backend.execute(&spec, &mut Sm1Like));
        assert_eq!(backend.fine_stats().exclusive_ops, 1);
        stmbench7_data::validate(&backend.export()).unwrap();
    }

    #[test]
    fn lock_order_is_canonical() {
        let mut keys = vec![
            LockKey::Manual,
            LockKey::Composite(1),
            LockKey::Complex(9),
            LockKey::Base(500),
            LockKey::DateShard(3),
            LockKey::DateShard(0),
            LockKey::Complex(2),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                LockKey::DateShard(0),
                LockKey::DateShard(3),
                LockKey::Base(500),
                LockKey::Complex(2),
                LockKey::Complex(9),
                LockKey::Composite(1),
                LockKey::Manual,
            ]
        );
    }

    #[test]
    fn plan_upgrades_but_never_downgrades() {
        let mut plan = Plan::default();
        plan.need(LockKey::Base(1), false);
        plan.need(LockKey::Base(1), true);
        plan.need(LockKey::Base(1), false);
        assert_eq!(plan.locks.get(&LockKey::Base(1)), Some(&true));
        assert_eq!(plan.len(), 1);
    }

    /// An adversarial operation whose access set *changes between
    /// attempts*: attempt n touches the root parts of `extra(n)`
    /// composites. With `extra` growing per attempt, execution always
    /// touches one cell discovery did not plan, exercising the retry
    /// loop (bounded growth) or the gate-write fallback (unbounded).
    struct ShiftingFootprint {
        attempts: u32,
        limit: u32,
    }

    impl TxOperation<i64> for ShiftingFootprint {
        fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<i64> {
            // `begin_attempt` does not reset this — the drift across
            // attempts is the point.
            let extra = self.attempts.min(self.limit);
            self.attempts += 1;
            let mut sum = 0i64;
            for raw in 1..=(1 + extra) {
                if let Some(comp) = tx.lookup_composite(raw)? {
                    let part = tx.composite(comp, |c| c.root_part)?;
                    sum += tx.atomic(part, |p| i64::from(p.x))?;
                }
            }
            Ok(sum)
        }
    }

    #[test]
    fn stale_plans_are_retried() {
        let backend = build(21);
        // Discovery (attempt 0) plans 1 cell; execution (attempt 1)
        // touches 2 → retry; re-discovery (attempt 2) plans 3 while
        // execution (attempt 3) wants 4 → retry… until `limit` freezes
        // the footprint and one cycle succeeds.
        let mut op = ShiftingFootprint {
            attempts: 0,
            limit: 4,
        };
        backend.execute(&regular(), &mut op);
        let stats = backend.fine_stats();
        assert!(stats.plan_retries > 0, "the shifting footprint must race");
        assert_eq!(stats.fallbacks, 0, "a frozen footprint settles in time");
        assert_eq!(stats.planned_ops, 1);
    }

    #[test]
    fn unbounded_drift_falls_back_to_exclusive_execution() {
        // Discovery attempts (even) and execution attempts (odd) touch
        // *different* cells, so no plan can ever settle; only the
        // gate-write fallback makes progress.
        struct ParityFootprint {
            attempts: u32,
        }
        impl TxOperation<i64> for ParityFootprint {
            fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<i64> {
                let raw = 1 + (self.attempts % 2);
                self.attempts += 1;
                let comp = tx.lookup_composite(raw)?.expect("composites 1 and 2 exist");
                let part = tx.composite(comp, |c| c.root_part)?;
                tx.atomic(part, |p| i64::from(p.x))
            }
        }

        let backend = build(22);
        backend.execute(&regular(), &mut ParityFootprint { attempts: 0 });
        let stats = backend.fine_stats();
        assert_eq!(stats.fallbacks, 1, "progress requires the fallback");
        assert_eq!(stats.plan_retries as u32, MAX_PLAN_RETRIES);
        assert_eq!(stats.planned_ops, 0);
    }

    #[test]
    fn concurrent_date_scans_and_updates_stay_coherent() {
        // OP15-style date writes race OP2-style scans: the only
        // plan-instability the fine strategy admits. The date-index lock
        // keeps every execution coherent regardless.
        use stmbench7_data::AtomicPart;
        struct BumpDates;
        impl TxOperation<u32> for BumpDates {
            fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<u32> {
                let mut bumped = 0;
                for raw in [3u32, 7, 11] {
                    if let Some(id) = tx.lookup_atomic(raw)? {
                        let date = tx.atomic(id, |p| p.build_date)?;
                        tx.set_atomic_build_date(id, AtomicPart::next_build_date(date))?;
                        bumped += 1;
                    }
                }
                Ok(bumped)
            }
        }
        struct ScanDates;
        impl TxOperation<usize> for ScanDates {
            fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<usize> {
                let ids = tx.atomics_in_date_range(i32::MIN, i32::MAX)?;
                let mut sum = 0i64;
                for id in &ids {
                    sum += tx.atomic(*id, |p| i64::from(p.x))?;
                }
                std::hint::black_box(sum);
                Ok(ids.len())
            }
        }

        let backend = std::sync::Arc::new(build(23));
        let parts = backend.export().atomics.store.live();
        std::thread::scope(|s| {
            for t in 0..4 {
                let b = std::sync::Arc::clone(&backend);
                s.spawn(move || {
                    for _ in 0..200 {
                        if t % 2 == 0 {
                            b.execute(&regular().atomics(Mode::Write), &mut BumpDates);
                        } else {
                            // The full-range scan must always see every
                            // live part: dates move but parts never
                            // appear or vanish under the gate.
                            let seen = b.execute(&regular(), &mut ScanDates);
                            assert_eq!(seen, parts);
                        }
                    }
                });
            }
        });
        stmbench7_data::validate(&backend.export()).unwrap();
    }

    #[test]
    fn concurrent_mixed_load_keeps_structure_valid() {
        let backend = std::sync::Arc::new(build(11));
        std::thread::scope(|s| {
            for t in 0..4 {
                let b = std::sync::Arc::clone(&backend);
                s.spawn(move || {
                    for i in 0..100 {
                        if (t + i) % 3 == 0 {
                            b.execute(&regular().manual(Mode::Write), &mut SwapManual);
                        } else {
                            b.execute(&regular(), &mut SwapFirstPart);
                        }
                    }
                });
            }
        });
        stmbench7_data::validate(&backend.export()).unwrap();
    }
}
