//! The STM backend: the STMBench7 structure over transactional cells.
//!
//! Every mutable object lives in its own transactional variable — exactly
//! the paper's §5 setup ("we made each non-immutable object in the data
//! structure transactional"). The module is immutable and therefore not
//! transactional, as in the paper.
//!
//! Two representations are provided for the *large* objects:
//!
//! * [`Granularity::Monolithic`] — each index, and the manual, is one
//!   transactional object. Inserting one entry into the atomic-part index
//!   copies the whole index; changing one character of the manual copies
//!   the whole manual. This is the configuration whose cost the paper
//!   measures with ASTM.
//! * [`Granularity::Sharded`] — indexes are split into small per-bucket
//!   cells and the manual into chunks: the "group small objects / split
//!   the large ones" remedy sketched at the end of §5.

use std::cell::Cell as StdCell;

use stmbench7_obs::{EventKind, Layer, Recorder};

use stmbench7_data::access::PoolKind;
use stmbench7_data::btree::BTree;
use stmbench7_data::sharded::{shard_of_str, ShardedIndex};
use stmbench7_data::spec::AccessSpec;
use stmbench7_data::workspace::{
    AtomicGroup, BaseGroup, ComplexLevelGroup, CompositeGroup, DocGroup, Pools, SmState, Store,
    Workspace,
};
use stmbench7_data::{
    AtomicPart, AtomicPartId, BaseAssembly, BaseAssemblyId, ComplexAssembly, ComplexAssemblyId,
    CompositePart, CompositePartId, Document, DocumentId, Manual, Module, Sb7Tx, StructureParams,
    TxErr, TxR,
};
use stmbench7_stm::runtime::StmResult;
use stmbench7_stm::{Abort, AstmRuntime, StatsSnapshot, StmRuntime, Tl2Runtime, TxVal};

use crate::{Backend, TxOperation};

/// Representation of indexes and the manual (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Granularity {
    /// One transactional object per index / the whole manual (the paper's
    /// measured configuration).
    #[default]
    Monolithic,
    /// Bucketed indexes and a chunked manual (the paper's §5 remedy).
    Sharded,
}

impl Granularity {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Granularity::Monolithic => "monolithic",
            Granularity::Sharded => "sharded",
        }
    }
}

/// Bucket count of sharded STM indexes when `--shards` is unset: the
/// historical default, sized so that id-index buckets rarely collide.
const DEFAULT_STM_BUCKETS: usize = 256;
/// Build dates can drift one step below/above their initial range via
/// `AtomicPart::next_build_date`, so date buckets get a small margin.
const DATE_MARGIN: i32 = 4;

/// How many buckets `Granularity::Sharded` splits each index into: the
/// first-class `--shards` axis when set — an explicit `--shards 1`
/// really measures one bucket — else the historical default
/// (`index_shards == 0` means unset). Routing matches
/// [`stmbench7_data::sharded`] exactly, so STM variable granularity and
/// lock-shard granularity move together.
fn stm_buckets(params: &StructureParams) -> usize {
    if params.index_shards == 0 {
        DEFAULT_STM_BUCKETS
    } else {
        params.index_shards
    }
}

fn shard_of(raw: u32, buckets: usize) -> usize {
    raw as usize % buckets
}

/// Collapses a (possibly sharded) workspace index into one tree — the
/// monolithic transactional representation whose copy-on-write cost the
/// paper measures.
fn to_btree<K: Ord + Clone + stmbench7_data::ShardKey, V: Clone>(
    idx: &ShardedIndex<K, V>,
) -> BTree<K, V> {
    let mut t = BTree::new();
    idx.for_each(|k, v| {
        t.insert(k.clone(), v.clone());
    });
    t
}

const MISSING: TxErr = TxErr::Invariant("object not found");

fn stm<T>(r: StmResult<T>) -> TxR<T> {
    r.map_err(|Abort| TxErr::Abort)
}

// ---------------------------------------------------------------------------
// Index representations
// ---------------------------------------------------------------------------

/// Index of raw ids to a small copyable payload (`()` for presence
/// indexes, `u8` for the complex-assembly level index).
enum MapIndex<RT: StmRuntime, V: TxVal + Copy + Ord> {
    Mono(RT::Var<BTree<u32, V>>),
    Sharded(Vec<RT::Var<Vec<(u32, V)>>>),
}

impl<RT: StmRuntime, V: TxVal + Copy + Ord> MapIndex<RT, V> {
    fn build(
        rt: &RT,
        granularity: Granularity,
        buckets: usize,
        entries: &ShardedIndex<u32, V>,
    ) -> Self {
        match granularity {
            Granularity::Monolithic => MapIndex::Mono(rt.new_var(to_btree(entries))),
            Granularity::Sharded => {
                let mut split: Vec<Vec<(u32, V)>> = vec![Vec::new(); buckets];
                entries.for_each(|k, v| split[shard_of(*k, buckets)].push((*k, *v)));
                MapIndex::Sharded(split.into_iter().map(|b| rt.new_var(b)).collect())
            }
        }
    }

    fn get(&self, tx: &mut RT::Tx<'_>, raw: u32) -> StmResult<Option<V>> {
        match self {
            MapIndex::Mono(var) => Ok(RT::read(tx, var)?.get(&raw).copied()),
            MapIndex::Sharded(buckets) => {
                let bucket = RT::read(tx, &buckets[shard_of(raw, buckets.len())])?;
                Ok(bucket
                    .binary_search_by_key(&raw, |(k, _)| *k)
                    .ok()
                    .map(|i| bucket[i].1))
            }
        }
    }

    fn insert(&self, tx: &mut RT::Tx<'_>, raw: u32, value: V) -> StmResult<()> {
        match self {
            MapIndex::Mono(var) => RT::update(tx, var, |t| {
                t.insert(raw, value);
            }),
            MapIndex::Sharded(buckets) => {
                RT::update(tx, &buckets[shard_of(raw, buckets.len())], |b| {
                    if let Err(i) = b.binary_search_by_key(&raw, |(k, _)| *k) {
                        b.insert(i, (raw, value));
                    }
                })
            }
        }
    }

    fn remove(&self, tx: &mut RT::Tx<'_>, raw: u32) -> StmResult<()> {
        match self {
            MapIndex::Mono(var) => RT::update(tx, var, |t| {
                t.remove(&raw);
            }),
            MapIndex::Sharded(buckets) => {
                RT::update(tx, &buckets[shard_of(raw, buckets.len())], |b| {
                    if let Ok(i) = b.binary_search_by_key(&raw, |(k, _)| *k) {
                        b.remove(i);
                    }
                })
            }
        }
    }

    /// All keys in ascending order (index iteration, Q7/ST5).
    fn all_keys(&self, tx: &mut RT::Tx<'_>) -> StmResult<Vec<u32>> {
        match self {
            MapIndex::Mono(var) => {
                let t = RT::read(tx, var)?;
                let mut out = Vec::with_capacity(t.len());
                t.for_each(|k, _| out.push(*k));
                Ok(out)
            }
            MapIndex::Sharded(buckets) => {
                let mut out = Vec::new();
                for b in buckets {
                    out.extend(RT::read(tx, b)?.iter().map(|(k, _)| *k));
                }
                out.sort_unstable();
                Ok(out)
            }
        }
    }

    fn all_quiesced(&self, rt: &RT) -> Vec<(u32, V)> {
        match self {
            MapIndex::Mono(var) => {
                let t = rt.read_quiesced(var);
                let mut out = Vec::with_capacity(t.len());
                t.for_each(|k, v| out.push((*k, *v)));
                out
            }
            MapIndex::Sharded(buckets) => {
                let mut out = Vec::new();
                for b in buckets {
                    out.extend(rt.read_quiesced(b).iter().copied());
                }
                out.sort_unstable();
                out
            }
        }
    }
}

/// The atomic-part build-date index (index 2): duplicate dates allowed.
enum DateIndex<RT: StmRuntime> {
    Mono(RT::Var<BTree<(i32, u32), ()>>),
    /// One bucket per date in `[min - margin, max + margin]`, clamped at
    /// the edges; entries are `(date, id)` so clamping stays correct.
    Sharded {
        lo: i32,
        buckets: Vec<RT::Var<Vec<(i32, u32)>>>,
    },
}

impl<RT: StmRuntime> DateIndex<RT> {
    fn build(
        rt: &RT,
        granularity: Granularity,
        params: &StructureParams,
        entries: &ShardedIndex<(i32, u32), ()>,
    ) -> Self {
        match granularity {
            Granularity::Monolithic => DateIndex::Mono(rt.new_var(to_btree(entries))),
            Granularity::Sharded => {
                let lo = params.min_date - DATE_MARGIN;
                let hi = params.max_date + DATE_MARGIN;
                let n = (hi - lo + 1) as usize;
                let mut buckets: Vec<Vec<(i32, u32)>> = vec![Vec::new(); n];
                entries.for_each(|(date, id), _| {
                    let b = (date - lo).clamp(0, n as i32 - 1) as usize;
                    buckets[b].push((*date, *id));
                });
                DateIndex::Sharded {
                    lo,
                    buckets: buckets.into_iter().map(|b| rt.new_var(b)).collect(),
                }
            }
        }
    }

    fn bucket_of(lo: i32, len: usize, date: i32) -> usize {
        (date - lo).clamp(0, len as i32 - 1) as usize
    }

    fn insert(&self, tx: &mut RT::Tx<'_>, date: i32, raw: u32) -> StmResult<()> {
        match self {
            DateIndex::Mono(var) => RT::update(tx, var, |t| {
                t.insert((date, raw), ());
            }),
            DateIndex::Sharded { lo, buckets } => {
                let b = Self::bucket_of(*lo, buckets.len(), date);
                RT::update(tx, &buckets[b], |v| {
                    if let Err(i) = v.binary_search(&(date, raw)) {
                        v.insert(i, (date, raw));
                    }
                })
            }
        }
    }

    fn remove(&self, tx: &mut RT::Tx<'_>, date: i32, raw: u32) -> StmResult<()> {
        match self {
            DateIndex::Mono(var) => RT::update(tx, var, |t| {
                t.remove(&(date, raw));
            }),
            DateIndex::Sharded { lo, buckets } => {
                let b = Self::bucket_of(*lo, buckets.len(), date);
                RT::update(tx, &buckets[b], |v| {
                    if let Ok(i) = v.binary_search(&(date, raw)) {
                        v.remove(i);
                    }
                })
            }
        }
    }

    fn range(&self, tx: &mut RT::Tx<'_>, from: i32, to: i32) -> StmResult<Vec<u32>> {
        match self {
            DateIndex::Mono(var) => {
                let t = RT::read(tx, var)?;
                let mut out = Vec::new();
                t.for_range(&(from, 0), &(to, u32::MAX), |k, _| out.push(k.1));
                Ok(out)
            }
            DateIndex::Sharded { lo, buckets } => {
                let first = Self::bucket_of(*lo, buckets.len(), from);
                let last = Self::bucket_of(*lo, buckets.len(), to);
                let mut out = Vec::new();
                for b in &buckets[first..=last] {
                    out.extend(
                        RT::read(tx, b)?
                            .iter()
                            .filter(|(d, _)| (from..=to).contains(d))
                            .map(|(_, id)| *id),
                    );
                }
                Ok(out)
            }
        }
    }

    fn all_quiesced(&self, rt: &RT, shards: usize) -> ShardedIndex<(i32, u32), ()> {
        let mut tree = ShardedIndex::new(shards);
        match self {
            DateIndex::Mono(var) => {
                rt.read_quiesced(var).for_each(|k, _| {
                    tree.insert(*k, ());
                });
            }
            DateIndex::Sharded { buckets, .. } => {
                for b in buckets {
                    for (d, id) in rt.read_quiesced(b).iter() {
                        tree.insert((*d, *id), ());
                    }
                }
            }
        }
        tree
    }
}

/// The document-title index (index 4).
enum TitleIndex<RT: StmRuntime> {
    Mono(RT::Var<BTree<String, u32>>),
    Sharded(Vec<RT::Var<Vec<(String, u32)>>>),
}

impl<RT: StmRuntime> TitleIndex<RT> {
    fn build(
        rt: &RT,
        granularity: Granularity,
        buckets: usize,
        entries: &ShardedIndex<String, u32>,
    ) -> Self {
        match granularity {
            Granularity::Monolithic => TitleIndex::Mono(rt.new_var(to_btree(entries))),
            Granularity::Sharded => {
                let mut split: Vec<Vec<(String, u32)>> = vec![Vec::new(); buckets];
                entries.for_each(|k, v| split[shard_of_str(k, buckets)].push((k.clone(), *v)));
                for b in &mut split {
                    b.sort();
                }
                TitleIndex::Sharded(split.into_iter().map(|b| rt.new_var(b)).collect())
            }
        }
    }

    fn get(&self, tx: &mut RT::Tx<'_>, title: &str) -> StmResult<Option<u32>> {
        match self {
            TitleIndex::Mono(var) => Ok(RT::read(tx, var)?.get(&title.to_string()).copied()),
            TitleIndex::Sharded(buckets) => {
                let bucket = RT::read(tx, &buckets[shard_of_str(title, buckets.len())])?;
                Ok(bucket
                    .binary_search_by(|(t, _)| t.as_str().cmp(title))
                    .ok()
                    .map(|i| bucket[i].1))
            }
        }
    }

    fn insert(&self, tx: &mut RT::Tx<'_>, title: String, raw: u32) -> StmResult<()> {
        match self {
            TitleIndex::Mono(var) => RT::update(tx, var, |t| {
                t.insert(title, raw);
            }),
            TitleIndex::Sharded(buckets) => {
                let shard = shard_of_str(&title, buckets.len());
                RT::update(tx, &buckets[shard], |b| {
                    match b.binary_search_by(|(t, _)| t.cmp(&title)) {
                        Ok(i) => b[i].1 = raw,
                        Err(i) => b.insert(i, (title, raw)),
                    }
                })
            }
        }
    }

    fn remove(&self, tx: &mut RT::Tx<'_>, title: &str) -> StmResult<()> {
        match self {
            TitleIndex::Mono(var) => RT::update(tx, var, |t| {
                t.remove(&title.to_string());
            }),
            TitleIndex::Sharded(buckets) => {
                RT::update(tx, &buckets[shard_of_str(title, buckets.len())], |b| {
                    if let Ok(i) = b.binary_search_by(|(t, _)| t.as_str().cmp(title)) {
                        b.remove(i);
                    }
                })
            }
        }
    }

    fn all_quiesced(&self, rt: &RT, shards: usize) -> ShardedIndex<String, u32> {
        let mut tree = ShardedIndex::new(shards);
        match self {
            TitleIndex::Mono(var) => {
                rt.read_quiesced(var).for_each(|k, v| {
                    tree.insert(k.clone(), *v);
                });
            }
            TitleIndex::Sharded(buckets) => {
                for b in buckets {
                    for (t, id) in rt.read_quiesced(b).iter() {
                        tree.insert(t.clone(), *id);
                    }
                }
            }
        }
        tree
    }
}

/// The manual: whole object, or chunked (§5 remedy).
enum ManualRep<RT: StmRuntime> {
    Mono(RT::Var<Manual>),
    Chunked {
        title: String,
        chunks: Vec<RT::Var<String>>,
    },
}

// ---------------------------------------------------------------------------
// The backend
// ---------------------------------------------------------------------------

/// Names STM runtimes for reports.
pub trait RtName {
    /// Short name ("astm", "tl2", "norec").
    const NAME: &'static str;
    /// Full display name including granularity and any mode the runtime
    /// is configured with.
    fn backend_name(&self, granularity: Granularity) -> &'static str;
}

impl RtName for AstmRuntime {
    const NAME: &'static str = "astm";
    fn backend_name(&self, granularity: Granularity) -> &'static str {
        match (granularity, self.config().visible_reads) {
            (Granularity::Monolithic, false) => "astm",
            (Granularity::Sharded, false) => "astm-sharded",
            (Granularity::Monolithic, true) => "astm-visible",
            (Granularity::Sharded, true) => "astm-visible-sharded",
        }
    }
}

impl RtName for Tl2Runtime {
    const NAME: &'static str = "tl2";
    fn backend_name(&self, granularity: Granularity) -> &'static str {
        match granularity {
            Granularity::Monolithic => "tl2",
            Granularity::Sharded => "tl2-sharded",
        }
    }
}

impl RtName for stmbench7_stm::NorecRuntime {
    const NAME: &'static str = "norec";
    fn backend_name(&self, granularity: Granularity) -> &'static str {
        match granularity {
            Granularity::Monolithic => "norec",
            Granularity::Sharded => "norec-sharded",
        }
    }
}

type Slot<T> = Option<T>;

/// The STMBench7 structure held in transactional variables.
pub struct StmBackend<RT: StmRuntime + RtName> {
    rt: RT,
    params: StructureParams,
    module: Module,
    granularity: Granularity,
    manual: ManualRep<RT>,
    pools: RT::Var<Pools>,
    atomics: Vec<RT::Var<Slot<AtomicPart>>>,
    composites: Vec<RT::Var<Slot<CompositePart>>>,
    bases: Vec<RT::Var<Slot<BaseAssembly>>>,
    complexes: Vec<RT::Var<Slot<ComplexAssembly>>>,
    documents: Vec<RT::Var<Slot<Document>>>,
    atomic_ids: MapIndex<RT, ()>,
    atomic_dates: DateIndex<RT>,
    composite_ids: MapIndex<RT, ()>,
    doc_titles: TitleIndex<RT>,
    base_ids: MapIndex<RT, ()>,
    complex_levels: MapIndex<RT, u8>,
    recorder: Recorder,
}

fn store_to_vars<RT: StmRuntime, T: TxVal>(
    rt: &RT,
    store: &Store<T>,
    max: u32,
) -> Vec<RT::Var<Slot<T>>> {
    let mut vars = Vec::with_capacity(max as usize + 1);
    for raw in 0..=max {
        vars.push(rt.new_var(store.get(raw).cloned()));
    }
    vars
}

impl<RT: StmRuntime + RtName> StmBackend<RT> {
    /// Converts a built plain workspace into transactional form.
    ///
    /// The conversion bypasses transactions (it happens before any
    /// concurrency): populating 100 000 objects inside one ASTM
    /// transaction would itself exhibit the O(k²) pathology.
    pub fn from_workspace(ws: &Workspace, rt: RT, granularity: Granularity) -> Self {
        let params = ws.params.clone();
        let manual = match granularity {
            Granularity::Monolithic => ManualRep::Mono(rt.new_var(ws.manual.clone())),
            Granularity::Sharded => {
                let text = ws.manual.text.as_str();
                let n = params.manual_chunks.max(1);
                let chunk_len = text.len().div_ceil(n).max(1);
                let chunks = text
                    .as_bytes()
                    .chunks(chunk_len)
                    .map(|c| {
                        rt.new_var(String::from_utf8(c.to_vec()).expect("manual text is ASCII"))
                    })
                    .collect();
                ManualRep::Chunked {
                    title: ws.manual.title.clone(),
                    chunks,
                }
            }
        };
        // A flat complex store across levels (the level index resolves).
        let mut complex_store: Store<ComplexAssembly> = Store::new(params.max_complexes());
        for g in &ws.complexes {
            for (raw, ca) in g.store.iter() {
                complex_store.insert(raw, ca.clone());
            }
        }
        StmBackend {
            params: params.clone(),
            module: ws.module.clone(),
            granularity,
            manual,
            pools: rt.new_var(ws.sm.pools.clone()),
            atomics: store_to_vars(&rt, &ws.atomics.store, params.max_atomics()),
            composites: store_to_vars(&rt, &ws.composites.store, params.max_comps()),
            bases: store_to_vars(&rt, &ws.bases.store, params.max_bases()),
            complexes: store_to_vars(&rt, &complex_store, params.max_complexes()),
            documents: store_to_vars(&rt, &ws.documents.store, params.max_comps()),
            atomic_ids: MapIndex::build(&rt, granularity, stm_buckets(&params), &ws.atomics.by_id),
            atomic_dates: DateIndex::build(&rt, granularity, &params, &ws.atomics.by_date),
            composite_ids: MapIndex::build(
                &rt,
                granularity,
                stm_buckets(&params),
                &ws.composites.by_id,
            ),
            doc_titles: TitleIndex::build(
                &rt,
                granularity,
                stm_buckets(&params),
                &ws.documents.by_title,
            ),
            base_ids: MapIndex::build(&rt, granularity, stm_buckets(&params), &ws.bases.by_id),
            complex_levels: MapIndex::build(
                &rt,
                granularity,
                stm_buckets(&params),
                &ws.sm.complex_index,
            ),
            rt,
            recorder: Recorder::default(),
        }
    }

    /// Attaches a trace recorder (builder style, before sharing).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The underlying runtime (for stats and diagnostics).
    pub fn runtime(&self) -> &RT {
        &self.rt
    }

    /// The configured granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }
}

impl<RT: StmRuntime + RtName> Backend for StmBackend<RT> {
    fn execute<R: Send, O: TxOperation<R> + Send>(&self, spec: &AccessSpec, op: &mut O) -> R {
        // Opacity should make `Invariant` unreachable; tolerate a bounded
        // number as conflict artifacts, then treat it as a benchmark bug.
        let strikes = StdCell::new(0u32);
        let attempts = StdCell::new(0u64);
        let body = |tx: &mut RT::Tx<'_>| {
            let mut stx = StmTx { ws: self, tx };
            // Every re-entry of the body is an aborted-and-retried
            // attempt; trace it so abort storms are visible per op.
            attempts.set(attempts.get() + 1);
            if attempts.get() > 1 {
                self.recorder.instant(
                    Layer::Stm,
                    EventKind::StmRetry,
                    self.name(),
                    attempts.get() - 1,
                );
            }
            op.begin_attempt();
            match op.run(&mut stx) {
                Ok(r) => Ok(r),
                Err(TxErr::Abort) => Err(Abort),
                Err(TxErr::Invariant(msg)) => {
                    strikes.set(strikes.get() + 1);
                    assert!(
                        strikes.get() < 1000,
                        "persistent invariant violation under STM: {msg}"
                    );
                    Err(Abort)
                }
            }
        };
        if spec.any_write() {
            self.rt.atomic(body)
        } else {
            // The spec promises a read-only operation; runtimes with a
            // read-only mode (TL2) skip read-set bookkeeping entirely.
            self.rt.atomic_read_only(body)
        }
    }

    fn name(&self) -> &'static str {
        self.rt.backend_name(self.granularity)
    }

    fn export(&self) -> Workspace {
        let rt = &self.rt;
        let mut ws = Workspace::new(self.params.clone());
        ws.module = self.module.clone();
        ws.manual = match &self.manual {
            ManualRep::Mono(var) => (*rt.read_quiesced(var)).clone(),
            ManualRep::Chunked { title, chunks } => {
                let mut text = String::new();
                for c in chunks {
                    text.push_str(&rt.read_quiesced(c));
                }
                Manual {
                    title: title.clone(),
                    text,
                }
            }
        };
        let shards = self.params.effective_shards();
        ws.sm = SmState {
            pools: (*rt.read_quiesced(&self.pools)).clone(),
            complex_index: {
                let mut t = ShardedIndex::new(shards);
                for (k, v) in self.complex_levels.all_quiesced(rt) {
                    t.insert(k, v);
                }
                t
            },
        };
        ws.bases = BaseGroup {
            store: vars_to_store(rt, &self.bases),
            by_id: presence_index(self.base_ids.all_quiesced(rt), shards),
        };
        let complex_store: Store<ComplexAssembly> = vars_to_store(rt, &self.complexes);
        let levels = usize::from(self.params.assembly_levels);
        let mut per_level: Vec<Store<ComplexAssembly>> = (2..=levels)
            .map(|_| Store::new(self.params.max_complexes()))
            .collect();
        for (raw, ca) in complex_store.iter() {
            per_level[usize::from(ca.level) - 2].insert(raw, ca.clone());
        }
        ws.complexes = per_level
            .into_iter()
            .map(|store| ComplexLevelGroup { store })
            .collect();
        ws.composites = CompositeGroup {
            store: vars_to_store(rt, &self.composites),
            by_id: presence_index(self.composite_ids.all_quiesced(rt), shards),
        };
        ws.atomics = AtomicGroup {
            store: vars_to_store(rt, &self.atomics),
            by_id: presence_index(self.atomic_ids.all_quiesced(rt), shards),
            by_date: self.atomic_dates.all_quiesced(rt, shards),
        };
        ws.documents = DocGroup {
            store: vars_to_store(rt, &self.documents),
            by_title: self.doc_titles.all_quiesced(rt, shards),
        };
        ws
    }

    fn stm_stats(&self) -> Option<StatsSnapshot> {
        Some(self.rt.snapshot())
    }
}

fn vars_to_store<RT: StmRuntime, T: TxVal>(rt: &RT, vars: &[RT::Var<Slot<T>>]) -> Store<T> {
    let mut store = Store::new(vars.len() as u32 - 1);
    for (raw, var) in vars.iter().enumerate() {
        if let Some(v) = rt.read_quiesced(var).as_ref() {
            store.insert(raw as u32, v.clone());
        }
    }
    store
}

fn presence_index(keys: Vec<(u32, ())>, shards: usize) -> ShardedIndex<u32, ()> {
    let mut t = ShardedIndex::new(shards);
    for (k, ()) in keys {
        t.insert(k, ());
    }
    t
}

// ---------------------------------------------------------------------------
// The transactional Sb7Tx adapter
// ---------------------------------------------------------------------------

/// One STM transaction attempt viewed through the `Sb7Tx` interface.
pub struct StmTx<'a, 'tx, RT: StmRuntime + RtName> {
    ws: &'a StmBackend<RT>,
    tx: &'a mut RT::Tx<'tx>,
}

impl<RT: StmRuntime + RtName> StmTx<'_, '_, RT> {
    fn slot<T: TxVal, R>(
        &mut self,
        vars: &[RT::Var<Slot<T>>],
        raw: u32,
        f: impl FnOnce(&T) -> R,
    ) -> TxR<R> {
        let var = vars.get(raw as usize).ok_or(MISSING)?;
        let value = stm(RT::read(self.tx, var))?;
        (*value).as_ref().map(f).ok_or(MISSING)
    }

    fn slot_mut<T: TxVal, R>(
        &mut self,
        vars: &[RT::Var<Slot<T>>],
        raw: u32,
        f: impl FnOnce(&mut T) -> R,
    ) -> TxR<R> {
        let var = vars.get(raw as usize).ok_or(MISSING)?;
        let mut out = None;
        stm(RT::update(self.tx, var, |slot| {
            if let Some(v) = slot.as_mut() {
                out = Some(f(v));
            }
        }))?;
        out.ok_or(MISSING)
    }

    fn slot_insert<T: TxVal>(&mut self, vars: &[RT::Var<Slot<T>>], raw: u32, v: T) -> TxR<()> {
        let var = vars.get(raw as usize).ok_or(MISSING)?;
        // No occupancy assertion here: a doomed (killed-but-unnoticed)
        // transaction may legitimately observe an occupied slot through a
        // stale id; its tentative write can never commit, so overwriting
        // the clone is harmless.
        stm(RT::update(self.tx, var, |slot| {
            *slot = Some(v);
        }))
    }

    fn slot_take<T: TxVal>(&mut self, vars: &[RT::Var<Slot<T>>], raw: u32) -> TxR<T> {
        let var = vars.get(raw as usize).ok_or(MISSING)?;
        let mut out = None;
        stm(RT::update(self.tx, var, |slot| out = slot.take()))?;
        out.ok_or(MISSING)
    }

    fn alloc(&mut self, kind: PoolKind) -> TxR<Option<u32>> {
        let mut out = None;
        stm(RT::update(self.tx, &self.ws.pools, |pools| {
            out = pool_of_mut(pools, kind).alloc();
        }))?;
        Ok(out)
    }

    fn free(&mut self, kind: PoolKind, raw: u32) -> TxR<()> {
        stm(RT::update(self.tx, &self.ws.pools, |pools| {
            // A doomed transaction may free a stale id; ignore it — the
            // abort discards this pool clone anyway.
            let _ = pool_of_mut(pools, kind).free(raw);
        }))
    }
}

fn pool_of_mut(pools: &mut Pools, kind: PoolKind) -> &mut stmbench7_data::IdPool {
    match kind {
        PoolKind::Atomic => &mut pools.atomic,
        PoolKind::Composite => &mut pools.composite,
        PoolKind::Document => &mut pools.document,
        PoolKind::Base => &mut pools.base,
        PoolKind::Complex => &mut pools.complex,
    }
}

fn pool_of(pools: &Pools, kind: PoolKind) -> &stmbench7_data::IdPool {
    match kind {
        PoolKind::Atomic => &pools.atomic,
        PoolKind::Composite => &pools.composite,
        PoolKind::Document => &pools.document,
        PoolKind::Base => &pools.base,
        PoolKind::Complex => &pools.complex,
    }
}

impl<RT: StmRuntime + RtName> Sb7Tx for StmTx<'_, '_, RT> {
    fn module<R>(&mut self, f: impl FnOnce(&Module) -> R) -> TxR<R> {
        // The module is immutable and non-transactional, as in the paper.
        Ok(f(&self.ws.module))
    }

    fn manual_text_len(&mut self) -> TxR<usize> {
        match &self.ws.manual {
            ManualRep::Mono(var) => Ok(stm(RT::read(self.tx, var))?.text.len()),
            ManualRep::Chunked { chunks, .. } => {
                let mut total = 0;
                for c in chunks {
                    total += stm(RT::read(self.tx, c))?.len();
                }
                Ok(total)
            }
        }
    }

    fn manual_count_char(&mut self, ch: char) -> TxR<usize> {
        match &self.ws.manual {
            ManualRep::Mono(var) => Ok(stmbench7_data::text::count_char(
                &stm(RT::read(self.tx, var))?.text,
                ch,
            )),
            ManualRep::Chunked { chunks, .. } => {
                let mut total = 0;
                for c in chunks {
                    total += stmbench7_data::text::count_char(&stm(RT::read(self.tx, c))?, ch);
                }
                Ok(total)
            }
        }
    }

    fn manual_first_last_equal(&mut self) -> TxR<bool> {
        match &self.ws.manual {
            ManualRep::Mono(var) => Ok(stmbench7_data::text::first_last_equal(
                &stm(RT::read(self.tx, var))?.text,
            )),
            ManualRep::Chunked { chunks, .. } => {
                let first = stm(RT::read(self.tx, &chunks[0]))?.chars().next();
                let last = stm(RT::read(self.tx, &chunks[chunks.len() - 1]))?
                    .chars()
                    .next_back();
                match (first, last) {
                    (Some(a), Some(b)) => Ok(a == b),
                    _ => Ok(false),
                }
            }
        }
    }

    fn manual_swap_case(&mut self) -> TxR<usize> {
        match &self.ws.manual {
            ManualRep::Mono(var) => {
                let mut changed = 0;
                stm(RT::update(self.tx, var, |m| {
                    changed = stmbench7_data::text::swap_manual_case(&mut m.text);
                }))?;
                Ok(changed)
            }
            ManualRep::Chunked { chunks, .. } => {
                // Decide the direction from the current content, then swap
                // chunk by chunk, touching only chunks that need it.
                let mut direction = None;
                for c in chunks {
                    let text = stm(RT::read(self.tx, c))?;
                    if text.contains('I') {
                        direction = Some(('I', 'i'));
                        break;
                    }
                    if text.contains('i') {
                        direction = Some(('i', 'I'));
                        break;
                    }
                }
                let Some((from, to)) = direction else {
                    return Ok(0);
                };
                let mut changed = 0;
                for c in chunks {
                    if !stm(RT::read(self.tx, c))?.contains(from) {
                        continue;
                    }
                    stm(RT::update(self.tx, c, |text| {
                        let count = text.matches(from).count();
                        if count > 0 {
                            *text = text.replace(from, &to.to_string());
                            changed += count;
                        }
                    }))?;
                }
                Ok(changed)
            }
        }
    }

    fn set_design_root(&mut self, _root: ComplexAssemblyId) -> TxR<()> {
        Err(TxErr::Invariant(
            "the module is immutable once a backend is constructed",
        ))
    }

    fn atomic<R>(&mut self, id: AtomicPartId, f: impl FnOnce(&AtomicPart) -> R) -> TxR<R> {
        let vars = &self.ws.atomics;
        self.slot(vars, id.raw(), f)
    }

    fn composite<R>(&mut self, id: CompositePartId, f: impl FnOnce(&CompositePart) -> R) -> TxR<R> {
        self.slot(&self.ws.composites, id.raw(), f)
    }

    fn base<R>(&mut self, id: BaseAssemblyId, f: impl FnOnce(&BaseAssembly) -> R) -> TxR<R> {
        self.slot(&self.ws.bases, id.raw(), f)
    }

    fn complex<R>(
        &mut self,
        id: ComplexAssemblyId,
        f: impl FnOnce(&ComplexAssembly) -> R,
    ) -> TxR<R> {
        self.slot(&self.ws.complexes, id.raw(), f)
    }

    fn document<R>(&mut self, id: DocumentId, f: impl FnOnce(&Document) -> R) -> TxR<R> {
        self.slot(&self.ws.documents, id.raw(), f)
    }

    fn atomic_mut<R>(&mut self, id: AtomicPartId, f: impl FnOnce(&mut AtomicPart) -> R) -> TxR<R> {
        self.slot_mut(&self.ws.atomics, id.raw(), f)
    }

    fn composite_mut<R>(
        &mut self,
        id: CompositePartId,
        f: impl FnOnce(&mut CompositePart) -> R,
    ) -> TxR<R> {
        self.slot_mut(&self.ws.composites, id.raw(), f)
    }

    fn base_mut<R>(
        &mut self,
        id: BaseAssemblyId,
        f: impl FnOnce(&mut BaseAssembly) -> R,
    ) -> TxR<R> {
        self.slot_mut(&self.ws.bases, id.raw(), f)
    }

    fn complex_mut<R>(
        &mut self,
        id: ComplexAssemblyId,
        f: impl FnOnce(&mut ComplexAssembly) -> R,
    ) -> TxR<R> {
        self.slot_mut(&self.ws.complexes, id.raw(), f)
    }

    fn document_mut<R>(&mut self, id: DocumentId, f: impl FnOnce(&mut Document) -> R) -> TxR<R> {
        self.slot_mut(&self.ws.documents, id.raw(), f)
    }

    fn set_atomic_build_date(&mut self, id: AtomicPartId, date: i32) -> TxR<()> {
        let old = self.slot_mut(&self.ws.atomics, id.raw(), |p| {
            let old = p.build_date;
            p.build_date = date;
            old
        })?;
        stm(self.ws.atomic_dates.remove(self.tx, old, id.raw()))?;
        stm(self.ws.atomic_dates.insert(self.tx, date, id.raw()))?;
        Ok(())
    }

    fn lookup_atomic(&mut self, raw: u32) -> TxR<Option<AtomicPartId>> {
        Ok(stm(self.ws.atomic_ids.get(self.tx, raw))?.map(|()| AtomicPartId(raw)))
    }

    fn lookup_composite(&mut self, raw: u32) -> TxR<Option<CompositePartId>> {
        Ok(stm(self.ws.composite_ids.get(self.tx, raw))?.map(|()| CompositePartId(raw)))
    }

    fn lookup_base(&mut self, raw: u32) -> TxR<Option<BaseAssemblyId>> {
        Ok(stm(self.ws.base_ids.get(self.tx, raw))?.map(|()| BaseAssemblyId(raw)))
    }

    fn lookup_complex(&mut self, raw: u32) -> TxR<Option<ComplexAssemblyId>> {
        Ok(stm(self.ws.complex_levels.get(self.tx, raw))?.map(|_| ComplexAssemblyId(raw)))
    }

    fn lookup_document(&mut self, title: &str) -> TxR<Option<DocumentId>> {
        Ok(stm(self.ws.doc_titles.get(self.tx, title))?.map(DocumentId))
    }

    fn atomics_in_date_range(&mut self, lo: i32, hi: i32) -> TxR<Vec<AtomicPartId>> {
        Ok(stm(self.ws.atomic_dates.range(self.tx, lo, hi))?
            .into_iter()
            .map(AtomicPartId)
            .collect())
    }

    fn all_atomic_ids(&mut self) -> TxR<Vec<AtomicPartId>> {
        Ok(stm(self.ws.atomic_ids.all_keys(self.tx))?
            .into_iter()
            .map(AtomicPartId)
            .collect())
    }

    fn all_base_ids(&mut self) -> TxR<Vec<BaseAssemblyId>> {
        Ok(stm(self.ws.base_ids.all_keys(self.tx))?
            .into_iter()
            .map(BaseAssemblyId)
            .collect())
    }

    fn pool_capacity(&mut self, kind: PoolKind) -> TxR<usize> {
        let pools = stm(RT::read(self.tx, &self.ws.pools))?;
        let pool = pool_of(&pools, kind);
        Ok(pool.capacity() as usize - pool.live())
    }

    fn create_atomic(
        &mut self,
        make: impl FnOnce(AtomicPartId) -> AtomicPart,
    ) -> TxR<Option<AtomicPartId>> {
        let Some(raw) = self.alloc(PoolKind::Atomic)? else {
            return Ok(None);
        };
        let id = AtomicPartId(raw);
        let part = make(id);
        let date = part.build_date;
        self.slot_insert(&self.ws.atomics, raw, part)?;
        stm(self.ws.atomic_ids.insert(self.tx, raw, ()))?;
        stm(self.ws.atomic_dates.insert(self.tx, date, raw))?;
        Ok(Some(id))
    }

    fn create_composite(
        &mut self,
        make: impl FnOnce(CompositePartId) -> CompositePart,
    ) -> TxR<Option<CompositePartId>> {
        let Some(raw) = self.alloc(PoolKind::Composite)? else {
            return Ok(None);
        };
        let id = CompositePartId(raw);
        self.slot_insert(&self.ws.composites, raw, make(id))?;
        stm(self.ws.composite_ids.insert(self.tx, raw, ()))?;
        Ok(Some(id))
    }

    fn create_document(
        &mut self,
        make: impl FnOnce(DocumentId) -> Document,
    ) -> TxR<Option<DocumentId>> {
        let Some(raw) = self.alloc(PoolKind::Document)? else {
            return Ok(None);
        };
        let id = DocumentId(raw);
        let doc = make(id);
        let title = doc.title.clone();
        self.slot_insert(&self.ws.documents, raw, doc)?;
        stm(self.ws.doc_titles.insert(self.tx, title, raw))?;
        Ok(Some(id))
    }

    fn create_base(
        &mut self,
        make: impl FnOnce(BaseAssemblyId) -> BaseAssembly,
    ) -> TxR<Option<BaseAssemblyId>> {
        let Some(raw) = self.alloc(PoolKind::Base)? else {
            return Ok(None);
        };
        let id = BaseAssemblyId(raw);
        self.slot_insert(&self.ws.bases, raw, make(id))?;
        stm(self.ws.base_ids.insert(self.tx, raw, ()))?;
        Ok(Some(id))
    }

    fn create_complex(
        &mut self,
        level: u8,
        make: impl FnOnce(ComplexAssemblyId) -> ComplexAssembly,
    ) -> TxR<Option<ComplexAssemblyId>> {
        let Some(raw) = self.alloc(PoolKind::Complex)? else {
            return Ok(None);
        };
        let id = ComplexAssemblyId(raw);
        self.slot_insert(&self.ws.complexes, raw, make(id))?;
        stm(self.ws.complex_levels.insert(self.tx, raw, level))?;
        Ok(Some(id))
    }

    fn delete_atomic(&mut self, id: AtomicPartId) -> TxR<AtomicPart> {
        let part = self.slot_take(&self.ws.atomics, id.raw())?;
        stm(self.ws.atomic_ids.remove(self.tx, id.raw()))?;
        stm(self
            .ws
            .atomic_dates
            .remove(self.tx, part.build_date, id.raw()))?;
        self.free(PoolKind::Atomic, id.raw())?;
        Ok(part)
    }

    fn delete_composite(&mut self, id: CompositePartId) -> TxR<CompositePart> {
        let comp = self.slot_take(&self.ws.composites, id.raw())?;
        stm(self.ws.composite_ids.remove(self.tx, id.raw()))?;
        self.free(PoolKind::Composite, id.raw())?;
        Ok(comp)
    }

    fn delete_document(&mut self, id: DocumentId) -> TxR<Document> {
        let doc = self.slot_take(&self.ws.documents, id.raw())?;
        stm(self.ws.doc_titles.remove(self.tx, &doc.title))?;
        self.free(PoolKind::Document, id.raw())?;
        Ok(doc)
    }

    fn delete_base(&mut self, id: BaseAssemblyId) -> TxR<BaseAssembly> {
        let base = self.slot_take(&self.ws.bases, id.raw())?;
        stm(self.ws.base_ids.remove(self.tx, id.raw()))?;
        self.free(PoolKind::Base, id.raw())?;
        Ok(base)
    }

    fn delete_complex(&mut self, id: ComplexAssemblyId) -> TxR<ComplexAssembly> {
        let ca = self.slot_take(&self.ws.complexes, id.raw())?;
        stm(self.ws.complex_levels.remove(self.tx, id.raw()))?;
        self.free(PoolKind::Complex, id.raw())?;
        Ok(ca)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmbench7_data::{validate, Mode};

    struct CountI;
    impl TxOperation<usize> for CountI {
        fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<usize> {
            tx.manual_count_char('I')
        }
    }

    struct SwapManual;
    impl TxOperation<usize> for SwapManual {
        fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<usize> {
            tx.manual_swap_case()
        }
    }

    struct BumpDate(u32);
    impl TxOperation<bool> for BumpDate {
        fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<bool> {
            let Some(id) = tx.lookup_atomic(self.0)? else {
                return Ok(false);
            };
            let date = tx.atomic(id, |p| p.build_date)?;
            tx.set_atomic_build_date(id, AtomicPart::next_build_date(date))?;
            Ok(true)
        }
    }

    fn spec() -> AccessSpec {
        AccessSpec::new().regular()
    }

    /// Writing operations must declare a write so the backend does not
    /// route them through the read-only fast path.
    fn write_spec() -> AccessSpec {
        AccessSpec::new()
            .regular()
            .manual(Mode::Write)
            .atomics(Mode::Write)
    }

    fn check_backend<RT: StmRuntime + RtName>(rt: RT, granularity: Granularity) {
        let ws = Workspace::build(StructureParams::tiny(), 21);
        let expect_i = stmbench7_data::text::count_char(&ws.manual.text, 'I');
        let backend = StmBackend::from_workspace(&ws, rt, granularity);

        assert_eq!(backend.execute(&spec(), &mut CountI), expect_i);
        let swapped = backend.execute(&write_spec(), &mut SwapManual);
        assert_eq!(swapped, expect_i);
        assert_eq!(backend.execute(&spec(), &mut CountI), 0);
        // Swap back for the validator's peace of mind.
        backend.execute(&write_spec(), &mut SwapManual);

        assert!(backend.execute(&write_spec(), &mut BumpDate(1)));
        assert!(!backend.execute(&write_spec(), &mut BumpDate(9_999_999)));

        let out = backend.export();
        validate(&out).unwrap();
        let stats = backend.stm_stats().unwrap();
        assert!(stats.commits >= 4);
    }

    #[test]
    fn astm_monolithic_roundtrip() {
        check_backend(AstmRuntime::default(), Granularity::Monolithic);
    }

    #[test]
    fn astm_sharded_roundtrip() {
        check_backend(AstmRuntime::default(), Granularity::Sharded);
    }

    #[test]
    fn tl2_monolithic_roundtrip() {
        check_backend(Tl2Runtime::default(), Granularity::Monolithic);
    }

    #[test]
    fn tl2_sharded_roundtrip() {
        check_backend(Tl2Runtime::default(), Granularity::Sharded);
    }

    #[test]
    fn concurrent_date_bumps_keep_indexes_coherent() {
        let ws = Workspace::build(StructureParams::tiny(), 23);
        let backend = std::sync::Arc::new(StmBackend::from_workspace(
            &ws,
            Tl2Runtime::default(),
            Granularity::Sharded,
        ));
        let n = ws.params.initial_atomics() as u32;
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let b = std::sync::Arc::clone(&backend);
                s.spawn(move || {
                    for i in 0..100 {
                        let raw = (t * 31 + i) % n + 1;
                        b.execute(&write_spec(), &mut BumpDate(raw));
                    }
                });
            }
        });
        validate(&backend.export()).unwrap();
    }
}
