//! Runtime backend selection: [`BackendChoice`] names a strategy the way
//! the CLI's `-g` flag does, and [`AnyBackend`] dispatches over every
//! implementation so harnesses can hold "some backend" without generics.
//!
//! This lives in the backend crate (not the facade) so that the lab
//! harness, the sweep binaries and the CLI all share one strategy
//! vocabulary without depending on each other.

use stmbench7_data::{AccessSpec, Workspace};
use stmbench7_obs::{ContentionSnapshot, Recorder};
use stmbench7_stm::astm::AstmConfig;
use stmbench7_stm::tl2::Tl2Config;
use stmbench7_stm::{ContentionManager, StatsSnapshot};

use crate::stm::Granularity;
use crate::{
    AstmBackend, Backend, CoarseBackend, CombiningStats, DedicatedServerBackend, FineBackend,
    FlatCombiningBackend, MediumBackend, NorecBackend, SequentialBackend, StmBackend, Tl2Backend,
    TxOperation,
};

/// Which synchronization strategy to construct.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendChoice {
    /// One mutex, one thread at a time — the determinism oracle.
    Sequential,
    /// One read-write lock over everything (the paper's coarse strategy).
    Coarse,
    /// SM gate + per-group read-write locks (the paper's Figure 5).
    Medium,
    /// Per-object locking with the discover/sort/acquire cycle — the
    /// "ultimate baseline" the paper names as future work.
    Fine,
    /// Flat combining: the workspace-lock holder executes every published
    /// operation — one lock hand-off per batch, not per operation.
    FlatCombining,
    /// RCL-style delegation: a dedicated server thread drains a
    /// submission queue; the combiner role never moves.
    DedicatedServer,
    /// The paper's system under test.
    Astm {
        /// Monolithic or sharded transactional-variable representation.
        granularity: Granularity,
        /// The contention manager arbitrating conflicting transactions.
        cm: ContentionManager,
        /// DSTM-style visible reads (ablation of the invisible-read
        /// pathology); the paper's configuration is `false`.
        visible: bool,
    },
    /// The §5 remedy class (TL2/LSA-style).
    Tl2 {
        /// Monolithic or sharded transactional-variable representation.
        granularity: Granularity,
    },
    /// The metadata-free remedy class (NOrec-style: global sequence
    /// lock, value-based validation).
    Norec {
        /// Monolithic or sharded transactional-variable representation.
        granularity: Granularity,
    },
}

impl BackendChoice {
    /// Parses a `-g` argument (`coarse`, `medium`, `sequential`, `astm`,
    /// `tl2`, plus `-sharded` suffixes).
    pub fn parse(s: &str) -> Option<BackendChoice> {
        Some(match s {
            "sequential" | "seq" => BackendChoice::Sequential,
            "coarse" => BackendChoice::Coarse,
            "medium" => BackendChoice::Medium,
            "fine" => BackendChoice::Fine,
            "flatcomb" => BackendChoice::FlatCombining,
            "rcl" => BackendChoice::DedicatedServer,
            "astm" => BackendChoice::Astm {
                granularity: Granularity::Monolithic,
                cm: ContentionManager::Polka,
                visible: false,
            },
            "astm-sharded" => BackendChoice::Astm {
                granularity: Granularity::Sharded,
                cm: ContentionManager::Polka,
                visible: false,
            },
            "astm-visible" => BackendChoice::Astm {
                granularity: Granularity::Monolithic,
                cm: ContentionManager::Polka,
                visible: true,
            },
            // Not in the CLI catalog, but needed so every constructible
            // ASTM variant has a distinct, round-tripping key.
            "astm-sharded-visible" => BackendChoice::Astm {
                granularity: Granularity::Sharded,
                cm: ContentionManager::Polka,
                visible: true,
            },
            "tl2" => BackendChoice::Tl2 {
                granularity: Granularity::Monolithic,
            },
            "tl2-sharded" => BackendChoice::Tl2 {
                granularity: Granularity::Sharded,
            },
            "norec" => BackendChoice::Norec {
                granularity: Granularity::Monolithic,
            },
            "norec-sharded" => BackendChoice::Norec {
                granularity: Granularity::Sharded,
            },
            _ => return None,
        })
    }

    /// The canonical `-g` spelling of this choice — stable across runs,
    /// used as the cell key in lab results. Non-default contention
    /// managers keep the base name (the CLI composes them via `--cm`).
    pub fn key(&self) -> &'static str {
        match self {
            BackendChoice::Sequential => "sequential",
            BackendChoice::Coarse => "coarse",
            BackendChoice::Medium => "medium",
            BackendChoice::Fine => "fine",
            BackendChoice::FlatCombining => "flatcomb",
            BackendChoice::DedicatedServer => "rcl",
            BackendChoice::Astm {
                granularity,
                visible,
                ..
            } => match (granularity, visible) {
                (Granularity::Monolithic, false) => "astm",
                (Granularity::Sharded, false) => "astm-sharded",
                (Granularity::Monolithic, true) => "astm-visible",
                (Granularity::Sharded, true) => "astm-sharded-visible",
            },
            BackendChoice::Tl2 { granularity } => match granularity {
                Granularity::Monolithic => "tl2",
                Granularity::Sharded => "tl2-sharded",
            },
            BackendChoice::Norec { granularity } => match granularity {
                Granularity::Monolithic => "norec",
                Granularity::Sharded => "norec-sharded",
            },
        }
    }
}

/// A backend chosen at runtime (the CLI's `-g` flag).
#[allow(missing_docs)] // Variants mirror BackendChoice, documented there.
pub enum AnyBackend {
    Sequential(SequentialBackend),
    Coarse(CoarseBackend),
    Medium(MediumBackend),
    Fine(FineBackend),
    FlatCombining(FlatCombiningBackend),
    Rcl(DedicatedServerBackend),
    Astm(AstmBackend),
    Tl2(Tl2Backend),
    Norec(NorecBackend),
}

impl AnyBackend {
    /// Builds the chosen strategy around a freshly built workspace.
    pub fn build(choice: BackendChoice, ws: Workspace) -> AnyBackend {
        Self::build_traced(choice, ws, Recorder::default())
    }

    /// As [`AnyBackend::build`], attaching a trace recorder to backends
    /// that record lifecycle events (lock waits, STM retries, combiner
    /// batches). A disabled recorder — `Recorder::default()` — makes
    /// this identical to `build`.
    pub fn build_traced(choice: BackendChoice, ws: Workspace, recorder: Recorder) -> AnyBackend {
        match choice {
            BackendChoice::Sequential => AnyBackend::Sequential(SequentialBackend::new(ws)),
            BackendChoice::Coarse => {
                AnyBackend::Coarse(CoarseBackend::new(ws).with_recorder(recorder))
            }
            BackendChoice::Medium => {
                AnyBackend::Medium(MediumBackend::new(ws).with_recorder(recorder))
            }
            BackendChoice::Fine => AnyBackend::Fine(FineBackend::new(ws)),
            BackendChoice::FlatCombining => {
                AnyBackend::FlatCombining(FlatCombiningBackend::new(ws).with_recorder(recorder))
            }
            BackendChoice::DedicatedServer => {
                AnyBackend::Rcl(DedicatedServerBackend::with_recorder(ws, recorder))
            }
            BackendChoice::Astm {
                granularity,
                cm,
                visible,
            } => AnyBackend::Astm(
                StmBackend::from_workspace(
                    &ws,
                    stmbench7_stm::AstmRuntime::new(AstmConfig {
                        cm,
                        incremental_validation: true,
                        visible_reads: visible,
                    }),
                    granularity,
                )
                .with_recorder(recorder),
            ),
            BackendChoice::Tl2 { granularity } => AnyBackend::Tl2(
                StmBackend::from_workspace(
                    &ws,
                    stmbench7_stm::Tl2Runtime::new(Tl2Config::default()),
                    granularity,
                )
                .with_recorder(recorder),
            ),
            BackendChoice::Norec { granularity } => AnyBackend::Norec(
                StmBackend::from_workspace(&ws, stmbench7_stm::NorecRuntime::new(), granularity)
                    .with_recorder(recorder),
            ),
        }
    }

    /// Fine-grained strategy counters, when this is the fine backend.
    pub fn fine_stats(&self) -> Option<crate::FineStats> {
        match self {
            AnyBackend::Fine(b) => Some(b.fine_stats()),
            _ => None,
        }
    }

    /// Combiner counters, when this is a delegation backend.
    pub fn combining_stats(&self) -> Option<CombiningStats> {
        match self {
            AnyBackend::FlatCombining(b) => Some(b.combining_stats()),
            AnyBackend::Rcl(b) => Some(b.combining_stats()),
            _ => None,
        }
    }
}

impl Backend for AnyBackend {
    fn execute<R: Send, O: TxOperation<R> + Send>(&self, spec: &AccessSpec, op: &mut O) -> R {
        match self {
            AnyBackend::Sequential(b) => b.execute(spec, op),
            AnyBackend::Coarse(b) => b.execute(spec, op),
            AnyBackend::Medium(b) => b.execute(spec, op),
            AnyBackend::Fine(b) => b.execute(spec, op),
            AnyBackend::FlatCombining(b) => b.execute(spec, op),
            AnyBackend::Rcl(b) => b.execute(spec, op),
            AnyBackend::Astm(b) => b.execute(spec, op),
            AnyBackend::Tl2(b) => b.execute(spec, op),
            AnyBackend::Norec(b) => b.execute(spec, op),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyBackend::Sequential(b) => b.name(),
            AnyBackend::Coarse(b) => b.name(),
            AnyBackend::Medium(b) => b.name(),
            AnyBackend::Fine(b) => b.name(),
            AnyBackend::FlatCombining(b) => b.name(),
            AnyBackend::Rcl(b) => b.name(),
            AnyBackend::Astm(b) => b.name(),
            AnyBackend::Tl2(b) => b.name(),
            AnyBackend::Norec(b) => b.name(),
        }
    }

    fn export(&self) -> Workspace {
        match self {
            AnyBackend::Sequential(b) => b.export(),
            AnyBackend::Coarse(b) => b.export(),
            AnyBackend::Medium(b) => b.export(),
            AnyBackend::Fine(b) => b.export(),
            AnyBackend::FlatCombining(b) => b.export(),
            AnyBackend::Rcl(b) => b.export(),
            AnyBackend::Astm(b) => b.export(),
            AnyBackend::Tl2(b) => b.export(),
            AnyBackend::Norec(b) => b.export(),
        }
    }

    fn stm_stats(&self) -> Option<StatsSnapshot> {
        match self {
            AnyBackend::Sequential(b) => b.stm_stats(),
            AnyBackend::Coarse(b) => b.stm_stats(),
            AnyBackend::Medium(b) => b.stm_stats(),
            AnyBackend::Fine(b) => b.stm_stats(),
            AnyBackend::FlatCombining(b) => b.stm_stats(),
            AnyBackend::Rcl(b) => b.stm_stats(),
            AnyBackend::Astm(b) => b.stm_stats(),
            AnyBackend::Tl2(b) => b.stm_stats(),
            AnyBackend::Norec(b) => b.stm_stats(),
        }
    }

    fn contention(&self) -> Option<ContentionSnapshot> {
        match self {
            AnyBackend::Sequential(b) => b.contention(),
            AnyBackend::Coarse(b) => b.contention(),
            AnyBackend::Medium(b) => b.contention(),
            AnyBackend::Fine(b) => b.contention(),
            AnyBackend::FlatCombining(b) => b.contention(),
            AnyBackend::Rcl(b) => b.contention(),
            AnyBackend::Astm(b) => b.contention(),
            AnyBackend::Tl2(b) => b.contention(),
            AnyBackend::Norec(b) => b.contention(),
        }
    }
}

/// Every `-g` strategy name the CLI accepts, paired with its parsed
/// [`BackendChoice`] — the single source the cross-backend test suites
/// draw from, so a newly added strategy cannot silently miss coverage.
pub fn strategy_catalog() -> Vec<(&'static str, BackendChoice)> {
    [
        "sequential",
        "coarse",
        "medium",
        "fine",
        "flatcomb",
        "rcl",
        "astm",
        "astm-sharded",
        "astm-visible",
        "tl2",
        "tl2-sharded",
        "norec",
        "norec-sharded",
    ]
    .into_iter()
    .map(|name| {
        let choice = BackendChoice::parse(name)
            .unwrap_or_else(|| panic!("catalog entry '{name}' must parse"));
        (name, choice)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmbench7_data::StructureParams;

    #[test]
    fn backend_choice_parsing() {
        assert_eq!(BackendChoice::parse("coarse"), Some(BackendChoice::Coarse));
        assert_eq!(BackendChoice::parse("medium"), Some(BackendChoice::Medium));
        assert_eq!(BackendChoice::parse("fine"), Some(BackendChoice::Fine));
        assert_eq!(
            BackendChoice::parse("flatcomb"),
            Some(BackendChoice::FlatCombining)
        );
        assert_eq!(
            BackendChoice::parse("rcl"),
            Some(BackendChoice::DedicatedServer)
        );
        assert!(matches!(
            BackendChoice::parse("astm"),
            Some(BackendChoice::Astm { .. })
        ));
        assert!(matches!(
            BackendChoice::parse("tl2-sharded"),
            Some(BackendChoice::Tl2 {
                granularity: Granularity::Sharded
            })
        ));
        assert_eq!(BackendChoice::parse("nope"), None);
    }

    #[test]
    fn any_backend_names() {
        let ws = Workspace::build(StructureParams::tiny(), 1);
        for (choice, name) in [
            (BackendChoice::Coarse, "coarse"),
            (BackendChoice::Medium, "medium"),
            (BackendChoice::Fine, "fine"),
            (BackendChoice::FlatCombining, "flatcomb"),
            (BackendChoice::DedicatedServer, "rcl"),
        ] {
            let b = AnyBackend::build(choice, ws.clone());
            assert_eq!(b.name(), name);
        }
    }

    #[test]
    fn strategy_catalog_is_complete_and_distinct() {
        let catalog = strategy_catalog();
        assert_eq!(catalog.len(), 13);
        for window in catalog.windows(2) {
            assert_ne!(window[0].1, window[1].1, "duplicate catalog entries");
        }
    }

    #[test]
    fn keys_round_trip_through_parse() {
        for (name, choice) in strategy_catalog() {
            assert_eq!(choice.key(), name, "key must be the canonical spelling");
            assert_eq!(BackendChoice::parse(choice.key()), Some(choice));
        }
        // The one constructible variant outside the CLI catalog still
        // has a distinct, round-tripping key (compare matches by key).
        let sharded_visible = BackendChoice::Astm {
            granularity: Granularity::Sharded,
            cm: ContentionManager::Polka,
            visible: true,
        };
        assert_eq!(sharded_visible.key(), "astm-sharded-visible");
        assert_eq!(
            BackendChoice::parse(sharded_visible.key()),
            Some(sharded_visible)
        );
    }
}
