//! Shared infrastructure for the figure/table regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index): it sweeps the same parameter
//! grid, prints an aligned table of the series the paper plots, and
//! appends CSV rows under `results/`.
//!
//! The sweep engine itself — [`Cell`], [`SweepOpts`], [`run_cell`] —
//! lives in `stmbench7-lab` and is re-exported here, so the binaries,
//! the `stmbench7 lab` subcommand and the lab runner all drive the exact
//! same grid types. This crate only keeps the presentation helpers
//! (aligned tables, CSV appending) and the paper's backend shorthands.
//!
//! Absolute numbers are not expected to match 2006 hardware; the *shapes*
//! (who wins, by roughly what factor, where the crossovers sit) are the
//! reproduction target. EXPERIMENTS.md records both.

use std::io::Write as _;

use stmbench7::BackendChoice;

pub use stmbench7_lab::{run_cell, Cell, SweepOpts};

/// Appends rows to `results/<name>.csv`, writing the header when the file
/// is new.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    std::fs::create_dir_all("results").expect("create results dir");
    let path = format!("results/{name}.csv");
    let fresh = !std::path::Path::new(&path).exists();
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open results csv");
    if fresh {
        writeln!(file, "{header}").expect("write header");
    }
    for row in rows {
        writeln!(file, "{row}").expect("write row");
    }
    eprintln!("wrote {} rows to {path}", rows.len());
}

/// Pretty-prints one line of a result table.
pub fn print_row(cols: &[String]) {
    let line = cols
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{line}");
}

/// The backend set of the lock-strategy figures (3 and 4).
pub fn lock_backends() -> Vec<(&'static str, BackendChoice)> {
    vec![
        ("coarse", BackendChoice::Coarse),
        ("medium", BackendChoice::Medium),
    ]
}

/// The paper's ASTM backend (monolithic granularity, Polka).
pub fn astm_backend() -> BackendChoice {
    BackendChoice::Astm {
        granularity: stmbench7::backend::Granularity::Monolithic,
        cm: stmbench7::stm::ContentionManager::Polka,
        visible: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmbench7::core::WorkloadType;
    use stmbench7::data::StructureParams;

    #[test]
    fn run_cell_smoke() {
        let opts = SweepOpts {
            params: StructureParams::tiny(),
            secs_per_cell: 0.05,
            threads: vec![1],
            seed: 1,
        };
        let cell = Cell {
            backend: BackendChoice::Coarse,
            workload: WorkloadType::ReadWrite,
            threads: 1,
            shards: None,
            long_traversals: false,
            structure_mods: true,
            astm_friendly: false,
            service: None,
            net: None,
            trace: false,
            window_ms: None,
            slo: None,
        };
        let report = run_cell(&opts, &cell);
        assert!(report.total_started() > 0);
    }
}
