//! Shared infrastructure for the figure/table regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index): it sweeps the same parameter
//! grid, prints an aligned table of the series the paper plots, and
//! appends CSV rows under `results/`.
//!
//! Absolute numbers are not expected to match 2006 hardware; the *shapes*
//! (who wins, by roughly what factor, where the crossovers sit) are the
//! reproduction target. EXPERIMENTS.md records both.

use std::io::Write as _;
use std::time::Duration;

use stmbench7::core::{run_benchmark, BenchConfig, OpFilter, Report, RunMode, WorkloadType};
use stmbench7::data::{StructureParams, Workspace};
use stmbench7::{AnyBackend, BackendChoice};

/// One sweep cell: a backend × workload × thread-count configuration.
#[derive(Clone, Debug)]
pub struct Cell {
    pub backend: BackendChoice,
    pub workload: WorkloadType,
    pub threads: usize,
    pub long_traversals: bool,
    pub structure_mods: bool,
    pub astm_friendly: bool,
}

/// Sweep-wide options parsed from the command line.
#[derive(Clone, Debug)]
pub struct SweepOpts {
    pub params: StructureParams,
    pub secs_per_cell: f64,
    pub threads: Vec<usize>,
    pub seed: u64,
}

impl SweepOpts {
    /// Parses the common flags of every binary:
    /// `--preset tiny|small|standard`, `--secs F`, `--threads a,b,c`,
    /// `--seed N`.
    pub fn from_args() -> SweepOpts {
        let mut opts = SweepOpts {
            params: StructureParams::small(),
            secs_per_cell: 1.0,
            threads: vec![1, 2, 3, 4, 6, 8],
            seed: 1,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let val = |i: &mut usize| -> String {
                *i += 1;
                argv.get(*i).cloned().unwrap_or_else(|| {
                    eprintln!("missing value for {}", argv[*i - 1]);
                    std::process::exit(2);
                })
            };
            match argv[i].as_str() {
                "--preset" => {
                    let v = val(&mut i);
                    opts.params = stmbench7::parse_preset(&v).unwrap_or_else(|| {
                        eprintln!("unknown preset '{v}'");
                        std::process::exit(2);
                    });
                }
                "--secs" => opts.secs_per_cell = val(&mut i).parse().expect("--secs"),
                "--threads" => {
                    opts.threads = val(&mut i)
                        .split(',')
                        .map(|t| t.parse().expect("--threads"))
                        .collect();
                }
                "--seed" => opts.seed = val(&mut i).parse().expect("--seed"),
                other => {
                    eprintln!("unknown argument '{other}'");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        opts
    }
}

/// Runs one cell on a freshly built structure and returns its report.
pub fn run_cell(opts: &SweepOpts, cell: &Cell) -> Report {
    let ws = Workspace::build(opts.params.clone(), opts.seed);
    let backend = AnyBackend::build(cell.backend, ws);
    let cfg = BenchConfig {
        threads: cell.threads,
        mode: RunMode::Timed(Duration::from_secs_f64(opts.secs_per_cell)),
        workload: cell.workload,
        long_traversals: cell.long_traversals,
        structure_mods: cell.structure_mods,
        filter: if cell.astm_friendly {
            OpFilter::astm_friendly()
        } else {
            OpFilter::none()
        },
        seed: opts.seed,
        histograms: false,
    };
    run_benchmark(&backend, &opts.params, &cfg)
}

/// Appends rows to `results/<name>.csv`, writing the header when the file
/// is new.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    std::fs::create_dir_all("results").expect("create results dir");
    let path = format!("results/{name}.csv");
    let fresh = !std::path::Path::new(&path).exists();
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open results csv");
    if fresh {
        writeln!(file, "{header}").expect("write header");
    }
    for row in rows {
        writeln!(file, "{row}").expect("write row");
    }
    eprintln!("wrote {} rows to {path}", rows.len());
}

/// Pretty-prints one line of a result table.
pub fn print_row(cols: &[String]) {
    let line = cols
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{line}");
}

/// The backend set of the lock-strategy figures (3 and 4).
pub fn lock_backends() -> Vec<(&'static str, BackendChoice)> {
    vec![
        ("coarse", BackendChoice::Coarse),
        ("medium", BackendChoice::Medium),
    ]
}

/// The paper's ASTM backend (monolithic granularity, Polka).
pub fn astm_backend() -> BackendChoice {
    BackendChoice::Astm {
        granularity: stmbench7::backend::Granularity::Monolithic,
        cm: stmbench7::stm::ContentionManager::Polka,
        visible: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_cell_smoke() {
        let opts = SweepOpts {
            params: StructureParams::tiny(),
            secs_per_cell: 0.05,
            threads: vec![1],
            seed: 1,
        };
        let cell = Cell {
            backend: BackendChoice::Coarse,
            workload: WorkloadType::ReadWrite,
            threads: 1,
            long_traversals: false,
            structure_mods: true,
            astm_friendly: false,
        };
        let report = run_cell(&opts, &cell);
        assert!(report.total_started() > 0);
    }
}
