//! Validation-strategy ablation (the §5 diagnosis, quantified).
//!
//! Runs the long traversals T1 and T2b once, single-threaded, under:
//!
//! * sequential (no synchronization — the floor),
//! * ASTM with incremental validation (the paper's configuration:
//!   O(k²) total validation work),
//! * ASTM with commit-time-only validation (same clone-on-write costs,
//!   O(k) validation),
//! * ASTM with DSTM-style visible reads (no validation at all; the cost
//!   moves into reader registration on every locator),
//! * TL2 (global clock: per-read O(1), the §5 remedy class).
//!
//! The printed `validation steps` column makes the quadratic blow-up
//! directly visible; wall-clock follows it.

use std::time::Instant;

use stmbench7::backend::{Backend, Granularity, SequentialBackend, StmBackend, TxOperation};
use stmbench7::core::ops::{run_op, OpCtx, OpKind};
use stmbench7::data::{OpOutcome, Sb7Tx, StructureParams, TxR, Workspace};
use stmbench7::stm::astm::AstmConfig;
use stmbench7::stm::tl2::Tl2Config;
use stmbench7::stm::{AstmRuntime, Tl2Runtime};
use stmbench7_bench::{print_row, write_csv, SweepOpts};

struct Runner<'c> {
    op: OpKind,
    ctx: &'c mut OpCtx,
}

impl TxOperation<OpOutcome> for Runner<'_> {
    fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<OpOutcome> {
        run_op(self.op, tx, self.ctx)
    }
}

fn measure<B: Backend>(backend: &B, params: &StructureParams, op: OpKind) -> (f64, u64, u64) {
    let before = backend.stm_stats().unwrap_or_default();
    let mut ctx = OpCtx::new(params.clone(), 42);
    let spec = stmbench7::core::access_spec(op, params.assembly_levels);
    let t0 = Instant::now();
    let outcome = backend.execute(&spec, &mut Runner { op, ctx: &mut ctx });
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(outcome.is_done(), "long traversals cannot fail");
    let after = backend.stm_stats().unwrap_or_default();
    (
        ms,
        after.validation_steps - before.validation_steps,
        after.clones - before.clones,
    )
}

fn main() {
    let opts = SweepOpts::from_args();
    let params = opts.params.clone();
    println!(
        "Validation ablation: single execution of T1/T2b, {} atomic parts",
        params.initial_atomics()
    );
    print_row(&[
        "op".into(),
        "runtime".into(),
        "wall ms".into(),
        "valid.steps".into(),
        "clones".into(),
    ]);
    let ws = Workspace::build(params.clone(), opts.seed);
    let mut rows = Vec::new();

    for op in [OpKind::T1, OpKind::T2b] {
        let seq = SequentialBackend::new(ws.clone());
        let (ms, _, _) = measure(&seq, &params, op);
        print_row(&[
            op.name().into(),
            "sequential".into(),
            format!("{ms:.2}"),
            "-".into(),
            "-".into(),
        ]);
        rows.push(format!("{},sequential,{ms:.3},0,0", op.name()));

        for (name, incremental, visible) in [
            ("astm-incremental", true, false),
            ("astm-commit-only", false, false),
            ("astm-visible", false, true),
        ] {
            let backend = StmBackend::from_workspace(
                &ws,
                AstmRuntime::new(AstmConfig {
                    incremental_validation: incremental,
                    visible_reads: visible,
                    ..AstmConfig::default()
                }),
                Granularity::Monolithic,
            );
            let (ms, steps, clones) = measure(&backend, &params, op);
            print_row(&[
                op.name().into(),
                name.into(),
                format!("{ms:.2}"),
                steps.to_string(),
                clones.to_string(),
            ]);
            rows.push(format!("{},{name},{ms:.3},{steps},{clones}", op.name()));
        }

        let tl2 = StmBackend::from_workspace(
            &ws,
            Tl2Runtime::new(Tl2Config::default()),
            Granularity::Monolithic,
        );
        let (ms, steps, clones) = measure(&tl2, &params, op);
        print_row(&[
            op.name().into(),
            "tl2".into(),
            format!("{ms:.2}"),
            steps.to_string(),
            clones.to_string(),
        ]);
        rows.push(format!("{},tl2,{ms:.3},{steps},{clones}", op.name()));
    }
    write_csv(
        "ablation_validation",
        "op,runtime,wall_ms,validation_steps,clones",
        &rows,
    );
}
