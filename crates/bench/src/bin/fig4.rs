//! Figure 4: total throughput of the two locking strategies, long
//! traversals disabled, for the three workload types.
//!
//! Paper shape: medium-grained beats coarse-grained once ≥ 2 threads run
//! (it "exploits the power of the multi-processor architecture better"),
//! with the advantage shrinking as the update ratio grows, because most
//! update operations take the same group locks in write mode.

use stmbench7::core::WorkloadType;
use stmbench7_bench::{lock_backends, print_row, run_cell, write_csv, Cell, SweepOpts};

fn main() {
    let opts = SweepOpts::from_args();
    println!("Figure 4: total throughput [op/s], long traversals disabled");
    print_row(&[
        "workload".into(),
        "strategy".into(),
        "threads".into(),
        "ops/s".into(),
        "attempted/s".into(),
    ]);
    let mut rows = Vec::new();
    for workload in WorkloadType::all() {
        for (name, backend) in lock_backends() {
            for &threads in &opts.threads {
                let report = run_cell(
                    &opts,
                    &Cell {
                        backend,
                        workload,
                        threads,
                        shards: None,
                        long_traversals: false,
                        structure_mods: true,
                        astm_friendly: false,
                        service: None,
                        net: None,
                        trace: false,
                        window_ms: None,
                        slo: None,
                    },
                );
                print_row(&[
                    workload.name().into(),
                    name.into(),
                    threads.to_string(),
                    format!("{:.0}", report.throughput()),
                    format!("{:.0}", report.throughput_attempted()),
                ]);
                rows.push(format!(
                    "{},{},{},{:.1},{:.1}",
                    workload.name(),
                    name,
                    threads,
                    report.throughput(),
                    report.throughput_attempted()
                ));
            }
        }
    }
    write_csv(
        "fig4",
        "workload,strategy,threads,throughput,attempted",
        &rows,
    );
}
