//! Figure 3: maximum latency of long traversals under the two locking
//! strategies, all operations enabled.
//!
//! The paper plots, against thread count, the maximum latency of T1 in
//! the read-dominated workload and of T2b in the write-dominated
//! workload, for coarse- vs medium-grained locking. The paper's reported
//! shape: medium-grained latency sits *above* coarse for these long
//! traversals (9 lock acquisitions and more queueing vs 1), and both grow
//! with threads.

use stmbench7::core::{OpKind, WorkloadType};
use stmbench7_bench::{lock_backends, print_row, run_cell, write_csv, Cell, SweepOpts};

fn main() {
    let opts = SweepOpts::from_args();
    println!("Figure 3: max latency [ms] of T1 (read-dom.) / T2b (write-dom.), all ops enabled");
    print_row(&[
        "workload".into(),
        "op".into(),
        "strategy".into(),
        "threads".into(),
        "max-lat ms".into(),
        "ops/s".into(),
    ]);
    let mut rows = Vec::new();
    for (workload, op) in [
        (WorkloadType::ReadDominated, OpKind::T1),
        (WorkloadType::WriteDominated, OpKind::T2b),
    ] {
        for (name, backend) in lock_backends() {
            for &threads in &opts.threads {
                let report = run_cell(
                    &opts,
                    &Cell {
                        backend,
                        workload,
                        threads,
                        shards: None,
                        long_traversals: true,
                        structure_mods: true,
                        astm_friendly: false,
                        service: None,
                        net: None,
                        trace: false,
                        window_ms: None,
                        slo: None,
                    },
                );
                let lat = report.max_latency_ms(op);
                print_row(&[
                    workload.name().into(),
                    op.name().into(),
                    name.into(),
                    threads.to_string(),
                    format!("{lat:.2}"),
                    format!("{:.0}", report.throughput()),
                ]);
                rows.push(format!(
                    "{},{},{},{},{:.3},{:.1}",
                    workload.name(),
                    op.name(),
                    name,
                    threads,
                    lat,
                    report.throughput()
                ));
            }
        }
    }
    write_csv(
        "fig3",
        "workload,op,strategy,threads,max_latency_ms,throughput",
        &rows,
    );
}
