//! Logging-granularity ablation (the §5 remedy, quantified).
//!
//! Measures the operations that update large objects — OP11 (the manual)
//! and OP15/SM1 (the atomic-part indexes) — under monolithic vs sharded
//! representation on both STM runtimes. The paper's remedy ("split the
//! manual into chunks … implement the indexes with B-trees, each node
//! synchronized separately") should cut these latencies by orders of
//! magnitude while leaving small-object operations (ST1) unchanged.

use std::time::Instant;

use stmbench7::backend::{Backend, Granularity, StmBackend, TxOperation};
use stmbench7::core::ops::{run_op, OpCtx, OpKind};
use stmbench7::data::OpOutcome;
use stmbench7::data::{Sb7Tx, TxR, Workspace};
use stmbench7::stm::{AstmRuntime, Tl2Runtime};
use stmbench7_bench::{print_row, write_csv, SweepOpts};

struct Runner<'c> {
    op: OpKind,
    ctx: &'c mut OpCtx,
}

impl TxOperation<OpOutcome> for Runner<'_> {
    fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<OpOutcome> {
        run_op(self.op, tx, self.ctx)
    }
}

fn mean_latency_us<B: Backend>(
    backend: &B,
    params: &stmbench7::data::StructureParams,
    op: OpKind,
    iters: u32,
) -> f64 {
    let spec = stmbench7::core::access_spec(op, params.assembly_levels);
    let mut ctx = OpCtx::new(params.clone(), 7);
    let t0 = Instant::now();
    let mut completed = 0u32;
    for _ in 0..iters {
        let outcome = backend.execute(&spec, &mut Runner { op, ctx: &mut ctx });
        if outcome.is_done() {
            completed += 1;
        }
    }
    t0.elapsed().as_secs_f64() * 1e6 / f64::from(completed.max(1))
}

fn main() {
    let opts = SweepOpts::from_args();
    let params = opts.params.clone();
    let ws = Workspace::build(params.clone(), opts.seed);
    println!("Granularity ablation: mean latency [us] per completed operation");
    print_row(&[
        "runtime".into(),
        "granularity".into(),
        "OP11".into(),
        "OP15".into(),
        "SM1".into(),
        "ST1".into(),
    ]);
    let mut rows = Vec::new();
    for granularity in [Granularity::Monolithic, Granularity::Sharded] {
        {
            let backend = StmBackend::from_workspace(&ws, AstmRuntime::default(), granularity);
            report("astm", granularity, &backend, &params, &mut rows);
        }
        {
            let backend = StmBackend::from_workspace(&ws, Tl2Runtime::default(), granularity);
            report("tl2", granularity, &backend, &params, &mut rows);
        }
    }
    write_csv(
        "ablation_granularity",
        "runtime,granularity,op11_us,op15_us,sm1_us,st1_us",
        &rows,
    );

    fn report<B: Backend>(
        name: &str,
        granularity: Granularity,
        backend: &B,
        params: &stmbench7::data::StructureParams,
        rows: &mut Vec<String>,
    ) {
        let op11 = mean_latency_us(backend, params, OpKind::Op11, 8);
        let op15 = mean_latency_us(backend, params, OpKind::Op15, 40);
        let sm1 = mean_latency_us(backend, params, OpKind::Sm1, 20);
        let st1 = mean_latency_us(backend, params, OpKind::St1, 200);
        print_row(&[
            name.into(),
            granularity.name().into(),
            format!("{op11:.1}"),
            format!("{op15:.1}"),
            format!("{sm1:.1}"),
            format!("{st1:.1}"),
        ]);
        rows.push(format!(
            "{name},{},{op11:.2},{op15:.2},{sm1:.2},{st1:.2}",
            granularity.name()
        ));
    }
}
