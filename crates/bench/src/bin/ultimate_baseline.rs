//! Extension: the "ultimate baseline" sweep the paper's §6 calls for.
//!
//! "Adding a fine-grained, highly-optimized locking strategy would help
//! define the 'ultimate' baseline test of STMs." This binary compares all
//! four lock granularities (sequential, coarse, medium, fine) and the
//! sharded TL2 remedy across the three workloads, long traversals
//! disabled (the Figure 4 configuration, extended with the new
//! strategies).
//!
//! Expected shape: fine-grained pays the paper's predicted
//! discover/sort/acquire overhead at one thread (it runs every operation
//! twice), and repays it with the least write-write serialization as
//! threads and the update ratio grow.

use stmbench7::core::WorkloadType;
use stmbench7::BackendChoice;
use stmbench7_bench::{print_row, run_cell, write_csv, Cell, SweepOpts};

fn backends() -> Vec<(&'static str, BackendChoice)> {
    vec![
        ("sequential", BackendChoice::Sequential),
        ("coarse", BackendChoice::Coarse),
        ("medium", BackendChoice::Medium),
        ("fine", BackendChoice::Fine),
        (
            "tl2-sharded",
            BackendChoice::Tl2 {
                granularity: stmbench7::backend::Granularity::Sharded,
            },
        ),
        (
            "norec-sharded",
            BackendChoice::Norec {
                granularity: stmbench7::backend::Granularity::Sharded,
            },
        ),
    ]
}

fn main() {
    let opts = SweepOpts::from_args();
    println!("Ultimate baseline (paper §6 future work): throughput [op/s],");
    println!("long traversals disabled, all lock granularities + sharded TL2");
    print_row(&[
        "workload".into(),
        "strategy".into(),
        "threads".into(),
        "ops/s".into(),
        "attempted/s".into(),
    ]);
    let mut rows = Vec::new();
    for workload in WorkloadType::all() {
        for (name, backend) in backends() {
            for &threads in &opts.threads {
                let report = run_cell(
                    &opts,
                    &Cell {
                        backend,
                        workload,
                        threads,
                        shards: None,
                        long_traversals: false,
                        structure_mods: true,
                        astm_friendly: false,
                        service: None,
                        net: None,
                        trace: false,
                        window_ms: None,
                        slo: None,
                    },
                );
                print_row(&[
                    workload.name().into(),
                    name.into(),
                    threads.to_string(),
                    format!("{:.0}", report.throughput()),
                    format!("{:.0}", report.throughput_attempted()),
                ]);
                rows.push(format!(
                    "{},{},{},{:.1},{:.1}",
                    workload.name(),
                    name,
                    threads,
                    report.throughput(),
                    report.throughput_attempted()
                ));
            }
        }
    }
    write_csv(
        "ultimate_baseline",
        "workload,strategy,threads,throughput,attempted",
        &rows,
    );
}
