//! Figure 6: throughput of ASTM vs both locking strategies with "all
//! long operations disabled" — the §5 configuration that removes the
//! operations ASTM cannot cope with (long traversals plus OP11/OP15/
//! SM1/SM2), making the workload resemble the synthetic benchmarks STMs
//! had been evaluated on before STMBench7.
//!
//! Paper shape: under this filter ASTM becomes competitive — for the
//! read-dominated workload it scales like medium-grained locking and can
//! beat coarse-grained locking given enough parallelism; its behaviour
//! degrades and becomes unstable as the update ratio grows.

use stmbench7::core::WorkloadType;
use stmbench7::BackendChoice;
use stmbench7_bench::{astm_backend, print_row, run_cell, write_csv, Cell, SweepOpts};

fn main() {
    let opts = SweepOpts::from_args();
    println!("Figure 6: throughput [op/s], ASTM-friendly filter (no LT, no OP11/OP15/SM1/SM2)");
    print_row(&[
        "workload".into(),
        "strategy".into(),
        "threads".into(),
        "ops/s".into(),
        "aborts/commit".into(),
    ]);
    let mut rows = Vec::new();
    let backends = [
        ("coarse", BackendChoice::Coarse),
        ("medium", BackendChoice::Medium),
        ("astm", astm_backend()),
    ];
    for workload in WorkloadType::all() {
        for (name, backend) in backends {
            for &threads in &opts.threads {
                let report = run_cell(
                    &opts,
                    &Cell {
                        backend,
                        workload,
                        threads,
                        shards: None,
                        long_traversals: false,
                        structure_mods: true,
                        astm_friendly: true,
                        service: None,
                        net: None,
                        trace: false,
                        window_ms: None,
                        slo: None,
                    },
                );
                let abort_ratio = report.stm.map(|s| s.abort_ratio()).unwrap_or(0.0);
                print_row(&[
                    workload.name().into(),
                    name.into(),
                    threads.to_string(),
                    format!("{:.0}", report.throughput()),
                    format!("{abort_ratio:.3}"),
                ]);
                rows.push(format!(
                    "{},{},{},{:.1},{:.4}",
                    workload.name(),
                    name,
                    threads,
                    report.throughput(),
                    abort_ratio
                ));
            }
        }
    }
    write_csv(
        "fig6",
        "workload,strategy,threads,throughput,abort_ratio",
        &rows,
    );
}
