//! Contention-manager ablation.
//!
//! The paper runs ASTM with the Polka manager; this sweep compares all
//! six classic managers on a contended write-dominated workload (4
//! threads, ASTM-friendly filter so the STM is in its competitive
//! regime) and reports throughput, abort ratio and enemy kills.

use std::time::Duration;

use stmbench7::backend::Granularity;
use stmbench7::core::{run_benchmark, BenchConfig, OpFilter, RunMode, WorkloadType};
use stmbench7::data::Workspace;
use stmbench7::stm::ContentionManager;
use stmbench7::{AnyBackend, BackendChoice};
use stmbench7_bench::{print_row, write_csv, SweepOpts};

fn main() {
    let opts = SweepOpts::from_args();
    println!("Contention-manager ablation: ASTM, write-dominated, 4 threads, ASTM-friendly ops");
    print_row(&[
        "manager".into(),
        "ops/s".into(),
        "aborts/commit".into(),
        "enemy kills".into(),
    ]);
    let mut rows = Vec::new();
    for cm in ContentionManager::all() {
        let ws = Workspace::build(opts.params.clone(), opts.seed);
        let backend = AnyBackend::build(
            BackendChoice::Astm {
                granularity: Granularity::Sharded,
                cm,
                visible: false,
            },
            ws,
        );
        let cfg = BenchConfig {
            threads: 4,
            mode: RunMode::Timed(Duration::from_secs_f64(opts.secs_per_cell)),
            workload: WorkloadType::WriteDominated,
            long_traversals: false,
            structure_mods: true,
            filter: OpFilter::astm_friendly(),
            seed: opts.seed,
            histograms: false,
            recorder: stmbench7::obs::Recorder::default(),

            window_ms: None,
        };
        let report = run_benchmark(&backend, &opts.params, &cfg);
        let stm = report.stm.unwrap_or_default();
        print_row(&[
            cm.name().into(),
            format!("{:.0}", report.throughput()),
            format!("{:.3}", stm.abort_ratio()),
            stm.enemy_aborts.to_string(),
        ]);
        rows.push(format!(
            "{},{:.1},{:.4},{}",
            cm.name(),
            report.throughput(),
            stm.abort_ratio(),
            stm.enemy_aborts
        ));
    }
    write_csv(
        "ablation_cm",
        "manager,throughput,abort_ratio,enemy_kills",
        &rows,
    );
}
