//! Table 3: total throughput of coarse-grained locking vs ASTM, long
//! traversals disabled, threads 1–8.
//!
//! This is the paper's headline result: the straightforward ASTM port is
//! 2–4 orders of magnitude slower than the lock-based versions, because
//! of O(k²) incremental validation and whole-object copy-on-write on the
//! manual and the (monolithic) indexes.

use stmbench7::core::WorkloadType;
use stmbench7::BackendChoice;
use stmbench7_bench::{astm_backend, print_row, run_cell, write_csv, Cell, SweepOpts};

fn main() {
    let mut opts = SweepOpts::from_args();
    if opts.threads == vec![1, 2, 3, 4, 6, 8] {
        opts.threads = vec![1, 2, 4, 8]; // The table's thread counts.
    }
    println!("Table 3: throughput [op/s], coarse locking vs ASTM, long traversals disabled");
    print_row(&[
        "workload".into(),
        "threads".into(),
        "lock".into(),
        "astm".into(),
        "lock/astm".into(),
    ]);
    let mut rows = Vec::new();
    for workload in WorkloadType::all() {
        for &threads in &opts.threads {
            let mut cell = Cell {
                backend: BackendChoice::Coarse,
                workload,
                threads,
                shards: None,
                long_traversals: false,
                structure_mods: true,
                astm_friendly: false,
                service: None,
                net: None,
                trace: false,
                window_ms: None,
                slo: None,
            };
            let lock = run_cell(&opts, &cell).throughput();
            cell.backend = astm_backend();
            let astm_report = run_cell(&opts, &cell);
            let astm = astm_report.throughput();
            let ratio = if astm > 0.0 {
                lock / astm
            } else {
                f64::INFINITY
            };
            print_row(&[
                workload.name().into(),
                threads.to_string(),
                format!("{lock:.0}"),
                format!("{astm:.1}"),
                format!("{ratio:.0}x"),
            ]);
            let stm = astm_report.stm.unwrap_or_default();
            rows.push(format!(
                "{},{},{:.1},{:.2},{:.1},{},{}",
                workload.name(),
                threads,
                lock,
                astm,
                ratio,
                stm.aborts,
                stm.validation_steps
            ));
        }
    }
    write_csv(
        "table3",
        "workload,threads,lock_throughput,astm_throughput,ratio,astm_aborts,astm_validation_steps",
        &rows,
    );
}
