//! Stress harness: hammer every synchronization backend with concurrent
//! write-dominated rounds (all operations enabled, structure
//! modifications included) and re-validate every structural invariant of
//! the graph between rounds.
//!
//! This is the long-running integrity companion to the test suite's
//! `concurrent_integrity.rs`: run it for minutes or hours to soak a
//! backend. Any invariant violation aborts with a diagnostic.
//!
//! ```sh
//! cargo run --release -p stmbench7-bench --bin stress -- \
//!     --preset small --secs 2 --rounds 5 --threads 4
//! ```

use std::time::Duration;

use stmbench7::backend::{Backend, Granularity};
use stmbench7::core::{run_benchmark, BenchConfig, OpFilter, RunMode, WorkloadType};
use stmbench7::data::{validate, StructureParams, Workspace};
use stmbench7::stm::ContentionManager;
use stmbench7::{AnyBackend, BackendChoice};

struct Opts {
    params: StructureParams,
    secs_per_round: f64,
    rounds: u32,
    threads: usize,
    seed: u64,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        params: StructureParams::small(),
        secs_per_round: 1.0,
        rounds: 3,
        threads: 4,
        seed: 1,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let val = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", argv[*i - 1]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--preset" => {
                let v = val(&mut i);
                opts.params = stmbench7::parse_preset(&v).unwrap_or_else(|| {
                    eprintln!("unknown preset '{v}'");
                    std::process::exit(2);
                });
            }
            "--secs" => opts.secs_per_round = val(&mut i).parse().expect("--secs"),
            "--rounds" => opts.rounds = val(&mut i).parse().expect("--rounds"),
            "--threads" => opts.threads = val(&mut i).parse().expect("--threads"),
            "--seed" => opts.seed = val(&mut i).parse().expect("--seed"),
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    opts
}

fn backends() -> Vec<(&'static str, BackendChoice)> {
    vec![
        ("coarse", BackendChoice::Coarse),
        ("medium", BackendChoice::Medium),
        ("fine", BackendChoice::Fine),
        (
            "astm",
            BackendChoice::Astm {
                granularity: Granularity::Monolithic,
                cm: ContentionManager::Polka,
                visible: false,
            },
        ),
        (
            "astm-visible",
            BackendChoice::Astm {
                granularity: Granularity::Monolithic,
                cm: ContentionManager::Polka,
                visible: true,
            },
        ),
        (
            "tl2-sharded",
            BackendChoice::Tl2 {
                granularity: Granularity::Sharded,
            },
        ),
        (
            "norec-sharded",
            BackendChoice::Norec {
                granularity: Granularity::Sharded,
            },
        ),
    ]
}

fn main() {
    let opts = parse_opts();
    println!(
        "Stress: {} rounds x {:.1} s per backend, {} threads, write-dominated,",
        opts.rounds, opts.secs_per_round, opts.threads
    );
    println!("all operations enabled, full validation between rounds.\n");

    let mut violations = 0u32;
    for (name, choice) in backends() {
        let ws = Workspace::build(opts.params.clone(), opts.seed);
        let backend = AnyBackend::build(choice, ws);
        let mut total_ops = 0u64;
        for round in 1..=opts.rounds {
            let cfg = BenchConfig {
                threads: opts.threads,
                mode: RunMode::Timed(Duration::from_secs_f64(opts.secs_per_round)),
                workload: WorkloadType::WriteDominated,
                long_traversals: true,
                structure_mods: true,
                filter: OpFilter::none(),
                seed: opts.seed.wrapping_add(u64::from(round)),
                histograms: false,
                recorder: stmbench7::obs::Recorder::default(),

                window_ms: None,
            };
            let report = run_benchmark(&backend, &opts.params, &cfg);
            total_ops += report.total_started();
            match validate(&backend.export()) {
                Ok(census) => println!(
                    "  {name:<14} round {round}/{}: {:>9} ops, census ok ({} atomics, {} assemblies)",
                    opts.rounds,
                    report.total_started(),
                    census.atomic_parts,
                    census.base_assemblies + census.complex_assemblies,
                ),
                Err(msg) => {
                    violations += 1;
                    println!("  {name:<14} round {round}: INVARIANT VIOLATION: {msg}");
                    break;
                }
            }
        }
        println!("  {name:<14} total {total_ops} operations\n");
    }

    if violations > 0 {
        eprintln!("{violations} backend(s) corrupted the structure");
        std::process::exit(1);
    }
    println!("All backends survived with every invariant intact.");
}
