//! Extension (§6): "more workloads need to be explored" — sweep the
//! update percentage continuously from read-only to write-only using the
//! custom workload type, and chart each strategy's throughput across it.
//!
//! The paper's three named workloads are the 10 / 40 / 90 points of this
//! curve; the sweep shows what happens between and beyond them (where
//! medium-grained locking loses its edge, where ASTM's invisible-read
//! costs bite, where NOrec's single-writer commit saturates).

use stmbench7::core::WorkloadType;
use stmbench7::BackendChoice;
use stmbench7_bench::{print_row, run_cell, write_csv, Cell, SweepOpts};

fn backends() -> Vec<(&'static str, BackendChoice)> {
    vec![
        ("coarse", BackendChoice::Coarse),
        ("medium", BackendChoice::Medium),
        ("fine", BackendChoice::Fine),
        (
            "tl2-sharded",
            BackendChoice::Tl2 {
                granularity: stmbench7::backend::Granularity::Sharded,
            },
        ),
        (
            "norec-sharded",
            BackendChoice::Norec {
                granularity: stmbench7::backend::Granularity::Sharded,
            },
        ),
    ]
}

fn main() {
    let opts = SweepOpts::from_args();
    let threads = *opts.threads.first().unwrap_or(&4);
    println!("Workload sweep (§6 extension): throughput [op/s] vs update %");
    println!("long traversals disabled, {threads} threads");
    print_row(&[
        "update %".into(),
        "strategy".into(),
        "ops/s".into(),
        "attempted/s".into(),
    ]);
    let mut rows = Vec::new();
    for update_pct in [0u8, 10, 25, 40, 60, 75, 90, 100] {
        for (name, backend) in backends() {
            let report = run_cell(
                &opts,
                &Cell {
                    backend,
                    workload: WorkloadType::Custom { update_pct },
                    threads,
                    shards: None,
                    long_traversals: false,
                    structure_mods: true,
                    astm_friendly: false,
                    service: None,
                    net: None,
                    trace: false,
                    window_ms: None,
                    slo: None,
                },
            );
            print_row(&[
                update_pct.to_string(),
                name.into(),
                format!("{:.0}", report.throughput()),
                format!("{:.0}", report.throughput_attempted()),
            ]);
            rows.push(format!(
                "{},{},{:.1},{:.1}",
                update_pct,
                name,
                report.throughput(),
                report.throughput_attempted()
            ));
        }
    }
    write_csv(
        "workload_sweep",
        "update_pct,strategy,throughput,attempted",
        &rows,
    );
}
