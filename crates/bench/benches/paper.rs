//! Criterion benches, one group per paper table/figure plus
//! micro-benchmarks of the substrates. These run at CI scale (tiny
//! structure, fixed operation counts) so `cargo bench` terminates
//! quickly; the full parameter sweeps live in the `fig3`/`fig4`/`fig6`/
//! `table3`/`ablation_*` binaries.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use stmbench7::backend::{Backend, Granularity, SequentialBackend, TxOperation};
use stmbench7::core::ops::{run_op, OpCtx, OpKind};
use stmbench7::core::{access_spec, run_benchmark, BenchConfig, OpFilter, WorkloadType};
use stmbench7::data::btree::BTree;
use stmbench7::data::{OpOutcome, Sb7Tx, StructureParams, TxR, Workspace};
use stmbench7::stm::{AstmRuntime, NorecRuntime, StmRuntime, Tl2Runtime};
use stmbench7::{AnyBackend, BackendChoice};
use stmbench7_stm::ContentionManager;

struct Runner<'c> {
    op: OpKind,
    ctx: &'c mut OpCtx,
}

impl TxOperation<OpOutcome> for Runner<'_> {
    fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<OpOutcome> {
        run_op(self.op, tx, self.ctx)
    }
}

fn params() -> StructureParams {
    StructureParams::tiny()
}

fn astm_choice() -> BackendChoice {
    BackendChoice::Astm {
        granularity: Granularity::Monolithic,
        cm: ContentionManager::Polka,
        visible: false,
    }
}

/// Figure 3 (CI scale): one long-traversal execution per strategy.
fn fig3_latency(c: &mut Criterion) {
    let p = params();
    let ws = Workspace::build(p.clone(), 1);
    let mut group = c.benchmark_group("fig3_long_traversal_latency");
    for (name, choice) in [
        ("coarse", BackendChoice::Coarse),
        ("medium", BackendChoice::Medium),
        ("fine", BackendChoice::Fine),
    ] {
        let backend = AnyBackend::build(choice, ws.clone());
        for op in [OpKind::T1, OpKind::T2b] {
            let spec = access_spec(op, p.assembly_levels);
            group.bench_function(format!("{}_{}", op.name(), name), |b| {
                let mut ctx = OpCtx::new(p.clone(), 3);
                b.iter(|| backend.execute(&spec, &mut Runner { op, ctx: &mut ctx }));
            });
        }
    }
    group.finish();
}

/// Figure 4 (CI scale): 200-operation runs, long traversals disabled.
fn fig4_throughput(c: &mut Criterion) {
    let p = params();
    let mut group = c.benchmark_group("fig4_lock_throughput");
    group.sample_size(10);
    for workload in WorkloadType::all() {
        for (name, choice) in [
            ("coarse", BackendChoice::Coarse),
            ("medium", BackendChoice::Medium),
        ] {
            group.bench_function(format!("{}_{}", workload.name(), name), |b| {
                b.iter_batched(
                    || AnyBackend::build(choice, Workspace::build(p.clone(), 1)),
                    |backend| {
                        let mut cfg = BenchConfig::deterministic(workload, 200, 5);
                        cfg.long_traversals = false;
                        cfg.histograms = false;
                        run_benchmark(&backend, &p, &cfg)
                    },
                    BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

/// Table 3 (CI scale): coarse vs ASTM, long traversals disabled.
fn table3_astm(c: &mut Criterion) {
    let p = params();
    let mut group = c.benchmark_group("table3_coarse_vs_astm");
    group.sample_size(10);
    for (name, choice) in [("coarse", BackendChoice::Coarse), ("astm", astm_choice())] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || AnyBackend::build(choice, Workspace::build(p.clone(), 1)),
                |backend| {
                    let mut cfg = BenchConfig::deterministic(WorkloadType::ReadWrite, 150, 5);
                    cfg.long_traversals = false;
                    cfg.histograms = false;
                    run_benchmark(&backend, &p, &cfg)
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Figure 6 (CI scale): the ASTM-friendly filter.
fn fig6_astm_friendly(c: &mut Criterion) {
    let p = params();
    let mut group = c.benchmark_group("fig6_astm_friendly");
    group.sample_size(10);
    for (name, choice) in [
        ("coarse", BackendChoice::Coarse),
        ("medium", BackendChoice::Medium),
        ("astm", astm_choice()),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || AnyBackend::build(choice, Workspace::build(p.clone(), 1)),
                |backend| {
                    let mut cfg = BenchConfig::deterministic(WorkloadType::ReadDominated, 150, 5);
                    cfg.long_traversals = false;
                    cfg.filter = OpFilter::astm_friendly();
                    cfg.histograms = false;
                    run_benchmark(&backend, &p, &cfg)
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Micro: the B+tree index substrate.
fn micro_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_btree");
    group.bench_function("insert_1k", |b| {
        b.iter(|| {
            let mut t = BTree::new();
            for i in 0..1000u32 {
                t.insert(i.wrapping_mul(2_654_435_761), i);
            }
            t
        });
    });
    let mut tree = BTree::new();
    for i in 0..10_000u32 {
        tree.insert(i, i);
    }
    group.bench_function("get_hit", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = (k + 7919) % 10_000;
            tree.get(&k).copied()
        });
    });
    group.bench_function("range_100", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            tree.for_range(&4000, &4100, |_, v| sum += u64::from(*v));
            sum
        });
    });
    group.finish();
}

/// Micro: STM primitives (read and update transactions).
fn micro_stm(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_stm");
    let tl2 = Tl2Runtime::default();
    let astm = AstmRuntime::default();
    let vt = tl2.new_var(0u64);
    let va = astm.new_var(0u64);
    group.bench_function("tl2_read_tx", |b| {
        b.iter(|| tl2.atomic(|tx| Ok(*Tl2Runtime::read(tx, &vt)?)));
    });
    group.bench_function("tl2_update_tx", |b| {
        b.iter(|| tl2.atomic(|tx| Tl2Runtime::update(tx, &vt, |n| *n += 1)));
    });
    group.bench_function("astm_read_tx", |b| {
        b.iter(|| astm.atomic(|tx| Ok(*AstmRuntime::read(tx, &va)?)));
    });
    group.bench_function("astm_update_tx", |b| {
        b.iter(|| astm.atomic(|tx| AstmRuntime::update(tx, &va, |n| *n += 1)));
    });
    // The O(k²) tax: read k vars in one ASTM transaction.
    let vars: Vec<_> = (0..64u64).map(|i| astm.new_var(i)).collect();
    group.bench_function("astm_read64_incremental_validation", |b| {
        b.iter(|| {
            astm.atomic(|tx| {
                let mut sum = 0;
                for v in &vars {
                    sum += *AstmRuntime::read(tx, v)?;
                }
                Ok(sum)
            })
        });
    });
    let tvars: Vec<_> = (0..64u64).map(|i| tl2.new_var(i)).collect();
    group.bench_function("tl2_read64_constant_validation", |b| {
        b.iter(|| {
            tl2.atomic(|tx| {
                let mut sum = 0;
                for v in &tvars {
                    sum += *Tl2Runtime::read(tx, v)?;
                }
                Ok(sum)
            })
        });
    });
    group.bench_function("tl2_read64_readonly_fast_path", |b| {
        b.iter(|| {
            tl2.atomic_read_only(|tx| {
                let mut sum = 0;
                for v in &tvars {
                    sum += *Tl2Runtime::read(tx, v)?;
                }
                Ok(sum)
            })
        });
    });
    let norec = NorecRuntime::new();
    let vn = norec.new_var(0u64);
    group.bench_function("norec_read_tx", |b| {
        b.iter(|| norec.atomic(|tx| Ok(*NorecRuntime::read(tx, &vn)?)));
    });
    group.bench_function("norec_update_tx", |b| {
        b.iter(|| norec.atomic(|tx| NorecRuntime::update(tx, &vn, |n| *n += 1)));
    });
    let nvars: Vec<_> = (0..64u64).map(|i| norec.new_var(i)).collect();
    group.bench_function("norec_read64_value_validation", |b| {
        b.iter(|| {
            norec.atomic(|tx| {
                let mut sum = 0;
                for v in &nvars {
                    sum += *NorecRuntime::read(tx, v)?;
                }
                Ok(sum)
            })
        });
    });
    group.finish();
}

/// Extension (§6): the ultimate-baseline strategies at CI scale.
fn ultimate_baseline_ci(c: &mut Criterion) {
    let p = params();
    let mut group = c.benchmark_group("ultimate_baseline");
    group.sample_size(10);
    for (name, choice) in [
        ("fine", BackendChoice::Fine),
        (
            "tl2_sharded",
            BackendChoice::Tl2 {
                granularity: Granularity::Sharded,
            },
        ),
        (
            "norec_sharded",
            BackendChoice::Norec {
                granularity: Granularity::Sharded,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || AnyBackend::build(choice, Workspace::build(p.clone(), 1)),
                |backend| {
                    let mut cfg = BenchConfig::deterministic(WorkloadType::ReadWrite, 150, 5);
                    cfg.long_traversals = false;
                    cfg.histograms = false;
                    run_benchmark(&backend, &p, &cfg)
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Micro: representative operations over the sequential backend.
fn micro_ops(c: &mut Criterion) {
    let p = params();
    let ws = Workspace::build(p.clone(), 1);
    let backend = SequentialBackend::new(ws);
    let mut group = c.benchmark_group("micro_ops");
    for op in [OpKind::St1, OpKind::Op1, OpKind::Op4, OpKind::Q7] {
        let spec = access_spec(op, p.assembly_levels);
        group.bench_function(op.name(), |b| {
            let mut ctx = OpCtx::new(p.clone(), 11);
            b.iter(|| backend.execute(&spec, &mut Runner { op, ctx: &mut ctx }));
        });
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = configure();
    targets = fig3_latency, fig4_throughput, table3_astm, fig6_astm_friendly,
              ultimate_baseline_ci, micro_btree, micro_stm, micro_ops
}
criterion_main!(benches);
