//! stmbench7-poll — a readiness-polling subset (mio-like) over raw Linux
//! `epoll`.
//!
//! The build environment has no registry access, so this crate follows the
//! same offline discipline as `vendor/`: it is a small, dependency-free
//! stand-in for the part of `mio` the net server needs, not a fork of it.
//! `std` already links libc, so the epoll/eventfd/rlimit symbols are
//! declared directly with `extern "C"` — no `libc` crate required.
//!
//! Surface:
//!
//! - [`Poller`] — an epoll instance. [`Poller::register`] associates a raw
//!   fd with a [`Token`] and an [`Interest`] (readable/writable);
//!   [`Poller::poll`] blocks until something is ready and fills an
//!   [`Events`] buffer.
//! - [`Trigger`] — level- (default) or edge-triggered readiness, chosen
//!   per poller at construction.
//! - [`Waker`] — an `eventfd` registered at poller creation under
//!   [`Poller::WAKE`]; any thread can [`Waker::wake`] a blocked `poll`.
//!   This replaces the PR 5 self-connect shutdown hack.
//! - [`raise_nofile_limit`] — lifts the soft `RLIMIT_NOFILE` toward the
//!   hard limit so c10k-scale runs don't die on fd exhaustion (CI runners
//!   default to a 1024 soft limit).
//!
//! Linux-only, like the CI runners and the benchmark container.

use std::io;
use std::os::unix::io::RawFd;
use std::sync::Arc;
use std::time::Duration;

mod sys {
    use std::os::raw::{c_int, c_void};

    // The kernel packs epoll_event on x86-64 (12 bytes); other
    // architectures use natural alignment.
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    pub struct rlimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    pub const RLIMIT_NOFILE: c_int = 7;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
    }
}

/// Identifies a registration; returned inside each readiness [`Event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Readable and/or writable interest for a registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    pub const READABLE: Interest = Interest(1);
    pub const WRITABLE: Interest = Interest(2);
    pub const BOTH: Interest = Interest(3);

    pub fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    pub fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }

    fn epoll_bits(self, trigger: Trigger) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if self.is_readable() {
            bits |= sys::EPOLLIN;
        }
        if self.is_writable() {
            bits |= sys::EPOLLOUT;
        }
        if let Trigger::Edge = trigger {
            bits |= sys::EPOLLET;
        }
        bits
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// Level-triggered readiness re-reports until the condition is consumed;
/// edge-triggered reports each transition once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    Level,
    Edge,
}

/// One readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    bits: u32,
}

impl Event {
    pub fn token(&self) -> Token {
        self.token
    }

    /// Readable — includes error/hang-up so the owner's next read
    /// discovers the close.
    pub fn is_readable(&self) -> bool {
        self.bits & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }

    /// Writable — includes error/hang-up so the owner's next write
    /// discovers the close.
    pub fn is_writable(&self) -> bool {
        self.bits & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0
    }

    pub fn is_error(&self) -> bool {
        self.bits & sys::EPOLLERR != 0
    }

    pub fn is_hangup(&self) -> bool {
        self.bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }
}

/// Reusable buffer [`Poller::poll`] fills with ready [`Event`]s.
pub struct Events {
    buf: Vec<sys::epoll_event>,
    len: usize,
}

impl Events {
    pub fn with_capacity(cap: usize) -> Events {
        assert!(cap >= 1, "events capacity must be at least 1");
        Events {
            buf: vec![sys::epoll_event { events: 0, data: 0 }; cap],
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|ev| {
            // Copy out of the (possibly packed) struct before use.
            let bits = ev.events;
            let data = ev.data;
            Event {
                token: Token(data as usize),
                bits,
            }
        })
    }
}

/// The eventfd behind [`Waker`]; closed when the last handle drops.
struct WakeFd {
    fd: RawFd,
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.fd);
        }
    }
}

/// Wakes a [`Poller`] blocked in [`Poller::poll`] from any thread. The
/// wake surfaces as an event carrying [`Poller::WAKE`].
#[derive(Clone)]
pub struct Waker {
    fd: Arc<WakeFd>,
}

impl Waker {
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        let n = unsafe {
            sys::write(
                self.fd.fd,
                (&one as *const u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            // The counter being already at max still wakes the poller.
            if err.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(err);
        }
        Ok(())
    }
}

/// An epoll instance with an internal wake eventfd.
pub struct Poller {
    epfd: RawFd,
    trigger: Trigger,
    wake: Arc<WakeFd>,
}

impl Poller {
    /// Token reserved for the internal wake eventfd; never use it for a
    /// registration of your own.
    pub const WAKE: Token = Token(usize::MAX);

    /// A level-triggered poller.
    pub fn new() -> io::Result<Poller> {
        Poller::with_trigger(Trigger::Level)
    }

    /// A poller with an explicit trigger mode.
    pub fn with_trigger(trigger: Trigger) -> io::Result<Poller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let wake_fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if wake_fd < 0 {
            let err = io::Error::last_os_error();
            unsafe { sys::close(epfd) };
            return Err(err);
        }
        let poller = Poller {
            epfd,
            trigger,
            wake: Arc::new(WakeFd { fd: wake_fd }),
        };
        // The wake fd is always level-triggered readable-only; poll()
        // drains it before reporting the WAKE event.
        let mut ev = sys::epoll_event {
            events: sys::EPOLLIN,
            data: Poller::WAKE.0 as u64,
        };
        if unsafe { sys::epoll_ctl(poller.epfd, sys::EPOLL_CTL_ADD, wake_fd, &mut ev) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(poller)
    }

    /// A handle that wakes this poller from any thread.
    pub fn waker(&self) -> Waker {
        Waker {
            fd: Arc::clone(&self.wake),
        }
    }

    fn ctl(
        &self,
        op: std::os::raw::c_int,
        fd: RawFd,
        ev: Option<&mut sys::epoll_event>,
    ) -> io::Result<()> {
        let ptr = match ev {
            Some(ev) => ev as *mut sys::epoll_event,
            None => std::ptr::null_mut(),
        };
        if unsafe { sys::epoll_ctl(self.epfd, op, fd, ptr) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Starts watching `fd` under `token`.
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        assert!(
            token != Poller::WAKE,
            "Token(usize::MAX) is reserved for the waker"
        );
        let mut ev = sys::epoll_event {
            events: interest.epoll_bits(self.trigger),
            data: token.0 as u64,
        };
        self.ctl(sys::EPOLL_CTL_ADD, fd, Some(&mut ev))
    }

    /// Changes the token/interest of an already-registered `fd`.
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        assert!(
            token != Poller::WAKE,
            "Token(usize::MAX) is reserved for the waker"
        );
        let mut ev = sys::epoll_event {
            events: interest.epoll_bits(self.trigger),
            data: token.0 as u64,
        };
        self.ctl(sys::EPOLL_CTL_MOD, fd, Some(&mut ev))
    }

    /// Stops watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, None)
    }

    /// Blocks until at least one registration is ready (or `timeout`
    /// elapses; `None` waits forever), filling `events`. A wake via
    /// [`Waker::wake`] is drained and surfaced as an event with
    /// [`Poller::WAKE`].
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: std::os::raw::c_int = match timeout {
            None => -1,
            Some(d) => {
                // Round up so a nonzero timeout never becomes a busy spin.
                let ms = d.as_millis();
                if ms == 0 && d.as_nanos() > 0 {
                    1
                } else {
                    ms.min(i32::MAX as u128) as std::os::raw::c_int
                }
            }
        };
        events.len = 0;
        loop {
            let n = unsafe {
                sys::epoll_wait(
                    self.epfd,
                    events.buf.as_mut_ptr(),
                    events.buf.len() as std::os::raw::c_int,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            events.len = n as usize;
            break;
        }
        // Drain the wake counter so level-triggered polls don't spin on it.
        for ev in events.buf[..events.len].iter() {
            let data = ev.data;
            if data as usize == Poller::WAKE.0 {
                let mut counter: u64 = 0;
                unsafe {
                    sys::read(
                        self.wake.fd,
                        (&mut counter as *mut u64).cast(),
                        std::mem::size_of::<u64>(),
                    );
                }
            }
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.epfd);
        }
    }
}

/// Raises the soft `RLIMIT_NOFILE` to at least `want` (capped at the hard
/// limit) and returns the resulting soft limit. A no-op when the soft
/// limit already suffices.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    unsafe {
        let mut lim = sys::rlimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        if sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) != 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.rlim_cur >= want {
            return Ok(lim.rlim_cur);
        }
        let raised = sys::rlimit {
            rlim_cur: want.min(lim.rlim_max),
            rlim_max: lim.rlim_max,
        };
        if sys::setrlimit(sys::RLIMIT_NOFILE, &raised) != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(raised.rlim_cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    const ACCEPT: Token = Token(1);
    const CONN: Token = Token(2);

    fn ready_tokens(poller: &Poller, events: &mut Events, timeout_ms: u64) -> Vec<Token> {
        poller
            .poll(events, Some(Duration::from_millis(timeout_ms)))
            .expect("poll");
        events.iter().map(|ev| ev.token()).collect()
    }

    #[test]
    fn listener_and_stream_readiness_round_trip() {
        let poller = Poller::new().expect("poller");
        let mut events = Events::with_capacity(8);

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        poller
            .register(listener.as_raw_fd(), ACCEPT, Interest::READABLE)
            .expect("register listener");

        // Nothing is ready yet.
        assert!(ready_tokens(&poller, &mut events, 10).is_empty());

        let mut client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let tokens = ready_tokens(&poller, &mut events, 2000);
        assert_eq!(tokens, vec![ACCEPT], "pending accept is readable");

        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        poller
            .register(server_side.as_raw_fd(), CONN, Interest::READABLE)
            .expect("register conn");

        client.write_all(b"ping").expect("write");
        let tokens = ready_tokens(&poller, &mut events, 2000);
        assert!(tokens.contains(&CONN), "incoming bytes are readable");

        let mut server_side = server_side;
        let mut buf = [0u8; 8];
        let n = server_side.read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"ping");

        poller
            .deregister(server_side.as_raw_fd())
            .expect("deregister");
        client.write_all(b"more").expect("write");
        assert!(
            ready_tokens(&poller, &mut events, 50).is_empty(),
            "deregistered fds report nothing"
        );
    }

    #[test]
    fn level_trigger_rereports_until_consumed_edge_reports_once() {
        for (trigger, rereports) in [(Trigger::Level, true), (Trigger::Edge, false)] {
            let poller = Poller::with_trigger(trigger).expect("poller");
            let mut events = Events::with_capacity(8);

            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let mut client =
                TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
            let (server_side, _) = listener.accept().expect("accept");
            server_side.set_nonblocking(true).expect("nonblocking");
            poller
                .register(server_side.as_raw_fd(), CONN, Interest::READABLE)
                .expect("register");

            client.write_all(b"xx").expect("write");
            assert_eq!(
                ready_tokens(&poller, &mut events, 2000),
                vec![CONN],
                "{trigger:?}: first report"
            );
            // Data deliberately left unread.
            let again = !ready_tokens(&poller, &mut events, 100).is_empty();
            assert_eq!(again, rereports, "{trigger:?}: unread data re-report");

            // A fresh arrival re-arms edge mode.
            client.write_all(b"yy").expect("write");
            assert_eq!(
                ready_tokens(&poller, &mut events, 2000),
                vec![CONN],
                "{trigger:?}: new data reports again"
            );
        }
    }

    #[test]
    fn writable_interest_and_reregister() {
        let poller = Poller::new().expect("poller");
        let mut events = Events::with_capacity(8);

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        client.set_nonblocking(true).expect("nonblocking");
        let (_server_side, _) = listener.accept().expect("accept");

        poller
            .register(client.as_raw_fd(), CONN, Interest::READABLE)
            .expect("register");
        assert!(
            ready_tokens(&poller, &mut events, 50).is_empty(),
            "idle socket is not readable"
        );

        poller
            .reregister(
                client.as_raw_fd(),
                Token(9),
                Interest::READABLE | Interest::WRITABLE,
            )
            .expect("reregister");
        poller
            .poll(&mut events, Some(Duration::from_millis(2000)))
            .expect("poll");
        let ev = events.iter().next().expect("an event");
        assert_eq!(ev.token(), Token(9), "reregister moves the token");
        assert!(ev.is_writable(), "empty send buffer is writable");
    }

    #[test]
    fn waker_wakes_a_blocked_poll_from_another_thread() {
        let poller = Poller::new().expect("poller");
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake().expect("wake");
        });
        let mut events = Events::with_capacity(8);
        poller
            .poll(&mut events, Some(Duration::from_secs(30)))
            .expect("poll");
        let tokens: Vec<Token> = events.iter().map(|ev| ev.token()).collect();
        assert_eq!(tokens, vec![Poller::WAKE]);
        handle.join().expect("waker thread");

        // The wake counter was drained: the next poll times out quietly.
        poller
            .poll(&mut events, Some(Duration::from_millis(20)))
            .expect("poll");
        assert!(events.is_empty(), "wake is consumed, not re-reported");
    }

    #[test]
    fn hangup_is_surfaced_as_readable() {
        let poller = Poller::new().expect("poller");
        let mut events = Events::with_capacity(8);

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        poller
            .register(server_side.as_raw_fd(), CONN, Interest::READABLE)
            .expect("register");

        drop(client);
        poller
            .poll(&mut events, Some(Duration::from_millis(2000)))
            .expect("poll");
        let ev = events.iter().next().expect("an event");
        assert_eq!(ev.token(), CONN);
        assert!(ev.is_readable(), "peer close must reach the reader");
    }

    #[test]
    fn raise_nofile_limit_is_monotone_and_capped() {
        let current = raise_nofile_limit(0).expect("query via no-op raise");
        assert!(current >= 1);
        let same = raise_nofile_limit(current).expect("no-op raise");
        assert_eq!(same, current);
        let raised = raise_nofile_limit(current.saturating_add(1)).expect("raise toward hard cap");
        assert!(raised >= current, "soft limit never shrinks");
    }
}
