//! The seven object kinds of the OO7/STMBench7 graph (paper Figure 1).
//!
//! Per the paper's specification (Appendix B.1) only the module and
//! connection objects are immutable; everything else — including indexes,
//! sets and bags — may be updated by operations. Connections are embedded
//! in their source atomic part (see DESIGN.md): because they are immutable
//! and live/die with their part graph, embedding preserves both locking and
//! STM granularity while removing an arena.

use crate::ids::{AtomicPartId, BaseAssemblyId, ComplexAssemblyId, CompositePartId, DocumentId};

/// Connection types, mirroring OO7's small set of type strings.
pub const CONNECTION_TYPES: &[&str] = &["type A", "type B", "type C"];

/// Part/assembly types, mirroring OO7's ten type strings.
pub const DESIGN_TYPES: &[&str] = &[
    "type #0", "type #1", "type #2", "type #3", "type #4", "type #5", "type #6", "type #7",
    "type #8", "type #9",
];

/// An immutable connection between two atomic parts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Connection {
    /// Index into [`CONNECTION_TYPES`].
    pub kind: u8,
    /// OO7 "length" attribute.
    pub length: i32,
    /// Destination atomic part (always within the same composite part's
    /// graph).
    pub to: AtomicPartId,
}

/// An atomic part: the leaves of the design library graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtomicPart {
    pub id: AtomicPartId,
    /// Index into [`DESIGN_TYPES`].
    pub kind: u8,
    /// Indexed attribute (index 2 of Table 1). Must only be changed through
    /// [`crate::Sb7Tx::set_atomic_build_date`] so the index stays coherent.
    pub build_date: i32,
    /// Non-indexed attribute updated by T2/ST6/ST10/OP9/OP10.
    pub x: i32,
    /// Non-indexed attribute updated together with `x`.
    pub y: i32,
    /// Outgoing connections (immutable once built).
    pub to: Vec<Connection>,
    /// The composite part owning this part's graph.
    pub owner: CompositePartId,
}

impl AtomicPart {
    /// The non-indexed update the paper's operations perform: swap `x`/`y`.
    pub fn swap_xy(&mut self) {
        std::mem::swap(&mut self.x, &mut self.y);
    }

    /// The indexed update: nudge the build date within its range
    /// (even dates move down, odd dates move up, as in the Java release).
    pub fn next_build_date(date: i32) -> i32 {
        if date % 2 == 0 {
            date - 1
        } else {
            date + 1
        }
    }
}

/// A document attached to a composite part.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Document {
    pub id: DocumentId,
    /// Indexed attribute (index 4 of Table 1); never changes after build.
    pub title: String,
    /// Free text searched/updated by T4/T5/ST2/ST7.
    pub text: String,
    /// Back link to the owning composite part.
    pub part: CompositePartId,
}

/// A composite part in the design library, shared between base assemblies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompositePart {
    pub id: CompositePartId,
    pub kind: u8,
    pub build_date: i32,
    /// The associated documentation object.
    pub doc: DocumentId,
    /// Entry point of the atomic-part graph.
    pub root_part: AtomicPartId,
    /// All atomic parts of this composite's graph (OO7 keeps this set so
    /// ST1 can pick a random descendant without traversing the graph).
    pub parts: Vec<AtomicPartId>,
    /// Bag of base assemblies using this composite part (the reverse side
    /// of the many-to-many association; duplicates allowed, it is a bag).
    pub used_in: Vec<BaseAssemblyId>,
}

/// A leaf of the assembly tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaseAssembly {
    pub id: BaseAssemblyId,
    pub kind: u8,
    pub build_date: i32,
    /// Parent complex assembly (level 2).
    pub parent: ComplexAssemblyId,
    /// Bag of composite parts this assembly uses (duplicates allowed).
    pub components: Vec<CompositePartId>,
}

/// Children of a complex assembly: complex assemblies above level 2, base
/// assemblies at level 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssemblyChildren {
    Complex(Vec<ComplexAssemblyId>),
    Base(Vec<BaseAssemblyId>),
}

impl AssemblyChildren {
    /// Number of children.
    pub fn len(&self) -> usize {
        match self {
            AssemblyChildren::Complex(v) => v.len(),
            AssemblyChildren::Base(v) => v.len(),
        }
    }

    /// True when there are no children (a transient state during structure
    /// modifications; `validate` rejects it in quiescent structures).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An internal node of the assembly tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComplexAssembly {
    pub id: ComplexAssemblyId,
    pub kind: u8,
    pub build_date: i32,
    /// `None` only for the root complex assembly.
    pub parent: Option<ComplexAssemblyId>,
    /// Level in the tree; base assemblies are level 1, so complex
    /// assemblies occupy `2..=assembly_levels`.
    pub level: u8,
    pub children: AssemblyChildren,
}

/// The module manual: a single large text object. Updating it under an
/// object-granularity STM copies the whole text — one of the two
/// pathologies §5 of the paper diagnoses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manual {
    pub title: String,
    pub text: String,
}

/// The single module (the paper confines STMBench7 to one). Immutable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Module {
    pub id: u32,
    pub kind: u8,
    pub build_date: i32,
    /// Root of the assembly tree; set once by the builder.
    pub design_root: ComplexAssemblyId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_xy_swaps() {
        let mut p = AtomicPart {
            id: AtomicPartId(1),
            kind: 0,
            build_date: 1000,
            x: 3,
            y: 9,
            to: vec![],
            owner: CompositePartId(1),
        };
        p.swap_xy();
        assert_eq!((p.x, p.y), (9, 3));
        p.swap_xy();
        assert_eq!((p.x, p.y), (3, 9));
    }

    #[test]
    fn next_build_date_toggles_and_stays_close() {
        assert_eq!(AtomicPart::next_build_date(1000), 999);
        assert_eq!(AtomicPart::next_build_date(999), 1000);
        // Toggling twice returns to the start.
        let d = 1990;
        assert_eq!(
            AtomicPart::next_build_date(AtomicPart::next_build_date(d)),
            d
        );
    }

    #[test]
    fn children_len_and_empty() {
        let c = AssemblyChildren::Complex(vec![ComplexAssemblyId(1)]);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        let b = AssemblyChildren::Base(vec![]);
        assert!(b.is_empty());
    }
}
