//! A B+tree used for all six STMBench7 indexes (Table 1).
//!
//! The paper's Java implementation uses `java.util` maps; we build the
//! index structure ourselves so the STM backends can wrap it either as one
//! monolithic transactional object (the configuration whose cost §5 of the
//! paper diagnoses — every insert copies the whole index) or sharded into
//! small cells (the remedy §5 sketches). Values live in the leaves;
//! internal nodes hold routing separators which may outlive the keys they
//! were copied from.
//!
//! Duplicate-key indexes (the atomic-part build-date index) are expressed
//! with composite `(date, id)` keys and range scans.

/// Maximum keys per node; nodes split above this.
const MAX_KEYS: usize = 15;
/// Minimum keys per non-root node; nodes rebalance below this.
const MIN_KEYS: usize = MAX_KEYS / 2;

#[derive(Clone, Debug)]
enum Node<K, V> {
    Leaf {
        entries: Vec<(K, V)>,
    },
    Internal {
        keys: Vec<K>,
        children: Vec<Node<K, V>>,
    },
}

impl<K: Ord + Clone, V: Clone> Node<K, V> {
    fn overflowed(&self) -> bool {
        match self {
            Node::Leaf { entries } => entries.len() > MAX_KEYS,
            Node::Internal { keys, .. } => keys.len() > MAX_KEYS,
        }
    }

    fn underflowed(&self) -> bool {
        match self {
            Node::Leaf { entries } => entries.len() < MIN_KEYS,
            Node::Internal { keys, .. } => keys.len() < MIN_KEYS,
        }
    }

    fn route(keys: &[K], k: &K) -> usize {
        keys.partition_point(|sep| sep <= k)
    }

    fn get(&self, k: &K) -> Option<&V> {
        match self {
            Node::Leaf { entries } => entries
                .binary_search_by(|(ek, _)| ek.cmp(k))
                .ok()
                .map(|i| &entries[i].1),
            Node::Internal { keys, children } => children[Self::route(keys, k)].get(k),
        }
    }

    /// Inserts and returns the previous value if the key existed.
    fn insert(&mut self, k: K, v: V) -> Option<V> {
        match self {
            Node::Leaf { entries } => match entries.binary_search_by(|(ek, _)| ek.cmp(&k)) {
                Ok(i) => Some(std::mem::replace(&mut entries[i].1, v)),
                Err(i) => {
                    entries.insert(i, (k, v));
                    None
                }
            },
            Node::Internal { keys, children } => {
                let i = Self::route(keys, &k);
                let old = children[i].insert(k, v);
                if children[i].overflowed() {
                    let (sep, right) = children[i].split();
                    keys.insert(i, sep);
                    children.insert(i + 1, right);
                }
                old
            }
        }
    }

    /// Splits an overflowed node, returning the separator and right half.
    fn split(&mut self) -> (K, Node<K, V>) {
        match self {
            Node::Leaf { entries } => {
                let right = entries.split_off(entries.len() / 2);
                let sep = right[0].0.clone();
                (sep, Node::Leaf { entries: right })
            }
            Node::Internal { keys, children } => {
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid + 1);
                let sep = keys.pop().expect("split of non-empty internal node");
                let right_children = children.split_off(mid + 1);
                (
                    sep,
                    Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    },
                )
            }
        }
    }

    fn remove(&mut self, k: &K) -> Option<V> {
        match self {
            Node::Leaf { entries } => entries
                .binary_search_by(|(ek, _)| ek.cmp(k))
                .ok()
                .map(|i| entries.remove(i).1),
            Node::Internal { keys, children } => {
                let i = Self::route(keys, k);
                let removed = children[i].remove(k);
                if removed.is_some() && children[i].underflowed() {
                    Self::rebalance(keys, children, i);
                }
                removed
            }
        }
    }

    /// Restores the size invariant of `children[i]` by borrowing from or
    /// merging with an adjacent sibling.
    fn rebalance(keys: &mut Vec<K>, children: &mut Vec<Node<K, V>>, i: usize) {
        // Try borrowing from the left sibling.
        if i > 0 && children[i - 1].can_lend() {
            let (left, rest) = children.split_at_mut(i);
            let left = &mut left[i - 1];
            let child = &mut rest[0];
            match (left, child) {
                (Node::Leaf { entries: le }, Node::Leaf { entries: ce }) => {
                    let moved = le.pop().expect("lender is non-empty");
                    keys[i - 1] = moved.0.clone();
                    ce.insert(0, moved);
                }
                (
                    Node::Internal {
                        keys: lk,
                        children: lc,
                    },
                    Node::Internal {
                        keys: ck,
                        children: cc,
                    },
                ) => {
                    let sep = std::mem::replace(&mut keys[i - 1], lk.pop().expect("lender"));
                    ck.insert(0, sep);
                    cc.insert(0, lc.pop().expect("lender"));
                }
                _ => unreachable!("siblings are at the same depth"),
            }
            return;
        }
        // Try borrowing from the right sibling.
        if i + 1 < children.len() && children[i + 1].can_lend() {
            let (rest, right) = children.split_at_mut(i + 1);
            let child = &mut rest[i];
            let right = &mut right[0];
            match (child, right) {
                (Node::Leaf { entries: ce }, Node::Leaf { entries: re }) => {
                    ce.push(re.remove(0));
                    keys[i] = re[0].0.clone();
                }
                (
                    Node::Internal {
                        keys: ck,
                        children: cc,
                    },
                    Node::Internal {
                        keys: rk,
                        children: rc,
                    },
                ) => {
                    let sep = std::mem::replace(&mut keys[i], rk.remove(0));
                    ck.push(sep);
                    cc.push(rc.remove(0));
                }
                _ => unreachable!("siblings are at the same depth"),
            }
            return;
        }
        // Merge with a sibling (the one to the left if it exists).
        let (li, ri) = if i > 0 { (i - 1, i) } else { (i, i + 1) };
        let right = children.remove(ri);
        let sep = keys.remove(li);
        match (&mut children[li], right) {
            (Node::Leaf { entries: le }, Node::Leaf { entries: re }) => {
                le.extend(re);
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                lk.push(sep);
                lk.extend(rk);
                lc.extend(rc);
            }
            _ => unreachable!("siblings are at the same depth"),
        }
    }

    fn can_lend(&self) -> bool {
        match self {
            Node::Leaf { entries } => entries.len() > MIN_KEYS,
            Node::Internal { keys, .. } => keys.len() > MIN_KEYS,
        }
    }

    fn for_each(&self, f: &mut impl FnMut(&K, &V)) {
        match self {
            Node::Leaf { entries } => {
                for (k, v) in entries {
                    f(k, v);
                }
            }
            Node::Internal { children, .. } => {
                for c in children {
                    c.for_each(f);
                }
            }
        }
    }

    fn for_range(&self, lo: &K, hi: &K, f: &mut impl FnMut(&K, &V)) {
        match self {
            Node::Leaf { entries } => {
                let start = entries.partition_point(|(k, _)| k < lo);
                for (k, v) in &entries[start..] {
                    if k > hi {
                        break;
                    }
                    f(k, v);
                }
            }
            Node::Internal { keys, children } => {
                let first = Self::route(keys, lo);
                let last = Self::route(keys, hi);
                for c in &children[first..=last] {
                    c.for_range(lo, hi, f);
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { children, .. } => 1 + children[0].depth(),
        }
    }

    fn collect<'a>(&'a self, out: &mut Vec<(&'a K, &'a V)>) {
        match self {
            Node::Leaf { entries } => out.extend(entries.iter().map(|(k, v)| (k, v))),
            Node::Internal { children, .. } => {
                for c in children {
                    c.collect(out);
                }
            }
        }
    }

    fn collect_range<'a>(&'a self, lo: &K, hi: &K, out: &mut Vec<(&'a K, &'a V)>) {
        match self {
            Node::Leaf { entries } => {
                let start = entries.partition_point(|(k, _)| k < lo);
                for (k, v) in &entries[start..] {
                    if k > hi {
                        break;
                    }
                    out.push((k, v));
                }
            }
            Node::Internal { keys, children } => {
                let first = Self::route(keys, lo);
                let last = Self::route(keys, hi);
                for c in &children[first..=last] {
                    c.collect_range(lo, hi, out);
                }
            }
        }
    }
}

/// An ordered map with B+tree structure.
///
/// # Examples
///
/// ```
/// use stmbench7_data::btree::BTree;
///
/// let mut t = BTree::new();
/// for i in 0..100u32 {
///     t.insert(i, i * 2);
/// }
/// assert_eq!(t.get(&40), Some(&80));
/// assert_eq!(t.remove(&40), Some(80));
/// assert_eq!(t.len(), 99);
/// let mut seen = Vec::new();
/// t.for_range(&10, &12, |k, _| seen.push(*k));
/// assert_eq!(seen, vec![10, 11, 12]);
/// ```
#[derive(Clone, Debug)]
pub struct BTree<K, V> {
    root: Node<K, V>,
    len: usize,
}

impl<K: Ord + Clone, V: Clone> BTree<K, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        BTree {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up a key.
    pub fn get(&self, k: &K) -> Option<&V> {
        self.root.get(k)
    }

    /// True when the key is present.
    pub fn contains(&self, k: &K) -> bool {
        self.get(k).is_some()
    }

    /// Inserts a key/value pair, returning the previous value if any.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        let old = self.root.insert(k, v);
        if old.is_none() {
            self.len += 1;
        }
        if self.root.overflowed() {
            let (sep, right) = self.root.split();
            let left = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    entries: Vec::new(),
                },
            );
            self.root = Node::Internal {
                keys: vec![sep],
                children: vec![left, right],
            };
        }
        old
    }

    /// Removes a key, returning its value if it was present.
    pub fn remove(&mut self, k: &K) -> Option<V> {
        let removed = self.root.remove(k);
        if removed.is_some() {
            self.len -= 1;
        }
        if let Node::Internal { keys, children } = &mut self.root {
            if keys.is_empty() {
                self.root = children.pop().expect("internal root has a child");
            }
        }
        removed
    }

    /// In-order visit of every entry.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        self.root.for_each(&mut f);
    }

    /// In-order visit of entries with keys in `[lo, hi]` (inclusive).
    pub fn for_range(&self, lo: &K, hi: &K, mut f: impl FnMut(&K, &V)) {
        if lo > hi {
            return;
        }
        self.root.for_range(lo, hi, &mut f);
    }

    /// All entries in key order, as borrows — the merge input of
    /// [`crate::sharded::ShardedIndex`].
    pub fn entries(&self) -> Vec<(&K, &V)> {
        let mut out = Vec::with_capacity(self.len);
        self.root.collect(&mut out);
        out
    }

    /// Entries with keys in `[lo, hi]` (inclusive), in key order, as
    /// borrows.
    pub fn entries_in_range(&self, lo: &K, hi: &K) -> Vec<(&K, &V)> {
        let mut out = Vec::new();
        if lo <= hi {
            self.root.collect_range(lo, hi, &mut out);
        }
        out
    }

    /// Tree depth (for diagnostics and tests).
    pub fn depth(&self) -> usize {
        self.root.depth()
    }
}

impl<K: Ord + Clone, V: Clone> Default for BTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_tree() {
        let t: BTree<u32, u32> = BTree::new();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
    }

    #[test]
    fn insert_get_replace() {
        let mut t = BTree::new();
        assert_eq!(t.insert(1u32, "a"), None);
        assert_eq!(t.insert(1, "b"), Some("a"));
        assert_eq!(t.get(&1), Some(&"b"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_inserts_then_ordered_iteration() {
        let mut t = BTree::new();
        // Insert in a scrambled order.
        for i in 0..1000u32 {
            t.insert(i.wrapping_mul(2_654_435_761) % 1000, ());
        }
        let mut keys = Vec::new();
        t.for_each(|k, _| keys.push(*k));
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
        assert!(t.depth() > 1, "1000 keys must split the root");
    }

    #[test]
    fn remove_all_in_random_order() {
        let mut t = BTree::new();
        let n = 500u32;
        for i in 0..n {
            t.insert(i, i);
        }
        let mut order: Vec<u32> = (0..n).collect();
        // Deterministic shuffle.
        for i in (1..order.len()).rev() {
            let j = (i * 7919 + 13) % (i + 1);
            order.swap(i, j);
        }
        for (removed, k) in order.iter().enumerate() {
            assert_eq!(t.remove(k), Some(*k));
            assert_eq!(t.len(), n as usize - removed - 1);
        }
        assert!(t.is_empty());
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn range_scan_inclusive_bounds() {
        let mut t = BTree::new();
        for i in (0..200u32).step_by(2) {
            t.insert(i, ());
        }
        let mut seen = Vec::new();
        t.for_range(&50, &60, |k, _| seen.push(*k));
        assert_eq!(seen, vec![50, 52, 54, 56, 58, 60]);
        // Bounds not present as keys.
        seen.clear();
        t.for_range(&51, &59, |k, _| seen.push(*k));
        assert_eq!(seen, vec![52, 54, 56, 58]);
        // Inverted range is empty.
        seen.clear();
        t.for_range(&60, &50, |k, _| seen.push(*k));
        assert!(seen.is_empty());
    }

    #[test]
    fn composite_keys_model_duplicate_dates() {
        // The build-date index stores (date, id) pairs.
        let mut t = BTree::new();
        for id in 0..50u32 {
            t.insert((1990 + (id % 10) as i32, id), ());
        }
        let mut hits = Vec::new();
        t.for_range(&(1992, 0), &(1992, u32::MAX), |k, _| hits.push(k.1));
        assert_eq!(hits, vec![2, 12, 22, 32, 42]);
    }

    #[test]
    fn string_keys() {
        let mut t = BTree::new();
        for i in 0..100u32 {
            t.insert(format!("Composite Part #{i}"), i);
        }
        assert_eq!(t.get(&"Composite Part #42".to_string()), Some(&42));
        assert_eq!(t.remove(&"Composite Part #42".to_string()), Some(42));
        assert_eq!(t.get(&"Composite Part #42".to_string()), None);
    }

    proptest! {
        #[test]
        fn behaves_like_btreemap(ops in proptest::collection::vec(
            (0u8..4, 0u16..300), 1..400,
        )) {
            let mut ours: BTree<u16, u16> = BTree::new();
            let mut model: BTreeMap<u16, u16> = BTreeMap::new();
            for (op, k) in ops {
                match op {
                    0 | 1 => {
                        prop_assert_eq!(ours.insert(k, k.wrapping_mul(3)),
                                        model.insert(k, k.wrapping_mul(3)));
                    }
                    2 => {
                        prop_assert_eq!(ours.remove(&k), model.remove(&k));
                    }
                    _ => {
                        prop_assert_eq!(ours.get(&k), model.get(&k));
                    }
                }
                prop_assert_eq!(ours.len(), model.len());
            }
            // Final full iteration must match the model exactly.
            let mut flat = Vec::new();
            ours.for_each(|k, v| flat.push((*k, *v)));
            let expect: Vec<(u16, u16)> = model.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(flat, expect);
        }

        #[test]
        fn range_matches_btreemap(
            keys in proptest::collection::btree_set(0u16..500, 0..200),
            lo in 0u16..500,
            span in 0u16..100,
        ) {
            let hi = lo.saturating_add(span);
            let mut ours = BTree::new();
            let mut model = BTreeMap::new();
            for k in keys {
                ours.insert(k, ());
                model.insert(k, ());
            }
            let mut got = Vec::new();
            ours.for_range(&lo, &hi, |k, _| got.push(*k));
            let expect: Vec<u16> = model.range(lo..=hi).map(|(k, _)| *k).collect();
            prop_assert_eq!(got, expect);
        }
    }
}
