//! Structure-size parameters and presets.
//!
//! The paper builds on the "medium" OO7 configuration: an assembly tree of
//! seven levels (base assemblies at level 1, the root complex assembly at
//! level 7) with fan-out three, three composite parts per base assembly, a
//! design library of 500 composite parts, and graphs of atomic parts with
//! three connections per part. Dates are drawn from `[1000, 1999]` as in
//! OO7, which makes OP2's range `[1990, 1999]` select ~1% of atomic parts
//! and OP3's `[1900, 1999]` ~10%.
//!
//! Presets scale the *sizes* while preserving every structural ratio, so
//! traversal shapes and contention footprints are preserved (see DESIGN.md,
//! "Substitutions").

/// All tunables that determine the initial structure and its growth bounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructureParams {
    /// Number of assembly levels; base assemblies sit at level 1, the root
    /// complex assembly at `assembly_levels`. The paper uses 7.
    pub assembly_levels: u8,
    /// Children per complex assembly (3 in the paper).
    pub assembly_fanout: usize,
    /// Composite parts linked from each base assembly (3 in the paper).
    pub comps_per_base: usize,
    /// Initial size of the composite-part design library (500 in the paper).
    pub library_size: usize,
    /// Atomic parts in each composite part's graph.
    pub atomics_per_comp: usize,
    /// Outgoing connections per atomic part (3 in the paper: a ring edge
    /// plus random extras, guaranteeing the graph is reachable from its
    /// root part).
    pub conns_per_atomic: usize,
    /// Characters of generated text per document.
    pub doc_size: usize,
    /// Characters of generated text in the manual.
    pub manual_size: usize,
    /// Chunk count used by the sharded-STM manual representation
    /// (the §5 "split the manual" remedy).
    pub manual_chunks: usize,
    /// Inclusive build-date range for all objects.
    pub min_date: i32,
    /// See [`StructureParams::min_date`].
    pub max_date: i32,
    /// Headroom factor (percent) for id pools over the initial population;
    /// structure modifications fail once a pool is exhausted.
    pub growth_percent: u32,
    /// Number of shards each Table 1 index is split into (the CLI's
    /// `--shards` axis; see [`crate::sharded`]). `0` — the preset
    /// default — means *unset*: indexes are monolithic
    /// ([`StructureParams::effective_shards`] = 1) and the sharded STM
    /// granularity keeps its own historical bucket sizing. Any explicit
    /// value (including 1) is exact for every backend, so `--shards 1`
    /// really measures one bucket. Bounded by
    /// [`crate::sharded::MAX_SHARDS`].
    pub index_shards: usize,
}

impl StructureParams {
    /// The sizing spelled out in the paper's §2.2 text: 500 composite parts
    /// each with a graph of 100 000 atomic parts (~50 M objects, matching
    /// the "more than 50 millions of objects" read sets of §5).
    ///
    /// This preset exists for fidelity; it needs several GiB of memory and
    /// is not used by the test suite.
    pub fn paper_full() -> Self {
        Self::base(7, 3, 3, 500, 100_000, 3, 20_000, 1 << 20)
    }

    /// The sizing of the authors' released Java implementation: 500
    /// composite parts × 200 atomic parts = 100 000 atomic parts. This is
    /// the default for the CLI.
    pub fn standard() -> Self {
        Self::base(7, 3, 3, 500, 200, 3, 2_000, 1 << 20)
    }

    /// A laptop/CI-scale structure preserving all ratios
    /// (81 base assemblies, 2 400 atomic parts).
    pub fn small() -> Self {
        Self::base(5, 3, 3, 60, 40, 3, 400, 1 << 16)
    }

    /// A unit-test-scale structure (9 base assemblies, 120 atomic parts).
    pub fn tiny() -> Self {
        Self::base(3, 3, 2, 12, 10, 3, 120, 1 << 12)
    }

    /// Parses a preset name (`tiny`, `small`, `standard`/`medium-oo7`,
    /// `paper-full`/`paper_full`) — the `-s`/`--preset` vocabulary of the
    /// CLI, the sweep binaries and the lab harness.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "tiny" => StructureParams::tiny(),
            "small" => StructureParams::small(),
            "standard" | "medium-oo7" => StructureParams::standard(),
            "paper-full" | "paper_full" => StructureParams::paper_full(),
            _ => return None,
        })
    }

    /// The preset name whose sizing equals `self`, if any. The shard
    /// count is a contention axis, not a sizing axis, so it is ignored:
    /// `small` at `--shards 8` is still the `small` preset.
    pub fn preset_name(&self) -> Option<&'static str> {
        ["tiny", "small", "standard", "paper-full"]
            .into_iter()
            .find(|name| {
                Self::parse(name).map(|p| p.with_shards(self.index_shards)) == Some(self.clone())
            })
    }

    #[allow(clippy::too_many_arguments)] // Private constructor mirroring the preset table's columns.
    fn base(
        levels: u8,
        fanout: usize,
        comps_per_base: usize,
        library: usize,
        atomics: usize,
        conns: usize,
        doc: usize,
        manual: usize,
    ) -> Self {
        StructureParams {
            assembly_levels: levels,
            assembly_fanout: fanout,
            comps_per_base,
            library_size: library,
            atomics_per_comp: atomics,
            conns_per_atomic: conns,
            doc_size: doc,
            manual_size: manual,
            manual_chunks: 64,
            min_date: 1000,
            max_date: 1999,
            growth_percent: 30,
            index_shards: 0,
        }
    }

    /// This preset with an explicit index shard count (the `--shards`
    /// override; sharding never changes results, only contention).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.index_shards = shards;
        self
    }

    /// The shard count the in-memory indexes are actually built with:
    /// the explicit `--shards` value, or 1 (monolithic) when unset.
    pub fn effective_shards(&self) -> usize {
        self.index_shards.max(1)
    }

    /// Initial number of base assemblies: `fanout^(levels-1)`.
    pub fn initial_bases(&self) -> usize {
        self.assembly_fanout
            .pow(u32::from(self.assembly_levels) - 1)
    }

    /// Initial number of complex assemblies:
    /// `(fanout^(levels-1) - 1) / (fanout - 1)` for fan-out > 1.
    pub fn initial_complexes(&self) -> usize {
        let mut total = 0;
        let mut width = 1;
        for _ in 1..self.assembly_levels {
            total += width;
            width *= self.assembly_fanout;
        }
        total
    }

    /// Initial number of atomic parts across the whole library.
    pub fn initial_atomics(&self) -> usize {
        self.library_size * self.atomics_per_comp
    }

    fn with_growth(&self, n: usize) -> u32 {
        let n = n as u64;
        let grown = n + n * u64::from(self.growth_percent) / 100;
        u32::try_from(grown.max(n + 1)).expect("pool capacity exceeds u32")
    }

    /// Pool bound for composite parts (and documents, 1:1).
    pub fn max_comps(&self) -> u32 {
        self.with_growth(self.library_size)
    }

    /// Pool bound for atomic parts.
    pub fn max_atomics(&self) -> u32 {
        self.with_growth(self.initial_atomics())
    }

    /// Pool bound for base assemblies.
    pub fn max_bases(&self) -> u32 {
        self.with_growth(self.initial_bases())
    }

    /// Pool bound for complex assemblies.
    pub fn max_complexes(&self) -> u32 {
        self.with_growth(self.initial_complexes())
    }

    /// Validates internal consistency (levels ≥ 2, fan-out ≥ 1, non-empty
    /// library and graphs, sane date range).
    pub fn check(&self) -> Result<(), String> {
        if self.assembly_levels < 2 {
            return Err("assembly_levels must be ≥ 2 (a root and base assemblies)".into());
        }
        if self.assembly_fanout == 0 || self.comps_per_base == 0 {
            return Err("fanout and comps_per_base must be ≥ 1".into());
        }
        if self.library_size == 0 || self.atomics_per_comp == 0 {
            return Err("library_size and atomics_per_comp must be ≥ 1".into());
        }
        if self.min_date >= self.max_date {
            return Err("min_date must be < max_date".into());
        }
        if self.manual_chunks == 0 || self.manual_size == 0 || self.doc_size == 0 {
            return Err("text sizes and manual_chunks must be ≥ 1".into());
        }
        if self.index_shards > crate::sharded::MAX_SHARDS {
            return Err(format!(
                "index_shards must be in 0..={} (0 = unset), got {}",
                crate::sharded::MAX_SHARDS,
                self.index_shards
            ));
        }
        Ok(())
    }

    /// The "young" date range `[1990, 1999]` used by OP2.
    pub fn young_range(&self) -> (i32, i32) {
        (self.max_date - 9, self.max_date)
    }

    /// The wider date range `[1900, 1999]` used by OP3.
    pub fn old_range(&self) -> (i32, i32) {
        (self.max_date - 99, self.max_date)
    }
}

impl Default for StructureParams {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_match_section_2_2() {
        let p = StructureParams::paper_full();
        // Six levels of complex assemblies with three children each.
        assert_eq!(p.initial_bases(), 729);
        assert_eq!(p.initial_complexes(), 364);
        assert_eq!(p.library_size, 500);
        // 500 graphs of 100 000 atomic parts each — 50 M objects.
        assert_eq!(p.initial_atomics(), 50_000_000);
    }

    #[test]
    fn standard_matches_java_release_sizing() {
        let p = StructureParams::standard();
        assert_eq!(p.initial_atomics(), 100_000);
        assert_eq!(p.initial_bases(), 729);
    }

    #[test]
    fn presets_are_internally_consistent() {
        for p in [
            StructureParams::paper_full(),
            StructureParams::standard(),
            StructureParams::small(),
            StructureParams::tiny(),
        ] {
            p.check().unwrap();
            assert!(p.max_bases() as usize > p.initial_bases());
            assert!(p.max_complexes() as usize > p.initial_complexes());
            assert!(p.max_comps() as usize > p.library_size);
            assert!(p.max_atomics() as usize > p.initial_atomics());
        }
    }

    #[test]
    fn date_ranges_match_oo7() {
        let p = StructureParams::standard();
        assert_eq!(p.young_range(), (1990, 1999));
        assert_eq!(p.old_range(), (1900, 1999));
    }

    #[test]
    fn shard_axis_parses_and_keeps_preset_identity() {
        let p = StructureParams::small().with_shards(8);
        p.check().unwrap();
        assert_eq!(p.index_shards, 8);
        assert_eq!(p.effective_shards(), 8);
        assert_eq!(p.preset_name(), Some("small"));
        // Both spellings of the paper preset parse to the same sizing.
        assert_eq!(
            StructureParams::parse("paper_full"),
            StructureParams::parse("paper-full")
        );
        // Unset (0) builds monolithic indexes; explicit values are exact.
        assert_eq!(StructureParams::tiny().effective_shards(), 1);
        assert_eq!(StructureParams::tiny().with_shards(1).effective_shards(), 1);
        assert!(StructureParams::tiny().with_shards(0).check().is_ok());
        assert!(StructureParams::tiny().with_shards(65).check().is_err());
        assert!(StructureParams::tiny().with_shards(64).check().is_ok());
    }

    #[test]
    fn check_rejects_degenerate_configs() {
        let mut p = StructureParams::tiny();
        p.assembly_levels = 1;
        assert!(p.check().is_err());
        let mut p = StructureParams::tiny();
        p.min_date = p.max_date;
        assert!(p.check().is_err());
        let mut p = StructureParams::tiny();
        p.library_size = 0;
        assert!(p.check().is_err());
    }
}
