//! The plain, synchronization-free workspace and its lock groups.
//!
//! Data is partitioned exactly along the paper's medium-grained lock
//! boundaries (Figure 5): one group per assembly level, one for all
//! composite parts, one for all atomic parts, one for all documents, one
//! for the manual, plus the structure-modification state (id pools and the
//! complex-assembly id index) that only gate-exclusive operations mutate.
//! Lock-based backends wrap these groups in read-write locks; the
//! [`DirectTx`] defined here accesses them directly and backs both the
//! sequential baseline and the coarse-grained strategy.

use crate::access::{PoolKind, Sb7Tx, TxErr, TxR};
use crate::ids::{
    AtomicPartId, BaseAssemblyId, ComplexAssemblyId, CompositePartId, DocumentId, IdPool,
};
use crate::objects::{
    AtomicPart, BaseAssembly, ComplexAssembly, CompositePart, Document, Manual, Module,
};
use crate::params::StructureParams;
use crate::sharded::ShardedIndex;
use crate::text;

/// A dense slot store keyed directly by raw object id.
///
/// Id pools bound the largest id that can ever exist, so a dense vector is
/// both the fastest and the simplest representation.
#[derive(Clone, Debug)]
pub struct Store<T> {
    slots: Vec<Option<T>>,
    live: usize,
}

impl<T> Store<T> {
    /// Creates a store able to hold raw ids `1..=max_raw`.
    pub fn new(max_raw: u32) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(max_raw as usize + 1, || None);
        Store { slots, live: 0 }
    }

    /// Returns the object with the given raw id.
    pub fn get(&self, raw: u32) -> Option<&T> {
        self.slots.get(raw as usize).and_then(|s| s.as_ref())
    }

    /// Returns the object mutably.
    pub fn get_mut(&mut self, raw: u32) -> Option<&mut T> {
        self.slots.get_mut(raw as usize).and_then(|s| s.as_mut())
    }

    /// Inserts an object at a fresh slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied or out of range — ids come from
    /// bounded pools, so either indicates a backend bug.
    pub fn insert(&mut self, raw: u32, value: T) {
        let slot = self
            .slots
            .get_mut(raw as usize)
            .unwrap_or_else(|| panic!("store: raw id {raw} out of range"));
        assert!(slot.is_none(), "store: slot {raw} already occupied");
        *slot = Some(value);
        self.live += 1;
    }

    /// Removes and returns the object at `raw`.
    pub fn remove(&mut self, raw: u32) -> Option<T> {
        let removed = self.slots.get_mut(raw as usize).and_then(|s| s.take());
        if removed.is_some() {
            self.live -= 1;
        }
        removed
    }

    /// Number of live objects.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Iterates `(raw_id, object)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|t| (i as u32, t)))
    }

    /// Consumes the store, yielding owned `(raw_id, object)` pairs in id
    /// order — lets backends repartition a workspace without cloning
    /// every object (50 M atomic parts at paper scale).
    pub fn into_entries(self) -> impl Iterator<Item = (u32, T)> {
        self.slots
            .into_iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|t| (i as u32, t)))
    }
}

/// Group 1 of Figure 5: base assemblies (assembly level 1) and their id
/// index (index 5 of Table 1).
#[derive(Clone, Debug)]
pub struct BaseGroup {
    pub store: Store<BaseAssembly>,
    pub by_id: ShardedIndex<u32, ()>,
}

impl BaseGroup {
    fn new(max_raw: u32, shards: usize) -> Self {
        BaseGroup {
            store: Store::new(max_raw),
            by_id: ShardedIndex::new(shards),
        }
    }

    /// Inserts a freshly created base assembly.
    pub fn create(&mut self, b: BaseAssembly) {
        self.by_id.insert(b.id.raw(), ());
        self.store.insert(b.id.raw(), b);
    }

    /// Removes a base assembly and its index entry.
    pub fn delete(&mut self, raw: u32) -> Option<BaseAssembly> {
        let b = self.store.remove(raw)?;
        self.by_id.remove(&raw);
        Some(b)
    }
}

/// One complex-assembly level (levels 2..=7 of Figure 5). Lookup by id
/// goes through the shared complex-assembly index in [`SmState`].
#[derive(Clone, Debug)]
pub struct ComplexLevelGroup {
    pub store: Store<ComplexAssembly>,
}

/// The composite-part group: stores, bags and index 3.
#[derive(Clone, Debug)]
pub struct CompositeGroup {
    pub store: Store<CompositePart>,
    pub by_id: ShardedIndex<u32, ()>,
}

impl CompositeGroup {
    fn new(max_raw: u32, shards: usize) -> Self {
        CompositeGroup {
            store: Store::new(max_raw),
            by_id: ShardedIndex::new(shards),
        }
    }

    /// Inserts a freshly created composite part.
    pub fn create(&mut self, c: CompositePart) {
        self.by_id.insert(c.id.raw(), ());
        self.store.insert(c.id.raw(), c);
    }

    /// Removes a composite part and its index entry.
    pub fn delete(&mut self, raw: u32) -> Option<CompositePart> {
        let c = self.store.remove(raw)?;
        self.by_id.remove(&raw);
        Some(c)
    }
}

/// The atomic-part group: store plus indexes 1 (id) and 2 (build date).
#[derive(Clone, Debug)]
pub struct AtomicGroup {
    pub store: Store<AtomicPart>,
    pub by_id: ShardedIndex<u32, ()>,
    /// Duplicate dates are modeled with composite `(date, id)` keys;
    /// entries route by the *id* component (see [`crate::sharded`]), so
    /// a part's date entry lives in its own shard.
    pub by_date: ShardedIndex<(i32, u32), ()>,
}

impl AtomicGroup {
    /// Creates an empty group with `shards`-way sharded indexes.
    pub fn new(max_raw: u32, shards: usize) -> Self {
        AtomicGroup {
            store: Store::new(max_raw),
            by_id: ShardedIndex::new(shards),
            by_date: ShardedIndex::new(shards),
        }
    }

    /// Inserts a freshly created atomic part into the store and both
    /// indexes.
    pub fn create(&mut self, p: AtomicPart) {
        self.by_id.insert(p.id.raw(), ());
        self.by_date.insert((p.build_date, p.id.raw()), ());
        self.store.insert(p.id.raw(), p);
    }

    /// Removes an atomic part from the store and both indexes.
    pub fn delete(&mut self, raw: u32) -> Option<AtomicPart> {
        let p = self.store.remove(raw)?;
        self.by_id.remove(&raw);
        self.by_date.remove(&(p.build_date, raw));
        Some(p)
    }

    /// Changes a part's build date, keeping index 2 coherent.
    pub fn set_date(&mut self, raw: u32, date: i32) -> bool {
        let Some(p) = self.store.get_mut(raw) else {
            return false;
        };
        let old = p.build_date;
        p.build_date = date;
        self.by_date.remove(&(old, raw));
        self.by_date.insert((date, raw), ());
        true
    }

    /// Ids of parts with build date in `[lo, hi]`, in index order.
    pub fn in_date_range(&self, lo: i32, hi: i32) -> Vec<AtomicPartId> {
        let mut out = Vec::new();
        self.by_date.for_range(&(lo, 0), &(hi, u32::MAX), |k, _| {
            out.push(AtomicPartId(k.1))
        });
        out
    }
}

/// The document group: store plus the title index (index 4).
#[derive(Clone, Debug)]
pub struct DocGroup {
    pub store: Store<Document>,
    pub by_title: ShardedIndex<String, u32>,
}

impl DocGroup {
    fn new(max_raw: u32, shards: usize) -> Self {
        DocGroup {
            store: Store::new(max_raw),
            by_title: ShardedIndex::new(shards),
        }
    }

    /// Inserts a freshly created document.
    pub fn create(&mut self, d: Document) {
        self.by_title.insert(d.title.clone(), d.id.raw());
        self.store.insert(d.id.raw(), d);
    }

    /// Removes a document and its title-index entry.
    pub fn delete(&mut self, raw: u32) -> Option<Document> {
        let d = self.store.remove(raw)?;
        self.by_title.remove(&d.title);
        Some(d)
    }
}

/// All five id pools. Only touched during the build and by SM operations
/// (which hold the gate exclusively).
#[derive(Clone, Debug)]
pub struct Pools {
    pub atomic: IdPool,
    pub composite: IdPool,
    pub document: IdPool,
    pub base: IdPool,
    pub complex: IdPool,
}

/// State protected by the structure-modification gate: the pools and the
/// complex-assembly id index (index 6), which doubles as the directory
/// mapping a complex assembly's id to its level. Non-SM operations hold
/// the gate in read mode and may therefore read it freely; only SM
/// operations (gate in write mode) mutate it.
#[derive(Clone, Debug)]
pub struct SmState {
    pub pools: Pools,
    /// Complex-assembly raw id → level.
    pub complex_index: ShardedIndex<u32, u8>,
}

/// The entire STMBench7 structure, partitioned along Figure 5's lock
/// groups, with no synchronization of its own.
#[derive(Clone, Debug)]
pub struct Workspace {
    pub params: StructureParams,
    pub module: Module,
    pub manual: Manual,
    pub sm: SmState,
    pub bases: BaseGroup,
    /// Complex levels 2..=assembly_levels; slot `l - 2` holds level `l`.
    pub complexes: Vec<ComplexLevelGroup>,
    pub composites: CompositeGroup,
    pub atomics: AtomicGroup,
    pub documents: DocGroup,
}

impl Workspace {
    /// Creates an empty workspace (module and manual in place, no
    /// assemblies or parts). Use [`crate::builder::build`] to populate it.
    pub fn new(params: StructureParams) -> Self {
        params.check().expect("invalid structure parameters");
        let levels = usize::from(params.assembly_levels);
        let shards = params.effective_shards();
        let manual = Manual {
            title: "Manual for module #1".to_string(),
            text: text::manual_text(1, params.manual_size),
        };
        let module = Module {
            id: 1,
            kind: 0,
            build_date: params.min_date,
            design_root: ComplexAssemblyId(0),
        };
        Workspace {
            module,
            manual,
            sm: SmState {
                pools: Pools {
                    atomic: IdPool::new(params.max_atomics()),
                    composite: IdPool::new(params.max_comps()),
                    document: IdPool::new(params.max_comps()),
                    base: IdPool::new(params.max_bases()),
                    complex: IdPool::new(params.max_complexes()),
                },
                complex_index: ShardedIndex::new(shards),
            },
            bases: BaseGroup::new(params.max_bases(), shards),
            complexes: (2..=levels)
                .map(|_| ComplexLevelGroup {
                    store: Store::new(params.max_complexes()),
                })
                .collect(),
            composites: CompositeGroup::new(params.max_comps(), shards),
            atomics: AtomicGroup::new(params.max_atomics(), shards),
            documents: DocGroup::new(params.max_comps(), shards),
            params,
        }
    }

    /// Builds a fully populated workspace deterministically from a seed.
    pub fn build(params: StructureParams, seed: u64) -> Self {
        let mut ws = Workspace::new(params.clone());
        let mut tx = DirectTx::writing(&mut ws);
        crate::builder::build(&mut tx, &params, seed).expect("direct build cannot abort");
        ws
    }

    /// Group holding complex assemblies of `level` (2-based).
    pub fn complex_level(&self, level: u8) -> &ComplexLevelGroup {
        &self.complexes[usize::from(level) - 2]
    }

    /// Mutable variant of [`Workspace::complex_level`].
    pub fn complex_level_mut(&mut self, level: u8) -> &mut ComplexLevelGroup {
        &mut self.complexes[usize::from(level) - 2]
    }

    /// Looks up a complex assembly across levels via index 6.
    pub fn complex_ref(&self, raw: u32) -> Option<&ComplexAssembly> {
        let level = *self.sm.complex_index.get(&raw)?;
        self.complex_level(level).store.get(raw)
    }
}

/// How a [`DirectTx`] borrows the workspace.
enum WsRef<'a> {
    Read(&'a Workspace),
    Write(&'a mut Workspace),
}

/// Direct (uninstrumented) implementation of [`Sb7Tx`] over a borrowed
/// workspace. The sequential backend always uses the writing form; the
/// coarse-grained backend uses the reading form for operations whose
/// [`crate::AccessSpec`] requests no writes.
pub struct DirectTx<'a> {
    ws: WsRef<'a>,
}

impl<'a> DirectTx<'a> {
    /// A transaction that may read and write.
    pub fn writing(ws: &'a mut Workspace) -> Self {
        DirectTx {
            ws: WsRef::Write(ws),
        }
    }

    /// A read-only transaction; write accessors return
    /// `TxErr::Invariant`.
    pub fn reading(ws: &'a Workspace) -> Self {
        DirectTx {
            ws: WsRef::Read(ws),
        }
    }

    fn ws(&self) -> &Workspace {
        match &self.ws {
            WsRef::Read(w) => w,
            WsRef::Write(w) => w,
        }
    }

    fn ws_mut(&mut self) -> TxR<&mut Workspace> {
        match &mut self.ws {
            WsRef::Read(_) => Err(TxErr::Invariant(
                "write accessor used in a read-only transaction",
            )),
            WsRef::Write(w) => Ok(w),
        }
    }
}

const MISSING: TxErr = TxErr::Invariant("object not found");

impl Sb7Tx for DirectTx<'_> {
    fn module<R>(&mut self, f: impl FnOnce(&Module) -> R) -> TxR<R> {
        Ok(f(&self.ws().module))
    }

    fn manual_text_len(&mut self) -> TxR<usize> {
        Ok(self.ws().manual.text.len())
    }

    fn manual_count_char(&mut self, c: char) -> TxR<usize> {
        Ok(crate::text::count_char(&self.ws().manual.text, c))
    }

    fn manual_first_last_equal(&mut self) -> TxR<bool> {
        Ok(crate::text::first_last_equal(&self.ws().manual.text))
    }

    fn manual_swap_case(&mut self) -> TxR<usize> {
        Ok(crate::text::swap_manual_case(
            &mut self.ws_mut()?.manual.text,
        ))
    }

    fn set_design_root(&mut self, root: ComplexAssemblyId) -> TxR<()> {
        self.ws_mut()?.module.design_root = root;
        Ok(())
    }

    fn atomic<R>(&mut self, id: AtomicPartId, f: impl FnOnce(&AtomicPart) -> R) -> TxR<R> {
        self.ws().atomics.store.get(id.raw()).map(f).ok_or(MISSING)
    }

    fn composite<R>(&mut self, id: CompositePartId, f: impl FnOnce(&CompositePart) -> R) -> TxR<R> {
        self.ws()
            .composites
            .store
            .get(id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn base<R>(&mut self, id: BaseAssemblyId, f: impl FnOnce(&BaseAssembly) -> R) -> TxR<R> {
        self.ws().bases.store.get(id.raw()).map(f).ok_or(MISSING)
    }

    fn complex<R>(
        &mut self,
        id: ComplexAssemblyId,
        f: impl FnOnce(&ComplexAssembly) -> R,
    ) -> TxR<R> {
        self.ws().complex_ref(id.raw()).map(f).ok_or(MISSING)
    }

    fn document<R>(&mut self, id: DocumentId, f: impl FnOnce(&Document) -> R) -> TxR<R> {
        self.ws()
            .documents
            .store
            .get(id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn atomic_mut<R>(&mut self, id: AtomicPartId, f: impl FnOnce(&mut AtomicPart) -> R) -> TxR<R> {
        self.ws_mut()?
            .atomics
            .store
            .get_mut(id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn composite_mut<R>(
        &mut self,
        id: CompositePartId,
        f: impl FnOnce(&mut CompositePart) -> R,
    ) -> TxR<R> {
        self.ws_mut()?
            .composites
            .store
            .get_mut(id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn base_mut<R>(
        &mut self,
        id: BaseAssemblyId,
        f: impl FnOnce(&mut BaseAssembly) -> R,
    ) -> TxR<R> {
        self.ws_mut()?
            .bases
            .store
            .get_mut(id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn complex_mut<R>(
        &mut self,
        id: ComplexAssemblyId,
        f: impl FnOnce(&mut ComplexAssembly) -> R,
    ) -> TxR<R> {
        let ws = self.ws_mut()?;
        let level = *ws.sm.complex_index.get(&id.raw()).ok_or(MISSING)?;
        ws.complex_level_mut(level)
            .store
            .get_mut(id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn document_mut<R>(&mut self, id: DocumentId, f: impl FnOnce(&mut Document) -> R) -> TxR<R> {
        self.ws_mut()?
            .documents
            .store
            .get_mut(id.raw())
            .map(f)
            .ok_or(MISSING)
    }

    fn set_atomic_build_date(&mut self, id: AtomicPartId, date: i32) -> TxR<()> {
        if self.ws_mut()?.atomics.set_date(id.raw(), date) {
            Ok(())
        } else {
            Err(MISSING)
        }
    }

    fn lookup_atomic(&mut self, raw: u32) -> TxR<Option<AtomicPartId>> {
        Ok(self.ws().atomics.by_id.get(&raw).map(|_| AtomicPartId(raw)))
    }

    fn lookup_composite(&mut self, raw: u32) -> TxR<Option<CompositePartId>> {
        Ok(self
            .ws()
            .composites
            .by_id
            .get(&raw)
            .map(|_| CompositePartId(raw)))
    }

    fn lookup_base(&mut self, raw: u32) -> TxR<Option<BaseAssemblyId>> {
        Ok(self.ws().bases.by_id.get(&raw).map(|_| BaseAssemblyId(raw)))
    }

    fn lookup_complex(&mut self, raw: u32) -> TxR<Option<ComplexAssemblyId>> {
        Ok(self
            .ws()
            .sm
            .complex_index
            .get(&raw)
            .map(|_| ComplexAssemblyId(raw)))
    }

    fn lookup_document(&mut self, title: &str) -> TxR<Option<DocumentId>> {
        Ok(self
            .ws()
            .documents
            .by_title
            .get(&title.to_string())
            .map(|raw| DocumentId(*raw)))
    }

    fn atomics_in_date_range(&mut self, lo: i32, hi: i32) -> TxR<Vec<AtomicPartId>> {
        Ok(self.ws().atomics.in_date_range(lo, hi))
    }

    fn all_atomic_ids(&mut self) -> TxR<Vec<AtomicPartId>> {
        let mut out = Vec::with_capacity(self.ws().atomics.store.live());
        self.ws()
            .atomics
            .by_id
            .for_each(|raw, _| out.push(AtomicPartId(*raw)));
        Ok(out)
    }

    fn all_base_ids(&mut self) -> TxR<Vec<BaseAssemblyId>> {
        let mut out = Vec::with_capacity(self.ws().bases.store.live());
        self.ws()
            .bases
            .by_id
            .for_each(|raw, _| out.push(BaseAssemblyId(*raw)));
        Ok(out)
    }

    fn pool_capacity(&mut self, kind: PoolKind) -> TxR<usize> {
        let pools = &self.ws().sm.pools;
        let pool = match kind {
            PoolKind::Atomic => &pools.atomic,
            PoolKind::Composite => &pools.composite,
            PoolKind::Document => &pools.document,
            PoolKind::Base => &pools.base,
            PoolKind::Complex => &pools.complex,
        };
        Ok(pool.capacity() as usize - pool.live())
    }

    fn create_atomic(
        &mut self,
        make: impl FnOnce(AtomicPartId) -> AtomicPart,
    ) -> TxR<Option<AtomicPartId>> {
        let ws = self.ws_mut()?;
        let Some(raw) = ws.sm.pools.atomic.alloc() else {
            return Ok(None);
        };
        let id = AtomicPartId(raw);
        let part = make(id);
        debug_assert_eq!(part.id, id);
        ws.atomics.create(part);
        Ok(Some(id))
    }

    fn create_composite(
        &mut self,
        make: impl FnOnce(CompositePartId) -> CompositePart,
    ) -> TxR<Option<CompositePartId>> {
        let ws = self.ws_mut()?;
        let Some(raw) = ws.sm.pools.composite.alloc() else {
            return Ok(None);
        };
        let id = CompositePartId(raw);
        let part = make(id);
        debug_assert_eq!(part.id, id);
        ws.composites.create(part);
        Ok(Some(id))
    }

    fn create_document(
        &mut self,
        make: impl FnOnce(DocumentId) -> Document,
    ) -> TxR<Option<DocumentId>> {
        let ws = self.ws_mut()?;
        let Some(raw) = ws.sm.pools.document.alloc() else {
            return Ok(None);
        };
        let id = DocumentId(raw);
        let doc = make(id);
        debug_assert_eq!(doc.id, id);
        ws.documents.create(doc);
        Ok(Some(id))
    }

    fn create_base(
        &mut self,
        make: impl FnOnce(BaseAssemblyId) -> BaseAssembly,
    ) -> TxR<Option<BaseAssemblyId>> {
        let ws = self.ws_mut()?;
        let Some(raw) = ws.sm.pools.base.alloc() else {
            return Ok(None);
        };
        let id = BaseAssemblyId(raw);
        let b = make(id);
        debug_assert_eq!(b.id, id);
        ws.bases.create(b);
        Ok(Some(id))
    }

    fn create_complex(
        &mut self,
        level: u8,
        make: impl FnOnce(ComplexAssemblyId) -> ComplexAssembly,
    ) -> TxR<Option<ComplexAssemblyId>> {
        let ws = self.ws_mut()?;
        let Some(raw) = ws.sm.pools.complex.alloc() else {
            return Ok(None);
        };
        let id = ComplexAssemblyId(raw);
        let c = make(id);
        debug_assert_eq!(c.id, id);
        debug_assert_eq!(c.level, level);
        ws.sm.complex_index.insert(raw, level);
        ws.complex_level_mut(level).store.insert(raw, c);
        Ok(Some(id))
    }

    fn delete_atomic(&mut self, id: AtomicPartId) -> TxR<AtomicPart> {
        let ws = self.ws_mut()?;
        let p = ws.atomics.delete(id.raw()).ok_or(MISSING)?;
        assert!(ws.sm.pools.atomic.free(id.raw()), "pool drift");
        Ok(p)
    }

    fn delete_composite(&mut self, id: CompositePartId) -> TxR<CompositePart> {
        let ws = self.ws_mut()?;
        let c = ws.composites.delete(id.raw()).ok_or(MISSING)?;
        assert!(ws.sm.pools.composite.free(id.raw()), "pool drift");
        Ok(c)
    }

    fn delete_document(&mut self, id: DocumentId) -> TxR<Document> {
        let ws = self.ws_mut()?;
        let d = ws.documents.delete(id.raw()).ok_or(MISSING)?;
        assert!(ws.sm.pools.document.free(id.raw()), "pool drift");
        Ok(d)
    }

    fn delete_base(&mut self, id: BaseAssemblyId) -> TxR<BaseAssembly> {
        let ws = self.ws_mut()?;
        let b = ws.bases.delete(id.raw()).ok_or(MISSING)?;
        assert!(ws.sm.pools.base.free(id.raw()), "pool drift");
        Ok(b)
    }

    fn delete_complex(&mut self, id: ComplexAssemblyId) -> TxR<ComplexAssembly> {
        let ws = self.ws_mut()?;
        let level = *ws.sm.complex_index.get(&id.raw()).ok_or(MISSING)?;
        let c = ws
            .complex_level_mut(level)
            .store
            .remove(id.raw())
            .ok_or(MISSING)?;
        ws.sm.complex_index.remove(&id.raw());
        assert!(ws.sm.pools.complex.free(id.raw()), "pool drift");
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::AssemblyChildren;

    #[test]
    fn store_insert_get_remove() {
        let mut s: Store<u32> = Store::new(10);
        s.insert(3, 30);
        assert_eq!(s.get(3), Some(&30));
        assert_eq!(s.live(), 1);
        assert_eq!(s.remove(3), Some(30));
        assert_eq!(s.get(3), None);
        assert_eq!(s.live(), 0);
        assert_eq!(s.remove(3), None);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn store_double_insert_panics() {
        let mut s: Store<u32> = Store::new(10);
        s.insert(3, 30);
        s.insert(3, 31);
    }

    #[test]
    fn atomic_group_indexes_follow_dates() {
        // Four-way sharded: the routing must be invisible to the group API.
        let mut g = AtomicGroup::new(100, 4);
        for i in 1..=10u32 {
            g.create(AtomicPart {
                id: AtomicPartId(i),
                kind: 0,
                build_date: 1990 + (i as i32 % 3),
                x: 0,
                y: 0,
                to: vec![],
                owner: CompositePartId(1),
            });
        }
        assert_eq!(g.in_date_range(1990, 1990).len(), 3); // ids 3, 6, 9
        assert!(g.set_date(3, 1995));
        assert_eq!(g.in_date_range(1990, 1990).len(), 2);
        assert_eq!(g.in_date_range(1995, 1995), vec![AtomicPartId(3)]);
        let p = g.delete(3).unwrap();
        assert_eq!(p.build_date, 1995);
        assert_eq!(g.in_date_range(1995, 1995).len(), 0);
        assert!(!g.by_id.contains(&3));
    }

    #[test]
    fn read_only_direct_tx_rejects_writes() {
        let ws = Workspace::new(StructureParams::tiny());
        let mut roms = ws.clone();
        let mut tx = DirectTx::reading(&ws);
        assert!(tx.manual_text_len().unwrap() > 0);
        assert!(tx.manual_count_char('I').unwrap() > 0);
        assert!(matches!(tx.manual_swap_case(), Err(TxErr::Invariant(_))));
        // Writing transactions accept both.
        let mut wtx = DirectTx::writing(&mut roms);
        assert!(wtx.manual_swap_case().unwrap() > 0);
    }

    #[test]
    fn create_and_delete_complex_keeps_index_coherent() {
        let mut ws = Workspace::new(StructureParams::tiny());
        let mut tx = DirectTx::writing(&mut ws);
        let id = tx
            .create_complex(2, |id| ComplexAssembly {
                id,
                kind: 0,
                build_date: 1500,
                parent: None,
                level: 2,
                children: AssemblyChildren::Base(vec![]),
            })
            .unwrap()
            .unwrap();
        assert_eq!(tx.lookup_complex(id.raw()).unwrap(), Some(id));
        let c = tx.delete_complex(id).unwrap();
        assert_eq!(c.id, id);
        assert_eq!(tx.lookup_complex(id.raw()).unwrap(), None);
        // The freed id is recycled.
        let id2 = tx
            .create_complex(2, |id| ComplexAssembly {
                id,
                kind: 0,
                build_date: 1500,
                parent: None,
                level: 2,
                children: AssemblyChildren::Base(vec![]),
            })
            .unwrap()
            .unwrap();
        assert_eq!(id2, id);
    }

    #[test]
    fn pool_capacity_reflects_allocations() {
        let mut ws = Workspace::new(StructureParams::tiny());
        let max = ws.params.max_atomics() as usize;
        let mut tx = DirectTx::writing(&mut ws);
        assert_eq!(tx.pool_capacity(PoolKind::Atomic).unwrap(), max);
        tx.create_atomic(|id| AtomicPart {
            id,
            kind: 0,
            build_date: 1000,
            x: 0,
            y: 0,
            to: vec![],
            owner: CompositePartId(1),
        })
        .unwrap()
        .unwrap();
        assert_eq!(tx.pool_capacity(PoolKind::Atomic).unwrap(), max - 1);
    }
}
