//! The synchronization-free access interface to the STMBench7 structure.
//!
//! Every one of the 45 operations is written once, generically, against
//! [`Sb7Tx`]. Backends give the trait different meanings:
//!
//! * lock-based backends resolve accessors directly against the stores
//!   they hold guards for;
//! * STM backends resolve them against transactional cells, recording
//!   read/write sets and possibly aborting ([`TxErr::Abort`]).
//!
//! This mirrors the paper's requirement that "the core code of STMBench7
//! does not contain any concurrency control mechanisms" so that an
//! arbitrary STM framework (or lock strategy) can be merged in.

use crate::ids::{AtomicPartId, BaseAssemblyId, ComplexAssemblyId, CompositePartId, DocumentId};
use crate::objects::{AtomicPart, BaseAssembly, ComplexAssembly, CompositePart, Document, Module};

/// Why a transaction could not proceed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxErr {
    /// The backend detected a conflict; the operation will be re-executed.
    /// Lock-based backends never produce this.
    Abort,
    /// An object that must exist was absent, or a write was attempted in a
    /// read-only context. Under locks this is a hard bug (the executor
    /// panics); under STM it is treated as a conflict symptom and retried.
    Invariant(&'static str),
}

/// Shorthand for transactional results.
pub type TxR<T> = Result<T, TxErr>;

/// The benchmark-level outcome of one operation.
///
/// The paper distinguishes operations that *complete* from operations that
/// *fail* benignly (e.g. a random index lookup missing); both are reported
/// separately by the harness. `Done` carries the operation's return value
/// (e.g. number of atomic parts visited) so computations cannot be
/// optimized away and tests can assert exact results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpOutcome {
    /// The operation completed; the payload is its specified return value.
    Done(i64),
    /// The operation failed benignly, with the reason the spec names.
    Fail(&'static str),
}

impl OpOutcome {
    /// True for `Done`.
    pub fn is_done(&self) -> bool {
        matches!(self, OpOutcome::Done(_))
    }

    /// The payload of `Done`, if any.
    pub fn value(&self) -> Option<i64> {
        match self {
            OpOutcome::Done(v) => Some(*v),
            OpOutcome::Fail(_) => None,
        }
    }
}

/// Identifies an id pool for capacity queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolKind {
    Atomic,
    Composite,
    Document,
    Base,
    Complex,
}

/// Transactional access to the STMBench7 structure.
///
/// All object accessors are closure-based: the callee resolves the object
/// (possibly recording an STM read or write) and hands a borrow to the
/// closure. Accessors taking an id return `Err(TxErr::Invariant)` when the
/// object is absent — operations reach objects through index lookups and
/// links, so absence is either an STM conflict artifact (retried) or a bug
/// (panics under locks).
///
/// Index-maintaining mutations (`set_atomic_build_date`, the `create_*` /
/// `delete_*` families) exist so that plain attribute writers
/// (`atomic_mut` etc.) never have to touch an index: operations must not
/// modify indexed attributes through the plain `_mut` accessors.
pub trait Sb7Tx {
    // ----- module and manual ------------------------------------------------

    /// Reads the module (immutable after build).
    fn module<R>(&mut self, f: impl FnOnce(&Module) -> R) -> TxR<R>;

    /// Total characters of manual text.
    fn manual_text_len(&mut self) -> TxR<usize>;

    /// Counts occurrences of `c` in the manual (OP4).
    ///
    /// Manual access is expressed as whole operations rather than a
    /// `&Manual` closure so that backends that split the manual into
    /// chunks (the paper's §5 remedy) can evaluate them chunk-wise.
    fn manual_count_char(&mut self, c: char) -> TxR<usize>;

    /// Whether the manual's first and last characters match (OP5).
    fn manual_first_last_equal(&mut self) -> TxR<bool>;

    /// Swaps `'I'` ↔ `'i'` throughout the manual, returning the number of
    /// characters changed (OP11).
    fn manual_swap_case(&mut self) -> TxR<usize>;

    /// Records the design root after the builder constructs the tree.
    fn set_design_root(&mut self, root: ComplexAssemblyId) -> TxR<()>;

    // ----- object reads -----------------------------------------------------

    /// Reads an atomic part.
    fn atomic<R>(&mut self, id: AtomicPartId, f: impl FnOnce(&AtomicPart) -> R) -> TxR<R>;

    /// Reads a composite part.
    fn composite<R>(&mut self, id: CompositePartId, f: impl FnOnce(&CompositePart) -> R) -> TxR<R>;

    /// Reads a base assembly.
    fn base<R>(&mut self, id: BaseAssemblyId, f: impl FnOnce(&BaseAssembly) -> R) -> TxR<R>;

    /// Reads a complex assembly.
    fn complex<R>(
        &mut self,
        id: ComplexAssemblyId,
        f: impl FnOnce(&ComplexAssembly) -> R,
    ) -> TxR<R>;

    /// Reads a document.
    fn document<R>(&mut self, id: DocumentId, f: impl FnOnce(&Document) -> R) -> TxR<R>;

    // ----- object writes (non-indexed attributes only) ----------------------

    /// Updates an atomic part. The build date must not be changed here; use
    /// [`Sb7Tx::set_atomic_build_date`].
    fn atomic_mut<R>(&mut self, id: AtomicPartId, f: impl FnOnce(&mut AtomicPart) -> R) -> TxR<R>;

    /// Updates a composite part (build date, bags).
    fn composite_mut<R>(
        &mut self,
        id: CompositePartId,
        f: impl FnOnce(&mut CompositePart) -> R,
    ) -> TxR<R>;

    /// Updates a base assembly (build date — not indexed — and bags).
    fn base_mut<R>(&mut self, id: BaseAssemblyId, f: impl FnOnce(&mut BaseAssembly) -> R)
        -> TxR<R>;

    /// Updates a complex assembly (build date, children).
    fn complex_mut<R>(
        &mut self,
        id: ComplexAssemblyId,
        f: impl FnOnce(&mut ComplexAssembly) -> R,
    ) -> TxR<R>;

    /// Updates a document's text (the title is indexed and must not change).
    fn document_mut<R>(&mut self, id: DocumentId, f: impl FnOnce(&mut Document) -> R) -> TxR<R>;

    /// Updates an atomic part's build date *and* the build-date index
    /// (T3a/T3b/T3c, OP15).
    fn set_atomic_build_date(&mut self, id: AtomicPartId, date: i32) -> TxR<()>;

    // ----- index lookups (Table 1) ------------------------------------------

    /// Index 1: atomic part id → atomic part.
    fn lookup_atomic(&mut self, raw: u32) -> TxR<Option<AtomicPartId>>;

    /// Index 3: composite part id → composite part.
    fn lookup_composite(&mut self, raw: u32) -> TxR<Option<CompositePartId>>;

    /// Index 5: base assembly id → base assembly.
    fn lookup_base(&mut self, raw: u32) -> TxR<Option<BaseAssemblyId>>;

    /// Index 6: complex assembly id → complex assembly.
    fn lookup_complex(&mut self, raw: u32) -> TxR<Option<ComplexAssemblyId>>;

    /// Index 4: document title → document.
    fn lookup_document(&mut self, title: &str) -> TxR<Option<DocumentId>>;

    /// Index 2 range scan: ids of atomic parts with build date in
    /// `[lo, hi]` (OP2, OP3, OP10).
    fn atomics_in_date_range(&mut self, lo: i32, hi: i32) -> TxR<Vec<AtomicPartId>>;

    /// All atomic part ids in index order (Q7).
    fn all_atomic_ids(&mut self) -> TxR<Vec<AtomicPartId>>;

    /// All base assembly ids in index order (ST5).
    fn all_base_ids(&mut self) -> TxR<Vec<BaseAssemblyId>>;

    // ----- pools, creation, deletion ----------------------------------------

    /// Remaining capacity of an id pool; structure modifications check this
    /// *before* creating anything, so a mid-operation failure never leaves
    /// partial changes behind under non-rollback (lock) backends.
    fn pool_capacity(&mut self, kind: PoolKind) -> TxR<usize>;

    /// Creates an atomic part; `make` receives the allocated id. Returns
    /// `None` when the pool is exhausted.
    fn create_atomic(
        &mut self,
        make: impl FnOnce(AtomicPartId) -> AtomicPart,
    ) -> TxR<Option<AtomicPartId>>;

    /// Creates a composite part (updates index 3).
    fn create_composite(
        &mut self,
        make: impl FnOnce(CompositePartId) -> CompositePart,
    ) -> TxR<Option<CompositePartId>>;

    /// Creates a document (updates index 4).
    fn create_document(
        &mut self,
        make: impl FnOnce(DocumentId) -> Document,
    ) -> TxR<Option<DocumentId>>;

    /// Creates a base assembly (updates index 5).
    fn create_base(
        &mut self,
        make: impl FnOnce(BaseAssemblyId) -> BaseAssembly,
    ) -> TxR<Option<BaseAssemblyId>>;

    /// Creates a complex assembly at `level` (updates index 6).
    fn create_complex(
        &mut self,
        level: u8,
        make: impl FnOnce(ComplexAssemblyId) -> ComplexAssembly,
    ) -> TxR<Option<ComplexAssemblyId>>;

    /// Deletes an atomic part, returning it (SM2).
    fn delete_atomic(&mut self, id: AtomicPartId) -> TxR<AtomicPart>;

    /// Deletes a composite part, returning it (SM2).
    fn delete_composite(&mut self, id: CompositePartId) -> TxR<CompositePart>;

    /// Deletes a document, returning it (SM2).
    fn delete_document(&mut self, id: DocumentId) -> TxR<Document>;

    /// Deletes a base assembly, returning it (SM6, SM8).
    fn delete_base(&mut self, id: BaseAssemblyId) -> TxR<BaseAssembly>;

    /// Deletes a complex assembly, returning it (SM8).
    fn delete_complex(&mut self, id: ComplexAssemblyId) -> TxR<ComplexAssembly>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        assert!(OpOutcome::Done(3).is_done());
        assert_eq!(OpOutcome::Done(3).value(), Some(3));
        assert!(!OpOutcome::Fail("x").is_done());
        assert_eq!(OpOutcome::Fail("x").value(), None);
    }

    #[test]
    fn txerr_is_comparable() {
        assert_eq!(TxErr::Abort, TxErr::Abort);
        assert_ne!(TxErr::Abort, TxErr::Invariant("m"));
    }
}
