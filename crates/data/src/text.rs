//! Text generation and the text operations the paper specifies.
//!
//! Documents and the manual are built from a repeated sentence seeded with
//! the owning object's id, exactly like the Java release: the text contains
//! the substring `"I am"` and plenty of `'I'` characters so that T4/OP4
//! (count `'I'`), T5/ST7 (swap `"I am"` ↔ `"This is"`) and OP11 (swap
//! `'I'` ↔ `'i'`) always have work to do.

/// Builds document text of exactly `size` characters for composite part
/// `comp_id`.
pub fn document_text(comp_id: u32, size: usize) -> String {
    fill(
        &format!("I am the documentation of composite part #{comp_id}. "),
        size,
    )
}

/// Builds the manual text of exactly `size` characters for module
/// `module_id`.
pub fn manual_text(module_id: u32, size: usize) -> String {
    fill(&format!("I am the manual of module #{module_id}. "), size)
}

/// Builds a document title; titles are unique per composite part and are
/// the keys of index 4 (Table 1).
pub fn document_title(comp_id: u32) -> String {
    format!("Composite Part #{comp_id}")
}

fn fill(pattern: &str, size: usize) -> String {
    assert!(!pattern.is_empty());
    let mut s = String::with_capacity(size + pattern.len());
    while s.len() < size {
        s.push_str(pattern);
    }
    s.truncate(size);
    s
}

/// Counts occurrences of `needle` (T4, OP4 use `'I'`; ST2 too).
pub fn count_char(text: &str, needle: char) -> usize {
    text.chars().filter(|&c| c == needle).count()
}

/// Returns whether the first and last characters are equal (OP5).
pub fn first_last_equal(text: &str) -> bool {
    match (text.chars().next(), text.chars().next_back()) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    }
}

/// The T5/ST7 update: replace every `"I am"` with `"This is"`, or, if no
/// `"I am"` is present, every `"This is"` with `"I am"`. Returns the number
/// of substrings replaced.
pub fn swap_text(text: &mut String) -> usize {
    swap_pair(text, "I am", "This is")
}

/// The OP11 update on the manual: replace every `'I'` with `'i'`, or vice
/// versa. Returns the number of characters changed.
pub fn swap_manual_case(text: &mut String) -> usize {
    if text.contains('I') {
        swap_pair(text, "I", "i")
    } else {
        swap_pair(text, "i", "I")
    }
}

fn swap_pair(text: &mut String, a: &str, b: &str) -> usize {
    let (from, to) = if text.contains(a) { (a, b) } else { (b, a) };
    let count = text.matches(from).count();
    if count > 0 {
        *text = text.replace(from, to);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_is_exact_and_repeats() {
        let t = document_text(42, 100);
        assert_eq!(t.len(), 100);
        assert!(t.starts_with("I am the documentation of composite part #42. "));
    }

    #[test]
    fn titles_are_unique_per_id() {
        assert_ne!(document_title(1), document_title(2));
    }

    #[test]
    fn count_char_counts() {
        assert_eq!(count_char("III", 'I'), 3);
        assert_eq!(count_char("", 'I'), 0);
        let t = manual_text(1, 500);
        assert!(count_char(&t, 'I') > 0);
    }

    #[test]
    fn first_last_equal_cases() {
        assert!(first_last_equal("aba"));
        assert!(!first_last_equal("ab"));
        assert!(first_last_equal("x"));
        assert!(!first_last_equal(""));
    }

    #[test]
    fn swap_text_roundtrips() {
        let mut t = document_text(7, 200);
        let n1 = swap_text(&mut t);
        assert!(n1 > 0);
        assert!(t.contains("This is"));
        assert!(!t.contains("I am"));
        let n2 = swap_text(&mut t);
        assert_eq!(n1, n2);
        assert_eq!(t, document_text(7, 200));
    }

    #[test]
    fn swap_manual_case_roundtrips_count() {
        let mut t = manual_text(1, 300);
        let upper = count_char(&t, 'I');
        let n1 = swap_manual_case(&mut t);
        assert_eq!(n1, upper);
        assert_eq!(count_char(&t, 'I'), 0);
        // Swapping back changes every 'i' (original ones plus the converted).
        let n2 = swap_manual_case(&mut t);
        assert!(n2 >= n1);
        assert_eq!(count_char(&t, 'i'), 0);
    }

    #[test]
    fn swap_text_on_neutral_text_is_noop() {
        let mut t = String::from("nothing to see here");
        assert_eq!(swap_text(&mut t), 0);
        assert_eq!(t, "nothing to see here");
    }
}
