//! Structural invariant checking.
//!
//! The test suite runs [`validate`] after every concurrent workload on
//! every backend: whatever synchronization strategy executed the
//! operations, the structure afterwards must still be a well-formed
//! STMBench7 graph. The checks cover exactly the invariants the paper's
//! operations rely on (e.g. "the root complex assembly is always connected
//! to all base assemblies").

use std::collections::HashSet;

use crate::objects::AssemblyChildren;
use crate::workspace::Workspace;

/// Object counts of a validated structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Census {
    pub complex_assemblies: usize,
    pub base_assemblies: usize,
    pub composite_parts: usize,
    pub atomic_parts: usize,
    pub documents: usize,
}

macro_rules! ensure {
    ($cond:expr, $($msg:tt)+) => {
        if !$cond {
            return Err(format!($($msg)+));
        }
    };
}

/// Checks every structural invariant; returns the census on success.
pub fn validate(ws: &Workspace) -> Result<Census, String> {
    let params = &ws.params;

    // --- Assembly tree -----------------------------------------------------
    let root_id = ws.module.design_root;
    let root = ws
        .complex_ref(root_id.raw())
        .ok_or("design root does not exist")?;
    ensure!(
        root.level == params.assembly_levels,
        "root level {} != {}",
        root.level,
        params.assembly_levels
    );
    ensure!(root.parent.is_none(), "root has a parent");

    let mut seen_complex = HashSet::new();
    let mut seen_base = HashSet::new();
    let mut stack = vec![root_id];
    while let Some(id) = stack.pop() {
        ensure!(
            seen_complex.insert(id),
            "complex assembly {id} reached twice"
        );
        let ca = ws
            .complex_ref(id.raw())
            .ok_or_else(|| format!("complex assembly {id} missing"))?;
        ensure!(ca.id == id, "complex assembly {id} has wrong id field");
        ensure!(
            ws.sm.complex_index.get(&id.raw()) == Some(&ca.level),
            "complex index wrong for {id}"
        );
        ensure!(
            !ca.children.is_empty(),
            "complex assembly {id} has no children"
        );
        match &ca.children {
            AssemblyChildren::Complex(children) => {
                ensure!(ca.level > 2, "complex children below level 3 ({id})");
                for &c in children {
                    let child = ws
                        .complex_ref(c.raw())
                        .ok_or_else(|| format!("child {c} of {id} missing"))?;
                    ensure!(
                        child.parent == Some(id),
                        "child {c} parent mismatch (expected {id})"
                    );
                    ensure!(
                        child.level + 1 == ca.level,
                        "child {c} level {} under parent level {}",
                        child.level,
                        ca.level
                    );
                    stack.push(c);
                }
            }
            AssemblyChildren::Base(children) => {
                ensure!(
                    ca.level == 2,
                    "base children under level {} ({id})",
                    ca.level
                );
                for &b in children {
                    ensure!(seen_base.insert(b), "base assembly {b} reached twice");
                    let base = ws
                        .bases
                        .store
                        .get(b.raw())
                        .ok_or_else(|| format!("base assembly {b} missing"))?;
                    ensure!(base.id == b, "base assembly {b} has wrong id field");
                    ensure!(
                        base.parent == id,
                        "base {b} parent mismatch (expected {id})"
                    );
                }
            }
        }
    }
    // The root must reach *all* assemblies (the paper: "the root complex
    // assembly is always connected to all base assemblies").
    ensure!(
        seen_complex.len() == ws.sm.complex_index.len(),
        "unreachable complex assemblies: reached {} of {}",
        seen_complex.len(),
        ws.sm.complex_index.len()
    );
    let mut complex_store_total = 0;
    for g in &ws.complexes {
        complex_store_total += g.store.live();
        for (raw, ca) in g.store.iter() {
            ensure!(
                seen_complex.contains(&crate::ids::ComplexAssemblyId(raw)),
                "complex assembly {raw} in store but unreachable"
            );
            ensure!(ca.id.raw() == raw, "complex store key/id mismatch at {raw}");
        }
    }
    ensure!(
        complex_store_total == seen_complex.len(),
        "complex store count {complex_store_total} != reachable {}",
        seen_complex.len()
    );
    ensure!(
        seen_base.len() == ws.bases.store.live(),
        "unreachable base assemblies: reached {} of {}",
        seen_base.len(),
        ws.bases.store.live()
    );

    // --- Base assemblies and the many-to-many bags -------------------------
    let mut base_index_count = 0;
    ws.bases.by_id.for_each(|_, _| base_index_count += 1);
    ensure!(
        base_index_count == ws.bases.store.live(),
        "base id index size mismatch"
    );
    for (raw, base) in ws.bases.store.iter() {
        ensure!(
            ws.bases.by_id.contains(&raw),
            "base {raw} missing from index"
        );
        for &comp in &base.components {
            let c = ws
                .composites
                .store
                .get(comp.raw())
                .ok_or_else(|| format!("base {raw} links missing composite {comp}"))?;
            // Bag semantics: multiplicities must match on both sides.
            let fwd = base.components.iter().filter(|&&x| x == comp).count();
            let back = c.used_in.iter().filter(|&&x| x.raw() == raw).count();
            ensure!(
                fwd == back,
                "bag multiplicity mismatch base {raw} <-> composite {comp}: {fwd} vs {back}"
            );
        }
    }

    // --- Composite parts, documents, atomic graphs -------------------------
    let mut comp_index_count = 0;
    ws.composites.by_id.for_each(|_, _| comp_index_count += 1);
    ensure!(
        comp_index_count == ws.composites.store.live(),
        "composite id index size mismatch"
    );
    let mut atomic_total = 0;
    for (raw, comp) in ws.composites.store.iter() {
        ensure!(
            ws.composites.by_id.contains(&raw),
            "composite {raw} missing from index"
        );
        for &b in &comp.used_in {
            let base = ws
                .bases
                .store
                .get(b.raw())
                .ok_or_else(|| format!("composite {raw} used_in missing base {b}"))?;
            ensure!(
                base.components.contains(&comp.id),
                "composite {raw} used_in base {b} lacks the forward link"
            );
        }
        let doc = ws
            .documents
            .store
            .get(comp.doc.raw())
            .ok_or_else(|| format!("composite {raw} missing document"))?;
        ensure!(doc.part == comp.id, "document back link wrong for {raw}");
        ensure!(
            ws.documents.by_title.get(&doc.title) == Some(&doc.id.raw()),
            "title index wrong for document {}",
            doc.id
        );

        ensure!(
            !comp.parts.is_empty(),
            "composite {raw} has no atomic parts"
        );
        ensure!(
            comp.parts.contains(&comp.root_part),
            "composite {raw} root part not in parts set"
        );
        let part_set: HashSet<_> = comp.parts.iter().copied().collect();
        ensure!(
            part_set.len() == comp.parts.len(),
            "composite {raw} parts set has duplicates"
        );
        atomic_total += comp.parts.len();
        // The graph must be reachable from the root part (the builder's
        // ring guarantees it; no operation rewires connections).
        let mut visited = HashSet::new();
        let mut dfs = vec![comp.root_part];
        while let Some(pid) = dfs.pop() {
            if !visited.insert(pid) {
                continue;
            }
            let part = ws
                .atomics
                .store
                .get(pid.raw())
                .ok_or_else(|| format!("atomic part {pid} missing"))?;
            ensure!(part.owner == comp.id, "atomic part {pid} owner mismatch");
            ensure!(
                ws.atomics.by_id.contains(&pid.raw()),
                "atomic part {pid} missing from id index"
            );
            ensure!(
                ws.atomics.by_date.contains(&(part.build_date, pid.raw())),
                "atomic part {pid} missing from date index"
            );
            for conn in &part.to {
                ensure!(
                    part_set.contains(&conn.to),
                    "connection from {pid} leaves its composite"
                );
                dfs.push(conn.to);
            }
        }
        ensure!(
            visited.len() == comp.parts.len(),
            "composite {raw}: only {} of {} parts reachable from root part",
            visited.len(),
            comp.parts.len()
        );
    }
    ensure!(
        atomic_total == ws.atomics.store.live(),
        "atomic parts in graphs {atomic_total} != store {}",
        ws.atomics.store.live()
    );
    ensure!(
        ws.atomics.by_id.len() == ws.atomics.store.live(),
        "atomic id index size mismatch"
    );
    ensure!(
        ws.atomics.by_date.len() == ws.atomics.store.live(),
        "atomic date index size mismatch"
    );
    ensure!(
        ws.documents.store.live() == ws.composites.store.live(),
        "documents and composites must be 1:1"
    );

    // --- Pools --------------------------------------------------------------
    ensure!(
        ws.sm.pools.atomic.live() == ws.atomics.store.live(),
        "atomic pool count mismatch"
    );
    ensure!(
        ws.sm.pools.composite.live() == ws.composites.store.live(),
        "composite pool count mismatch"
    );
    ensure!(
        ws.sm.pools.document.live() == ws.documents.store.live(),
        "document pool count mismatch"
    );
    ensure!(
        ws.sm.pools.base.live() == ws.bases.store.live(),
        "base pool count mismatch"
    );
    ensure!(
        ws.sm.pools.complex.live() == complex_store_total,
        "complex pool count mismatch"
    );

    Ok(Census {
        complex_assemblies: complex_store_total,
        base_assemblies: ws.bases.store.live(),
        composite_parts: ws.composites.store.live(),
        atomic_parts: ws.atomics.store.live(),
        documents: ws.documents.store.live(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::StructureParams;

    #[test]
    fn fresh_build_validates() {
        let p = StructureParams::tiny();
        let ws = Workspace::build(p.clone(), 1);
        let census = validate(&ws).unwrap();
        assert_eq!(census.base_assemblies, p.initial_bases());
        assert_eq!(census.complex_assemblies, p.initial_complexes());
        assert_eq!(census.atomic_parts, p.initial_atomics());
        assert_eq!(census.composite_parts, p.library_size);
        assert_eq!(census.documents, p.library_size);
    }

    #[test]
    fn small_build_validates() {
        let ws = Workspace::build(StructureParams::small(), 99);
        validate(&ws).unwrap();
    }

    #[test]
    fn detects_broken_back_link() {
        let mut ws = Workspace::build(StructureParams::tiny(), 1);
        // Break a used_in bag.
        let base_id = {
            let (_, b) = ws.bases.store.iter().next().unwrap();
            b.id
        };
        let comp = ws.bases.store.get(base_id.raw()).unwrap().components[0];
        ws.composites
            .store
            .get_mut(comp.raw())
            .unwrap()
            .used_in
            .retain(|b| *b != base_id);
        assert!(validate(&ws).is_err());
    }

    #[test]
    fn detects_date_index_drift() {
        let mut ws = Workspace::build(StructureParams::tiny(), 1);
        // Mutate a build date behind the index's back.
        let part = ws.atomics.store.get_mut(1).unwrap();
        part.build_date += 1_000_000;
        assert!(validate(&ws).err().unwrap().contains("date index"));
    }

    #[test]
    fn detects_orphaned_assembly() {
        let mut ws = Workspace::build(StructureParams::tiny(), 1);
        // Detach the root's first child but leave it in the store.
        let root = ws.module.design_root;
        let level = *ws.sm.complex_index.get(&root.raw()).unwrap();
        let root_ca = ws
            .complex_level_mut(level)
            .store
            .get_mut(root.raw())
            .unwrap();
        if let AssemblyChildren::Complex(children) = &mut root_ca.children {
            children.remove(0);
        } else if let AssemblyChildren::Base(children) = &mut root_ca.children {
            children.remove(0);
        }
        assert!(validate(&ws).is_err());
    }
}
