//! Typed object identifiers and bounded id pools.
//!
//! Every object in the STMBench7 graph is referenced by a typed id rather
//! than a pointer. This is what lets one operation implementation run over
//! plain stores (locking backends) and transactional cells (STM backends),
//! and it is what makes zombie STM transactions memory-safe: a stale id can
//! at worst observe a stale or absent object, never a dangling pointer.
//!
//! Raw ids start at 1, matching OO7. Id pools are bounded (`max`) because
//! the paper constrains structure modifications: "the maximum size of the
//! structure is confined" — SM1/SM5/SM7 fail when a pool is exhausted.
//! Freed ids are recycled in LIFO order.

use std::fmt;

macro_rules! typed_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw numeric id (OO7 object ids start at 1).
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

typed_id!(
    /// Identifier of an atomic part (index 1 of Table 1 maps these).
    AtomicPartId
);
typed_id!(
    /// Identifier of a composite part (index 3 of Table 1 maps these).
    CompositePartId
);
typed_id!(
    /// Identifier of a base assembly (index 5 of Table 1 maps these).
    BaseAssemblyId
);
typed_id!(
    /// Identifier of a complex assembly (index 6 of Table 1 maps these).
    ComplexAssemblyId
);
typed_id!(
    /// Identifier of a document (documents are looked up by title, index 4).
    DocumentId
);

/// A bounded pool of raw ids with LIFO recycling.
///
/// `alloc` returns `None` once `max` live ids exist, which is how structure
/// modification operations detect that "the maximum number of … has been
/// reached" and fail, per the paper's SM1/SM5/SM7 specification.
///
/// # Examples
///
/// ```
/// use stmbench7_data::IdPool;
///
/// let mut pool = IdPool::new(2);
/// let a = pool.alloc().unwrap();
/// let b = pool.alloc().unwrap();
/// assert_eq!((a, b), (1, 2));
/// assert_eq!(pool.alloc(), None);
/// pool.free(a);
/// assert_eq!(pool.alloc(), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct IdPool {
    next: u32,
    max: u32,
    free: Vec<u32>,
}

impl IdPool {
    /// Creates a pool handing out ids `1..=max`.
    pub fn new(max: u32) -> Self {
        IdPool {
            next: 1,
            max,
            free: Vec::new(),
        }
    }

    /// Allocates an id, preferring recycled ones; `None` when exhausted.
    pub fn alloc(&mut self) -> Option<u32> {
        if let Some(id) = self.free.pop() {
            return Some(id);
        }
        if self.next <= self.max {
            let id = self.next;
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    /// Returns an id to the pool. Returns `false` (freeing nothing) when
    /// `id` was never allocated or is already free.
    ///
    /// Under lock-based backends a `false` return indicates a bug and
    /// callers assert on it; under optimistic backends a doomed
    /// transaction can legitimately attempt a stale free, which its
    /// abort then discards.
    #[must_use]
    pub fn free(&mut self, id: u32) -> bool {
        if id < 1 || id >= self.next || self.free.contains(&id) {
            return false;
        }
        self.free.push(id);
        true
    }

    /// Number of ids currently live.
    pub fn live(&self) -> usize {
        (self.next as usize - 1) - self.free.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> u32 {
        self.max
    }

    /// Largest raw id that may ever be handed out (for sizing dense stores).
    pub fn max_raw(&self) -> u32 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_sequential_from_one() {
        let mut p = IdPool::new(3);
        assert_eq!(p.alloc(), Some(1));
        assert_eq!(p.alloc(), Some(2));
        assert_eq!(p.alloc(), Some(3));
        assert_eq!(p.alloc(), None);
        assert_eq!(p.live(), 3);
    }

    #[test]
    fn recycles_lifo() {
        let mut p = IdPool::new(4);
        for _ in 0..4 {
            p.alloc().unwrap();
        }
        assert!(p.free(2));
        assert!(p.free(4));
        assert_eq!(p.alloc(), Some(4));
        assert_eq!(p.alloc(), Some(2));
        assert_eq!(p.alloc(), None);
    }

    #[test]
    fn live_tracks_frees() {
        let mut p = IdPool::new(10);
        let a = p.alloc().unwrap();
        let _b = p.alloc().unwrap();
        assert_eq!(p.live(), 2);
        assert!(p.free(a));
        assert_eq!(p.live(), 1);
    }

    #[test]
    fn free_of_unallocated_is_rejected() {
        let mut p = IdPool::new(10);
        assert!(!p.free(5));
        let id = p.alloc().unwrap();
        assert!(p.free(id));
        assert!(!p.free(id), "double free must be rejected");
    }

    #[test]
    fn typed_ids_format() {
        let id = AtomicPartId(7);
        assert_eq!(format!("{id:?}"), "AtomicPartId(7)");
        assert_eq!(format!("{id}"), "7");
        assert_eq!(id.raw(), 7);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashSet;

        proptest! {
            /// Arbitrary alloc/free interleavings keep the pool's model:
            /// live ids are unique, within bounds, counted exactly, and
            /// only live ids can be freed.
            #[test]
            fn alloc_free_model(
                capacity in 1u32..40,
                ops in proptest::collection::vec((proptest::bool::ANY, 0u32..45), 0..120),
            ) {
                let mut pool = IdPool::new(capacity);
                let mut live: HashSet<u32> = HashSet::new();
                for (is_alloc, pick) in ops {
                    if is_alloc {
                        match pool.alloc() {
                            Some(id) => {
                                prop_assert!((1..=capacity).contains(&id));
                                prop_assert!(live.insert(id), "id {id} double-allocated");
                            }
                            None => prop_assert_eq!(live.len() as u32, capacity),
                        }
                    } else {
                        let expect = live.remove(&pick);
                        prop_assert_eq!(pool.free(pick), expect);
                    }
                    prop_assert_eq!(pool.live(), live.len());
                    prop_assert_eq!(pool.capacity(), capacity);
                }
            }

            /// Draining and refilling always hands back the full id range.
            #[test]
            fn drain_refill_covers_range(capacity in 1u32..60) {
                let mut pool = IdPool::new(capacity);
                let first: HashSet<u32> = (0..capacity).map(|_| pool.alloc().unwrap()).collect();
                prop_assert_eq!(first.len() as u32, capacity);
                prop_assert_eq!(pool.alloc(), None);
                for id in &first {
                    prop_assert!(pool.free(*id));
                }
                let second: HashSet<u32> = (0..capacity).map(|_| pool.alloc().unwrap()).collect();
                prop_assert_eq!(second, first);
            }
        }
    }
}
