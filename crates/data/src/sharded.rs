//! The sharded-index subsystem: N per-shard B+trees behind one map API.
//!
//! The paper's §5 diagnosis is that the six Table 1 indexes are the
//! contention hot spot: under coarse representations every index update
//! conflicts with every other. [`ShardedIndex`] is the structural remedy,
//! applied *below* the synchronization layer: keys are routed by
//! [`ShardKey`] onto one of N independent [`BTree`]s, so backends can wrap
//! each shard in its own lock (medium/fine strategies) or its own
//! transactional variable (the STM backends), and two operations touching
//! different shards never contend.
//!
//! Sharding is invisible to results: `for_each` and `for_range` merge the
//! (individually sorted) shards back into one globally key-ordered visit,
//! so a sharded index enumerates *exactly* the sequence the monolithic
//! tree would — the property the cross-backend oracle tests rely on.
//!
//! Routing conventions (fixed so every layer agrees shard-for-shard):
//!
//! * `u32` raw ids route by `id % shards`;
//! * `(date, id)` build-date keys route by **id**, not date, so a part's
//!   date entry lives in the same shard as the part itself and a date
//!   update (OP15) touches exactly one shard;
//! * `String` titles route by a stable FNV-1a hash.

use crate::btree::BTree;

/// Upper bound on `StructureParams::index_shards`: shard sets are
/// declared as 64-bit masks in [`crate::spec::ShardSet`].
pub const MAX_SHARDS: usize = 64;

/// Routes a key to its shard. Implementations must be pure functions of
/// the key and the shard count — every layer (workspace, lock backends,
/// STM backends) relies on agreeing where a key lives.
pub trait ShardKey {
    /// The shard index in `0..shards` this key routes to.
    fn shard(&self, shards: usize) -> usize;
}

impl ShardKey for u32 {
    fn shard(&self, shards: usize) -> usize {
        *self as usize % shards
    }
}

/// Build-date keys route by the *id* component so a part and its date
/// entry always share a shard (date updates stay single-shard).
impl ShardKey for (i32, u32) {
    fn shard(&self, shards: usize) -> usize {
        self.1 as usize % shards
    }
}

impl ShardKey for String {
    fn shard(&self, shards: usize) -> usize {
        shard_of_str(self, shards)
    }
}

/// Stable FNV-1a routing for string keys (used for document titles); a
/// free function so callers holding a `&str` can route without allocating.
pub fn shard_of_str(s: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h as usize % shards
}

/// Restores the global `(date, id)` order over build-date index entries
/// gathered shard-by-shard and strips them to part ids — the shared tail
/// of every backend's sharded date-range scan (OP2/OP3/OP10). Keeping it
/// in one place keeps the backends' scan ordering provably identical.
pub fn merge_date_entries(mut entries: Vec<(i32, u32)>) -> Vec<crate::ids::AtomicPartId> {
    entries.sort_unstable();
    entries
        .into_iter()
        .map(|(_, id)| crate::ids::AtomicPartId(id))
        .collect()
}

/// An ordered map sharded over N independent B+trees (see module docs).
///
/// # Examples
///
/// ```
/// use stmbench7_data::sharded::ShardedIndex;
///
/// let mut idx: ShardedIndex<u32, u32> = ShardedIndex::new(4);
/// for i in 0..100 {
///     idx.insert(i, i * 2);
/// }
/// assert_eq!(idx.get(&40), Some(&80));
/// assert_eq!(idx.shard_count(), 4);
/// // Enumeration is globally key-ordered despite the sharding.
/// let mut keys = Vec::new();
/// idx.for_each(|k, _| keys.push(*k));
/// assert_eq!(keys, (0..100).collect::<Vec<u32>>());
/// ```
#[derive(Clone, Debug)]
pub struct ShardedIndex<K, V> {
    shards: Vec<BTree<K, V>>,
    len: usize,
}

impl<K: Ord + Clone + ShardKey, V: Clone> ShardedIndex<K, V> {
    /// Creates an empty index over `shards` trees (≥ 1; 1 is exactly a
    /// monolithic B+tree).
    pub fn new(shards: usize) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&shards),
            "shard count must be in 1..={MAX_SHARDS}, got {shards}"
        );
        ShardedIndex {
            shards: (0..shards).map(|_| BTree::new()).collect(),
            len: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key routes to.
    pub fn shard_of(&self, k: &K) -> usize {
        k.shard(self.shards.len())
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no shard has entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up a key in its shard.
    pub fn get(&self, k: &K) -> Option<&V> {
        self.shards[self.shard_of(k)].get(k)
    }

    /// True when the key is present.
    pub fn contains(&self, k: &K) -> bool {
        self.get(k).is_some()
    }

    /// Inserts a key/value pair, returning the previous value if any.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        let shard = self.shard_of(&k);
        let old = self.shards[shard].insert(k, v);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes a key, returning its value if it was present.
    pub fn remove(&mut self, k: &K) -> Option<V> {
        let shard = k.shard(self.shards.len());
        let removed = self.shards[shard].remove(k);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Globally key-ordered visit of every entry: the shards (each sorted)
    /// are k-way merged, so iteration order equals the monolithic tree's.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for (k, v) in self.merged(BTree::entries) {
            f(k, v);
        }
    }

    /// Globally key-ordered visit of entries with keys in `[lo, hi]`.
    pub fn for_range(&self, lo: &K, hi: &K, mut f: impl FnMut(&K, &V)) {
        for (k, v) in self.merged(|shard| shard.entries_in_range(lo, hi)) {
            f(k, v);
        }
    }

    /// Concatenates the per-shard (sorted) slices and restores the global
    /// key order with one sort. Keys are globally unique (each routes to
    /// exactly one shard), so an unstable sort is deterministic, and
    /// sorting shards-many already-sorted runs is the cheap case of
    /// pattern-defeating quicksort.
    fn merged<'a>(
        &'a self,
        collect: impl Fn(&'a BTree<K, V>) -> Vec<(&'a K, &'a V)>,
    ) -> Vec<(&'a K, &'a V)> {
        if self.shards.len() == 1 {
            return collect(&self.shards[0]);
        }
        let mut out: Vec<(&K, &V)> = self.shards.iter().flat_map(collect).collect();
        out.sort_unstable_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Read access to the individual shard trees, in shard order — the
    /// splitting point for backends that put each shard behind its own
    /// lock or transactional variable.
    pub fn shards(&self) -> &[BTree<K, V>] {
        &self.shards
    }

    /// Decomposes the index into its shard trees (shard `s` holds exactly
    /// the keys with `ShardKey::shard == s`).
    pub fn into_shards(self) -> Vec<BTree<K, V>> {
        self.shards
    }

    /// Reassembles an index from per-shard trees produced by
    /// [`ShardedIndex::into_shards`] (or built shard-by-shard under
    /// per-shard locks).
    ///
    /// # Panics
    ///
    /// Panics (debug) if a key sits in the wrong shard.
    pub fn from_shards(shards: Vec<BTree<K, V>>) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&shards.len()),
            "shard count must be in 1..={MAX_SHARDS}"
        );
        let len = shards.iter().map(BTree::len).sum();
        let index = ShardedIndex { shards, len };
        #[cfg(debug_assertions)]
        for (s, shard) in index.shards.iter().enumerate() {
            shard.for_each(|k, _| {
                debug_assert_eq!(index.shard_of(k), s, "key routed to the wrong shard");
            });
        }
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn one_shard_behaves_like_a_btree() {
        let mut idx: ShardedIndex<u32, &str> = ShardedIndex::new(1);
        assert!(idx.is_empty());
        assert_eq!(idx.insert(1, "a"), None);
        assert_eq!(idx.insert(1, "b"), Some("a"));
        assert_eq!(idx.get(&1), Some(&"b"));
        assert_eq!(idx.remove(&1), Some("b"));
        assert_eq!(idx.len(), 0);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_rejected() {
        let _ = ShardedIndex::<u32, ()>::new(0);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn oversized_shard_count_rejected() {
        let _ = ShardedIndex::<u32, ()>::new(MAX_SHARDS + 1);
    }

    #[test]
    fn date_keys_route_by_id_not_date() {
        let shards = 8;
        for id in 0..100u32 {
            for date in [1000, 1500, 1999] {
                assert_eq!((date, id).shard(shards), id.shard(shards));
            }
        }
    }

    #[test]
    fn string_routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 7, 64] {
            for s in ["", "Manual", "Composite Part #42"] {
                let a = shard_of_str(s, shards);
                assert_eq!(a, shard_of_str(s, shards));
                assert_eq!(a, s.to_string().shard(shards));
                assert!(a < shards);
            }
        }
    }

    #[test]
    fn round_trip_through_shards() {
        let mut idx: ShardedIndex<u32, u32> = ShardedIndex::new(5);
        for i in 0..50 {
            idx.insert(i, i + 1);
        }
        let shards = idx.into_shards();
        assert_eq!(shards.len(), 5);
        let back = ShardedIndex::from_shards(shards);
        assert_eq!(back.len(), 50);
        assert_eq!(back.get(&49), Some(&50));
    }

    proptest! {
        /// Every key routes to exactly one shard: after any operation
        /// sequence, each live key is present in its routed shard and in
        /// no other.
        #[test]
        fn keys_live_in_exactly_one_shard(
            ops in proptest::collection::vec((0u8..3, 0u32..500), 1..300),
            shards in 1usize..=16,
        ) {
            let mut idx: ShardedIndex<u32, u32> = ShardedIndex::new(shards);
            let mut model: BTreeMap<u32, u32> = BTreeMap::new();
            for (op, k) in ops {
                match op {
                    0 | 1 => {
                        prop_assert_eq!(idx.insert(k, k + 7), model.insert(k, k + 7));
                    }
                    _ => {
                        prop_assert_eq!(idx.remove(&k), model.remove(&k));
                    }
                }
            }
            for (k, v) in &model {
                let home = k.shard(shards);
                for (s, shard) in idx.shards().iter().enumerate() {
                    if s == home {
                        prop_assert_eq!(shard.get(k), Some(v));
                    } else {
                        prop_assert_eq!(shard.get(k), None);
                    }
                }
            }
        }

        /// A sharded index enumerates the same (key, value) sequence — in
        /// the same order — as the unsharded build of the same entries.
        #[test]
        fn enumeration_matches_unsharded(
            keys in proptest::collection::btree_set((0i32..64, 0u32..500), 0..200),
            shards in 1usize..=16,
            lo in (0i32..64, 0u32..500),
            hi in (0i32..64, 0u32..500),
        ) {
            let mut sharded: ShardedIndex<(i32, u32), u32> = ShardedIndex::new(shards);
            let mut mono: BTree<(i32, u32), u32> = BTree::new();
            for k in &keys {
                sharded.insert(*k, k.1);
                mono.insert(*k, k.1);
            }
            prop_assert_eq!(sharded.len(), keys.len());
            let mut a = Vec::new();
            sharded.for_each(|k, v| a.push((*k, *v)));
            let mut b = Vec::new();
            mono.for_each(|k, v| b.push((*k, *v)));
            prop_assert_eq!(a, b);
            let mut ra = Vec::new();
            sharded.for_range(&lo, &hi, |k, _| ra.push(*k));
            let mut rb = Vec::new();
            mono.for_range(&lo, &hi, |k, _| rb.push(*k));
            prop_assert_eq!(ra, rb);
        }
    }
}
