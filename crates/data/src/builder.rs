//! Deterministic construction of the initial STMBench7 structure.
//!
//! Everything goes through [`crate::Sb7Tx`], so the same code can populate
//! any backend (in practice backends are populated once via the plain
//! workspace and converted, because building 100 000 parts inside a single
//! ASTM transaction would exercise exactly the O(k²) pathology the paper
//! measures). The helpers here are shared with the structure-modification
//! operations: SM1 uses [`create_composite_with_graph`], SM7 uses
//! [`build_assembly_subtree`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::access::{PoolKind, Sb7Tx, TxR};
use crate::ids::{BaseAssemblyId, ComplexAssemblyId, CompositePartId};
use crate::objects::{
    AssemblyChildren, AtomicPart, BaseAssembly, ComplexAssembly, CompositePart, Connection,
    Document, CONNECTION_TYPES, DESIGN_TYPES,
};
use crate::params::StructureParams;
use crate::text;

/// Census of the objects created by [`build`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildStats {
    pub complex_assemblies: usize,
    pub base_assemblies: usize,
    pub composite_parts: usize,
    pub atomic_parts: usize,
    pub documents: usize,
    pub connections: usize,
}

/// A newly created assembly (SM7 may create either kind as a subtree root).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NewAssembly {
    Complex(ComplexAssemblyId),
    Base(BaseAssemblyId),
}

fn random_date(rng: &mut SmallRng, params: &StructureParams) -> i32 {
    rng.gen_range(params.min_date..=params.max_date)
}

fn random_kind(rng: &mut SmallRng) -> u8 {
    rng.gen_range(0..DESIGN_TYPES.len() as u8)
}

/// Creates one composite part with its document and graph of atomic parts,
/// unlinked from any base assembly — exactly what SM1 does.
///
/// Returns `None` (creating nothing) when any required pool lacks
/// capacity, so non-rollback backends never observe partial creations.
pub fn create_composite_with_graph<T: Sb7Tx>(
    tx: &mut T,
    params: &StructureParams,
    rng: &mut SmallRng,
) -> TxR<Option<CompositePartId>> {
    if tx.pool_capacity(PoolKind::Composite)? < 1
        || tx.pool_capacity(PoolKind::Document)? < 1
        || tx.pool_capacity(PoolKind::Atomic)? < params.atomics_per_comp
    {
        return Ok(None);
    }

    let comp_date = random_date(rng, params);
    let comp_kind = random_kind(rng);
    let Some(comp_id) = tx.create_composite(|id| CompositePart {
        id,
        kind: comp_kind,
        build_date: comp_date,
        doc: crate::ids::DocumentId(0), // Patched below, after the document exists.
        root_part: crate::ids::AtomicPartId(0), // Patched below.
        parts: Vec::new(),
        used_in: Vec::new(),
    })?
    else {
        return Ok(None);
    };

    let doc_size = params.doc_size;
    let doc_id = tx
        .create_document(|id| Document {
            id,
            title: text::document_title(comp_id.raw()),
            text: text::document_text(comp_id.raw(), doc_size),
            part: comp_id,
        })?
        .expect("document pool capacity checked above");

    // Create the atomic parts first, then wire the connection graph: a ring
    // guaranteeing reachability from the root part plus random extras, as
    // in OO7.
    let n = params.atomics_per_comp;
    let mut part_ids = Vec::with_capacity(n);
    for _ in 0..n {
        let date = random_date(rng, params);
        let kind = random_kind(rng);
        let x = rng.gen_range(0..100_000);
        let y = rng.gen_range(0..100_000);
        let id = tx
            .create_atomic(|id| AtomicPart {
                id,
                kind,
                build_date: date,
                x,
                y,
                to: Vec::new(),
                owner: comp_id,
            })?
            .expect("atomic pool capacity checked above");
        part_ids.push(id);
    }
    for (i, &id) in part_ids.iter().enumerate() {
        let mut conns = Vec::with_capacity(params.conns_per_atomic);
        // Ring edge keeps the whole graph reachable from parts[0].
        conns.push(Connection {
            kind: rng.gen_range(0..CONNECTION_TYPES.len() as u8),
            length: rng.gen_range(1..1_000),
            to: part_ids[(i + 1) % n],
        });
        for _ in 1..params.conns_per_atomic {
            conns.push(Connection {
                kind: rng.gen_range(0..CONNECTION_TYPES.len() as u8),
                length: rng.gen_range(1..1_000),
                to: part_ids[rng.gen_range(0..n)],
            });
        }
        tx.atomic_mut(id, |p| p.to = conns)?;
    }

    let root_part = part_ids[0];
    tx.composite_mut(comp_id, |c| {
        c.doc = doc_id;
        c.root_part = root_part;
        c.parts = part_ids;
    })?;
    Ok(Some(comp_id))
}

/// Builds a full assembly subtree whose root sits at `level` (base
/// assembly for level 1, complex assembly above), attached to `parent`.
///
/// `library` is the candidate set of composite parts; each created base
/// assembly links to `comps_per_base` random members when `link_components`
/// is set (initial build), or none otherwise (SM7 creates bare bases, which
/// can later gain links via SM3).
///
/// Returns `None` when an id pool runs dry; callers that cannot roll back
/// must pre-check capacity with [`subtree_cost`].
pub fn build_assembly_subtree<T: Sb7Tx>(
    tx: &mut T,
    params: &StructureParams,
    rng: &mut SmallRng,
    level: u8,
    parent: Option<ComplexAssemblyId>,
    link_components: bool,
    library: &[CompositePartId],
) -> TxR<Option<NewAssembly>> {
    if level == 1 {
        let parent = parent.expect("base assemblies always have a parent");
        let date = random_date(rng, params);
        let kind = random_kind(rng);
        let mut components = Vec::new();
        if link_components && !library.is_empty() {
            for _ in 0..params.comps_per_base {
                components.push(library[rng.gen_range(0..library.len())]);
            }
        }
        let Some(id) = tx.create_base(|id| BaseAssembly {
            id,
            kind,
            build_date: date,
            parent,
            components: components.clone(),
        })?
        else {
            return Ok(None);
        };
        for comp in components {
            tx.composite_mut(comp, |c| c.used_in.push(id))?;
        }
        return Ok(Some(NewAssembly::Base(id)));
    }

    let date = random_date(rng, params);
    let kind = random_kind(rng);
    let children = if level == 2 {
        AssemblyChildren::Base(Vec::new())
    } else {
        AssemblyChildren::Complex(Vec::new())
    };
    let Some(id) = tx.create_complex(level, |id| ComplexAssembly {
        id,
        kind,
        build_date: date,
        parent,
        level,
        children,
    })?
    else {
        return Ok(None);
    };

    for _ in 0..params.assembly_fanout {
        let child = build_assembly_subtree(
            tx,
            params,
            rng,
            level - 1,
            Some(id),
            link_components,
            library,
        )?;
        match child {
            Some(NewAssembly::Complex(c)) => tx.complex_mut(id, |a| match &mut a.children {
                AssemblyChildren::Complex(v) => v.push(c),
                AssemblyChildren::Base(_) => unreachable!("level > 2 has complex children"),
            })?,
            Some(NewAssembly::Base(b)) => tx.complex_mut(id, |a| match &mut a.children {
                AssemblyChildren::Base(v) => v.push(b),
                AssemblyChildren::Complex(_) => unreachable!("level 2 has base children"),
            })?,
            None => return Ok(None),
        }
    }
    Ok(Some(NewAssembly::Complex(id)))
}

/// Pool cost of a full subtree rooted at `level`:
/// `(complex assemblies, base assemblies)`.
pub fn subtree_cost(params: &StructureParams, level: u8) -> (usize, usize) {
    if level == 1 {
        return (0, 1);
    }
    let f = params.assembly_fanout;
    let mut complexes = 0;
    let mut width = 1;
    for _ in 2..=level {
        complexes += width;
        width *= f;
    }
    (complexes, width)
}

/// Populates an empty workspace with the given parameters (deterministic
/// in `seed`): first the design library of `library_size` composite parts,
/// then the assembly tree with its root at `assembly_levels`.
pub fn build<T: Sb7Tx>(tx: &mut T, params: &StructureParams, seed: u64) -> TxR<BuildStats> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut library = Vec::with_capacity(params.library_size);
    for _ in 0..params.library_size {
        let id = create_composite_with_graph(tx, params, &mut rng)?
            .expect("pools are sized for the initial library");
        library.push(id);
    }

    let root = build_assembly_subtree(
        tx,
        params,
        &mut rng,
        params.assembly_levels,
        None,
        true,
        &library,
    )?
    .expect("pools are sized for the initial tree");
    let NewAssembly::Complex(root) = root else {
        unreachable!("the tree root is a complex assembly (levels >= 2)");
    };
    tx.set_design_root(root)?;

    Ok(BuildStats {
        complex_assemblies: params.initial_complexes(),
        base_assemblies: params.initial_bases(),
        composite_parts: params.library_size,
        atomic_parts: params.initial_atomics(),
        documents: params.library_size,
        connections: params.initial_atomics() * params.conns_per_atomic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{DirectTx, Workspace};

    #[test]
    fn subtree_cost_matches_closed_form() {
        let p = StructureParams::standard(); // fanout 3
        assert_eq!(subtree_cost(&p, 1), (0, 1));
        assert_eq!(subtree_cost(&p, 2), (1, 3));
        assert_eq!(subtree_cost(&p, 3), (1 + 3, 9));
        assert_eq!(subtree_cost(&p, 7), (364, 729));
    }

    #[test]
    fn build_is_deterministic() {
        let p = StructureParams::tiny();
        let a = Workspace::build(p.clone(), 42);
        let b = Workspace::build(p, 42);
        // Spot-check: same random dates on the same part.
        let pa = a.atomics.store.get(5).unwrap();
        let pb = b.atomics.store.get(5).unwrap();
        assert_eq!(pa, pb);
        assert_eq!(a.module.design_root, b.module.design_root);
    }

    #[test]
    fn build_census_matches_params() {
        let p = StructureParams::tiny();
        let mut ws = Workspace::new(p.clone());
        let stats = {
            let mut tx = DirectTx::writing(&mut ws);
            build(&mut tx, &p, 7).unwrap()
        };
        assert_eq!(stats.base_assemblies, p.initial_bases());
        assert_eq!(stats.complex_assemblies, p.initial_complexes());
        assert_eq!(ws.bases.store.live(), p.initial_bases());
        assert_eq!(ws.atomics.store.live(), p.initial_atomics());
        assert_eq!(ws.composites.store.live(), p.library_size);
        assert_eq!(ws.documents.store.live(), p.library_size);
        assert_ne!(ws.module.design_root.raw(), 0);
    }

    #[test]
    fn composite_graph_is_ring_connected() {
        let p = StructureParams::tiny();
        let ws = Workspace::build(p.clone(), 3);
        let comp = ws.composites.store.get(1).unwrap();
        assert_eq!(comp.parts.len(), p.atomics_per_comp);
        assert_eq!(comp.root_part, comp.parts[0]);
        // Every part has the right number of connections, all internal.
        for &pid in &comp.parts {
            let part = ws.atomics.store.get(pid.raw()).unwrap();
            assert_eq!(part.to.len(), p.conns_per_atomic);
            assert_eq!(part.owner, comp.id);
            for c in &part.to {
                assert!(comp.parts.contains(&c.to));
            }
        }
        // Document is wired both ways.
        let doc = ws.documents.store.get(comp.doc.raw()).unwrap();
        assert_eq!(doc.part, comp.id);
        assert!(doc.title.contains("#1"));
    }
}
