//! Per-operation access declarations for the locking strategies.
//!
//! The medium-grained strategy of the paper (Figure 5) protects each
//! assembly level, all composite parts, all atomic parts, all documents and
//! the manual with one read-write lock each, plus a structure-modification
//! gate acquired in write mode by SM operations and read mode by everything
//! else. An [`AccessSpec`] states, per operation, which of those locks are
//! needed and in which mode; the coarse strategy derives its single lock's
//! mode from the same declaration.
//!
//! Locks are always acquired in one canonical order (the field order of
//! this struct: gate, assembly levels top-down, composites, atomics,
//! documents, manual), which rules out deadlock by construction.

/// Lock mode for one group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Mode {
    /// The group is not touched.
    #[default]
    None,
    /// Shared access.
    Read,
    /// Exclusive access.
    Write,
}

impl Mode {
    /// True for `Read` or `Write`.
    pub fn touched(self) -> bool {
        !matches!(self, Mode::None)
    }

    /// True for `Write`.
    pub fn is_write(self) -> bool {
        matches!(self, Mode::Write)
    }

    /// The stronger of two modes (`None < Read < Write`).
    pub fn max(self, other: Mode) -> Mode {
        match (self, other) {
            (Mode::Write, _) | (_, Mode::Write) => Mode::Write,
            (Mode::Read, _) | (_, Mode::Read) => Mode::Read,
            (Mode::None, Mode::None) => Mode::None,
        }
    }
}

/// Maximum number of assembly levels supported by the lock tables.
pub const MAX_LEVELS: usize = 7;

/// A set of index shards, as a 64-bit mask (bit `s` = shard `s`; see
/// [`crate::sharded::MAX_SHARDS`]).
///
/// Operations whose atomic-part footprint is known up front (the OP1/OP9/
/// OP15 family draws its ten ids before the transaction begins) narrow
/// their [`AccessSpec`] to the shards those ids route to; everything else
/// declares [`ShardSet::ALL`]. Backends intersect the declared set with
/// the configured shard count, so `ALL` means "every configured shard"
/// regardless of how many there are.
///
/// As a bitmask the set is canonical by construction: unions cannot
/// introduce duplicates and membership is order-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShardSet(pub u64);

impl ShardSet {
    /// Every shard (the default: no narrowing).
    pub const ALL: ShardSet = ShardSet(u64::MAX);
    /// No shard.
    pub const EMPTY: ShardSet = ShardSet(0);

    /// The singleton set of one shard index (< 64).
    pub fn of(shard: usize) -> ShardSet {
        ShardSet(0).with(shard)
    }

    /// This set plus one shard.
    pub fn with(self, shard: usize) -> ShardSet {
        assert!(shard < 64, "shard index {shard} out of mask range");
        ShardSet(self.0 | (1 << shard))
    }

    /// True when the shard is in the set.
    pub fn contains(self, shard: usize) -> bool {
        shard < 64 && self.0 & (1 << shard) != 0
    }

    /// Set union (bitwise or — canonical and duplicate-free).
    pub fn union(self, other: ShardSet) -> ShardSet {
        ShardSet(self.0 | other.0)
    }

    /// True when no narrowing is in effect.
    pub fn is_all(self) -> bool {
        self.0 == u64::MAX
    }

    /// Number of member shards among the first `shards` configured ones.
    pub fn count(self, shards: usize) -> usize {
        (0..shards.min(64)).filter(|&s| self.contains(s)).count()
    }
}

impl Default for ShardSet {
    /// The default is "every shard": an unnarrowed declaration.
    fn default() -> Self {
        ShardSet::ALL
    }
}

/// Which lock groups an operation touches, and how.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct AccessSpec {
    /// The structure-modification gate: `Write` for SM1–SM8, `Read` for
    /// every other operation.
    pub sm: Mode,
    /// Assembly levels; slot 0 is level 1 (base assemblies), slots 1..7
    /// are complex-assembly levels 2..=7. Levels beyond the configured
    /// tree height are simply never populated.
    pub levels: [Mode; MAX_LEVELS],
    /// All composite parts (their stores, bags and index).
    pub composites: Mode,
    /// All atomic parts (stores, connections, both indexes).
    pub atomics: Mode,
    /// Which atomic-part index shards the `atomics` mode applies to.
    /// Meaningful only when `atomics` is touched; backends with per-shard
    /// atomic locks (the medium strategy) acquire exactly these shards.
    pub atomic_shards: ShardSet,
    /// All documents (store and title index).
    pub documents: Mode,
    /// The manual.
    pub manual: Mode,
}

impl AccessSpec {
    /// A builder-style constructor starting from "touch nothing".
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks this operation as a structure modification (gate in write
    /// mode).
    pub fn sm_op(mut self) -> Self {
        self.sm = Mode::Write;
        self
    }

    /// Marks a regular operation (gate in read mode).
    pub fn regular(mut self) -> Self {
        self.sm = Mode::Read;
        self
    }

    /// Sets the mode of a single assembly level (1-based).
    pub fn level(mut self, level: u8, mode: Mode) -> Self {
        self.levels[usize::from(level) - 1] = mode;
        self
    }

    /// Sets the mode of an inclusive range of assembly levels (1-based).
    pub fn levels(mut self, from: u8, to: u8, mode: Mode) -> Self {
        for l in from..=to {
            self.levels[usize::from(l) - 1] = mode;
        }
        self
    }

    /// Sets the composite-part group mode.
    pub fn composites(mut self, mode: Mode) -> Self {
        self.composites = mode;
        self
    }

    /// Sets the atomic-part group mode (over all shards).
    pub fn atomics(mut self, mode: Mode) -> Self {
        self.atomics = mode;
        self
    }

    /// Narrows the atomic-part declaration to a shard set. Only sound
    /// when the operation's atomic accesses provably route to those
    /// shards (the engine narrows the OP1/OP9/OP15 family by replaying
    /// their pre-drawn ids).
    pub fn atomics_shards(mut self, shards: ShardSet) -> Self {
        self.atomic_shards = shards;
        self
    }

    /// Sets the document group mode.
    pub fn documents(mut self, mode: Mode) -> Self {
        self.documents = mode;
        self
    }

    /// Sets the manual group mode.
    pub fn manual(mut self, mode: Mode) -> Self {
        self.manual = mode;
        self
    }

    /// The union of two declarations: every group in the stronger of the
    /// two modes. A batch of operations executed inside one critical
    /// section (the service layer's read-only batching) needs exactly the
    /// union of its members' lock sets; canonical acquisition order makes
    /// the union as deadlock-free as its parts.
    pub fn union(&self, other: &AccessSpec) -> AccessSpec {
        let mut levels = [Mode::None; MAX_LEVELS];
        for (i, slot) in levels.iter_mut().enumerate() {
            *slot = self.levels[i].max(other.levels[i]);
        }
        // Shard narrowing only means something while the group is
        // touched: an untouched side contributes no shards, whatever its
        // (defaulted) mask says.
        let atomic_shards = match (self.atomics.touched(), other.atomics.touched()) {
            (true, true) => self.atomic_shards.union(other.atomic_shards),
            (true, false) => self.atomic_shards,
            (false, true) => other.atomic_shards,
            (false, false) => ShardSet::ALL,
        };
        AccessSpec {
            sm: self.sm.max(other.sm),
            levels,
            composites: self.composites.max(other.composites),
            atomics: self.atomics.max(other.atomics),
            atomic_shards,
            documents: self.documents.max(other.documents),
            manual: self.manual.max(other.manual),
        }
    }

    /// True when two operations may share one merged acquisition (group
    /// commit) without either losing concurrency it was entitled to.
    ///
    /// Per lock group the pair is compatible when at most one side
    /// touches it, or both touch it in the *same* mode — merging two
    /// writers turns two exclusive acquisitions into one (the group
    /// commit), while a read/write mix would force the reader to an
    /// exclusive lock it never asked for. The atomic-part group also
    /// accepts **disjoint** shard sets: those route to different
    /// physical locks under per-shard backends, so the merged plan
    /// (union of sets, stronger mode) still covers each member without
    /// creating a conflict between them. Symmetric by construction.
    ///
    /// The merged batch executes under [`AccessSpec::union`], which is a
    /// superset of every member's plan (see the `props` tests), so a
    /// batch admitted by this predicate is always lock-safe; the
    /// predicate only decides when merging is *profitable* rather than
    /// over-serializing.
    pub fn compatible_for_group_commit(&self, other: &AccessSpec) -> bool {
        fn group_ok(a: Mode, b: Mode) -> bool {
            !(a.touched() && b.touched()) || a == b
        }
        let atomics_ok = if self.atomics.touched() && other.atomics.touched() {
            if self.atomics == Mode::Read && other.atomics == Mode::Read {
                // Shared locks never conflict; any shard sets may merge.
                true
            } else {
                let disjoint = self.atomic_shards.0 & other.atomic_shards.0 == 0;
                disjoint
                    || (self.atomics == other.atomics && self.atomic_shards == other.atomic_shards)
            }
        } else {
            true
        };
        group_ok(self.sm, other.sm)
            && self
                .levels
                .iter()
                .zip(&other.levels)
                .all(|(&a, &b)| group_ok(a, b))
            && group_ok(self.composites, other.composites)
            && atomics_ok
            && group_ok(self.documents, other.documents)
            && group_ok(self.manual, other.manual)
    }

    /// Whether any group (or the gate) is requested in write mode; the
    /// coarse strategy takes its single lock in write mode iff this holds.
    pub fn any_write(&self) -> bool {
        self.sm.is_write()
            || self.levels.iter().any(|m| m.is_write())
            || self.composites.is_write()
            || self.atomics.is_write()
            || self.documents.is_write()
            || self.manual.is_write()
    }

    /// Number of read-write locks this operation acquires under the
    /// medium-grained strategy (the paper counts 9 for T1: seven assembly
    /// levels plus composite parts plus atomic parts; the SM gate is the
    /// strategy-internal extra).
    pub fn lock_count(&self) -> usize {
        self.levels.iter().filter(|m| m.touched()).count()
            + usize::from(self.composites.touched())
            + usize::from(self.atomics.touched())
            + usize::from(self.documents.touched())
            + usize::from(self.manual.touched())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_shape_has_nine_locks() {
        // T1 reads all assembly levels, composites and atomics.
        let spec = AccessSpec::new()
            .regular()
            .levels(1, 7, Mode::Read)
            .composites(Mode::Read)
            .atomics(Mode::Read);
        assert_eq!(spec.lock_count(), 9);
        assert!(!spec.any_write());
    }

    #[test]
    fn sm_spec_is_write() {
        let spec = AccessSpec::new().sm_op().composites(Mode::Write);
        assert!(spec.any_write());
        assert_eq!(spec.sm, Mode::Write);
    }

    #[test]
    fn level_indexing_is_one_based() {
        let spec = AccessSpec::new().level(1, Mode::Write).level(7, Mode::Read);
        assert_eq!(spec.levels[0], Mode::Write);
        assert_eq!(spec.levels[6], Mode::Read);
        assert_eq!(spec.levels[3], Mode::None);
    }

    #[test]
    fn union_takes_the_stronger_mode_per_group() {
        let a = AccessSpec::new()
            .regular()
            .level(1, Mode::Read)
            .composites(Mode::Read);
        let b = AccessSpec::new()
            .regular()
            .level(1, Mode::Write)
            .atomics(Mode::Read);
        let u = a.union(&b);
        assert_eq!(u.sm, Mode::Read);
        assert_eq!(u.levels[0], Mode::Write);
        assert_eq!(u.composites, Mode::Read);
        assert_eq!(u.atomics, Mode::Read);
        assert_eq!(u.documents, Mode::None);
        // Union is commutative and idempotent.
        assert_eq!(u, b.union(&a));
        assert_eq!(u, u.union(&u));
    }

    #[test]
    fn mode_max_is_a_total_order() {
        assert_eq!(Mode::None.max(Mode::Read), Mode::Read);
        assert_eq!(Mode::Read.max(Mode::Write), Mode::Write);
        assert_eq!(Mode::Write.max(Mode::None), Mode::Write);
        assert_eq!(Mode::None.max(Mode::None), Mode::None);
    }

    #[test]
    fn shard_sets_are_canonical_masks() {
        let a = ShardSet::of(3).with(5);
        assert!(a.contains(3) && a.contains(5) && !a.contains(4));
        assert_eq!(a.count(8), 2);
        // Re-adding a member changes nothing (no duplicates possible).
        assert_eq!(a.with(3), a);
        // Union is commutative, associative-by-construction, idempotent.
        let b = ShardSet::of(5).with(7);
        assert_eq!(a.union(b), b.union(a));
        assert_eq!(a.union(a), a);
        assert_eq!(a.union(b).count(8), 3);
        assert!(ShardSet::ALL.contains(63));
        assert!(ShardSet::default().is_all());
        assert_eq!(ShardSet::EMPTY.count(64), 0);
    }

    #[test]
    fn union_merges_shard_sets_only_when_touched() {
        let narrowed = AccessSpec::new()
            .regular()
            .atomics(Mode::Read)
            .atomics_shards(ShardSet::of(2));
        let other_narrowed = AccessSpec::new()
            .regular()
            .atomics(Mode::Write)
            .atomics_shards(ShardSet::of(6));
        let untouched = AccessSpec::new().regular().manual(Mode::Read);

        let u = narrowed.union(&other_narrowed);
        assert_eq!(u.atomics, Mode::Write);
        assert_eq!(u.atomic_shards, ShardSet::of(2).with(6));

        // An untouched side must not widen the narrowing to ALL through
        // its defaulted mask.
        let v = narrowed.union(&untouched);
        assert_eq!(v.atomic_shards, ShardSet::of(2));
        assert_eq!(untouched.union(&narrowed).atomic_shards, ShardSet::of(2));

        // A genuinely unnarrowed toucher does widen.
        let wide = AccessSpec::new().regular().atomics(Mode::Read);
        assert!(narrowed.union(&wide).atomic_shards.is_all());
    }

    #[test]
    fn group_commit_pairs_read_only_operations() {
        // The PR 3 read-only batching rule is a special case: two
        // read-only declarations are always compatible.
        let t1 = AccessSpec::new()
            .regular()
            .levels(1, 7, Mode::Read)
            .composites(Mode::Read)
            .atomics(Mode::Read);
        let st = AccessSpec::new()
            .regular()
            .atomics(Mode::Read)
            .atomics_shards(ShardSet::of(3));
        assert!(t1.compatible_for_group_commit(&st));
        assert!(st.compatible_for_group_commit(&t1));
    }

    #[test]
    fn group_commit_merges_identical_writers_and_disjoint_shards() {
        let w = AccessSpec::new()
            .regular()
            .atomics(Mode::Write)
            .atomics_shards(ShardSet::of(2));
        // Identical write plans group-commit.
        assert!(w.compatible_for_group_commit(&w));
        // Disjoint shard sets route to different locks: mergeable even
        // though both write.
        let other_shard = AccessSpec::new()
            .regular()
            .atomics(Mode::Write)
            .atomics_shards(ShardSet::of(5));
        assert!(w.compatible_for_group_commit(&other_shard));
        // Overlapping but non-identical write sets are not merged.
        let overlapping = AccessSpec::new()
            .regular()
            .atomics(Mode::Write)
            .atomics_shards(ShardSet::of(2).with(5));
        assert!(!w.compatible_for_group_commit(&overlapping));
    }

    #[test]
    fn group_commit_rejects_read_write_mixes_and_sm_pairs() {
        let reader = AccessSpec::new().regular().composites(Mode::Read);
        let writer = AccessSpec::new().regular().composites(Mode::Write);
        assert!(!reader.compatible_for_group_commit(&writer));
        // The SM gate is Write for SM ops and Read for everything else,
        // so an SM op never batches with a regular one.
        let sm = AccessSpec::new().sm_op().composites(Mode::Write);
        assert!(!sm.compatible_for_group_commit(&writer));
        // ... but two SM ops with the same plan do.
        assert!(sm.compatible_for_group_commit(&sm));
    }

    #[test]
    fn mode_predicates() {
        assert!(Mode::Read.touched());
        assert!(Mode::Write.touched());
        assert!(!Mode::None.touched());
        assert!(Mode::Write.is_write());
        assert!(!Mode::Read.is_write());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn set_of(shards: &[usize]) -> ShardSet {
            shards.iter().fold(ShardSet::EMPTY, |s, &i| s.with(i))
        }

        proptest! {
            /// Unions of per-shard lock sets stay canonical and
            /// deduplicated: membership is exactly the set-union of the
            /// inputs, independent of construction order or repetition,
            /// and union is commutative, associative and idempotent.
            #[test]
            fn union_of_shard_sets_is_canonical(
                a in proptest::collection::vec(0usize..64, 0..20),
                b in proptest::collection::vec(0usize..64, 0..20),
                c in proptest::collection::vec(0usize..64, 0..20),
            ) {
                let (sa, sb, sc) = (set_of(&a), set_of(&b), set_of(&c));
                let u = sa.union(sb);
                for s in 0..64 {
                    prop_assert_eq!(u.contains(s), a.contains(&s) || b.contains(&s));
                }
                // Repetition in the input cannot inflate the set.
                let doubled: Vec<usize> = a.iter().chain(a.iter()).copied().collect();
                prop_assert_eq!(set_of(&doubled), sa);
                prop_assert_eq!(u, sb.union(sa));
                prop_assert_eq!(u.union(u), u);
                prop_assert_eq!(sa.union(sb).union(sc), sa.union(sb.union(sc)));
                prop_assert_eq!(u.count(64), {
                    let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
                    all.sort_unstable();
                    all.dedup();
                    all.len()
                });
            }

            /// Spec-level union respects shard narrowing: the merged
            /// atomic shard set is the member union when both sides touch
            /// atomics, the touching side's set when only one does, and
            /// ALL when neither does (the default declaration).
            #[test]
            fn spec_union_narrows_exactly(
                a in proptest::collection::vec(0usize..64, 1..10),
                b in proptest::collection::vec(0usize..64, 1..10),
                touch_a in any::<bool>(),
                touch_b in any::<bool>(),
            ) {
                let mk = |touched: bool, shards: &[usize]| {
                    let spec = AccessSpec::new().regular();
                    if touched {
                        spec.atomics(Mode::Read).atomics_shards(set_of(shards))
                    } else {
                        spec
                    }
                };
                let u = mk(touch_a, &a).union(&mk(touch_b, &b));
                let expect = match (touch_a, touch_b) {
                    (true, true) => set_of(&a).union(set_of(&b)),
                    (true, false) => set_of(&a),
                    (false, true) => set_of(&b),
                    (false, false) => ShardSet::ALL,
                };
                prop_assert_eq!(u.atomic_shards, expect);
                // Union with itself is a fixpoint (canonical form).
                prop_assert_eq!(u.union(&u), u);
            }

            /// The group-commit predicate is symmetric, and the merged
            /// plan of ANY pair — compatible or not — is a superset of
            /// each member's: every group at least as strong a mode, and
            /// the atomic shard set covering each toucher's set (no lost
            /// acquisition).
            #[test]
            fn group_commit_is_symmetric_and_unions_lose_no_locks(
                a in arb_spec(),
                b in arb_spec(),
            ) {
                prop_assert_eq!(
                    a.compatible_for_group_commit(&b),
                    b.compatible_for_group_commit(&a)
                );
                let u = a.union(&b);
                for member in [&a, &b] {
                    prop_assert!(mode_geq(u.sm, member.sm));
                    for (mu, mm) in u.levels.iter().zip(&member.levels) {
                        prop_assert!(mode_geq(*mu, *mm));
                    }
                    prop_assert!(mode_geq(u.composites, member.composites));
                    prop_assert!(mode_geq(u.atomics, member.atomics));
                    prop_assert!(mode_geq(u.documents, member.documents));
                    prop_assert!(mode_geq(u.manual, member.manual));
                    if member.atomics.touched() {
                        // Shard coverage: every shard the member declared
                        // is in the merged set.
                        prop_assert_eq!(
                            u.atomic_shards.0 & member.atomic_shards.0,
                            member.atomic_shards.0
                        );
                    }
                }
                // Reflexivity: every plan can group-commit with itself.
                prop_assert!(a.compatible_for_group_commit(&a));
            }
        }

        /// `b` is satisfied by holding `a` (None < Read < Write).
        fn mode_geq(a: Mode, b: Mode) -> bool {
            a.max(b) == a
        }

        fn arb_mode() -> impl Strategy<Value = Mode> {
            prop_oneof![Just(Mode::None), Just(Mode::Read), Just(Mode::Write)]
        }

        fn arb_spec() -> impl Strategy<Value = AccessSpec> {
            (
                arb_mode(),
                proptest::collection::vec(arb_mode(), MAX_LEVELS..MAX_LEVELS + 1),
                arb_mode(),
                (arb_mode(), any::<u64>()),
                arb_mode(),
                arb_mode(),
            )
                .prop_map(
                    |(sm, levels, composites, (atomics, mask), documents, manual)| {
                        let mut level_arr = [Mode::None; MAX_LEVELS];
                        level_arr.copy_from_slice(&levels);
                        AccessSpec {
                            sm,
                            levels: level_arr,
                            composites,
                            atomics,
                            // Touchers carry an arbitrary mask; untouched
                            // sides keep the defaulted ALL, as real specs do.
                            atomic_shards: if atomics.touched() {
                                ShardSet(mask)
                            } else {
                                ShardSet::ALL
                            },
                            documents,
                            manual,
                        }
                    },
                )
        }
    }
}
