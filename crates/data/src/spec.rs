//! Per-operation access declarations for the locking strategies.
//!
//! The medium-grained strategy of the paper (Figure 5) protects each
//! assembly level, all composite parts, all atomic parts, all documents and
//! the manual with one read-write lock each, plus a structure-modification
//! gate acquired in write mode by SM operations and read mode by everything
//! else. An [`AccessSpec`] states, per operation, which of those locks are
//! needed and in which mode; the coarse strategy derives its single lock's
//! mode from the same declaration.
//!
//! Locks are always acquired in one canonical order (the field order of
//! this struct: gate, assembly levels top-down, composites, atomics,
//! documents, manual), which rules out deadlock by construction.

/// Lock mode for one group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Mode {
    /// The group is not touched.
    #[default]
    None,
    /// Shared access.
    Read,
    /// Exclusive access.
    Write,
}

impl Mode {
    /// True for `Read` or `Write`.
    pub fn touched(self) -> bool {
        !matches!(self, Mode::None)
    }

    /// True for `Write`.
    pub fn is_write(self) -> bool {
        matches!(self, Mode::Write)
    }

    /// The stronger of two modes (`None < Read < Write`).
    pub fn max(self, other: Mode) -> Mode {
        match (self, other) {
            (Mode::Write, _) | (_, Mode::Write) => Mode::Write,
            (Mode::Read, _) | (_, Mode::Read) => Mode::Read,
            (Mode::None, Mode::None) => Mode::None,
        }
    }
}

/// Maximum number of assembly levels supported by the lock tables.
pub const MAX_LEVELS: usize = 7;

/// Which lock groups an operation touches, and how.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct AccessSpec {
    /// The structure-modification gate: `Write` for SM1–SM8, `Read` for
    /// every other operation.
    pub sm: Mode,
    /// Assembly levels; slot 0 is level 1 (base assemblies), slots 1..7
    /// are complex-assembly levels 2..=7. Levels beyond the configured
    /// tree height are simply never populated.
    pub levels: [Mode; MAX_LEVELS],
    /// All composite parts (their stores, bags and index).
    pub composites: Mode,
    /// All atomic parts (stores, connections, both indexes).
    pub atomics: Mode,
    /// All documents (store and title index).
    pub documents: Mode,
    /// The manual.
    pub manual: Mode,
}

impl AccessSpec {
    /// A builder-style constructor starting from "touch nothing".
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks this operation as a structure modification (gate in write
    /// mode).
    pub fn sm_op(mut self) -> Self {
        self.sm = Mode::Write;
        self
    }

    /// Marks a regular operation (gate in read mode).
    pub fn regular(mut self) -> Self {
        self.sm = Mode::Read;
        self
    }

    /// Sets the mode of a single assembly level (1-based).
    pub fn level(mut self, level: u8, mode: Mode) -> Self {
        self.levels[usize::from(level) - 1] = mode;
        self
    }

    /// Sets the mode of an inclusive range of assembly levels (1-based).
    pub fn levels(mut self, from: u8, to: u8, mode: Mode) -> Self {
        for l in from..=to {
            self.levels[usize::from(l) - 1] = mode;
        }
        self
    }

    /// Sets the composite-part group mode.
    pub fn composites(mut self, mode: Mode) -> Self {
        self.composites = mode;
        self
    }

    /// Sets the atomic-part group mode.
    pub fn atomics(mut self, mode: Mode) -> Self {
        self.atomics = mode;
        self
    }

    /// Sets the document group mode.
    pub fn documents(mut self, mode: Mode) -> Self {
        self.documents = mode;
        self
    }

    /// Sets the manual group mode.
    pub fn manual(mut self, mode: Mode) -> Self {
        self.manual = mode;
        self
    }

    /// The union of two declarations: every group in the stronger of the
    /// two modes. A batch of operations executed inside one critical
    /// section (the service layer's read-only batching) needs exactly the
    /// union of its members' lock sets; canonical acquisition order makes
    /// the union as deadlock-free as its parts.
    pub fn union(&self, other: &AccessSpec) -> AccessSpec {
        let mut levels = [Mode::None; MAX_LEVELS];
        for (i, slot) in levels.iter_mut().enumerate() {
            *slot = self.levels[i].max(other.levels[i]);
        }
        AccessSpec {
            sm: self.sm.max(other.sm),
            levels,
            composites: self.composites.max(other.composites),
            atomics: self.atomics.max(other.atomics),
            documents: self.documents.max(other.documents),
            manual: self.manual.max(other.manual),
        }
    }

    /// Whether any group (or the gate) is requested in write mode; the
    /// coarse strategy takes its single lock in write mode iff this holds.
    pub fn any_write(&self) -> bool {
        self.sm.is_write()
            || self.levels.iter().any(|m| m.is_write())
            || self.composites.is_write()
            || self.atomics.is_write()
            || self.documents.is_write()
            || self.manual.is_write()
    }

    /// Number of read-write locks this operation acquires under the
    /// medium-grained strategy (the paper counts 9 for T1: seven assembly
    /// levels plus composite parts plus atomic parts; the SM gate is the
    /// strategy-internal extra).
    pub fn lock_count(&self) -> usize {
        self.levels.iter().filter(|m| m.touched()).count()
            + usize::from(self.composites.touched())
            + usize::from(self.atomics.touched())
            + usize::from(self.documents.touched())
            + usize::from(self.manual.touched())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_shape_has_nine_locks() {
        // T1 reads all assembly levels, composites and atomics.
        let spec = AccessSpec::new()
            .regular()
            .levels(1, 7, Mode::Read)
            .composites(Mode::Read)
            .atomics(Mode::Read);
        assert_eq!(spec.lock_count(), 9);
        assert!(!spec.any_write());
    }

    #[test]
    fn sm_spec_is_write() {
        let spec = AccessSpec::new().sm_op().composites(Mode::Write);
        assert!(spec.any_write());
        assert_eq!(spec.sm, Mode::Write);
    }

    #[test]
    fn level_indexing_is_one_based() {
        let spec = AccessSpec::new().level(1, Mode::Write).level(7, Mode::Read);
        assert_eq!(spec.levels[0], Mode::Write);
        assert_eq!(spec.levels[6], Mode::Read);
        assert_eq!(spec.levels[3], Mode::None);
    }

    #[test]
    fn union_takes_the_stronger_mode_per_group() {
        let a = AccessSpec::new()
            .regular()
            .level(1, Mode::Read)
            .composites(Mode::Read);
        let b = AccessSpec::new()
            .regular()
            .level(1, Mode::Write)
            .atomics(Mode::Read);
        let u = a.union(&b);
        assert_eq!(u.sm, Mode::Read);
        assert_eq!(u.levels[0], Mode::Write);
        assert_eq!(u.composites, Mode::Read);
        assert_eq!(u.atomics, Mode::Read);
        assert_eq!(u.documents, Mode::None);
        // Union is commutative and idempotent.
        assert_eq!(u, b.union(&a));
        assert_eq!(u, u.union(&u));
    }

    #[test]
    fn mode_max_is_a_total_order() {
        assert_eq!(Mode::None.max(Mode::Read), Mode::Read);
        assert_eq!(Mode::Read.max(Mode::Write), Mode::Write);
        assert_eq!(Mode::Write.max(Mode::None), Mode::Write);
        assert_eq!(Mode::None.max(Mode::None), Mode::None);
    }

    #[test]
    fn mode_predicates() {
        assert!(Mode::Read.touched());
        assert!(Mode::Write.touched());
        assert!(!Mode::None.touched());
        assert!(Mode::Write.is_write());
        assert!(!Mode::Read.is_write());
    }
}
