//! The OO7/STMBench7 shared data structure.
//!
//! This crate implements everything the paper calls "the core code" of
//! STMBench7: the object graph derived from the OO7 benchmark (Figure 1 of
//! the paper), the six indexes of Table 1, the id pools that bound structure
//! growth, text generation for documents and the manual, and — crucially —
//! the [`access::Sb7Tx`] trait through which *all* operations touch shared
//! state. The core code contains no concurrency control whatsoever; locking
//! strategies and STM runtimes implement `Sb7Tx` in the
//! `stmbench7-backend` crate, mirroring the paper's design where strategies
//! are merged with the synchronization-free core at compile time.
//!
//! # Layout
//!
//! * [`ids`] — typed object ids and bounded id pools,
//! * [`objects`] — the seven object kinds (module, manual, assemblies,
//!   composite parts, atomic parts with embedded connections, documents),
//! * [`params`] — structure-size presets (`paper_full`, `standard`,
//!   `small`, `tiny`),
//! * [`btree`] — the B+tree used for every index,
//! * [`sharded`] — [`sharded::ShardedIndex`], N per-shard B+trees behind
//!   one map API with order-preserving merged enumeration; the unit of
//!   per-shard locking in the backends (`--shards`),
//! * [`text`] — document/manual text generation and the search/replace
//!   operations the paper specifies,
//! * [`access`] — the `Sb7Tx` trait, transaction error types and the
//!   [`spec::AccessSpec`] lock declarations,
//! * [`workspace`] — the plain (synchronization-free) workspace, its lock
//!   groups and the [`workspace::DirectTx`] used by sequential and
//!   coarse-grained backends,
//! * [`builder`] — deterministic construction of the initial structure,
//! * [`mod@validate`] — structural invariant checking used throughout the
//!   test suite.

pub mod access;
pub mod btree;
pub mod builder;
pub mod ids;
pub mod objects;
pub mod params;
pub mod sharded;
pub mod spec;
pub mod text;
pub mod validate;
pub mod workspace;

pub use access::{OpOutcome, PoolKind, Sb7Tx, TxErr, TxR};
pub use builder::{build, BuildStats};
pub use ids::{
    AtomicPartId, BaseAssemblyId, ComplexAssemblyId, CompositePartId, DocumentId, IdPool,
};
pub use objects::{
    AtomicPart, BaseAssembly, ComplexAssembly, CompositePart, Connection, Document, Manual, Module,
};
pub use params::StructureParams;
pub use sharded::{ShardKey, ShardedIndex};
pub use spec::{AccessSpec, Mode, ShardSet};
pub use validate::{validate, Census};
pub use workspace::{DirectTx, Workspace};
