//! Software transactional memory runtimes for STMBench7.
//!
//! The paper evaluates STMBench7 over ASTM, an object-based STM with
//! *invisible reads* (a transaction's read list is private, so it must be
//! re-validated on every new open — O(k²) work for k reads) and
//! *object-granularity logging* (opening an object for writing clones the
//! whole object). Rust has no ASTM, so this crate provides three runtimes
//! built from scratch:
//!
//! * [`astm`] — a DSTM/ASTM-style locator-based runtime that reproduces
//!   exactly those cost characteristics, with pluggable contention
//!   managers ([`cm`], including the Polka manager the paper uses) and a
//!   visible-reads ablation mode;
//! * [`tl2`] — a TL2/LSA-style runtime (global version clock, commit-time
//!   O(k) validation, lazy versioned reads, optional timestamp extension),
//!   i.e. the class of remedies the paper's §5 cites (TL2, LSA, and the
//!   conflict-detection study of Spear et al.);
//! * [`norec`] — a NOrec-style runtime (no per-object metadata, one
//!   global sequence lock, value-based validation): the third design
//!   point in the remedy space, trading writer-writer parallelism for
//!   zero object overhead and reader resilience to unrelated commits.
//!
//! All implement the [`runtime::StmRuntime`] interface so the benchmark
//! backend is written once. All are *opaque*: live transactions only ever
//! observe consistent snapshots, which the property tests in this crate
//! check aggressively.

pub mod astm;
pub mod cm;
pub mod norec;
pub mod runtime;
pub mod stats;
pub mod tl2;

pub use astm::AstmRuntime;
pub use cm::ContentionManager;
pub use norec::NorecRuntime;
pub use runtime::{Abort, StmResult, StmRuntime, TxVal};
pub use stats::StatsSnapshot;
pub use tl2::Tl2Runtime;
