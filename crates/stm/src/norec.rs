//! A NOrec-style STM: no ownership records, one global sequence lock,
//! value-based validation.
//!
//! This is the third major design point in the remedy space the paper's
//! §5 opens (after TL2's global version clock, [`crate::tl2`], and
//! DSTM/ASTM locators, [`crate::astm`]):
//!
//! * **No per-object metadata.** A variable is just its committed value.
//!   Transactional bookkeeping lives entirely in the transaction and one
//!   global sequence lock, so memory overhead per object is zero — the
//!   opposite extreme from ASTM's per-object locator.
//! * **Value-based validation.** A reader records the value handles it
//!   observed; whenever the global clock moves, it re-checks that those
//!   handles are still current and adopts the new clock. Unrelated
//!   commits therefore never abort a reader — only commits that touched
//!   its read set do. Validation is O(read set) per clock movement, which
//!   is NOrec's known weakness under write-heavy loads; the
//!   `validation_steps` counter makes that cost visible.
//! * **Lazy writes behind a single commit lock.** Writes buffer in a
//!   redo log; commit increments the sequence lock to an odd value,
//!   publishes, and releases. Exactly one writer commits at a time —
//!   cheap commits, but writer-writer parallelism is nil (the design's
//!   stated trade-off).
//!
//! Like the other runtimes, values are immutable `Arc`s and "value"
//! comparison is `Arc` identity: strictly conservative (an ABA value
//! would revalidate as changed and abort — a spurious abort, never a
//! safety issue), and the retained handles pin the allocations so
//! identity cannot be recycled.

use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::runtime::{backoff, downcast, Abort, ErasedVal, StmResult, StmRuntime, TxVal};
use crate::stats::{Counters, LocalCounts, StatsSnapshot};

/// A variable: nothing but its committed value behind a short mutex.
struct NorecCell {
    value: Mutex<ErasedVal>,
}

impl NorecCell {
    fn load(&self) -> ErasedVal {
        self.value.lock().clone()
    }
}

/// A transactional variable managed by [`NorecRuntime`].
pub struct NorecVar<T> {
    cell: Arc<NorecCell>,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for NorecVar<T> {
    fn clone(&self) -> Self {
        NorecVar {
            cell: Arc::clone(&self.cell),
            _marker: PhantomData,
        }
    }
}

/// The NOrec runtime (see module docs).
///
/// # Examples
///
/// ```
/// use stmbench7_stm::{NorecRuntime, StmRuntime};
///
/// let rt = NorecRuntime::new();
/// let v = rt.new_var(40u64);
/// let out = rt.atomic(|tx| {
///     NorecRuntime::update(tx, &v, |n| *n += 1)?;
///     Ok(*NorecRuntime::read(tx, &v)? + 1)
/// });
/// assert_eq!(out, 42);
/// ```
pub struct NorecRuntime {
    /// Global sequence lock: even = quiescent, odd = a writer is
    /// publishing. Doubles as the validation clock.
    seqlock: AtomicU64,
    counters: Counters,
    ticket: AtomicU64,
}

impl NorecRuntime {
    /// Creates a fresh runtime.
    pub fn new() -> Self {
        NorecRuntime {
            seqlock: AtomicU64::new(0),
            counters: Counters::default(),
            ticket: AtomicU64::new(1),
        }
    }

    /// Spins until the sequence lock is even (no writer publishing) and
    /// returns it.
    fn wait_even(&self) -> u64 {
        loop {
            let t = self.seqlock.load(Ordering::Acquire);
            if t & 1 == 0 {
                return t;
            }
            std::hint::spin_loop();
        }
    }
}

impl Default for NorecRuntime {
    fn default() -> Self {
        Self::new()
    }
}

/// One transaction attempt.
pub struct NorecTx<'rt> {
    rt: &'rt NorecRuntime,
    /// The even sequence-lock value this attempt's reads are consistent
    /// with.
    snapshot: u64,
    /// Read set: the cells and the exact value handles observed. Keeping
    /// the handles alive pins their allocations, making pointer identity
    /// a sound (conservative) value comparison.
    reads: Vec<(Arc<NorecCell>, ErasedVal)>,
    read_index: HashMap<usize, usize>,
    /// Redo log: cell pointer → (cell, tentative value).
    writes: HashMap<usize, (Arc<NorecCell>, ErasedVal)>,
    local: LocalCounts,
    id: u64,
}

impl NorecTx<'_> {
    /// Value-based validation: re-check every recorded read, then adopt
    /// the given (even) clock as the new snapshot.
    fn validate_to(&mut self, time: u64) -> StmResult<()> {
        self.local.validation_steps += self.reads.len() as u64;
        for (cell, seen) in &self.reads {
            if !Arc::ptr_eq(&cell.load(), seen) {
                return Err(Abort);
            }
        }
        self.snapshot = time;
        Ok(())
    }

    /// The NOrec read protocol: read the value, and if the global clock
    /// moved since our snapshot, revalidate the read set before trusting
    /// it. Loops until value and clock agree.
    fn consistent_load(&mut self, cell: &Arc<NorecCell>) -> StmResult<ErasedVal> {
        loop {
            let value = cell.load();
            let now = self.rt.wait_even();
            if now == self.snapshot {
                return Ok(value);
            }
            self.validate_to(now)?;
            // Clock adopted; the value may have changed in between — loop
            // and re-read under the new snapshot.
            if Arc::ptr_eq(&cell.load(), &value) {
                return Ok(value);
            }
        }
    }
}

impl StmRuntime for NorecRuntime {
    type Var<T: TxVal> = NorecVar<T>;
    type Tx<'rt> = NorecTx<'rt>;

    fn new_var<T: TxVal>(&self, value: T) -> NorecVar<T> {
        NorecVar {
            cell: Arc::new(NorecCell {
                value: Mutex::new(Arc::new(value)),
            }),
            _marker: PhantomData,
        }
    }

    fn read<T: TxVal>(tx: &mut NorecTx<'_>, var: &NorecVar<T>) -> StmResult<Arc<T>> {
        let key = Arc::as_ptr(&var.cell) as usize;
        if let Some((_, buffered)) = tx.writes.get(&key) {
            return Ok(downcast(buffered.clone()));
        }
        if let Some(&idx) = tx.read_index.get(&key) {
            // Repeat read: the snapshot discipline guarantees the
            // recorded handle is still the consistent view.
            return Ok(downcast(tx.reads[idx].1.clone()));
        }
        let value = tx.consistent_load(&Arc::clone(&var.cell))?;
        tx.local.reads += 1;
        tx.read_index.insert(key, tx.reads.len());
        tx.reads.push((Arc::clone(&var.cell), value.clone()));
        Ok(downcast(value))
    }

    fn update<T: TxVal>(
        tx: &mut NorecTx<'_>,
        var: &NorecVar<T>,
        f: impl FnOnce(&mut T),
    ) -> StmResult<()> {
        let key = Arc::as_ptr(&var.cell) as usize;
        if let Some((_, buffered)) = tx.writes.get_mut(&key) {
            let mut arc_t: Arc<T> = downcast(buffered.clone());
            f(Arc::make_mut(&mut arc_t));
            *buffered = arc_t;
            return Ok(());
        }
        // Clone-on-write from a consistent read (registered, so commit
        // validation catches write-after-read-invalidation).
        let current: Arc<T> = Self::read(tx, var)?;
        let mut fresh = (*current).clone();
        tx.local.clones += 1;
        f(&mut fresh);
        tx.local.writes += 1;
        tx.writes
            .insert(key, (Arc::clone(&var.cell), Arc::new(fresh)));
        Ok(())
    }

    fn atomic<R>(&self, mut f: impl FnMut(&mut NorecTx<'_>) -> StmResult<R>) -> R {
        let mut attempt = 0u32;
        loop {
            self.counters.starts.fetch_add(1, Ordering::Relaxed);
            let mut tx = NorecTx {
                rt: self,
                snapshot: self.wait_even(),
                reads: Vec::new(),
                read_index: HashMap::new(),
                writes: HashMap::new(),
                local: LocalCounts::default(),
                id: self.ticket.fetch_add(1, Ordering::Relaxed),
            };
            let result = match f(&mut tx) {
                Ok(r) => commit(&mut tx).map(|()| r),
                Err(Abort) => Err(Abort),
            };
            tx.local.flush(&self.counters);
            match result {
                Ok(r) => {
                    self.counters.commits.fetch_add(1, Ordering::Relaxed);
                    return r;
                }
                Err(Abort) => {
                    self.counters.aborts.fetch_add(1, Ordering::Relaxed);
                    backoff(attempt, tx.id);
                    attempt = attempt.saturating_add(1);
                }
            }
        }
    }

    fn read_quiesced<T: TxVal>(&self, var: &NorecVar<T>) -> Arc<T> {
        downcast(var.cell.load())
    }

    fn snapshot(&self) -> StatsSnapshot {
        self.counters.snapshot()
    }
}

/// The NOrec commit: read-only transactions are already serialized by
/// their last validation; writers acquire the sequence lock (odd),
/// publish the redo log and release (even).
fn commit(tx: &mut NorecTx<'_>) -> StmResult<()> {
    if tx.writes.is_empty() {
        return Ok(());
    }
    let acquired = loop {
        let time = tx.rt.wait_even();
        if time != tx.snapshot {
            // A validation result computed while another writer was
            // publishing is discarded by the failing CAS below, so
            // validating against possibly in-flight values is safe.
            tx.validate_to(time)?;
        }
        if tx
            .rt
            .seqlock
            .compare_exchange(time, time + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            break time;
        }
        // Another writer won the lock; wait and revalidate.
    };
    for (cell, value) in tx.writes.values() {
        *cell.value.lock() = value.clone();
    }
    // Release: the new even value publishes the redo log to readers.
    tx.rt.seqlock.store(acquired + 2, Ordering::Release);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    type Rt = NorecRuntime;

    #[test]
    fn read_your_own_write() {
        let rt = Rt::new();
        let v = rt.new_var(1u32);
        let out = rt.atomic(|tx| {
            Rt::update(tx, &v, |n| *n = 5)?;
            Rt::update(tx, &v, |n| *n += 1)?;
            Ok(*Rt::read(tx, &v)?)
        });
        assert_eq!(out, 6);
        assert_eq!(rt.atomic(|tx| Ok(*Rt::read(tx, &v)?)), 6);
    }

    #[test]
    fn aborted_attempt_leaves_no_trace() {
        let rt = Rt::new();
        let v = rt.new_var(0u32);
        let tried = AtomicBool::new(false);
        let out = rt.atomic(|tx| {
            Rt::update(tx, &v, |n| *n += 1)?;
            if !tried.swap(true, Ordering::Relaxed) {
                return Err(Abort);
            }
            Ok(*Rt::read(tx, &v)?)
        });
        assert_eq!(out, 1);
        let s = rt.snapshot();
        assert_eq!((s.commits, s.aborts, s.starts), (1, 1, 2));
    }

    #[test]
    fn repeat_reads_return_the_snapshot_value() {
        // A repeat read of the same variable returns the recorded handle
        // even if a writer committed in between: the read-only
        // transaction simply serializes before the writer.
        let rt = Arc::new(Rt::new());
        let a = rt.new_var(0u64);
        let out = rt.atomic(|tx| {
            let x = *Rt::read(tx, &a)?;
            if x == 0 {
                std::thread::scope(|s| {
                    let rt2 = Arc::clone(&rt);
                    let a = a.clone();
                    s.spawn(move || rt2.atomic(|tx| NorecRuntime::update(tx, &a, |n| *n += 7)));
                });
            }
            let y = *Rt::read(tx, &a)?;
            Ok((x, y))
        });
        assert_eq!(out, (0, 0), "both reads observe the same snapshot");
        assert_eq!(rt.snapshot().aborts, 0);
        assert_eq!(rt.atomic(|tx| Ok(*Rt::read(tx, &a)?)), 7);
    }

    #[test]
    fn unrelated_commits_do_not_abort_readers() {
        // The NOrec selling point: value-based validation lets a reader
        // survive commits that do not touch its read set.
        let rt = Arc::new(Rt::new());
        let a = rt.new_var(10u64);
        let b = rt.new_var(20u64);
        let c = rt.new_var(5u64);
        let observed = rt.atomic(|tx| {
            let x = *Rt::read(tx, &a)?;
            // Commit to b on another thread, moving the global clock.
            std::thread::scope(|s| {
                let rt2 = Arc::clone(&rt);
                let b = b.clone();
                s.spawn(move || rt2.atomic(|tx| NorecRuntime::update(tx, &b, |n| *n += 1)));
            });
            // Reading a *new* variable observes the moved clock,
            // revalidates `a` by value, and succeeds without an abort.
            let y = *Rt::read(tx, &c)?;
            Ok(x + y)
        });
        assert_eq!(observed, 15);
        assert_eq!(rt.snapshot().aborts, 0, "no spurious aborts");
        assert!(rt.snapshot().validation_steps > 0, "revalidation happened");
    }

    #[test]
    fn conflicting_commit_aborts_the_reader_attempt() {
        let rt = Arc::new(Rt::new());
        let a = rt.new_var(0u64);
        let b = rt.new_var(100u64);
        let hit = AtomicBool::new(false);
        let out = rt.atomic(|tx| {
            let x = *Rt::read(tx, &a)?;
            if !hit.swap(true, Ordering::Relaxed) {
                // First attempt: another thread commits to `a` mid-flight.
                std::thread::scope(|s| {
                    let rt2 = Arc::clone(&rt);
                    let a = a.clone();
                    s.spawn(move || rt2.atomic(|tx| NorecRuntime::update(tx, &a, |n| *n += 7)));
                });
            }
            // Opening a fresh variable forces validation of `a`; the
            // first attempt must notice the conflict and abort.
            let y = *Rt::read(tx, &b)?;
            Ok(x + y)
        });
        assert_eq!(out, 107, "second attempt sees the committed value");
        assert!(rt.snapshot().aborts >= 1);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let rt = Arc::new(Rt::new());
        let v = rt.new_var(0u64);
        let threads = 4;
        let per = 500;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let rt = Arc::clone(&rt);
                let v = v.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        rt.atomic(|tx| Rt::update(tx, &v, |n| *n += 1));
                    }
                });
            }
        });
        assert_eq!(rt.atomic(|tx| Ok(*Rt::read(tx, &v)?)), threads * per);
    }

    #[test]
    fn bank_transfer_conserves_total() {
        let rt = Arc::new(Rt::new());
        let accounts: Vec<_> = (0..8).map(|_| rt.new_var(100i64)).collect();
        std::thread::scope(|s| {
            for t in 0..4usize {
                let rt = Arc::clone(&rt);
                let accounts = accounts.clone();
                s.spawn(move || {
                    for i in 0..300usize {
                        let from = (t + i) % accounts.len();
                        let to = (t * 3 + i * 7 + 1) % accounts.len();
                        if from == to {
                            continue;
                        }
                        rt.atomic(|tx| {
                            let balance = *Rt::read(tx, &accounts[from])?;
                            let amount = balance.min(10);
                            Rt::update(tx, &accounts[from], |b| *b -= amount)?;
                            Rt::update(tx, &accounts[to], |b| *b += amount)?;
                            Ok(())
                        });
                    }
                });
            }
        });
        let total: i64 = accounts.iter().map(|a| *rt.read_quiesced(a)).sum();
        assert_eq!(total, 800, "money must be conserved");
    }

    #[test]
    fn opacity_invariant_under_contention() {
        let rt = Arc::new(Rt::new());
        let x = rt.new_var(0i64);
        let y = rt.new_var(0i64);
        std::thread::scope(|s| {
            for t in 0..2 {
                let rt = Arc::clone(&rt);
                let (x, y) = (x.clone(), y.clone());
                s.spawn(move || {
                    for i in 0..300 {
                        rt.atomic(|tx| {
                            Rt::update(tx, &x, |v| *v += t * 10 + i)?;
                            Rt::update(tx, &y, |v| *v += t * 10 + i)?;
                            Ok(())
                        });
                    }
                });
            }
            for _ in 0..2 {
                let rt = Arc::clone(&rt);
                let (x, y) = (x.clone(), y.clone());
                s.spawn(move || {
                    for _ in 0..600 {
                        let (a, b) = rt.atomic(|tx| {
                            let a = *Rt::read(tx, &x)?;
                            let b = *Rt::read(tx, &y)?;
                            Ok((a, b))
                        });
                        assert_eq!(a, b, "opacity violation: observed x != y");
                    }
                });
            }
        });
    }

    #[test]
    fn read_only_transactions_never_take_the_lock() {
        let rt = Rt::new();
        let v = rt.new_var(3u32);
        let before = rt.seqlock.load(Ordering::Relaxed);
        for _ in 0..10 {
            rt.atomic(|tx| Ok(*Rt::read(tx, &v)?));
        }
        assert_eq!(rt.seqlock.load(Ordering::Relaxed), before);
    }

    #[test]
    fn sequence_lock_advances_by_two_per_writer() {
        let rt = Rt::new();
        let v = rt.new_var(0u32);
        let before = rt.seqlock.load(Ordering::Relaxed);
        rt.atomic(|tx| Rt::update(tx, &v, |n| *n += 1));
        rt.atomic(|tx| Rt::update(tx, &v, |n| *n += 1));
        let after = rt.seqlock.load(Ordering::Relaxed);
        assert_eq!(after, before + 4);
        assert_eq!(after & 1, 0, "lock released");
    }
}
