//! The ASTM-like object STM.
//!
//! This runtime reproduces the design properties the paper identifies as
//! the source of ASTM's STMBench7 results (§5):
//!
//! * **Invisible reads** — a transaction's read list is private. Nobody
//!   can see that an object is being read, so a writer can always acquire
//!   it; readers protect themselves by re-validating their *entire* read
//!   list on every new open. For a transaction that opens k objects this
//!   is O(k²) validation work — the long-traversal pathology.
//! * **Object-granularity logging** — opening an object for writing
//!   clones the whole object (DSTM-style locators with old/new versions).
//!   Updating one character of the manual copies the manual.
//! * **Eager write acquisition with contention management** — conflicting
//!   writers are arbitrated by a pluggable [`ContentionManager`]
//!   (Polka by default, as in the paper's experiments).
//!
//! Two ablation switches isolate the invisible-read cost the paper
//! diagnoses: [`AstmConfig::incremental_validation`] moves validation to
//! commit time (O(k) per transaction instead of O(k²)), and
//! [`AstmConfig::visible_reads`] switches to DSTM-style *visible* reads —
//! readers register in the locator and writers arbitrate them away
//! eagerly, removing validation entirely at the price of read-side
//! registration traffic on every object.
//!
//! Structure: each variable is a *locator* `(owner, old, new)` behind a
//! short mutex. The committed value is `old` unless the owner committed,
//! in which case it is `new`; commit is therefore a single status CAS in
//! the owner's descriptor — atomic for all owned objects at once — and
//! locators are lazily cleaned by later accessors. This is the DSTM/ASTM
//! commit protocol, which is what makes the runtime opaque without any
//! global lock.

use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::cm::{CmDecision, ContentionManager, TxDesc, ACTIVE, COMMITTED};
use crate::runtime::{backoff, downcast, Abort, ErasedVal, StmResult, StmRuntime, TxVal};
use crate::stats::{Counters, LocalCounts, StatsSnapshot};

/// The locator: who is writing, the last committed value, and the
/// writer's tentative value.
struct CellState {
    owner: Option<Arc<TxDesc>>,
    /// Registered visible readers (used only when
    /// [`AstmConfig::visible_reads`] is set; empty otherwise).
    readers: Vec<Arc<TxDesc>>,
    old: ErasedVal,
    new: Option<ErasedVal>,
}

struct Cell {
    state: Mutex<CellState>,
}

impl Cell {
    /// Resolves the currently committed value, lazily folding a finished
    /// owner's outcome into `old`. Must be called with the state lock held.
    fn resolve_committed(state: &mut CellState) -> ErasedVal {
        if let Some(owner) = &state.owner {
            match owner.status() {
                ACTIVE => state.old.clone(),
                COMMITTED => {
                    let newv = state.new.take().expect("committed owner left no value");
                    state.old = newv;
                    state.owner = None;
                    state.old.clone()
                }
                _ => {
                    state.new = None;
                    state.owner = None;
                    state.old.clone()
                }
            }
        } else {
            state.old.clone()
        }
    }

    /// Pointer identity of the value a validator should compare against:
    /// for the validating transaction itself, owned cells still validate
    /// against `old` (its writes take effect only at commit).
    fn committed_ptr(state: &mut CellState, me: &Arc<TxDesc>) -> usize {
        if let Some(owner) = &state.owner {
            match owner.status() {
                ACTIVE => erased_ptr(&state.old),
                COMMITTED => {
                    if Arc::ptr_eq(owner, me) {
                        // We cannot be validating after our own commit.
                        unreachable!("validation after own commit")
                    }
                    let newv = state.new.take().expect("committed owner left no value");
                    state.old = newv;
                    state.owner = None;
                    erased_ptr(&state.old)
                }
                _ => {
                    state.new = None;
                    state.owner = None;
                    erased_ptr(&state.old)
                }
            }
        } else {
            erased_ptr(&state.old)
        }
    }
}

fn erased_ptr(v: &ErasedVal) -> usize {
    Arc::as_ptr(v) as *const () as usize
}

/// A transactional variable managed by [`AstmRuntime`].
pub struct AstmVar<T> {
    cell: Arc<Cell>,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for AstmVar<T> {
    fn clone(&self) -> Self {
        AstmVar {
            cell: Arc::clone(&self.cell),
            _marker: PhantomData,
        }
    }
}

/// Configuration of the ASTM-like runtime.
#[derive(Clone, Copy, Debug)]
pub struct AstmConfig {
    /// Contention manager for write-write conflicts.
    pub cm: ContentionManager,
    /// Validate the whole read list on every open (ASTM behaviour).
    /// Disabling moves all validation to commit time — the ablation for
    /// quantifying the O(k²) cost. Commit-time validation still prevents
    /// inconsistent commits.
    pub incremental_validation: bool,
    /// DSTM-style visible reads: readers register in the locator and
    /// writers arbitrate them away before acquiring, so no read-set
    /// validation is ever needed (`incremental_validation` is then
    /// ignored). The price is mutation of every read locator — the exact
    /// trade ASTM's adaptive design navigates.
    pub visible_reads: bool,
}

impl Default for AstmConfig {
    fn default() -> Self {
        AstmConfig {
            cm: ContentionManager::Polka,
            incremental_validation: true,
            visible_reads: false,
        }
    }
}

/// The ASTM-like runtime (see module docs).
pub struct AstmRuntime {
    config: AstmConfig,
    counters: Counters,
    ticket: AtomicU64,
    /// Serializes the validate-and-commit step of *writing* transactions.
    ///
    /// With invisible reads, "validate read list, then CAS status" is racy:
    /// two writers that each read an object the other wrote can both pass
    /// validation before either commit CAS lands, committing a
    /// non-serializable pair. Taking a short global lock around that window
    /// (writers only — read-only transactions are serialized by their last
    /// validation) closes the race; the O(k²) incremental-validation and
    /// clone-granularity costs the paper measures are unaffected.
    commit_lock: Mutex<()>,
}

impl AstmRuntime {
    /// Creates a runtime with the given configuration.
    pub fn new(config: AstmConfig) -> Self {
        AstmRuntime {
            config,
            counters: Counters::default(),
            ticket: AtomicU64::new(1),
            commit_lock: Mutex::new(()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> AstmConfig {
        self.config
    }
}

impl Default for AstmRuntime {
    fn default() -> Self {
        Self::new(AstmConfig::default())
    }
}

/// One transaction attempt.
pub struct AstmTx<'rt> {
    rt: &'rt AstmRuntime,
    desc: Arc<TxDesc>,
    /// Invisible read list: the cell and the exact value handle
    /// observed. Keeping the handle alive pins its allocation, so the
    /// pointer comparison in [`AstmTx::validate`] cannot be fooled by an
    /// ABA re-allocation at the same address.
    reads: Vec<(Arc<Cell>, ErasedVal)>,
    /// Cell pointer → index into `reads`, to keep re-opens cheap.
    read_index: HashMap<usize, usize>,
    /// Cells this transaction owns for writing.
    writes: HashMap<usize, Arc<Cell>>,
    local: LocalCounts,
}

impl AstmTx<'_> {
    fn check_alive(&self) -> StmResult<()> {
        if self.desc.status() == ACTIVE {
            Ok(())
        } else {
            Err(Abort)
        }
    }

    /// Validates the entire read list (the ASTM invisible-read tax).
    fn validate(&mut self) -> StmResult<()> {
        self.local.validation_steps += self.reads.len() as u64;
        for (cell, seen) in &self.reads {
            let mut state = cell.state.lock();
            if Cell::committed_ptr(&mut state, &self.desc) != erased_ptr(seen) {
                return Err(Abort);
            }
        }
        Ok(())
    }

    fn commit(&mut self) -> StmResult<()> {
        if self.rt.config.visible_reads {
            // Visible readers need no validation: any conflicting writer
            // had to arbitrate us away first, so being ACTIVE here means
            // every read is still current. Commit is the status CAS alone.
            return match self.desc.status.compare_exchange(
                ACTIVE,
                COMMITTED,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => Ok(()),
                Err(_) => Err(Abort),
            };
        }
        // See `AstmRuntime::commit_lock` for why writers serialize here.
        let _guard = if self.writes.is_empty() {
            None
        } else {
            Some(self.rt.commit_lock.lock())
        };
        self.validate()?;
        if self
            .desc
            .status
            .compare_exchange(ACTIVE, COMMITTED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(Abort);
        }
        Ok(())
    }
}

/// The visible-read protocol: arbitrate away any active owner, then
/// register in the locator's reader list. Registered reads need no
/// validation — a conflicting writer must arbitrate (usually kill) the
/// reader before it can acquire the cell.
fn read_visible<T: TxVal>(tx: &mut AstmTx<'_>, var: &AstmVar<T>, key: usize) -> StmResult<Arc<T>> {
    let mut attempt = 0u32;
    loop {
        tx.check_alive()?;
        let mut state = var.cell.state.lock();
        let value = Cell::resolve_committed(&mut state);
        match &state.owner {
            // An active writer holds the cell: readers conflict eagerly
            // (registering under an active owner would let the owner
            // commit without ever seeing us).
            Some(enemy) => {
                let enemy = Arc::clone(enemy);
                drop(state);
                match tx.rt.config.cm.resolve(&tx.desc, &enemy, attempt) {
                    CmDecision::AbortEnemy => {
                        if enemy.kill() {
                            tx.rt.counters.enemy_aborts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    CmDecision::AbortSelf => return Err(Abort),
                    CmDecision::Wait => {
                        if tx.rt.config.cm.exponential_wait() {
                            backoff(attempt, tx.desc.id);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                }
                attempt += 1;
            }
            None => {
                let ptr = erased_ptr(&value);
                if let Some(&idx) = tx.read_index.get(&key) {
                    drop(state);
                    // Re-read: registration protects the value, but a
                    // kill-then-commit racing this call could still have
                    // swapped it; a changed pointer means we are doomed.
                    if erased_ptr(&tx.reads[idx].1) != ptr {
                        return Err(Abort);
                    }
                    return Ok(downcast(value));
                }
                state.readers.push(Arc::clone(&tx.desc));
                drop(state);
                tx.local.reads += 1;
                tx.desc.karma.fetch_add(1, Ordering::Relaxed);
                tx.read_index.insert(key, tx.reads.len());
                tx.reads.push((Arc::clone(&var.cell), value.clone()));
                return Ok(downcast(value));
            }
        }
    }
}

impl StmRuntime for AstmRuntime {
    type Var<T: TxVal> = AstmVar<T>;
    type Tx<'rt> = AstmTx<'rt>;

    fn new_var<T: TxVal>(&self, value: T) -> AstmVar<T> {
        AstmVar {
            cell: Arc::new(Cell {
                state: Mutex::new(CellState {
                    owner: None,
                    readers: Vec::new(),
                    old: Arc::new(value),
                    new: None,
                }),
            }),
            _marker: PhantomData,
        }
    }

    fn read<T: TxVal>(tx: &mut AstmTx<'_>, var: &AstmVar<T>) -> StmResult<Arc<T>> {
        tx.check_alive()?;
        let key = Arc::as_ptr(&var.cell) as usize;
        // Read-own-write: owned cells resolve to the tentative value and
        // need no tracking (ownership shields them). Ownership must be
        // re-verified: an enemy may have killed us and evicted our
        // locator since we acquired the cell.
        if tx.writes.contains_key(&key) {
            let state = var.cell.state.lock();
            match &state.owner {
                Some(owner) if Arc::ptr_eq(owner, &tx.desc) => {
                    let newv = state.new.clone().expect("owner keeps a tentative value");
                    return Ok(downcast(newv));
                }
                _ => return Err(Abort),
            }
        }
        if tx.rt.config.visible_reads {
            return read_visible(tx, var, key);
        }
        let mut state = var.cell.state.lock();
        let value = Cell::resolve_committed(&mut state);
        let ptr = erased_ptr(&value);
        drop(state);

        if let Some(&idx) = tx.read_index.get(&key) {
            // Already in the read list; a changed pointer means our
            // earlier read is stale.
            if erased_ptr(&tx.reads[idx].1) != ptr {
                return Err(Abort);
            }
            return Ok(downcast(value));
        }

        tx.local.reads += 1;
        tx.desc.karma.fetch_add(1, Ordering::Relaxed);
        tx.read_index.insert(key, tx.reads.len());
        tx.reads.push((Arc::clone(&var.cell), value.clone()));
        if tx.rt.config.incremental_validation {
            tx.validate()?;
        }
        Ok(downcast(value))
    }

    fn update<T: TxVal>(
        tx: &mut AstmTx<'_>,
        var: &AstmVar<T>,
        f: impl FnOnce(&mut T),
    ) -> StmResult<()> {
        tx.check_alive()?;
        let key = Arc::as_ptr(&var.cell) as usize;

        // Re-open of an owned cell: mutate the tentative value in place —
        // unless an enemy killed us and evicted our locator in the
        // meantime, in which case the only option is to abort.
        if tx.writes.contains_key(&key) {
            let mut state = var.cell.state.lock();
            let still_ours = matches!(&state.owner, Some(owner) if Arc::ptr_eq(owner, &tx.desc));
            if !still_ours {
                return Err(Abort);
            }
            let erased = state.new.take().expect("owner keeps a tentative value");
            let mut arc_t: Arc<T> = downcast(erased);
            f(Arc::make_mut(&mut arc_t));
            state.new = Some(arc_t);
            return Ok(());
        }

        // Eager acquisition with contention management.
        let mut attempt = 0u32;
        loop {
            tx.check_alive()?;
            let mut state = var.cell.state.lock();
            // Fold finished owners into `old` first.
            let _ = Cell::resolve_committed(&mut state);
            // Under visible reads, registered readers must be arbitrated
            // away before acquisition — that is what exempts them from
            // validation.
            if tx.rt.config.visible_reads && state.owner.is_none() {
                state.readers.retain(|r| r.status() == ACTIVE);
                let enemy = state
                    .readers
                    .iter()
                    .find(|r| !Arc::ptr_eq(r, &tx.desc))
                    .cloned();
                if let Some(enemy) = enemy {
                    drop(state);
                    match tx.rt.config.cm.resolve(&tx.desc, &enemy, attempt) {
                        CmDecision::AbortEnemy => {
                            if enemy.kill() {
                                tx.rt.counters.enemy_aborts.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        CmDecision::AbortSelf => return Err(Abort),
                        CmDecision::Wait => {
                            if tx.rt.config.cm.exponential_wait() {
                                backoff(attempt, tx.desc.id);
                            } else {
                                std::thread::yield_now();
                            }
                        }
                    }
                    attempt += 1;
                    continue;
                }
            }
            match &state.owner {
                None => {
                    let current: Arc<T> = downcast(state.old.clone());
                    let mut fresh = (*current).clone();
                    tx.local.clones += 1;
                    f(&mut fresh);
                    state.new = Some(Arc::new(fresh));
                    state.owner = Some(Arc::clone(&tx.desc));
                    drop(state);
                    tx.local.writes += 1;
                    tx.desc.karma.fetch_add(1, Ordering::Relaxed);
                    tx.writes.insert(key, Arc::clone(&var.cell));
                    if tx.rt.config.incremental_validation && !tx.rt.config.visible_reads {
                        tx.validate()?;
                    }
                    return Ok(());
                }
                Some(enemy) => {
                    let enemy = Arc::clone(enemy);
                    drop(state);
                    match tx.rt.config.cm.resolve(&tx.desc, &enemy, attempt) {
                        CmDecision::AbortEnemy => {
                            if enemy.kill() {
                                tx.rt.counters.enemy_aborts.fetch_add(1, Ordering::Relaxed);
                            }
                            // Loop back; the locator now folds to `old`.
                        }
                        CmDecision::AbortSelf => return Err(Abort),
                        CmDecision::Wait => {
                            if tx.rt.config.cm.exponential_wait() {
                                backoff(attempt, tx.desc.id);
                            } else {
                                std::thread::yield_now();
                            }
                        }
                    }
                    attempt += 1;
                }
            }
        }
    }

    fn atomic<R>(&self, mut f: impl FnMut(&mut AstmTx<'_>) -> StmResult<R>) -> R {
        let mut karma_carry = 0u64;
        let mut attempt = 0u32;
        loop {
            let desc = Arc::new(TxDesc::new(
                self.ticket.fetch_add(1, Ordering::Relaxed),
                karma_carry,
            ));
            self.counters.starts.fetch_add(1, Ordering::Relaxed);
            let mut tx = AstmTx {
                rt: self,
                desc: Arc::clone(&desc),
                reads: Vec::new(),
                read_index: HashMap::new(),
                writes: HashMap::new(),
                local: LocalCounts::default(),
            };
            let result = match f(&mut tx) {
                Ok(r) => tx.commit().map(|()| r),
                Err(Abort) => Err(Abort),
            };
            if self.config.visible_reads {
                // Deregister from every locator we were visible in, win or
                // lose; writers also clean lists lazily, so this is purely
                // to keep them short.
                for (cell, _) in &tx.reads {
                    let mut state = cell.state.lock();
                    state.readers.retain(|r| !Arc::ptr_eq(r, &desc));
                }
            }
            tx.local.flush(&self.counters);
            match result {
                Ok(r) => {
                    self.counters.commits.fetch_add(1, Ordering::Relaxed);
                    return r;
                }
                Err(Abort) => {
                    // Make sure the descriptor is dead so owned locators
                    // fold back to their old values.
                    desc.kill();
                    self.counters.aborts.fetch_add(1, Ordering::Relaxed);
                    karma_carry = desc.karma.load(Ordering::Relaxed);
                    backoff(attempt, desc.id);
                    attempt = attempt.saturating_add(1);
                }
            }
        }
    }

    fn read_quiesced<T: TxVal>(&self, var: &AstmVar<T>) -> Arc<T> {
        let mut state = var.cell.state.lock();
        downcast(Cell::resolve_committed(&mut state))
    }

    fn snapshot(&self) -> StatsSnapshot {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    type Rt = AstmRuntime;

    #[test]
    fn read_your_own_write() {
        let rt = Rt::default();
        let v = rt.new_var(1u32);
        let out = rt.atomic(|tx| {
            Rt::update(tx, &v, |n| *n = 5)?;
            Rt::update(tx, &v, |n| *n += 1)?;
            Ok(*Rt::read(tx, &v)?)
        });
        assert_eq!(out, 6);
        assert_eq!(rt.atomic(|tx| Ok(*Rt::read(tx, &v)?)), 6);
    }

    #[test]
    fn aborted_attempt_leaves_no_trace() {
        let rt = Rt::default();
        let v = rt.new_var(0u32);
        let tried = AtomicBool::new(false);
        let out = rt.atomic(|tx| {
            Rt::update(tx, &v, |n| *n += 1)?;
            if !tried.swap(true, Ordering::Relaxed) {
                // First attempt bails; its tentative write must fold away.
                return Err(Abort);
            }
            Ok(*Rt::read(tx, &v)?)
        });
        assert_eq!(out, 1);
        let s = rt.snapshot();
        assert_eq!(s.commits, 1);
        assert_eq!(s.aborts, 1);
        assert_eq!(s.starts, 2);
    }

    #[test]
    fn validation_steps_grow_quadratically() {
        let rt = Rt::default();
        let vars: Vec<_> = (0..50u64).map(|i| rt.new_var(i)).collect();
        rt.atomic(|tx| {
            for v in &vars {
                let _ = Rt::read(tx, v)?;
            }
            Ok(())
        });
        let s = rt.snapshot();
        // Per-open validation over a growing list: 1 + 2 + … + 50 steps,
        // plus one commit validation of 50.
        assert_eq!(s.validation_steps, 50 * 51 / 2 + 50);
        assert_eq!(s.reads, 50);
    }

    #[test]
    fn commit_time_only_validation_is_linear() {
        let rt = Rt::new(AstmConfig {
            incremental_validation: false,
            ..AstmConfig::default()
        });
        let vars: Vec<_> = (0..50u64).map(|i| rt.new_var(i)).collect();
        rt.atomic(|tx| {
            for v in &vars {
                let _ = Rt::read(tx, v)?;
            }
            Ok(())
        });
        assert_eq!(rt.snapshot().validation_steps, 50);
    }

    #[test]
    fn update_clones_object_level() {
        let rt = Rt::default();
        let v = rt.new_var(vec![0u8; 1024]);
        rt.atomic(|tx| Rt::update(tx, &v, |b| b[0] = 1));
        assert_eq!(rt.snapshot().clones, 1);
        let got = rt.atomic(|tx| Ok(Rt::read(tx, &v)?[0]));
        assert_eq!(got, 1);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let rt = Arc::new(Rt::default());
        let v = rt.new_var(0u64);
        let threads = 4;
        let per = 500;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let rt = Arc::clone(&rt);
                let v = v.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        rt.atomic(|tx| Rt::update(tx, &v, |n| *n += 1));
                    }
                });
            }
        });
        let total = rt.atomic(|tx| Ok(*Rt::read(tx, &v)?));
        assert_eq!(total, threads * per);
    }

    #[test]
    fn opacity_invariant_under_contention() {
        // Writers keep x == y; readers must never observe x != y inside a
        // transaction (even transiently), or opacity is broken.
        let rt = Arc::new(Rt::default());
        let x = rt.new_var(0i64);
        let y = rt.new_var(0i64);
        std::thread::scope(|s| {
            for t in 0..2 {
                let rt = Arc::clone(&rt);
                let (x, y) = (x.clone(), y.clone());
                s.spawn(move || {
                    for i in 0..300 {
                        rt.atomic(|tx| {
                            Rt::update(tx, &x, |v| *v += t * 10 + i)?;
                            Rt::update(tx, &y, |v| *v += t * 10 + i)?;
                            Ok(())
                        });
                    }
                });
            }
            for _ in 0..2 {
                let rt = Arc::clone(&rt);
                let (x, y) = (x.clone(), y.clone());
                s.spawn(move || {
                    for _ in 0..600 {
                        let (a, b) = rt.atomic(|tx| {
                            let a = *Rt::read(tx, &x)?;
                            let b = *Rt::read(tx, &y)?;
                            Ok((a, b))
                        });
                        assert_eq!(a, b, "opacity violation: observed x != y");
                    }
                });
            }
        });
    }

    fn visible() -> AstmConfig {
        AstmConfig {
            visible_reads: true,
            ..AstmConfig::default()
        }
    }

    #[test]
    fn visible_reads_need_no_validation() {
        let rt = Rt::new(visible());
        let vars: Vec<_> = (0..50u64).map(|i| rt.new_var(i)).collect();
        let sum = rt.atomic(|tx| {
            let mut sum = 0;
            for v in &vars {
                sum += *Rt::read(tx, v)?;
            }
            Ok(sum)
        });
        assert_eq!(sum, (0..50).sum::<u64>());
        let s = rt.snapshot();
        assert_eq!(s.validation_steps, 0, "visible reads must never validate");
        assert_eq!(s.reads, 50);
    }

    #[test]
    fn visible_readers_deregister_after_commit() {
        let rt = Rt::new(visible());
        let v = rt.new_var(7u32);
        rt.atomic(|tx| Ok(*Rt::read(tx, &v)?));
        rt.atomic(|tx| Ok(*Rt::read(tx, &v)?));
        assert!(v.cell.state.lock().readers.is_empty());
    }

    #[test]
    fn visible_read_your_own_write() {
        let rt = Rt::new(visible());
        let v = rt.new_var(1u32);
        let out = rt.atomic(|tx| {
            let before = *Rt::read(tx, &v)?;
            Rt::update(tx, &v, |n| *n = before + 4)?;
            Ok(*Rt::read(tx, &v)?)
        });
        assert_eq!(out, 5);
    }

    #[test]
    fn visible_concurrent_counter_is_exact() {
        let rt = Arc::new(Rt::new(visible()));
        let v = rt.new_var(0u64);
        let threads = 4;
        let per = 500;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let rt = Arc::clone(&rt);
                let v = v.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        rt.atomic(|tx| {
                            let n = *Rt::read(tx, &v)?;
                            Rt::update(tx, &v, |slot| *slot = n + 1)
                        });
                    }
                });
            }
        });
        let total = rt.atomic(|tx| Ok(*Rt::read(tx, &v)?));
        assert_eq!(total, threads * per);
        assert_eq!(rt.snapshot().validation_steps, 0);
    }

    #[test]
    fn visible_opacity_invariant_under_contention() {
        let rt = Arc::new(Rt::new(visible()));
        let x = rt.new_var(0i64);
        let y = rt.new_var(0i64);
        std::thread::scope(|s| {
            for t in 0..2 {
                let rt = Arc::clone(&rt);
                let (x, y) = (x.clone(), y.clone());
                s.spawn(move || {
                    for i in 0..300 {
                        rt.atomic(|tx| {
                            Rt::update(tx, &x, |v| *v += t * 10 + i)?;
                            Rt::update(tx, &y, |v| *v += t * 10 + i)?;
                            Ok(())
                        });
                    }
                });
            }
            for _ in 0..2 {
                let rt = Arc::clone(&rt);
                let (x, y) = (x.clone(), y.clone());
                s.spawn(move || {
                    for _ in 0..600 {
                        let (a, b) = rt.atomic(|tx| {
                            let a = *Rt::read(tx, &x)?;
                            let b = *Rt::read(tx, &y)?;
                            Ok((a, b))
                        });
                        assert_eq!(a, b, "opacity violation: observed x != y");
                    }
                });
            }
        });
    }

    #[test]
    fn every_contention_manager_makes_progress() {
        for cm in ContentionManager::all() {
            let rt = Arc::new(Rt::new(AstmConfig {
                cm,
                ..AstmConfig::default()
            }));
            let v = rt.new_var(0u64);
            std::thread::scope(|s| {
                for _ in 0..3 {
                    let rt = Arc::clone(&rt);
                    let v = v.clone();
                    s.spawn(move || {
                        for _ in 0..200 {
                            rt.atomic(|tx| Rt::update(tx, &v, |n| *n += 1));
                        }
                    });
                }
            });
            let total = rt.atomic(|tx| Ok(*Rt::read(tx, &v)?));
            assert_eq!(total, 600, "cm {} lost updates", cm.name());
        }
    }
}
