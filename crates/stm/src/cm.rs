//! Contention managers for the ASTM-like runtime.
//!
//! With eager write acquisition, two transactions wanting the same object
//! in write mode must be arbitrated. The paper runs ASTM with the *Polka*
//! manager; the classic alternatives are provided for the
//! contention-manager ablation bench.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Transaction status values.
pub const ACTIVE: u8 = 0;
/// See [`ACTIVE`].
pub const COMMITTED: u8 = 1;
/// See [`ACTIVE`].
pub const ABORTED: u8 = 2;

/// Shared descriptor of a running transaction. Cells point at the
/// descriptor of their current writer; aborting a transaction is a single
/// status CAS that every other party observes.
#[derive(Debug)]
pub struct TxDesc {
    /// Unique, monotonically increasing ticket (doubles as the timestamp
    /// for age-based managers).
    pub id: u64,
    pub status: AtomicU8,
    /// Accumulated "work" (objects opened), carried across retries of the
    /// same operation — the currency of Karma and Polka.
    pub karma: AtomicU64,
}

impl TxDesc {
    /// Creates an active descriptor with karma carried over from aborted
    /// attempts.
    pub fn new(id: u64, karma_carry: u64) -> Self {
        TxDesc {
            id,
            status: AtomicU8::new(ACTIVE),
            karma: AtomicU64::new(karma_carry),
        }
    }

    /// Current status.
    pub fn status(&self) -> u8 {
        self.status.load(Ordering::Acquire)
    }

    /// Attempts to abort this transaction; returns true if this call
    /// performed the kill (false if it already committed or aborted).
    pub fn kill(&self) -> bool {
        self.status
            .compare_exchange(ACTIVE, ABORTED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// What to do about an active enemy holding an object we want.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmDecision {
    /// Kill the enemy and take the object.
    AbortEnemy,
    /// Abort ourselves.
    AbortSelf,
    /// Back off and re-attempt the acquisition.
    Wait,
}

/// The contention-management policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ContentionManager {
    /// Always kill the enemy. Maximum progress for me, livelock-prone.
    Aggressive,
    /// Always abort myself (a.k.a. Timid).
    Suicide,
    /// Exponential backoff a bounded number of times, then kill the enemy.
    Backoff,
    /// Compare accumulated work; waiting accrues patience, so the poorer
    /// transaction eventually wins.
    Karma,
    /// Older transactions win; younger ones wait a little, then abort
    /// themselves.
    Timestamp,
    /// Karma with exponential backoff between attempts — the manager the
    /// paper uses (default).
    #[default]
    Polka,
}

impl ContentionManager {
    /// Decides what the acquiring transaction (`me`) should do about an
    /// active `enemy`, on its `attempt`-th try for this object.
    pub fn resolve(&self, me: &TxDesc, enemy: &TxDesc, attempt: u32) -> CmDecision {
        match self {
            ContentionManager::Aggressive => CmDecision::AbortEnemy,
            ContentionManager::Suicide => CmDecision::AbortSelf,
            ContentionManager::Backoff => {
                if attempt >= 8 {
                    CmDecision::AbortEnemy
                } else {
                    CmDecision::Wait
                }
            }
            ContentionManager::Karma | ContentionManager::Polka => {
                // Each failed attempt adds patience; once patience plus our
                // own work exceeds the enemy's investment, we take over.
                let mine = me.karma.load(Ordering::Relaxed) + u64::from(attempt);
                let theirs = enemy.karma.load(Ordering::Relaxed);
                if mine >= theirs {
                    CmDecision::AbortEnemy
                } else {
                    CmDecision::Wait
                }
            }
            ContentionManager::Timestamp => {
                if me.id < enemy.id {
                    CmDecision::AbortEnemy
                } else if attempt >= 8 {
                    CmDecision::AbortSelf
                } else {
                    CmDecision::Wait
                }
            }
        }
    }

    /// Whether the manager wants exponential backoff while waiting
    /// (Polka's distinguishing feature over Karma).
    pub fn exponential_wait(&self) -> bool {
        matches!(
            self,
            ContentionManager::Polka | ContentionManager::Backoff | ContentionManager::Timestamp
        )
    }

    /// All managers, for sweeps.
    pub fn all() -> [ContentionManager; 6] {
        [
            ContentionManager::Aggressive,
            ContentionManager::Suicide,
            ContentionManager::Backoff,
            ContentionManager::Karma,
            ContentionManager::Timestamp,
            ContentionManager::Polka,
        ]
    }

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ContentionManager::Aggressive => "aggressive",
            ContentionManager::Suicide => "suicide",
            ContentionManager::Backoff => "backoff",
            ContentionManager::Karma => "karma",
            ContentionManager::Timestamp => "timestamp",
            ContentionManager::Polka => "polka",
        }
    }

    /// Parses a name produced by [`ContentionManager::name`].
    pub fn parse(s: &str) -> Option<ContentionManager> {
        Self::all().into_iter().find(|cm| cm.name() == s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(id: u64, karma: u64) -> TxDesc {
        TxDesc::new(id, karma)
    }

    #[test]
    fn kill_is_single_shot() {
        let d = desc(1, 0);
        assert!(d.kill());
        assert!(!d.kill());
        assert_eq!(d.status(), ABORTED);
    }

    #[test]
    fn kill_fails_after_commit() {
        let d = desc(1, 0);
        d.status.store(COMMITTED, Ordering::Release);
        assert!(!d.kill());
        assert_eq!(d.status(), COMMITTED);
    }

    #[test]
    fn aggressive_and_suicide() {
        let me = desc(2, 0);
        let enemy = desc(1, 100);
        assert_eq!(
            ContentionManager::Aggressive.resolve(&me, &enemy, 0),
            CmDecision::AbortEnemy
        );
        assert_eq!(
            ContentionManager::Suicide.resolve(&me, &enemy, 0),
            CmDecision::AbortSelf
        );
    }

    #[test]
    fn backoff_eventually_kills() {
        let me = desc(2, 0);
        let enemy = desc(1, 0);
        let cm = ContentionManager::Backoff;
        assert_eq!(cm.resolve(&me, &enemy, 0), CmDecision::Wait);
        assert_eq!(cm.resolve(&me, &enemy, 8), CmDecision::AbortEnemy);
    }

    #[test]
    fn karma_respects_investment_but_patience_wins() {
        let me = desc(2, 1);
        let enemy = desc(1, 10);
        let cm = ContentionManager::Karma;
        assert_eq!(cm.resolve(&me, &enemy, 0), CmDecision::Wait);
        // Attempts accrue patience until we pass the enemy's karma.
        assert_eq!(cm.resolve(&me, &enemy, 9), CmDecision::AbortEnemy);
    }

    #[test]
    fn timestamp_prefers_elders() {
        let old = desc(1, 0);
        let young = desc(2, 0);
        let cm = ContentionManager::Timestamp;
        assert_eq!(cm.resolve(&old, &young, 0), CmDecision::AbortEnemy);
        assert_eq!(cm.resolve(&young, &old, 0), CmDecision::Wait);
        assert_eq!(cm.resolve(&young, &old, 8), CmDecision::AbortSelf);
    }

    #[test]
    fn names_roundtrip() {
        for cm in ContentionManager::all() {
            assert_eq!(ContentionManager::parse(cm.name()), Some(cm));
        }
        assert_eq!(ContentionManager::parse("nope"), None);
    }
}
