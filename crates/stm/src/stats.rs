//! Runtime statistics.
//!
//! The paper's §5 diagnosis rests on *where the work goes*: validation
//! steps (the O(k²) incremental-validation pathology) and whole-object
//! clones (the logging-granularity pathology). Both runtimes account for
//! them here; the ablation benches print these counters next to wall-clock
//! results.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters owned by a runtime.
#[derive(Debug, Default)]
pub struct Counters {
    pub starts: AtomicU64,
    pub commits: AtomicU64,
    pub aborts: AtomicU64,
    pub reads: AtomicU64,
    pub writes: AtomicU64,
    /// Read-set entries examined during validation (every entry of every
    /// validation pass counts one step).
    pub validation_steps: AtomicU64,
    /// Whole-object clones performed by copy-on-write opens.
    pub clones: AtomicU64,
    /// Successful read-timestamp extensions (TL2/LSA only).
    pub extensions: AtomicU64,
    /// Contention-manager decisions that killed the enemy transaction.
    pub enemy_aborts: AtomicU64,
}

impl Counters {
    /// Takes a consistent-enough snapshot for reporting (individual
    /// counters are read independently; exactness across counters is not
    /// required for statistics).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            starts: self.starts.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            validation_steps: self.validation_steps.load(Ordering::Relaxed),
            clones: self.clones.load(Ordering::Relaxed),
            extensions: self.extensions.load(Ordering::Relaxed),
            enemy_aborts: self.enemy_aborts.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`Counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub starts: u64,
    pub commits: u64,
    pub aborts: u64,
    pub reads: u64,
    pub writes: u64,
    pub validation_steps: u64,
    pub clones: u64,
    pub extensions: u64,
    pub enemy_aborts: u64,
}

impl StatsSnapshot {
    /// Aborts per commit — the headline contention metric.
    pub fn abort_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.aborts as f64 / self.commits as f64
        }
    }

    /// Difference of two snapshots (for measuring a window).
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            starts: self.starts - earlier.starts,
            commits: self.commits - earlier.commits,
            aborts: self.aborts - earlier.aborts,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            validation_steps: self.validation_steps - earlier.validation_steps,
            clones: self.clones - earlier.clones,
            extensions: self.extensions - earlier.extensions,
            enemy_aborts: self.enemy_aborts - earlier.enemy_aborts,
        }
    }
}

/// Per-transaction counter buffer, flushed once per attempt to keep the
/// shared atomics off the hot path.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct LocalCounts {
    pub reads: u64,
    pub writes: u64,
    pub validation_steps: u64,
    pub clones: u64,
    pub extensions: u64,
}

impl LocalCounts {
    pub(crate) fn flush(&mut self, into: &Counters) {
        into.reads.fetch_add(self.reads, Ordering::Relaxed);
        into.writes.fetch_add(self.writes, Ordering::Relaxed);
        into.validation_steps
            .fetch_add(self.validation_steps, Ordering::Relaxed);
        into.clones.fetch_add(self.clones, Ordering::Relaxed);
        into.extensions
            .fetch_add(self.extensions, Ordering::Relaxed);
        *self = LocalCounts::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let c = Counters::default();
        c.commits.store(10, Ordering::Relaxed);
        c.aborts.store(5, Ordering::Relaxed);
        let a = c.snapshot();
        assert_eq!(a.abort_ratio(), 0.5);
        c.commits.store(30, Ordering::Relaxed);
        let b = c.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.commits, 20);
        assert_eq!(d.aborts, 0);
    }

    #[test]
    fn abort_ratio_handles_zero_commits() {
        assert_eq!(StatsSnapshot::default().abort_ratio(), 0.0);
    }

    #[test]
    fn local_counts_flush_accumulates_and_resets() {
        let c = Counters::default();
        let mut l = LocalCounts {
            reads: 3,
            writes: 2,
            validation_steps: 7,
            clones: 1,
            extensions: 0,
        };
        l.flush(&c);
        l.reads = 5;
        l.flush(&c);
        let s = c.snapshot();
        assert_eq!(s.reads, 8);
        assert_eq!(s.writes, 2);
        assert_eq!(s.validation_steps, 7);
    }
}
