//! The runtime interface shared by both STMs.

use std::any::Any;
use std::sync::Arc;

use crate::stats::StatsSnapshot;

/// Marker returned when a transaction must be re-executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Abort;

/// Result type for transactional code.
pub type StmResult<T> = Result<T, Abort>;

/// Values that can live in transactional variables.
///
/// `Clone` is what object-granularity logging means: opening a value for
/// writing clones *all of it* (for STMBench7's manual, a megabyte of
/// text — one of the two pathologies §5 of the paper diagnoses).
pub trait TxVal: Any + Clone + Send + Sync + 'static {}

impl<T: Any + Clone + Send + Sync + 'static> TxVal for T {}

/// A software transactional memory runtime.
///
/// The API is deliberately small: typed transactional variables, snapshot
/// reads returning shared handles, clone-on-write updates, and a retry
/// loop. Reads return `Arc<T>` so large objects are never copied on the
/// read path (copies happen only on write, as in ASTM).
///
/// # Examples
///
/// ```
/// use stmbench7_stm::{StmRuntime, Tl2Runtime};
///
/// let rt = Tl2Runtime::default();
/// let v = rt.new_var(0u64);
/// let total = rt.atomic(|tx| {
///     Tl2Runtime::update(tx, &v, |n| *n += 41)?;
///     Ok(*Tl2Runtime::read(tx, &v)? + 1)
/// });
/// assert_eq!(total, 42);
/// ```
pub trait StmRuntime: Send + Sync + Sized + 'static {
    /// A transactional variable holding a `T`.
    type Var<T: TxVal>: Send + Sync + Clone;
    /// Per-attempt transaction state.
    type Tx<'rt>
    where
        Self: 'rt;

    /// Creates a new transactional variable.
    fn new_var<T: TxVal>(&self, value: T) -> Self::Var<T>;

    /// Reads a variable within a transaction.
    fn read<T: TxVal>(tx: &mut Self::Tx<'_>, var: &Self::Var<T>) -> StmResult<Arc<T>>;

    /// Opens a variable for writing: clones the current value, applies
    /// `f`, and buffers the result for commit.
    fn update<T: TxVal>(
        tx: &mut Self::Tx<'_>,
        var: &Self::Var<T>,
        f: impl FnOnce(&mut T),
    ) -> StmResult<()>;

    /// Runs `f` transactionally, retrying on aborts, and returns its
    /// result once a commit succeeds.
    fn atomic<R>(&self, f: impl FnMut(&mut Self::Tx<'_>) -> StmResult<R>) -> R;

    /// Like [`StmRuntime::atomic`], with the caller's promise that `f`
    /// never calls [`StmRuntime::update`]. Runtimes may use the promise
    /// to skip read-set bookkeeping (TL2's classic read-only mode); the
    /// default simply delegates to `atomic`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `f` breaks the promise and writes.
    fn atomic_read_only<R>(&self, f: impl FnMut(&mut Self::Tx<'_>) -> StmResult<R>) -> R {
        self.atomic(f)
    }

    /// Reads the committed value of a variable *outside* any transaction.
    ///
    /// Only meaningful when the caller knows the system is quiescent (no
    /// concurrent transactions) — used for exporting state to the
    /// validator and for diagnostics, never on the benchmark's hot path.
    fn read_quiesced<T: TxVal>(&self, var: &Self::Var<T>) -> Arc<T>;

    /// Cumulative runtime statistics.
    fn snapshot(&self) -> StatsSnapshot;
}

/// Type-erased committed value, as stored inside cells.
pub(crate) type ErasedVal = Arc<dyn Any + Send + Sync>;

/// Downcasts an erased committed value to its concrete type.
///
/// # Panics
///
/// Panics on a type mismatch, which can only happen if a `Var<T>` was
/// forged with the wrong phantom type — impossible through the public API.
pub(crate) fn downcast<T: TxVal>(v: ErasedVal) -> Arc<T> {
    v.downcast::<T>()
        .unwrap_or_else(|_| panic!("transactional variable holds an unexpected type"))
}

/// Bounded exponential backoff with deterministic per-thread jitter, used
/// between transaction attempts by both runtimes.
pub(crate) fn backoff(attempt: u32, seed: u64) {
    let exp = attempt.min(10);
    let base = 1u64 << exp; // 1..1024 "units" of ~50ns spin
    let jitter = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58; // 0..63
    let spins = base * 4 + jitter;
    for _ in 0..spins {
        std::hint::spin_loop();
    }
    if attempt > 6 {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downcast_roundtrips() {
        let v: ErasedVal = Arc::new(7u32);
        assert_eq!(*downcast::<u32>(v), 7);
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn downcast_mismatch_panics() {
        let v: ErasedVal = Arc::new(7u32);
        let _ = downcast::<u64>(v);
    }

    #[test]
    fn backoff_terminates() {
        for a in 0..20 {
            backoff(a, a as u64);
        }
    }
}
