//! The TL2/LSA-style STM.
//!
//! This is the remedy class the paper's §5 points to (ref. 5 Dice/Shalev/
//! Shavit TL2, ref. 11 Riegel/Felber/Fetzer LSA, ref. 13 Spear et al.): a global
//! version clock makes every read *self-validating* — O(1) per read
//! instead of re-validating the whole read list — so a transaction with k
//! reads does O(k) total validation work instead of O(k²).
//!
//! Protocol summary:
//!
//! * every variable carries a versioned lock word (`version << 1 | locked`);
//! * a transaction samples the clock at start (`rv`) and aborts (or
//!   *extends*, LSA-style, when enabled) upon meeting a newer version;
//! * writes are buffered privately (lazy acquisition);
//! * commit locks the write set in address order (bounded trylock),
//!   increments the clock, validates the read set once, writes back and
//!   releases with the new version.
//!
//! Values are still `Arc`-boxed whole objects, so *logging granularity*
//! is identical to the ASTM runtime — the two runtimes differ only in the
//! validation/acquisition strategy, which is exactly what the validation
//! ablation bench isolates.

use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::runtime::{backoff, downcast, Abort, ErasedVal, StmResult, StmRuntime, TxVal};
use crate::stats::{Counters, LocalCounts, StatsSnapshot};

const LOCKED: u64 = 1;

#[inline]
fn is_locked(vlock: u64) -> bool {
    vlock & LOCKED != 0
}

#[inline]
fn version_of(vlock: u64) -> u64 {
    vlock >> 1
}

struct Cell {
    /// `version << 1 | locked`.
    vlock: AtomicU64,
    value: RwLock<ErasedVal>,
}

impl Cell {
    /// Reads a consistent `(version, value)` pair, spinning through
    /// in-flight commits a few times before giving up.
    fn sample(&self) -> StmResult<(u64, ErasedVal)> {
        for _ in 0..64 {
            let v1 = self.vlock.load(Ordering::Acquire);
            if is_locked(v1) {
                std::hint::spin_loop();
                continue;
            }
            let value = self.value.read().clone();
            let v2 = self.vlock.load(Ordering::Acquire);
            if v1 == v2 {
                return Ok((version_of(v1), value));
            }
        }
        Err(Abort)
    }
}

/// A transactional variable managed by [`Tl2Runtime`].
pub struct Tl2Var<T> {
    cell: Arc<Cell>,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for Tl2Var<T> {
    fn clone(&self) -> Self {
        Tl2Var {
            cell: Arc::clone(&self.cell),
            _marker: PhantomData,
        }
    }
}

/// Configuration of the TL2-like runtime.
#[derive(Clone, Copy, Debug)]
pub struct Tl2Config {
    /// Attempt LSA-style read-timestamp extension instead of aborting when
    /// a version newer than `rv` is met (paper ref. 11, LSA).
    pub timestamp_extension: bool,
    /// Honor [`crate::StmRuntime::atomic_read_only`] with TL2's classic
    /// read-only mode: no read set is recorded at all (every read is
    /// self-validating against `rv`; a newer version aborts, since
    /// extension is impossible without a read set). Disable to measure
    /// the bookkeeping the fast path saves.
    pub read_only_fast_path: bool,
}

impl Default for Tl2Config {
    fn default() -> Self {
        Tl2Config {
            timestamp_extension: true,
            read_only_fast_path: true,
        }
    }
}

/// The TL2-like runtime (see module docs).
pub struct Tl2Runtime {
    config: Tl2Config,
    clock: AtomicU64,
    counters: Counters,
}

impl Tl2Runtime {
    /// Creates a runtime with the given configuration.
    pub fn new(config: Tl2Config) -> Self {
        Tl2Runtime {
            config,
            clock: AtomicU64::new(0),
            counters: Counters::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> Tl2Config {
        self.config
    }

    /// The shared retry loop behind [`StmRuntime::atomic`] and
    /// [`StmRuntime::atomic_read_only`].
    fn run_retrying<R>(
        &self,
        read_only: bool,
        mut f: impl FnMut(&mut Tl2Tx<'_>) -> StmResult<R>,
    ) -> R {
        let mut attempt = 0u32;
        loop {
            self.counters.starts.fetch_add(1, Ordering::Relaxed);
            let mut tx = Tl2Tx {
                rt: self,
                rv: self.clock.load(Ordering::SeqCst),
                reads: HashMap::new(),
                writes: HashMap::new(),
                read_only,
                local: LocalCounts::default(),
            };
            let result = match f(&mut tx) {
                Ok(r) => tx.commit().map(|()| r),
                Err(Abort) => Err(Abort),
            };
            tx.local.flush(&self.counters);
            match result {
                Ok(r) => {
                    self.counters.commits.fetch_add(1, Ordering::Relaxed);
                    return r;
                }
                Err(Abort) => {
                    self.counters.aborts.fetch_add(1, Ordering::Relaxed);
                    backoff(attempt, attempt as u64 + 1);
                    attempt = attempt.saturating_add(1);
                }
            }
        }
    }
}

impl Default for Tl2Runtime {
    fn default() -> Self {
        Self::new(Tl2Config::default())
    }
}

/// One transaction attempt.
pub struct Tl2Tx<'rt> {
    rt: &'rt Tl2Runtime,
    /// Read validity horizon.
    rv: u64,
    /// Cell pointer → (cell, version at first read).
    reads: HashMap<usize, (Arc<Cell>, u64)>,
    /// Cell pointer → (cell, buffered value); order is irrelevant because
    /// commit sorts by address.
    writes: HashMap<usize, (Arc<Cell>, ErasedVal)>,
    /// The classic TL2 read-only mode: no read set, no extension,
    /// updates forbidden.
    read_only: bool,
    local: LocalCounts,
}

impl Tl2Tx<'_> {
    /// Revalidates the read set against the current clock and, on success,
    /// advances `rv` (LSA-style extension).
    fn extend(&mut self) -> StmResult<()> {
        let now = self.rt.clock.load(Ordering::SeqCst);
        self.local.validation_steps += self.reads.len() as u64;
        for (cell, seen) in self.reads.values() {
            let vl = cell.vlock.load(Ordering::Acquire);
            if is_locked(vl) || version_of(vl) != *seen {
                return Err(Abort);
            }
        }
        self.rv = now;
        self.local.extensions += 1;
        Ok(())
    }

    fn commit(&mut self) -> StmResult<()> {
        if self.writes.is_empty() {
            return Ok(());
        }
        // Lock the write set in address order with a bounded trylock.
        let mut targets: Vec<&(Arc<Cell>, ErasedVal)> = self.writes.values().collect();
        targets.sort_by_key(|(cell, _)| Arc::as_ptr(cell) as usize);
        let mut held: Vec<&Arc<Cell>> = Vec::with_capacity(targets.len());
        for (cell, _) in &targets {
            let mut acquired = false;
            for _ in 0..128 {
                let vl = cell.vlock.load(Ordering::Acquire);
                if is_locked(vl) {
                    std::hint::spin_loop();
                    continue;
                }
                if version_of(vl) > self.rv {
                    break; // Someone committed past us; abort.
                }
                if cell
                    .vlock
                    .compare_exchange(vl, vl | LOCKED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    acquired = true;
                    break;
                }
            }
            if !acquired {
                for c in &held {
                    let vl = c.vlock.load(Ordering::Relaxed);
                    c.vlock.store(vl & !LOCKED, Ordering::Release);
                }
                return Err(Abort);
            }
            held.push(cell);
        }

        let wv = self.rt.clock.fetch_add(1, Ordering::SeqCst) + 1;

        // Validate the read set once (skippable when nothing committed in
        // between).
        if wv != self.rv + 1 {
            self.local.validation_steps += self.reads.len() as u64;
            for (key, (cell, seen)) in &self.reads {
                if self.writes.contains_key(key) {
                    // Locked by us; version check below still applies.
                    if version_of(cell.vlock.load(Ordering::Acquire)) != *seen {
                        self.release(&held);
                        return Err(Abort);
                    }
                    continue;
                }
                let vl = cell.vlock.load(Ordering::Acquire);
                if is_locked(vl) || version_of(vl) != *seen {
                    self.release(&held);
                    return Err(Abort);
                }
            }
        }

        // Write back and release with the new version.
        for (cell, value) in &targets {
            *cell.value.write() = value.clone();
            cell.vlock.store(wv << 1, Ordering::Release);
        }
        Ok(())
    }

    fn release(&self, held: &[&Arc<Cell>]) {
        for c in held {
            let vl = c.vlock.load(Ordering::Relaxed);
            c.vlock.store(vl & !LOCKED, Ordering::Release);
        }
    }

    /// Samples a cell within the `rv` horizon, extending when allowed.
    fn consistent_sample(&mut self, cell: &Arc<Cell>) -> StmResult<(u64, ErasedVal)> {
        loop {
            let (ver, value) = cell.sample()?;
            if ver <= self.rv {
                return Ok((ver, value));
            }
            if !self.rt.config.timestamp_extension {
                return Err(Abort);
            }
            self.extend()?;
            // `rv` advanced; re-sample (the cell may be mid-commit).
        }
    }
}

impl StmRuntime for Tl2Runtime {
    type Var<T: TxVal> = Tl2Var<T>;
    type Tx<'rt> = Tl2Tx<'rt>;

    fn new_var<T: TxVal>(&self, value: T) -> Tl2Var<T> {
        Tl2Var {
            cell: Arc::new(Cell {
                vlock: AtomicU64::new(0),
                value: RwLock::new(Arc::new(value)),
            }),
            _marker: PhantomData,
        }
    }

    fn read<T: TxVal>(tx: &mut Tl2Tx<'_>, var: &Tl2Var<T>) -> StmResult<Arc<T>> {
        if tx.read_only {
            // The fast path: a sample within the horizon is proof enough;
            // nothing is recorded. Any version past `rv` aborts (a
            // repeat read that changed underneath necessarily carries a
            // newer version, so repeat consistency is covered too).
            let (ver, value) = var.cell.sample()?;
            if ver > tx.rv {
                return Err(Abort);
            }
            tx.local.reads += 1;
            return Ok(downcast(value));
        }
        let key = Arc::as_ptr(&var.cell) as usize;
        if let Some((_, buffered)) = tx.writes.get(&key) {
            return Ok(downcast(buffered.clone()));
        }
        if let Some((cell, seen)) = tx.reads.get(&key) {
            // Already read; the version cannot have changed without commit,
            // which validation will catch — return the committed value.
            let (ver, value) = cell.sample()?;
            if ver != *seen {
                return Err(Abort);
            }
            return Ok(downcast(value));
        }
        let (ver, value) = tx.consistent_sample(&var.cell)?;
        tx.local.reads += 1;
        tx.reads.insert(key, (Arc::clone(&var.cell), ver));
        Ok(downcast(value))
    }

    fn update<T: TxVal>(
        tx: &mut Tl2Tx<'_>,
        var: &Tl2Var<T>,
        f: impl FnOnce(&mut T),
    ) -> StmResult<()> {
        assert!(
            !tx.read_only,
            "update inside a transaction declared read-only"
        );
        let key = Arc::as_ptr(&var.cell) as usize;
        if let Some(entry) = tx.writes.get_mut(&key) {
            // Take the buffered Arc out so its refcount is 1 and
            // `make_mut` mutates in place instead of deep-cloning on
            // every re-open.
            let placeholder: ErasedVal = Arc::new(());
            let buffered = std::mem::replace(&mut entry.1, placeholder);
            let mut arc_t: Arc<T> = downcast(buffered);
            f(Arc::make_mut(&mut arc_t));
            entry.1 = arc_t;
            return Ok(());
        }
        // Base the clone on a consistent snapshot; commit re-verifies the
        // version under the write lock.
        let current: Arc<T> = if let Some((cell, seen)) = tx.reads.get(&key) {
            let (ver, value) = cell.sample()?;
            if ver != *seen {
                return Err(Abort);
            }
            downcast(value)
        } else {
            let (ver, value) = tx.consistent_sample(&var.cell)?;
            tx.reads.insert(key, (Arc::clone(&var.cell), ver));
            downcast(value)
        };
        let mut fresh = (*current).clone();
        tx.local.clones += 1;
        f(&mut fresh);
        tx.local.writes += 1;
        tx.writes
            .insert(key, (Arc::clone(&var.cell), Arc::new(fresh) as ErasedVal));
        Ok(())
    }

    fn atomic<R>(&self, f: impl FnMut(&mut Tl2Tx<'_>) -> StmResult<R>) -> R {
        self.run_retrying(false, f)
    }

    fn atomic_read_only<R>(&self, f: impl FnMut(&mut Tl2Tx<'_>) -> StmResult<R>) -> R {
        self.run_retrying(self.config.read_only_fast_path, f)
    }

    fn read_quiesced<T: TxVal>(&self, var: &Tl2Var<T>) -> Arc<T> {
        downcast(var.cell.value.read().clone())
    }

    fn snapshot(&self) -> StatsSnapshot {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    type Rt = Tl2Runtime;

    #[test]
    fn read_your_own_write() {
        let rt = Rt::default();
        let v = rt.new_var(1u32);
        let out = rt.atomic(|tx| {
            Rt::update(tx, &v, |n| *n = 5)?;
            Rt::update(tx, &v, |n| *n += 1)?;
            Ok(*Rt::read(tx, &v)?)
        });
        assert_eq!(out, 6);
        assert_eq!(rt.atomic(|tx| Ok(*Rt::read(tx, &v)?)), 6);
    }

    #[test]
    fn aborted_attempt_leaves_no_trace() {
        let rt = Rt::default();
        let v = rt.new_var(0u32);
        let tried = AtomicBool::new(false);
        let out = rt.atomic(|tx| {
            Rt::update(tx, &v, |n| *n += 1)?;
            if !tried.swap(true, Ordering::Relaxed) {
                return Err(Abort);
            }
            Ok(*Rt::read(tx, &v)?)
        });
        assert_eq!(out, 1);
        let s = rt.snapshot();
        assert_eq!(s.commits, 1);
        assert_eq!(s.aborts, 1);
    }

    #[test]
    fn validation_work_is_linear_not_quadratic() {
        let rt = Rt::default();
        let vars: Vec<_> = (0..50u64).map(|i| rt.new_var(i)).collect();
        rt.atomic(|tx| {
            for v in &vars {
                let _ = Rt::read(tx, v)?;
            }
            Ok(())
        });
        let s = rt.snapshot();
        // Read-only at a stable clock: no validation at all.
        assert_eq!(s.validation_steps, 0);
        assert_eq!(s.reads, 50);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let rt = Arc::new(Rt::default());
        let v = rt.new_var(0u64);
        let threads = 4;
        let per = 500;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let rt = Arc::clone(&rt);
                let v = v.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        rt.atomic(|tx| Rt::update(tx, &v, |n| *n += 1));
                    }
                });
            }
        });
        let total = rt.atomic(|tx| Ok(*Rt::read(tx, &v)?));
        assert_eq!(total, threads * per);
    }

    #[test]
    fn opacity_invariant_under_contention() {
        let rt = Arc::new(Rt::default());
        let x = rt.new_var(0i64);
        let y = rt.new_var(0i64);
        std::thread::scope(|s| {
            for t in 0..2i64 {
                let rt = Arc::clone(&rt);
                let (x, y) = (x.clone(), y.clone());
                s.spawn(move || {
                    for i in 0..300 {
                        rt.atomic(|tx| {
                            Rt::update(tx, &x, |v| *v += t * 10 + i)?;
                            Rt::update(tx, &y, |v| *v += t * 10 + i)?;
                            Ok(())
                        });
                    }
                });
            }
            for _ in 0..2 {
                let rt = Arc::clone(&rt);
                let (x, y) = (x.clone(), y.clone());
                s.spawn(move || {
                    for _ in 0..600 {
                        let (a, b) = rt.atomic(|tx| {
                            let a = *Rt::read(tx, &x)?;
                            let b = *Rt::read(tx, &y)?;
                            Ok((a, b))
                        });
                        assert_eq!(a, b, "opacity violation: observed x != y");
                    }
                });
            }
        });
    }

    #[test]
    fn bank_transfer_conserves_total() {
        let rt = Arc::new(Rt::default());
        let accounts: Vec<_> = (0..8).map(|_| rt.new_var(100i64)).collect();
        std::thread::scope(|s| {
            for t in 0..4usize {
                let rt = Arc::clone(&rt);
                let accounts = accounts.clone();
                s.spawn(move || {
                    let n = accounts.len();
                    for i in 0..400 {
                        let from = (t + i) % n;
                        let to = (t + i * 7 + 1) % n;
                        if from == to {
                            continue;
                        }
                        rt.atomic(|tx| {
                            let amount = (*Rt::read(tx, &accounts[from])?).min(10);
                            Rt::update(tx, &accounts[from], |b| *b -= amount)?;
                            Rt::update(tx, &accounts[to], |b| *b += amount)?;
                            Ok(())
                        });
                    }
                });
            }
        });
        let total: i64 = rt.atomic(|tx| {
            let mut sum = 0;
            for a in &accounts {
                sum += *Rt::read(tx, a)?;
            }
            Ok(sum)
        });
        assert_eq!(total, 800);
    }

    #[test]
    fn read_only_fast_path_reads_without_bookkeeping() {
        let rt = Rt::default();
        let vars: Vec<_> = (0..50u64).map(|i| rt.new_var(i)).collect();
        let sum = rt.atomic_read_only(|tx| {
            let mut sum = 0;
            for v in &vars {
                sum += *Rt::read(tx, v)?;
            }
            Ok(sum)
        });
        assert_eq!(sum, (0..50).sum::<u64>());
        let s = rt.snapshot();
        assert_eq!(s.reads, 50);
        assert_eq!(s.validation_steps, 0);
        assert_eq!(s.extensions, 0, "no extension without a read set");
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn read_only_transactions_reject_updates() {
        let rt = Rt::default();
        let v = rt.new_var(0u32);
        rt.atomic_read_only(|tx| Rt::update(tx, &v, |n| *n += 1));
    }

    #[test]
    fn read_only_scans_stay_consistent_under_transfers() {
        // Concurrent RO scans of a bank must always see the conserved
        // total — the fast path may abort and retry but never return a
        // torn snapshot.
        let rt = Arc::new(Rt::default());
        let accounts: Vec<_> = (0..6).map(|_| rt.new_var(100i64)).collect();
        std::thread::scope(|s| {
            for t in 0..2usize {
                let rt = Arc::clone(&rt);
                let accounts = accounts.clone();
                s.spawn(move || {
                    let n = accounts.len();
                    for i in 0..400 {
                        let from = (t + i) % n;
                        let to = (t * 5 + i * 3 + 1) % n;
                        if from == to {
                            continue;
                        }
                        rt.atomic(|tx| {
                            let amount = (*Rt::read(tx, &accounts[from])?).min(7);
                            Rt::update(tx, &accounts[from], |b| *b -= amount)?;
                            Rt::update(tx, &accounts[to], |b| *b += amount)?;
                            Ok(())
                        });
                    }
                });
            }
            for _ in 0..2 {
                let rt = Arc::clone(&rt);
                let accounts = accounts.clone();
                s.spawn(move || {
                    for _ in 0..400 {
                        let total = rt.atomic_read_only(|tx| {
                            let mut sum = 0;
                            for a in &accounts {
                                sum += *Rt::read(tx, a)?;
                            }
                            Ok(sum)
                        });
                        assert_eq!(total, 600, "torn read-only snapshot");
                    }
                });
            }
        });
    }

    #[test]
    fn extension_disabled_still_correct() {
        let rt = Arc::new(Rt::new(Tl2Config {
            timestamp_extension: false,
            ..Tl2Config::default()
        }));
        let v = rt.new_var(0u64);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let rt = Arc::clone(&rt);
                let v = v.clone();
                s.spawn(move || {
                    for _ in 0..300 {
                        rt.atomic(|tx| Rt::update(tx, &v, |n| *n += 1));
                    }
                });
            }
        });
        assert_eq!(rt.atomic(|tx| Ok(*Rt::read(tx, &v)?)), 900);
    }
}
