//! Property tests for both STM runtimes.
//!
//! Single-threaded: a random program of reads/updates over a small heap
//! must behave exactly like a `Vec<u64>` model, for every runtime and
//! configuration. Multi-threaded: randomized transfer workloads must
//! conserve the total (atomicity) and never expose a torn pair
//! (opacity/isolation).

use std::sync::Arc;

use proptest::prelude::*;

use stmbench7_stm::astm::AstmConfig;
use stmbench7_stm::tl2::Tl2Config;
use stmbench7_stm::{AstmRuntime, ContentionManager, StmRuntime, Tl2Runtime};

#[derive(Clone, Debug)]
enum Step {
    Read(usize),
    Add(usize, u64),
    /// Read a, add its value to b — creates read-write dependencies.
    Copy(usize, usize),
}

fn arb_step(vars: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..vars).prop_map(Step::Read),
        ((0..vars), 1u64..100).prop_map(|(i, v)| Step::Add(i, v)),
        ((0..vars), (0..vars)).prop_map(|(a, b)| Step::Copy(a, b)),
    ]
}

/// Runs a program transactionally (one tx per chunk) and against a plain
/// model; the observable reads must match exactly.
fn check_against_model<RT: StmRuntime>(rt: &RT, program: &[Vec<Step>]) {
    const VARS: usize = 8;
    let vars: Vec<RT::Var<u64>> = (0..VARS as u64).map(|i| rt.new_var(i)).collect();
    let mut model: Vec<u64> = (0..VARS as u64).collect();

    for tx_steps in program {
        let mut model_reads = Vec::new();
        let mut model_next = model.clone();
        for step in tx_steps {
            match step {
                Step::Read(i) => model_reads.push(model_next[*i]),
                Step::Add(i, v) => model_next[*i] = model_next[*i].wrapping_add(*v),
                Step::Copy(a, b) => {
                    let v = model_next[*a];
                    model_next[*b] = model_next[*b].wrapping_add(v);
                }
            }
        }
        let stm_reads = rt.atomic(|tx| {
            let mut reads = Vec::new();
            for step in tx_steps {
                match step {
                    Step::Read(i) => reads.push(*RT::read(tx, &vars[*i])?),
                    Step::Add(i, v) => RT::update(tx, &vars[*i], |x| *x = x.wrapping_add(*v))?,
                    Step::Copy(a, b) => {
                        let v = *RT::read(tx, &vars[*a])?;
                        RT::update(tx, &vars[*b], |x| *x = x.wrapping_add(v))?;
                    }
                }
            }
            Ok(reads)
        });
        assert_eq!(stm_reads, model_reads, "reads diverged from the model");
        model = model_next;
    }
    for (i, var) in vars.iter().enumerate() {
        assert_eq!(*rt.read_quiesced(var), model[i], "final state diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn tl2_matches_model(
        program in proptest::collection::vec(
            proptest::collection::vec(arb_step(8), 1..12), 1..12),
        extension in proptest::bool::ANY,
    ) {
        let rt = Tl2Runtime::new(Tl2Config {
            timestamp_extension: extension,
            ..Tl2Config::default()
        });
        check_against_model(&rt, &program);
    }

    #[test]
    fn astm_matches_model(
        program in proptest::collection::vec(
            proptest::collection::vec(arb_step(8), 1..12), 1..12),
        incremental in proptest::bool::ANY,
    ) {
        let rt = AstmRuntime::new(AstmConfig {
            incremental_validation: incremental,
            ..AstmConfig::default()
        });
        check_against_model(&rt, &program);
    }
}

/// Concurrent conservation: random transfer matrices between accounts.
fn concurrent_conservation<RT: StmRuntime>(rt: Arc<RT>, transfers: Vec<(u8, u8, u8)>) {
    const ACCOUNTS: usize = 6;
    const INITIAL: i64 = 1_000;
    let accounts: Vec<RT::Var<i64>> = (0..ACCOUNTS).map(|_| rt.new_var(INITIAL)).collect();
    let chunks: Vec<Vec<(u8, u8, u8)>> = transfers.chunks(8).map(|c| c.to_vec()).collect();
    std::thread::scope(|s| {
        for chunk in &chunks {
            let rt = Arc::clone(&rt);
            let accounts = accounts.clone();
            s.spawn(move || {
                for (from, to, amount) in chunk {
                    let from = *from as usize % ACCOUNTS;
                    let to = *to as usize % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let amount = i64::from(*amount);
                    rt.atomic(|tx| {
                        let available = *RT::read(tx, &accounts[from])?;
                        let moved = amount.min(available.max(0));
                        RT::update(tx, &accounts[from], |b| *b -= moved)?;
                        RT::update(tx, &accounts[to], |b| *b += moved)?;
                        Ok(())
                    });
                }
            });
        }
    });
    let total: i64 = accounts.iter().map(|a| *rt.read_quiesced(a)).sum();
    assert_eq!(
        total,
        INITIAL * ACCOUNTS as i64,
        "money created or destroyed"
    );
    for a in &accounts {
        assert!(*rt.read_quiesced(a) >= 0, "negative balance");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn tl2_conserves_under_threads(
        transfers in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 16..64),
    ) {
        concurrent_conservation(Arc::new(Tl2Runtime::default()), transfers);
    }

    #[test]
    fn astm_conserves_under_threads(
        transfers in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 16..64),
        cm_idx in 0usize..6,
    ) {
        let cm = ContentionManager::all()[cm_idx];
        let rt = AstmRuntime::new(AstmConfig {
            cm,
            ..AstmConfig::default()
        });
        concurrent_conservation(Arc::new(rt), transfers);
    }
}
