//! The 45 STMBench7 operations (paper Appendix B.2).
//!
//! Operations are written once against [`Sb7Tx`] and carry no
//! synchronization; each declares an [`AccessSpec`] consumed by the
//! locking backends. The four files mirror the paper's taxonomy:
//!
//! * [`traversals`] — long traversals T1–T6, Q6, Q7,
//! * [`short_traversals`] — ST1–ST10,
//! * [`short_ops`] — OP1–OP15,
//! * [`structure_mods`] — SM1–SM8.

pub mod short_ops;
pub mod short_traversals;
pub mod structure_mods;
pub mod traversals;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use stmbench7_data::spec::{AccessSpec, Mode, ShardSet};
use stmbench7_data::{OpOutcome, Sb7Tx, ShardKey, StructureParams, TxR};

/// The paper's four operation categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// T1–T6, CT1–CT14: whole-graph traversals.
    LongTraversal,
    /// ST1–ST10: index-assisted partial traversals.
    ShortTraversal,
    /// OP1–OP15: few-object lookups and updates.
    ShortOperation,
    /// SM1–SM8: inserts/deletes that reshape the structure.
    StructureModification,
}

impl Category {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Category::LongTraversal => "long traversals",
            Category::ShortTraversal => "short traversals",
            Category::ShortOperation => "short operations",
            Category::StructureModification => "structure modifications",
        }
    }

    /// All categories in display order.
    pub fn all() -> [Category; 4] {
        [
            Category::LongTraversal,
            Category::ShortTraversal,
            Category::ShortOperation,
            Category::StructureModification,
        ]
    }

    /// Dense index into per-category tables ([`Category::all`] order).
    pub fn index(self) -> usize {
        match self {
            Category::LongTraversal => 0,
            Category::ShortTraversal => 1,
            Category::ShortOperation => 2,
            Category::StructureModification => 3,
        }
    }
}

macro_rules! ops {
    ($( $name:ident => ($cat:ident, $ro:expr, $label:expr) ),+ $(,)?) => {
        /// One of the 45 STMBench7 operations.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        pub enum OpKind {
            $( #[doc = $label] $name, )+
        }

        impl OpKind {
            /// All operations, in specification order.
            pub const ALL: &'static [OpKind] = &[ $( OpKind::$name, )+ ];

            /// The operation's category.
            pub fn category(self) -> Category {
                match self {
                    $( OpKind::$name => Category::$cat, )+
                }
            }

            /// True when the operation performs no updates.
            pub fn is_read_only(self) -> bool {
                match self {
                    $( OpKind::$name => $ro, )+
                }
            }

            /// The paper's name for the operation.
            pub fn name(self) -> &'static str {
                match self {
                    $( OpKind::$name => $label, )+
                }
            }

            /// Dense index into per-op tables.
            pub fn index(self) -> usize {
                Self::ALL.iter().position(|o| *o == self).expect("member of ALL")
            }
        }
    };
}

ops! {
    T1  => (LongTraversal, true,  "T1"),
    T2a => (LongTraversal, false, "T2a"),
    T2b => (LongTraversal, false, "T2b"),
    T2c => (LongTraversal, false, "T2c"),
    T3a => (LongTraversal, false, "T3a"),
    T3b => (LongTraversal, false, "T3b"),
    T3c => (LongTraversal, false, "T3c"),
    T4  => (LongTraversal, true,  "T4"),
    T5  => (LongTraversal, false, "T5"),
    T6  => (LongTraversal, true,  "T6"),
    Q6  => (LongTraversal, true,  "Q6"),
    Q7  => (LongTraversal, true,  "Q7"),
    St1 => (ShortTraversal, true,  "ST1"),
    St2 => (ShortTraversal, true,  "ST2"),
    St3 => (ShortTraversal, true,  "ST3"),
    St4 => (ShortTraversal, true,  "ST4"),
    St5 => (ShortTraversal, true,  "ST5"),
    St6 => (ShortTraversal, false, "ST6"),
    St7 => (ShortTraversal, false, "ST7"),
    St8 => (ShortTraversal, false, "ST8"),
    St9 => (ShortTraversal, true,  "ST9"),
    St10 => (ShortTraversal, false, "ST10"),
    Op1  => (ShortOperation, true,  "OP1"),
    Op2  => (ShortOperation, true,  "OP2"),
    Op3  => (ShortOperation, true,  "OP3"),
    Op4  => (ShortOperation, true,  "OP4"),
    Op5  => (ShortOperation, true,  "OP5"),
    Op6  => (ShortOperation, true,  "OP6"),
    Op7  => (ShortOperation, true,  "OP7"),
    Op8  => (ShortOperation, true,  "OP8"),
    Op9  => (ShortOperation, false, "OP9"),
    Op10 => (ShortOperation, false, "OP10"),
    Op11 => (ShortOperation, false, "OP11"),
    Op12 => (ShortOperation, false, "OP12"),
    Op13 => (ShortOperation, false, "OP13"),
    Op14 => (ShortOperation, false, "OP14"),
    Op15 => (ShortOperation, false, "OP15"),
    Sm1 => (StructureModification, false, "SM1"),
    Sm2 => (StructureModification, false, "SM2"),
    Sm3 => (StructureModification, false, "SM3"),
    Sm4 => (StructureModification, false, "SM4"),
    Sm5 => (StructureModification, false, "SM5"),
    Sm6 => (StructureModification, false, "SM6"),
    Sm7 => (StructureModification, false, "SM7"),
    Sm8 => (StructureModification, false, "SM8"),
}

/// Per-execution context: the structure parameters (for random id ranges
/// and date ranges) and the operation's random number generator.
pub struct OpCtx {
    /// The structure sizing the ids and dates are drawn against.
    pub params: StructureParams,
    /// The operation's own generator; reseeding it per request makes
    /// outcomes independent of scheduling.
    pub rng: SmallRng,
}

impl OpCtx {
    /// Creates a context with a deterministic generator.
    pub fn new(params: StructureParams, seed: u64) -> Self {
        OpCtx {
            params,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A random raw atomic-part id in `[1, pool max]`, as the paper's
    /// operations pick them ("operations … have to make choices randomly",
    /// and may fail when the id does not exist).
    pub fn random_atomic_raw(&mut self) -> u32 {
        self.rng.gen_range(1..=self.params.max_atomics())
    }

    /// A random raw composite-part id.
    pub fn random_composite_raw(&mut self) -> u32 {
        self.rng.gen_range(1..=self.params.max_comps())
    }

    /// A random raw base-assembly id.
    pub fn random_base_raw(&mut self) -> u32 {
        self.rng.gen_range(1..=self.params.max_bases())
    }

    /// A random raw complex-assembly id.
    pub fn random_complex_raw(&mut self) -> u32 {
        self.rng.gen_range(1..=self.params.max_complexes())
    }
}

/// Executes one operation.
pub fn run_op<T: Sb7Tx>(op: OpKind, tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    use OpKind::*;
    match op {
        T1 => traversals::t1(tx),
        T2a => traversals::t2a(tx),
        T2b => traversals::t2b(tx),
        T2c => traversals::t2c(tx),
        T3a => traversals::t3a(tx),
        T3b => traversals::t3b(tx),
        T3c => traversals::t3c(tx),
        T4 => traversals::t4(tx),
        T5 => traversals::t5(tx),
        T6 => traversals::t6(tx),
        Q6 => traversals::q6(tx),
        Q7 => traversals::q7(tx),
        St1 => short_traversals::st1(tx, ctx),
        St2 => short_traversals::st2(tx, ctx),
        St3 => short_traversals::st3(tx, ctx),
        St4 => short_traversals::st4(tx, ctx),
        St5 => short_traversals::st5(tx),
        St6 => short_traversals::st6(tx, ctx),
        St7 => short_traversals::st7(tx, ctx),
        St8 => short_traversals::st8(tx, ctx),
        St9 => short_traversals::st9(tx, ctx),
        St10 => short_traversals::st10(tx, ctx),
        Op1 => short_ops::op1(tx, ctx),
        Op2 => short_ops::op2(tx, ctx),
        Op3 => short_ops::op3(tx, ctx),
        Op4 => short_ops::op4(tx),
        Op5 => short_ops::op5(tx),
        Op6 => short_ops::op6(tx, ctx),
        Op7 => short_ops::op7(tx, ctx),
        Op8 => short_ops::op8(tx, ctx),
        Op9 => short_ops::op9(tx, ctx),
        Op10 => short_ops::op10(tx, ctx),
        Op11 => short_ops::op11(tx),
        Op12 => short_ops::op12(tx, ctx),
        Op13 => short_ops::op13(tx, ctx),
        Op14 => short_ops::op14(tx, ctx),
        Op15 => short_ops::op15(tx, ctx),
        Sm1 => structure_mods::sm1(tx, ctx),
        Sm2 => structure_mods::sm2(tx, ctx),
        Sm3 => structure_mods::sm3(tx, ctx),
        Sm4 => structure_mods::sm4(tx, ctx),
        Sm5 => structure_mods::sm5(tx, ctx),
        Sm6 => structure_mods::sm6(tx, ctx),
        Sm7 => structure_mods::sm7(tx, ctx),
        Sm8 => structure_mods::sm8(tx, ctx),
    }
}

/// The lock groups each operation touches under the medium-grained
/// strategy (paper Figure 5); the coarse strategy derives its single
/// lock's mode from the same table.
pub fn access_spec(op: OpKind, levels: u8) -> AccessSpec {
    use OpKind::*;
    let r = Mode::Read;
    let w = Mode::Write;
    let top = levels;
    match op {
        // Long traversals: module → assemblies → composites → atomics.
        T1 | T6 => AccessSpec::new()
            .regular()
            .levels(1, top, r)
            .composites(r)
            .atomics(r),
        T2a | T2b | T2c | T3a | T3b | T3c => AccessSpec::new()
            .regular()
            .levels(1, top, r)
            .composites(r)
            .atomics(w),
        T4 => AccessSpec::new()
            .regular()
            .levels(1, top, r)
            .composites(r)
            .documents(r),
        T5 => AccessSpec::new()
            .regular()
            .levels(1, top, r)
            .composites(r)
            .documents(w),
        Q6 => AccessSpec::new().regular().levels(1, top, r).composites(r),
        Q7 => AccessSpec::new().regular().atomics(r),
        // Short traversals.
        St1 | St9 => AccessSpec::new()
            .regular()
            .levels(1, top, r)
            .composites(r)
            .atomics(r),
        St2 => AccessSpec::new()
            .regular()
            .levels(1, top, r)
            .composites(r)
            .documents(r),
        St3 => AccessSpec::new()
            .regular()
            .levels(1, top, r)
            .composites(r)
            .atomics(r),
        St4 => AccessSpec::new()
            .regular()
            .level(1, r)
            .composites(r)
            .documents(r),
        St5 => AccessSpec::new().regular().level(1, r).composites(r),
        St6 | St10 => AccessSpec::new()
            .regular()
            .levels(1, top, r)
            .composites(r)
            .atomics(w),
        St7 => AccessSpec::new()
            .regular()
            .levels(1, top, r)
            .composites(r)
            .documents(w),
        St8 => AccessSpec::new()
            .regular()
            .levels(1, top, w)
            .composites(r)
            .atomics(r),
        // Short operations.
        Op1 | Op2 | Op3 => AccessSpec::new().regular().atomics(r),
        Op4 | Op5 => AccessSpec::new().regular().manual(r),
        Op6 => AccessSpec::new().regular().levels(2, top, r),
        Op7 => AccessSpec::new().regular().levels(1, 2, r),
        Op8 => AccessSpec::new().regular().level(1, r).composites(r),
        Op9 | Op10 | Op15 => AccessSpec::new().regular().atomics(w),
        Op11 => AccessSpec::new().regular().manual(w),
        Op12 => AccessSpec::new().regular().levels(2, top, w),
        Op13 => AccessSpec::new().regular().level(1, w).level(2, r),
        Op14 => AccessSpec::new().regular().level(1, r).composites(w),
        // Structure modifications: fully isolated by the SM gate; they
        // additionally take the groups they touch in write mode so the
        // borrow structure matches the mutation pattern.
        Sm1 => AccessSpec::new()
            .sm_op()
            .composites(w)
            .atomics(w)
            .documents(w),
        Sm2 => AccessSpec::new()
            .sm_op()
            .level(1, w)
            .composites(w)
            .atomics(w)
            .documents(w),
        Sm3 | Sm4 => AccessSpec::new().sm_op().level(1, w).composites(w),
        Sm5 => AccessSpec::new().sm_op().levels(1, top, w),
        Sm6 => AccessSpec::new().sm_op().levels(1, top, w).composites(w),
        Sm7 => AccessSpec::new().sm_op().levels(1, top, w),
        Sm8 => AccessSpec::new().sm_op().levels(1, top, w).composites(w),
    }
}

/// The exact atomic-part shard set of one operation *instance*, when it
/// can be known before execution: operations that draw their atomic-part
/// ids first thing and touch no other atomic part have a footprint that
/// replaying those draws against a clone of the operation's RNG yields
/// exactly. Backends with per-shard atomic locks (the medium strategy)
/// then skip every other shard.
///
/// Two families qualify:
///
/// * OP1/OP9/OP15 draw ten candidate ids up front (see
///   [`short_ops::op1`]) — and a date entry shares its part's shard, so
///   even OP15's index update stays inside the set;
/// * ST3/ST8 draw exactly one id (see
///   [`short_traversals::st3`]) and read only that part before walking
///   *upward* through assemblies — groups the narrowing never touches.
///
/// Returns `None` for every operation whose atomic footprint is
/// data-dependent: those keep the conservative [`ShardSet::ALL`]
/// declaration. OP7/OP8 also draw an id first, but their footprint holds
/// no atomic parts at all (assembly levels and composites are not
/// shard-split), so there is nothing for a hint to narrow.
pub fn shard_hint(op: OpKind, ctx: &OpCtx) -> Option<ShardSet> {
    let shards = ctx.params.effective_shards();
    if shards <= 1 {
        return None;
    }
    // `begin_attempt` restores the pre-execution RNG state for every
    // attempt, so replaying the leading draws against a clone of the
    // generator is exact by construction. Only the generator is cloned —
    // this runs on every operation dispatch, so the probe must not
    // rebuild a context (the draw itself needs nothing but the id range).
    let max = ctx.params.max_atomics();
    match op {
        OpKind::Op1 | OpKind::Op9 | OpKind::Op15 => {
            // Replay the ten draws exactly as `op1_impl` will make them.
            let mut rng = ctx.rng.clone();
            let mut set = ShardSet::EMPTY;
            for _ in 0..10 {
                set = set.with(rng.gen_range(1..=max).shard(shards));
            }
            Some(set)
        }
        OpKind::St3 | OpKind::St8 => {
            // `ancestors_of_random_part` draws its single id first; the
            // walk upward reads that one part's owner and then leaves the
            // atomic group entirely.
            Some(ShardSet::of(
                ctx.rng.clone().gen_range(1..=max).shard(shards),
            ))
        }
        _ => None,
    }
}

/// The shard a request's *first* atomic-part draw routes to, computed
/// from the request's seed alone — the affinity router's key.
///
/// The service layer re-seeds each request's generator from
/// `Request::rng_seed` before execution, so the first draw any hintable
/// operation makes is fully determined by `(op, params, rng_seed)`; a
/// dispatcher can therefore route the request to the worker that owns
/// that shard without building a context or touching the structure.
/// Returns `None` for unhintable operations and single-shard structures
/// (no affinity signal; route however balances load).
///
/// For OP1/OP9/OP15 the first of the ten drawn ids stands in for the
/// whole footprint: a 10-draw set usually spans several shards, and a
/// router needs one owner, not a set — the remaining shards are covered
/// by the lock plan ([`shard_hint`]), not by placement.
pub fn primary_shard(op: OpKind, params: &StructureParams, rng_seed: u64) -> Option<usize> {
    let shards = params.effective_shards();
    if shards <= 1 {
        return None;
    }
    match op {
        OpKind::Op1 | OpKind::Op9 | OpKind::Op15 | OpKind::St3 | OpKind::St8 => {
            let mut rng = SmallRng::seed_from_u64(rng_seed);
            Some(rng.gen_range(1..=params.max_atomics()).shard(shards))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_45_operations() {
        assert_eq!(OpKind::ALL.len(), 45);
    }

    #[test]
    fn category_sizes_match_the_paper() {
        let count = |c: Category| OpKind::ALL.iter().filter(|o| o.category() == c).count();
        assert_eq!(count(Category::LongTraversal), 12);
        assert_eq!(count(Category::ShortTraversal), 10);
        assert_eq!(count(Category::ShortOperation), 15);
        assert_eq!(count(Category::StructureModification), 8);
    }

    #[test]
    fn read_only_sets_match_the_paper() {
        use OpKind::*;
        let ro: Vec<_> = OpKind::ALL
            .iter()
            .copied()
            .filter(|o| o.is_read_only())
            .collect();
        assert_eq!(
            ro,
            vec![
                T1, T4, T6, Q6, Q7, St1, St2, St3, St4, St5, St9, Op1, Op2, Op3, Op4, Op5, Op6,
                Op7, Op8
            ]
        );
        // All structure modifications are updates.
        assert!(OpKind::ALL
            .iter()
            .filter(|o| o.category() == Category::StructureModification)
            .all(|o| !o.is_read_only()));
    }

    #[test]
    fn t1_acquires_nine_locks_under_medium_grained() {
        // The paper: "long traversals have to acquire 9 locks".
        assert_eq!(access_spec(OpKind::T1, 7).lock_count(), 9);
        assert_eq!(access_spec(OpKind::T2b, 7).lock_count(), 9);
        assert_eq!(access_spec(OpKind::T4, 7).lock_count(), 9);
    }

    #[test]
    fn specs_are_consistent_with_read_only_flags() {
        for &op in OpKind::ALL {
            let spec = access_spec(op, 7);
            if op.is_read_only() {
                assert!(!spec.any_write(), "{} is read-only but writes", op.name());
            } else {
                assert!(spec.any_write(), "{} updates but declares none", op.name());
            }
            // Every operation declares its relationship to the SM gate.
            let is_sm = op.category() == Category::StructureModification;
            assert_eq!(spec.sm.is_write(), is_sm, "{} gate mode wrong", op.name());
            assert!(spec.sm.touched(), "{} must declare the gate", op.name());
        }
    }

    #[test]
    fn shard_hints_cover_exactly_the_drawn_ids() {
        let params = StructureParams::tiny().with_shards(8);
        for op in [OpKind::Op1, OpKind::Op9, OpKind::Op15] {
            for seed in 0..20 {
                let ctx = OpCtx::new(params.clone(), seed);
                let hint = shard_hint(op, &ctx).expect("op1 family is hintable");
                // Replaying the same draws independently must land inside
                // the hinted set, and the hint must contain nothing else.
                let mut probe = OpCtx::new(params.clone(), seed);
                let mut expect = ShardSet::EMPTY;
                for _ in 0..10 {
                    let raw = probe.random_atomic_raw();
                    assert!(hint.contains(raw as usize % 8));
                    expect = expect.with(raw as usize % 8);
                }
                assert_eq!(hint, expect);
                assert!(!hint.is_all());
            }
        }
        // Data-dependent footprints never get a hint; unsharded
        // structures never do either.
        assert!(shard_hint(OpKind::Op2, &OpCtx::new(params, 1)).is_none());
        let unsharded = OpCtx::new(StructureParams::tiny(), 1);
        assert!(shard_hint(OpKind::Op1, &unsharded).is_none());
    }

    #[test]
    fn st3_st8_hints_are_the_singleton_shard_of_the_first_draw() {
        let params = StructureParams::tiny().with_shards(8);
        for op in [OpKind::St3, OpKind::St8] {
            for seed in 0..25 {
                let ctx = OpCtx::new(params.clone(), seed);
                let hint = shard_hint(op, &ctx).expect("st3/st8 are hintable");
                // One id drawn ⇒ exactly one shard, and exactly the one
                // the replayed draw routes to.
                assert_eq!(hint.count(8), 1, "{} seed {seed}", op.name());
                let mut probe = OpCtx::new(params.clone(), seed);
                let raw = probe.random_atomic_raw();
                assert_eq!(hint, ShardSet::of(raw as usize % 8));
            }
        }
        // OP7/OP8 draw an id too, but touch no atomic parts: their specs
        // have nothing a shard hint could narrow.
        for op in [OpKind::Op7, OpKind::Op8] {
            assert!(!access_spec(op, 7).atomics.touched());
            assert!(shard_hint(op, &OpCtx::new(params.clone(), 1)).is_none());
        }
    }

    #[test]
    fn primary_shard_is_the_first_draw_of_every_hintable_op() {
        let params = StructureParams::tiny().with_shards(8);
        for op in [
            OpKind::Op1,
            OpKind::Op9,
            OpKind::Op15,
            OpKind::St3,
            OpKind::St8,
        ] {
            for seed in 0..25u64 {
                let primary =
                    primary_shard(op, &params, seed).expect("hintable ops have a primary shard");
                // The router key is the first replayed draw — and is
                // therefore always inside the lock plan's hinted set.
                let mut probe = OpCtx::new(params.clone(), seed);
                assert_eq!(primary, probe.random_atomic_raw() as usize % 8);
                let hint = shard_hint(op, &OpCtx::new(params.clone(), seed)).unwrap();
                assert!(hint.contains(primary), "{} seed {seed}", op.name());
            }
        }
        // No signal for unhintable ops or unsharded structures.
        assert!(primary_shard(OpKind::T1, &params, 1).is_none());
        assert!(primary_shard(OpKind::Op2, &params, 1).is_none());
        assert!(primary_shard(OpKind::Op1, &StructureParams::tiny(), 1).is_none());
    }

    #[test]
    fn medium_backend_runs_st3_st8_under_their_narrowed_specs() {
        use stmbench7_backend::{Backend, MediumBackend, SequentialBackend, TxOperation};
        use stmbench7_data::{validate, OpOutcome, Workspace};

        /// One operation instance with its own pinned RNG — the engine's
        /// per-instance execution, reduced to a test harness.
        struct OneOp {
            op: OpKind,
            params: StructureParams,
            seed: u64,
        }
        impl TxOperation<OpOutcome> for OneOp {
            fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<OpOutcome> {
                let mut ctx = OpCtx::new(self.params.clone(), self.seed);
                run_op(self.op, tx, &mut ctx)
            }
        }

        let params = StructureParams::tiny().with_shards(8);
        let ws = Workspace::build(params.clone(), 7);
        let medium = MediumBackend::new(ws.clone());
        let sequential = SequentialBackend::new(ws);
        for op in [OpKind::St3, OpKind::St8] {
            for seed in 0..30 {
                let hint = shard_hint(op, &OpCtx::new(params.clone(), seed)).unwrap();
                let mut spec = access_spec(op, params.assembly_levels);
                spec.atomic_shards = hint;
                // The narrowed declaration suffices (no undeclared-shard
                // panic) and computes exactly what sequential computes.
                let mut a = OneOp {
                    op,
                    params: params.clone(),
                    seed,
                };
                let mut b = OneOp {
                    op,
                    params: params.clone(),
                    seed,
                };
                let narrowed = medium.execute(&spec, &mut a);
                let oracle = sequential.execute(&spec, &mut b);
                assert_eq!(narrowed, oracle, "{} seed {seed}", op.name());
            }
        }
        validate(&medium.export()).expect("structure intact after narrowed runs");
    }

    #[test]
    fn indexes_round_trip() {
        for (i, &op) in OpKind::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }
}
