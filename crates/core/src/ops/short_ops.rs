//! Short operations OP1–OP15 (paper Appendix B.2.3).
//!
//! These pick one or a few objects — mostly through an index — and work on
//! the object or its immediate neighborhood. They are the "large number of
//! very short operations the performance of which is crucial" that OO7
//! lacked and STMBench7 adds.

use stmbench7_data::objects::AssemblyChildren;
use stmbench7_data::{AtomicPart, OpOutcome, Sb7Tx, TxR};

use super::short_traversals::toggle_date;
use super::OpCtx;

/// OP1 (Q1 in OO7): look up ten random atomic-part ids; read each match.
/// Returns the number processed (lookups may miss).
pub fn op1<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    op1_impl(tx, ctx, Update::No)
}

/// OP9: as OP1, updating non-indexed attributes of each match.
pub fn op9<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    op1_impl(tx, ctx, Update::Xy)
}

/// OP15: as OP1, updating the *indexed* build date of each match.
pub fn op15<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    op1_impl(tx, ctx, Update::Date)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Update {
    No,
    Xy,
    Date,
}

fn op1_impl<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx, update: Update) -> TxR<OpOutcome> {
    let mut processed = 0i64;
    let mut checksum = 0i64;
    for _ in 0..10 {
        let raw = ctx.random_atomic_raw();
        let Some(id) = tx.lookup_atomic(raw)? else {
            continue;
        };
        checksum += tx.atomic(id, |p| i64::from(p.x) + i64::from(p.y))?;
        match update {
            Update::No => {}
            Update::Xy => tx.atomic_mut(id, |p| p.swap_xy())?,
            Update::Date => {
                let date = tx.atomic(id, |p| p.build_date)?;
                tx.set_atomic_build_date(id, AtomicPart::next_build_date(date))?;
            }
        }
        processed += 1;
    }
    std::hint::black_box(checksum);
    Ok(OpOutcome::Done(processed))
}

/// OP2 (Q2 in OO7): read all atomic parts with build date in the "young"
/// range `[1990, 1999]` via the build-date index.
pub fn op2<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    let (lo, hi) = ctx.params.young_range();
    range_impl(tx, lo, hi, false)
}

/// OP3 (Q3 in OO7): as OP2 over the wider range `[1900, 1999]`.
pub fn op3<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    let (lo, hi) = ctx.params.old_range();
    range_impl(tx, lo, hi, false)
}

/// OP10: as OP2, updating non-indexed attributes of every part found.
pub fn op10<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    let (lo, hi) = ctx.params.young_range();
    range_impl(tx, lo, hi, true)
}

fn range_impl<T: Sb7Tx>(tx: &mut T, lo: i32, hi: i32, update: bool) -> TxR<OpOutcome> {
    let ids = tx.atomics_in_date_range(lo, hi)?;
    let mut checksum = 0i64;
    for id in &ids {
        checksum += tx.atomic(*id, |p| i64::from(p.x) + i64::from(p.y))?;
        if update {
            tx.atomic_mut(*id, |p| p.swap_xy())?;
        }
    }
    std::hint::black_box(checksum);
    Ok(OpOutcome::Done(ids.len() as i64))
}

/// OP4 (T8 in OO7): count `'I'` characters in the manual.
pub fn op4<T: Sb7Tx>(tx: &mut T) -> TxR<OpOutcome> {
    Ok(OpOutcome::Done(tx.manual_count_char('I')? as i64))
}

/// OP5 (T9 in OO7): 1 if the manual's first and last characters match.
pub fn op5<T: Sb7Tx>(tx: &mut T) -> TxR<OpOutcome> {
    Ok(OpOutcome::Done(i64::from(tx.manual_first_last_equal()?)))
}

/// OP11: swap `'I'` ↔ `'i'` in the manual; returns characters changed.
/// The operation that makes object-granularity STM logging copy a
/// megabyte per character set.
pub fn op11<T: Sb7Tx>(tx: &mut T) -> TxR<OpOutcome> {
    Ok(OpOutcome::Done(tx.manual_swap_case()? as i64))
}

/// OP6: read all siblings of a random complex assembly (fails when the
/// random id misses the index; the root has no siblings).
pub fn op6<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    op6_impl(tx, ctx, false)
}

/// OP12: as OP6, updating each sibling's build date.
pub fn op12<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    op6_impl(tx, ctx, true)
}

fn op6_impl<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx, update: bool) -> TxR<OpOutcome> {
    let raw = ctx.random_complex_raw();
    let Some(ca) = tx.lookup_complex(raw)? else {
        return Ok(OpOutcome::Fail("complex assembly id not found in index"));
    };
    let Some(parent) = tx.complex(ca, |c| c.parent)? else {
        return Ok(OpOutcome::Done(0)); // The root has no siblings.
    };
    let siblings = tx.complex(parent, |p| match &p.children {
        AssemblyChildren::Complex(v) => v.clone(),
        AssemblyChildren::Base(_) => Vec::new(),
    })?;
    let mut checksum = 0i64;
    for sib in &siblings {
        checksum += tx.complex(*sib, |c| i64::from(c.build_date))?;
        if update {
            tx.complex_mut(*sib, |c| c.build_date = toggle_date(c.build_date))?;
        }
    }
    std::hint::black_box(checksum);
    Ok(OpOutcome::Done(siblings.len() as i64))
}

/// OP7: read all siblings of a random base assembly.
pub fn op7<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    op7_impl(tx, ctx, false)
}

/// OP13: as OP7, updating each sibling's build date.
pub fn op13<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    op7_impl(tx, ctx, true)
}

fn op7_impl<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx, update: bool) -> TxR<OpOutcome> {
    let raw = ctx.random_base_raw();
    let Some(base) = tx.lookup_base(raw)? else {
        return Ok(OpOutcome::Fail("base assembly id not found in index"));
    };
    let parent = tx.base(base, |b| b.parent)?;
    let siblings = tx.complex(parent, |p| match &p.children {
        AssemblyChildren::Base(v) => v.clone(),
        AssemblyChildren::Complex(_) => Vec::new(),
    })?;
    let mut checksum = 0i64;
    for sib in &siblings {
        checksum += tx.base(*sib, |b| i64::from(b.build_date))?;
        if update {
            tx.base_mut(*sib, |b| b.build_date = toggle_date(b.build_date))?;
        }
    }
    std::hint::black_box(checksum);
    Ok(OpOutcome::Done(siblings.len() as i64))
}

/// OP8: read all composite parts of a random base assembly.
pub fn op8<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    op8_impl(tx, ctx, false)
}

/// OP14: as OP8, updating each composite part's build date.
pub fn op14<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    op8_impl(tx, ctx, true)
}

fn op8_impl<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx, update: bool) -> TxR<OpOutcome> {
    let raw = ctx.random_base_raw();
    let Some(base) = tx.lookup_base(raw)? else {
        return Ok(OpOutcome::Fail("base assembly id not found in index"));
    };
    let comps = tx.base(base, |b| b.components.clone())?;
    let mut checksum = 0i64;
    for comp in &comps {
        checksum += tx.composite(*comp, |c| i64::from(c.build_date))?;
        if update {
            tx.composite_mut(*comp, |c| c.build_date = toggle_date(c.build_date))?;
        }
    }
    std::hint::black_box(checksum);
    Ok(OpOutcome::Done(comps.len() as i64))
}
