//! Short traversals ST1–ST10 (paper Appendix B.2.2).
//!
//! These follow a random path through the structure (or use an index) and
//! may *fail* benignly: a base assembly without composite parts, or a
//! random id that misses its index, ends the operation with
//! [`OpOutcome::Fail`], exactly as the paper prescribes ("we use this
//! mechanism extensively, because operations lack input data and thus have
//! to make choices randomly").

use std::collections::HashSet;

use rand::Rng;

use stmbench7_data::objects::AssemblyChildren;
use stmbench7_data::{
    AtomicPartId, BaseAssemblyId, ComplexAssemblyId, CompositePartId, OpOutcome, Sb7Tx, TxR,
};

use super::OpCtx;

/// Toggles a non-indexed build date (assemblies, composite parts).
pub(crate) fn toggle_date(date: i32) -> i32 {
    stmbench7_data::AtomicPart::next_build_date(date)
}

/// Walks a uniformly random root-to-base path; returns the base assembly
/// and a random composite part of it, or the failure reason.
fn random_descent<T: Sb7Tx>(
    tx: &mut T,
    ctx: &mut OpCtx,
) -> TxR<Result<(BaseAssemblyId, CompositePartId), &'static str>> {
    let mut current = tx.module(|m| m.design_root)?;
    let base = loop {
        let children = tx.complex(current, |c| c.children.clone())?;
        match children {
            AssemblyChildren::Complex(v) => {
                if v.is_empty() {
                    return Ok(Err("complex assembly without children"));
                }
                current = v[ctx.rng.gen_range(0..v.len())];
            }
            AssemblyChildren::Base(v) => {
                if v.is_empty() {
                    return Ok(Err("complex assembly without children"));
                }
                break v[ctx.rng.gen_range(0..v.len())];
            }
        }
    };
    let comps = tx.base(base, |b| b.components.clone())?;
    if comps.is_empty() {
        return Ok(Err("base assembly with no composite parts"));
    }
    let comp = comps[ctx.rng.gen_range(0..comps.len())];
    Ok(Ok((base, comp)))
}

/// ST1: random path down to one atomic part; read-only. Returns
/// `x + y` of the visited part.
pub fn st1<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    st1_impl(tx, ctx, false)
}

/// ST6: as ST1, updating the visited part's non-indexed attributes.
pub fn st6<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    st1_impl(tx, ctx, true)
}

fn st1_impl<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx, update: bool) -> TxR<OpOutcome> {
    let (_, comp) = match random_descent(tx, ctx)? {
        Ok(pair) => pair,
        Err(reason) => return Ok(OpOutcome::Fail(reason)),
    };
    let parts = tx.composite(comp, |c| c.parts.clone())?;
    debug_assert!(!parts.is_empty(), "composite parts always have graphs");
    let part = parts[ctx.rng.gen_range(0..parts.len())];
    let sum = tx.atomic(part, |p| i64::from(p.x) + i64::from(p.y))?;
    if update {
        tx.atomic_mut(part, |p| p.swap_xy())?;
    }
    Ok(OpOutcome::Done(sum))
}

/// ST2: random path down to one document; counts `'I'` characters.
pub fn st2<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    st2_impl(tx, ctx, false)
}

/// ST7: as ST2, swapping `"I am"` ↔ `"This is"`; returns replacements.
pub fn st7<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    st2_impl(tx, ctx, true)
}

fn st2_impl<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx, update: bool) -> TxR<OpOutcome> {
    let (_, comp) = match random_descent(tx, ctx)? {
        Ok(pair) => pair,
        Err(reason) => return Ok(OpOutcome::Fail(reason)),
    };
    let doc = tx.composite(comp, |c| c.doc)?;
    let result = if update {
        tx.document_mut(doc, |d| stmbench7_data::text::swap_text(&mut d.text) as i64)?
    } else {
        tx.document(doc, |d| {
            stmbench7_data::text::count_char(&d.text, 'I') as i64
        })?
    };
    Ok(OpOutcome::Done(result))
}

/// The ST3/ST8 bottom-up walk: the set of complex assemblies that are
/// ancestors of the composite part owning a random atomic part.
fn ancestors_of_random_part<T: Sb7Tx>(
    tx: &mut T,
    ctx: &mut OpCtx,
) -> TxR<Result<Vec<ComplexAssemblyId>, &'static str>> {
    let raw = ctx.random_atomic_raw();
    let Some(part) = tx.lookup_atomic(raw)? else {
        return Ok(Err("atomic part id not found in index"));
    };
    let comp = tx.atomic(part, |p| p.owner)?;
    let bases = tx.composite(comp, |c| c.used_in.clone())?;
    if bases.is_empty() {
        return Ok(Err("composite part not used by any base assembly"));
    }
    let mut seen: HashSet<ComplexAssemblyId> = HashSet::new();
    let mut order = Vec::new();
    for base in bases {
        let mut current = Some(tx.base(base, |b| b.parent)?);
        while let Some(ca) = current {
            if !seen.insert(ca) {
                break; // Visit each complex assembly at most once.
            }
            order.push(ca);
            current = tx.complex(ca, |c| c.parent)?;
        }
    }
    Ok(Ok(order))
}

/// ST3 (T7 in OO7): bottom-up traversal from a random atomic part to the
/// root; returns the number of complex assemblies visited.
pub fn st3<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    let ancestors = match ancestors_of_random_part(tx, ctx)? {
        Ok(v) => v,
        Err(reason) => return Ok(OpOutcome::Fail(reason)),
    };
    let mut checksum = 0i64;
    for ca in &ancestors {
        checksum += tx.complex(*ca, |c| i64::from(c.build_date))?;
    }
    std::hint::black_box(checksum);
    Ok(OpOutcome::Done(ancestors.len() as i64))
}

/// ST8: as ST3, updating each visited assembly's (non-indexed) build
/// date.
pub fn st8<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    let ancestors = match ancestors_of_random_part(tx, ctx)? {
        Ok(v) => v,
        Err(reason) => return Ok(OpOutcome::Fail(reason)),
    };
    for ca in &ancestors {
        tx.complex_mut(*ca, |c| c.build_date = toggle_date(c.build_date))?;
    }
    Ok(OpOutcome::Done(ancestors.len() as i64))
}

/// ST4 (Q4 in OO7): look up 100 random document titles and perform a
/// read-only operation on each base assembly using the matching composite
/// parts. Returns the number of base assemblies visited.
pub fn st4<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    let mut visited = 0i64;
    let mut checksum = 0i64;
    for _ in 0..100 {
        let title = stmbench7_data::text::document_title(ctx.random_composite_raw());
        let Some(doc) = tx.lookup_document(&title)? else {
            continue;
        };
        let comp = tx.document(doc, |d| d.part)?;
        let bases = tx.composite(comp, |c| c.used_in.clone())?;
        for base in bases {
            checksum += tx.base(base, |b| i64::from(b.build_date))?;
            visited += 1;
        }
    }
    std::hint::black_box(checksum);
    Ok(OpOutcome::Done(visited))
}

/// ST5 (Q5 in OO7): find base assemblies whose build date is lower than
/// that of one of their composite parts, via the base-assembly index.
pub fn st5<T: Sb7Tx>(tx: &mut T) -> TxR<OpOutcome> {
    let bases = tx.all_base_ids()?;
    let mut matched = 0i64;
    for base in bases {
        let (date, comps) = tx.base(base, |b| (b.build_date, b.components.clone()))?;
        for comp in comps {
            if tx.composite(comp, |c| c.build_date)? > date {
                matched += 1;
                break;
            }
        }
    }
    Ok(OpOutcome::Done(matched))
}

/// ST9: as ST1 but performing a depth-first search over the whole atomic
/// graph of the chosen composite part; returns parts visited.
pub fn st9<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    st9_impl(tx, ctx, false)
}

/// ST10: as ST9, updating every visited atomic part.
pub fn st10<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    st9_impl(tx, ctx, true)
}

fn st9_impl<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx, update: bool) -> TxR<OpOutcome> {
    let (_, comp) = match random_descent(tx, ctx)? {
        Ok(pair) => pair,
        Err(reason) => return Ok(OpOutcome::Fail(reason)),
    };
    let root = tx.composite(comp, |c| c.root_part)?;
    let mut visited: HashSet<AtomicPartId> = HashSet::new();
    let mut stack = vec![root];
    let mut checksum = 0i64;
    while let Some(id) = stack.pop() {
        if !visited.insert(id) {
            continue;
        }
        let targets = tx.atomic(id, |p| {
            checksum += i64::from(p.x) + i64::from(p.y);
            p.to.iter().map(|c| c.to).collect::<Vec<_>>()
        })?;
        if update {
            tx.atomic_mut(id, |p| p.swap_xy())?;
        }
        stack.extend(targets);
    }
    std::hint::black_box(checksum);
    Ok(OpOutcome::Done(visited.len() as i64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmbench7_data::{DirectTx, StructureParams, Workspace};

    #[test]
    fn toggle_date_is_a_self_inverse() {
        for date in [1000, 1001, 1990, 1999, 0, -5] {
            assert_eq!(toggle_date(toggle_date(date)), date);
            assert_eq!((toggle_date(date) - date).abs(), 1);
        }
    }

    #[test]
    fn random_descent_always_lands_on_fresh_builds() {
        // The initial build links every base assembly to composite
        // parts, so the descent cannot fail.
        let p = StructureParams::tiny();
        let mut ws = Workspace::build(p.clone(), 3);
        for seed in 0..30 {
            let mut ctx = OpCtx::new(p.clone(), seed);
            let mut tx = DirectTx::writing(&mut ws);
            let (base, comp) = random_descent(&mut tx, &mut ctx)
                .unwrap()
                .unwrap_or_else(|reason| panic!("seed {seed} failed: {reason}"));
            // The returned pair is actually linked.
            let linked = tx.base(base, |b| b.components.contains(&comp)).unwrap();
            assert!(linked);
        }
    }

    #[test]
    fn ancestors_walk_reaches_the_root_without_duplicates() {
        let p = StructureParams::tiny();
        let mut ws = Workspace::build(p.clone(), 3);
        let root = ws.module.design_root;
        let mut found = false;
        for seed in 0..50 {
            let mut ctx = OpCtx::new(p.clone(), seed);
            let mut tx = DirectTx::writing(&mut ws);
            if let Ok(ancestors) = ancestors_of_random_part(&mut tx, &mut ctx).unwrap() {
                found = true;
                assert!(ancestors.contains(&root), "walk must reach the root");
                let mut unique = ancestors.clone();
                unique.sort_unstable_by_key(|c| c.raw());
                unique.dedup();
                assert_eq!(unique.len(), ancestors.len(), "each assembly at most once");
            }
        }
        assert!(found, "some random id must hit");
    }
}
