//! Structure modification operations SM1–SM8 (paper Appendix B.2.4).
//!
//! These create and delete structure, constrained so "the structure is
//! never degenerated in a significant way": the root stays connected to
//! all base assemblies, sole children cannot be deleted, and id pools
//! bound growth. All capacity checks happen *before* any mutation so the
//! non-rollback (lock-based) backends never leave partial changes behind.

use stmbench7_data::access::PoolKind;
use stmbench7_data::builder::{
    build_assembly_subtree, create_composite_with_graph, subtree_cost, NewAssembly,
};
use stmbench7_data::objects::AssemblyChildren;
use stmbench7_data::{BaseAssemblyId, ComplexAssemblyId, OpOutcome, Sb7Tx, TxErr, TxR};

use super::OpCtx;

/// SM1: create a composite part (document + atomic graph), unlinked from
/// any base assembly. Fails when a pool is exhausted.
pub fn sm1<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    match create_composite_with_graph(tx, &ctx.params.clone(), &mut ctx.rng)? {
        Some(id) => Ok(OpOutcome::Done(i64::from(id.raw()))),
        None => Ok(OpOutcome::Fail("maximum number of composite parts reached")),
    }
}

/// SM2: delete a random composite part with its document and atomic
/// graph, unlinking it from every base assembly using it.
pub fn sm2<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    let raw = ctx.random_composite_raw();
    let Some(comp) = tx.lookup_composite(raw)? else {
        return Ok(OpOutcome::Fail("composite part id not found in index"));
    };
    let removed = tx.delete_composite(comp)?;
    // Unlink from every base assembly (the bag may hold duplicates; each
    // occurrence removes one forward link).
    let mut users = removed.used_in.clone();
    users.sort_unstable_by_key(|b| b.raw());
    users.dedup();
    for base in users {
        tx.base_mut(base, |b| b.components.retain(|c| *c != comp))?;
    }
    tx.delete_document(removed.doc)?;
    let mut deleted_parts = 0i64;
    for part in &removed.parts {
        tx.delete_atomic(*part)?;
        deleted_parts += 1;
    }
    Ok(OpOutcome::Done(deleted_parts))
}

/// SM3: link a random base assembly to a random composite part (a bag
/// link: duplicates are allowed).
pub fn sm3<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    let base_raw = ctx.random_base_raw();
    let comp_raw = ctx.random_composite_raw();
    let Some(base) = tx.lookup_base(base_raw)? else {
        return Ok(OpOutcome::Fail("base assembly id not found in index"));
    };
    let Some(comp) = tx.lookup_composite(comp_raw)? else {
        return Ok(OpOutcome::Fail("composite part id not found in index"));
    };
    tx.base_mut(base, |b| b.components.push(comp))?;
    tx.composite_mut(comp, |c| c.used_in.push(base))?;
    Ok(OpOutcome::Done(1))
}

/// SM4: delete a random link between a random base assembly and one of
/// its composite parts.
pub fn sm4<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    let base_raw = ctx.random_base_raw();
    let Some(base) = tx.lookup_base(base_raw)? else {
        return Ok(OpOutcome::Fail("base assembly id not found in index"));
    };
    let comps = tx.base(base, |b| b.components.clone())?;
    if comps.is_empty() {
        return Ok(OpOutcome::Fail("base assembly has no composite-part links"));
    }
    let victim_idx = ctx.rng.gen_range(0..comps.len());
    let comp = comps[victim_idx];
    // Remove by value, not by index: under an optimistic backend the
    // components bag may have changed since `comps` was read (doomed
    // transaction), and closures must never panic on stale state.
    tx.base_mut(base, |b| {
        if let Some(pos) = b.components.iter().position(|c| *c == comp) {
            b.components.remove(pos);
        }
    })?;
    tx.composite_mut(comp, |c| {
        if let Some(pos) = c.used_in.iter().position(|b| *b == base) {
            c.used_in.remove(pos);
        }
    })?;
    Ok(OpOutcome::Done(1))
}

use rand::Rng;

/// SM5: create a base assembly as a sibling of a random existing one.
pub fn sm5<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    let base_raw = ctx.random_base_raw();
    let Some(base) = tx.lookup_base(base_raw)? else {
        return Ok(OpOutcome::Fail("base assembly id not found in index"));
    };
    if tx.pool_capacity(PoolKind::Base)? < 1 {
        return Ok(OpOutcome::Fail("maximum number of base assemblies reached"));
    }
    let parent = tx.base(base, |b| b.parent)?;
    let created = build_assembly_subtree(
        tx,
        &ctx.params.clone(),
        &mut ctx.rng,
        1,
        Some(parent),
        false,
        &[],
    )?
    .expect("capacity checked above");
    let NewAssembly::Base(new_id) = created else {
        unreachable!("level-1 subtree roots are base assemblies");
    };
    tx.complex_mut(parent, |p| match &mut p.children {
        AssemblyChildren::Base(v) => v.push(new_id),
        // Only reachable for doomed optimistic transactions holding a
        // stale parent id; their write never commits.
        AssemblyChildren::Complex(_) => {}
    })?;
    Ok(OpOutcome::Done(i64::from(new_id.raw())))
}

/// SM6: delete a random base assembly (fails when it is its parent's only
/// child).
pub fn sm6<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    let base_raw = ctx.random_base_raw();
    let Some(base) = tx.lookup_base(base_raw)? else {
        return Ok(OpOutcome::Fail("base assembly id not found in index"));
    };
    let parent = tx.base(base, |b| b.parent)?;
    let siblings = tx.complex(parent, |p| p.children.len())?;
    if siblings <= 1 {
        return Ok(OpOutcome::Fail(
            "base assembly is the only child of its parent",
        ));
    }
    tx.complex_mut(parent, |p| match &mut p.children {
        AssemblyChildren::Base(v) => v.retain(|b| *b != base),
        // Doomed-transaction tolerance; see SM5.
        AssemblyChildren::Complex(_) => {}
    })?;
    delete_base_with_links(tx, base)?;
    Ok(OpOutcome::Done(1))
}

/// Deletes one base assembly, removing one `used_in` entry per link.
fn delete_base_with_links<T: Sb7Tx>(tx: &mut T, base: BaseAssemblyId) -> TxR<()> {
    let removed = tx.delete_base(base)?;
    for comp in removed.components {
        tx.composite_mut(comp, |c| {
            if let Some(pos) = c.used_in.iter().position(|b| *b == base) {
                c.used_in.remove(pos);
            }
        })?;
    }
    Ok(())
}

/// SM7: add a full assembly subtree of height `k - 1` under a random
/// complex assembly at level `k`.
pub fn sm7<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    let raw = ctx.random_complex_raw();
    let Some(ca) = tx.lookup_complex(raw)? else {
        return Ok(OpOutcome::Fail("complex assembly id not found in index"));
    };
    let level = tx.complex(ca, |c| c.level)?;
    debug_assert!(level >= 2);
    let (need_complex, need_base) = subtree_cost(&ctx.params, level - 1);
    if tx.pool_capacity(PoolKind::Complex)? < need_complex
        || tx.pool_capacity(PoolKind::Base)? < need_base
    {
        return Ok(OpOutcome::Fail("maximum number of assemblies reached"));
    }
    let created = build_assembly_subtree(
        tx,
        &ctx.params.clone(),
        &mut ctx.rng,
        level - 1,
        Some(ca),
        false,
        &[],
    )?
    .expect("capacity checked above");
    match created {
        NewAssembly::Complex(child) => tx.complex_mut(ca, |p| match &mut p.children {
            AssemblyChildren::Complex(v) => v.push(child),
            // Doomed-transaction tolerance; see SM5.
            AssemblyChildren::Base(_) => {}
        })?,
        NewAssembly::Base(child) => tx.complex_mut(ca, |p| match &mut p.children {
            AssemblyChildren::Base(v) => v.push(child),
            // Doomed-transaction tolerance; see SM5.
            AssemblyChildren::Complex(_) => {}
        })?,
    }
    Ok(OpOutcome::Done((need_complex + need_base) as i64))
}

/// SM8: delete the whole assembly subtree rooted at (and including) a
/// random complex assembly. Fails for the root and for sole children.
pub fn sm8<T: Sb7Tx>(tx: &mut T, ctx: &mut OpCtx) -> TxR<OpOutcome> {
    let raw = ctx.random_complex_raw();
    let Some(ca) = tx.lookup_complex(raw)? else {
        return Ok(OpOutcome::Fail("complex assembly id not found in index"));
    };
    let Some(parent) = tx.complex(ca, |c| c.parent)? else {
        return Ok(OpOutcome::Fail("cannot delete the root complex assembly"));
    };
    let siblings = tx.complex(parent, |p| p.children.len())?;
    if siblings <= 1 {
        return Ok(OpOutcome::Fail(
            "complex assembly is the only child of its parent",
        ));
    }
    tx.complex_mut(parent, |p| match &mut p.children {
        AssemblyChildren::Complex(v) => v.retain(|c| *c != ca),
        // Doomed-transaction tolerance; see SM5.
        AssemblyChildren::Base(_) => {}
    })?;
    let deleted = delete_subtree(tx, ca)?;
    Ok(OpOutcome::Done(deleted))
}

/// Recursively deletes a complex assembly and all descendants, returning
/// the number of assemblies removed (Figure 2 of the paper).
fn delete_subtree<T: Sb7Tx>(tx: &mut T, root: ComplexAssemblyId) -> TxR<i64> {
    let mut deleted = 0i64;
    let mut stack = vec![root];
    while let Some(ca) = stack.pop() {
        let removed = tx.delete_complex(ca)?;
        deleted += 1;
        match removed.children {
            AssemblyChildren::Complex(v) => stack.extend(v),
            AssemblyChildren::Base(v) => {
                for base in v {
                    delete_base_with_links(tx, base)?;
                    deleted += 1;
                }
            }
        }
    }
    Ok(deleted)
}

/// Shared error conversion helper for tests.
#[allow(dead_code)]
fn _assert_txr_shape(r: TxR<OpOutcome>) -> Result<OpOutcome, TxErr> {
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmbench7_data::{validate, DirectTx, StructureParams, Workspace};

    #[test]
    fn delete_subtree_counts_assemblies_exactly() {
        let p = StructureParams::tiny();
        let mut ws = Workspace::build(p.clone(), 3);
        let before = validate(&ws).unwrap();
        // Pick a level-2 complex assembly that is not an only child and
        // detach it the way SM8 does.
        let (victim, parent) = {
            let mut found = None;
            for (raw, ca) in ws.complex_level(2).store.iter() {
                if let Some(parent) = ca.parent {
                    found = Some((ComplexAssemblyId(raw), parent));
                    break;
                }
            }
            found.expect("tiny structure has level-2 assemblies")
        };
        let mut tx = DirectTx::writing(&mut ws);
        tx.complex_mut(parent, |pa| match &mut pa.children {
            AssemblyChildren::Complex(v) => v.retain(|c| *c != victim),
            AssemblyChildren::Base(_) => unreachable!("parent of level 2 is complex"),
        })
        .unwrap();
        let deleted = delete_subtree(&mut tx, victim).unwrap();
        // A level-2 subtree is the assembly itself plus `fanout` bases.
        assert_eq!(deleted, 1 + p.assembly_fanout as i64);
        let after = validate(&ws).unwrap();
        assert_eq!(after.complex_assemblies, before.complex_assemblies - 1);
        assert_eq!(
            after.base_assemblies,
            before.base_assemblies - p.assembly_fanout
        );
    }

    #[test]
    fn delete_base_with_links_cleans_reverse_bags() {
        let p = StructureParams::tiny();
        let mut ws = Workspace::build(p.clone(), 3);
        let (base_id, comps) = {
            let (raw, base) = ws.bases.store.iter().next().unwrap();
            (BaseAssemblyId(raw), base.components.clone())
        };
        let mut tx = DirectTx::writing(&mut ws);
        // Detach from the parent first, as SM6 does.
        let parent = tx.base(base_id, |b| b.parent).unwrap();
        tx.complex_mut(parent, |pa| match &mut pa.children {
            AssemblyChildren::Base(v) => v.retain(|b| *b != base_id),
            AssemblyChildren::Complex(_) => unreachable!(),
        })
        .unwrap();
        delete_base_with_links(&mut tx, base_id).unwrap();
        for comp in comps {
            let still_referenced = tx
                .composite(comp, |c| c.used_in.contains(&base_id))
                .unwrap();
            assert!(!still_referenced, "reverse bag must drop the base");
        }
        validate(&ws).unwrap();
    }
}
