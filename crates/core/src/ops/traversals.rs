//! Long traversals T1–T6 and queries Q6, Q7 (paper Appendix B.2.1).
//!
//! All originate from OO7 and never fail. They are the operations that
//! make STMBench7 a "crash test" for STMs: T1 alone opens every assembly,
//! every composite part and every atomic part reachable from the module.

use std::collections::HashSet;

use stmbench7_data::objects::AssemblyChildren;
use stmbench7_data::{
    AtomicPart, AtomicPartId, BaseAssemblyId, ComplexAssemblyId, OpOutcome, Sb7Tx, TxR,
};

/// What a T-family traversal does to the atomic parts it reaches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PartAction {
    /// T1: read-only visit of every part.
    Read,
    /// T6: visit only each graph's root part.
    ReadRootOnly,
    /// T2a / T3a: update only root parts (`times` applications).
    UpdateRoot { indexed: bool, times: u32 },
    /// T2b, T2c / T3b, T3c: update every part.
    UpdateAll { indexed: bool, times: u32 },
}

/// Collects all base assemblies by a depth-first walk of the assembly
/// tree, reading every complex assembly on the way (shared by the long
/// traversals).
pub(crate) fn collect_bases_depth_first<T: Sb7Tx>(tx: &mut T) -> TxR<Vec<BaseAssemblyId>> {
    let root = tx.module(|m| m.design_root)?;
    let mut bases = Vec::new();
    let mut stack = vec![root];
    while let Some(ca) = stack.pop() {
        let children = tx.complex(ca, |c| c.children.clone())?;
        match children {
            AssemblyChildren::Complex(v) => stack.extend(v),
            AssemblyChildren::Base(v) => bases.extend(v),
        }
    }
    Ok(bases)
}

/// Depth-first search over one composite part's atomic graph, applying
/// `action`. Returns the number of parts visited.
fn traverse_graph<T: Sb7Tx>(
    tx: &mut T,
    root: AtomicPartId,
    action: PartAction,
    checksum: &mut i64,
) -> TxR<i64> {
    if matches!(action, PartAction::ReadRootOnly) {
        *checksum += tx.atomic(root, |p| i64::from(p.x) + i64::from(p.y))?;
        return Ok(1);
    }
    let mut visited: HashSet<AtomicPartId> = HashSet::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if !visited.insert(id) {
            continue;
        }
        let targets = tx.atomic(id, |p| {
            *checksum += i64::from(p.x) + i64::from(p.y);
            p.to.iter().map(|c| c.to).collect::<Vec<_>>()
        })?;
        let do_update = match action {
            PartAction::Read | PartAction::ReadRootOnly => None,
            PartAction::UpdateRoot { indexed, times } => (id == root).then_some((indexed, times)),
            PartAction::UpdateAll { indexed, times } => Some((indexed, times)),
        };
        if let Some((indexed, times)) = do_update {
            for _ in 0..times {
                if indexed {
                    let date = tx.atomic(id, |p| p.build_date)?;
                    tx.set_atomic_build_date(id, AtomicPart::next_build_date(date))?;
                } else {
                    tx.atomic_mut(id, |p| p.swap_xy())?;
                }
            }
        }
        stack.extend(targets);
    }
    Ok(visited.len() as i64)
}

/// The common T1/T2/T3 skeleton: full tree walk, then every composite
/// part of every base assembly, then its atomic graph.
fn t_family<T: Sb7Tx>(tx: &mut T, action: PartAction) -> TxR<OpOutcome> {
    let bases = collect_bases_depth_first(tx)?;
    let mut count = 0i64;
    let mut checksum = 0i64;
    for base in bases {
        let comps = tx.base(base, |b| b.components.clone())?;
        for comp in comps {
            let root_part = tx.composite(comp, |c| c.root_part)?;
            count += traverse_graph(tx, root_part, action, &mut checksum)?;
        }
    }
    std::hint::black_box(checksum);
    Ok(OpOutcome::Done(count))
}

/// T1: read-only traversal of the entire structure; returns the number of
/// atomic parts visited.
pub fn t1<T: Sb7Tx>(tx: &mut T) -> TxR<OpOutcome> {
    t_family(tx, PartAction::Read)
}

/// T2a: as T1, updating non-indexed attributes of each root atomic part.
pub fn t2a<T: Sb7Tx>(tx: &mut T) -> TxR<OpOutcome> {
    t_family(
        tx,
        PartAction::UpdateRoot {
            indexed: false,
            times: 1,
        },
    )
}

/// T2b: as T1, updating non-indexed attributes of every atomic part.
pub fn t2b<T: Sb7Tx>(tx: &mut T) -> TxR<OpOutcome> {
    t_family(
        tx,
        PartAction::UpdateAll {
            indexed: false,
            times: 1,
        },
    )
}

/// T2c: as T2b, with each update performed four times, one by one.
pub fn t2c<T: Sb7Tx>(tx: &mut T) -> TxR<OpOutcome> {
    t_family(
        tx,
        PartAction::UpdateAll {
            indexed: false,
            times: 4,
        },
    )
}

/// T3a: as T2a on the indexed `buildDate` attribute.
pub fn t3a<T: Sb7Tx>(tx: &mut T) -> TxR<OpOutcome> {
    t_family(
        tx,
        PartAction::UpdateRoot {
            indexed: true,
            times: 1,
        },
    )
}

/// T3b: as T2b on the indexed `buildDate` attribute.
pub fn t3b<T: Sb7Tx>(tx: &mut T) -> TxR<OpOutcome> {
    t_family(
        tx,
        PartAction::UpdateAll {
            indexed: true,
            times: 1,
        },
    )
}

/// T3c: as T3b, four updates per part.
pub fn t3c<T: Sb7Tx>(tx: &mut T) -> TxR<OpOutcome> {
    t_family(
        tx,
        PartAction::UpdateAll {
            indexed: true,
            times: 4,
        },
    )
}

/// T4: traversal down to documents, counting `'I'` characters.
pub fn t4<T: Sb7Tx>(tx: &mut T) -> TxR<OpOutcome> {
    let bases = collect_bases_depth_first(tx)?;
    let mut total = 0i64;
    for base in bases {
        let comps = tx.base(base, |b| b.components.clone())?;
        for comp in comps {
            let doc = tx.composite(comp, |c| c.doc)?;
            total += tx.document(doc, |d| {
                stmbench7_data::text::count_char(&d.text, 'I') as i64
            })?;
        }
    }
    Ok(OpOutcome::Done(total))
}

/// T5: as T4, swapping `"I am"` ↔ `"This is"` in every document; returns
/// the number of substrings replaced.
pub fn t5<T: Sb7Tx>(tx: &mut T) -> TxR<OpOutcome> {
    let bases = collect_bases_depth_first(tx)?;
    let mut total = 0i64;
    for base in bases {
        let comps = tx.base(base, |b| b.components.clone())?;
        for comp in comps {
            let doc = tx.composite(comp, |c| c.doc)?;
            total +=
                tx.document_mut(doc, |d| stmbench7_data::text::swap_text(&mut d.text) as i64)?;
        }
    }
    Ok(OpOutcome::Done(total))
}

/// T6: as T1 but visiting only each graph's root atomic part.
pub fn t6<T: Sb7Tx>(tx: &mut T) -> TxR<OpOutcome> {
    t_family(tx, PartAction::ReadRootOnly)
}

/// Q6: count complex assemblies that are ancestors of a base assembly
/// whose build date is lower than that of one of its composite parts.
pub fn q6<T: Sb7Tx>(tx: &mut T) -> TxR<OpOutcome> {
    fn rec<T: Sb7Tx>(tx: &mut T, ca: ComplexAssemblyId, matched: &mut i64) -> TxR<bool> {
        let children = tx.complex(ca, |c| c.children.clone())?;
        let mut any = false;
        match children {
            AssemblyChildren::Complex(v) => {
                for child in v {
                    any |= rec(tx, child, matched)?;
                }
            }
            AssemblyChildren::Base(v) => {
                for base in v {
                    let (date, comps) = tx.base(base, |b| (b.build_date, b.components.clone()))?;
                    for comp in comps {
                        // Iterate "until one with a larger buildDate is
                        // found", per the spec.
                        if tx.composite(comp, |c| c.build_date)? > date {
                            any = true;
                            break;
                        }
                    }
                }
            }
        }
        if any {
            *matched += 1;
        }
        Ok(any)
    }

    let root = tx.module(|m| m.design_root)?;
    let mut matched = 0i64;
    rec(tx, root, &mut matched)?;
    Ok(OpOutcome::Done(matched))
}

/// Q7: iterate over all atomic parts via the id index.
pub fn q7<T: Sb7Tx>(tx: &mut T) -> TxR<OpOutcome> {
    let ids = tx.all_atomic_ids()?;
    let mut checksum = 0i64;
    for id in &ids {
        checksum += tx.atomic(*id, |p| i64::from(p.x) + i64::from(p.y))?;
    }
    std::hint::black_box(checksum);
    Ok(OpOutcome::Done(ids.len() as i64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmbench7_data::{DirectTx, StructureParams, Workspace};

    #[test]
    fn collect_bases_visits_every_base_exactly_once() {
        let p = StructureParams::tiny();
        let mut ws = Workspace::build(p.clone(), 3);
        let mut tx = DirectTx::writing(&mut ws);
        let bases = collect_bases_depth_first(&mut tx).unwrap();
        assert_eq!(bases.len(), p.initial_bases());
        let mut unique: Vec<_> = bases.clone();
        unique.sort_unstable_by_key(|b| b.raw());
        unique.dedup();
        assert_eq!(unique.len(), bases.len(), "no base visited twice");
    }

    #[test]
    fn traverse_graph_read_visits_connected_component() {
        let p = StructureParams::tiny();
        let mut ws = Workspace::build(p.clone(), 3);
        let root = ws.composites.store.get(1).unwrap().root_part;
        let mut tx = DirectTx::writing(&mut ws);
        let mut checksum = 0;
        let n = traverse_graph(&mut tx, root, PartAction::Read, &mut checksum).unwrap();
        // Graphs are ring-connected, so the DFS covers the whole graph.
        assert_eq!(n, p.atomics_per_comp as i64);
        let one = traverse_graph(&mut tx, root, PartAction::ReadRootOnly, &mut checksum).unwrap();
        assert_eq!(one, 1);
    }

    #[test]
    fn update_actions_report_the_same_counts_as_read() {
        let p = StructureParams::tiny();
        let mut ws = Workspace::build(p.clone(), 3);
        let root = ws.composites.store.get(2).unwrap().root_part;
        let mut tx = DirectTx::writing(&mut ws);
        let mut checksum = 0;
        let read = traverse_graph(&mut tx, root, PartAction::Read, &mut checksum).unwrap();
        let updated = traverse_graph(
            &mut tx,
            root,
            PartAction::UpdateAll {
                indexed: false,
                times: 2,
            },
            &mut checksum,
        )
        .unwrap();
        assert_eq!(read, updated, "visit counts are action-independent");
    }
}
