//! The multi-threaded benchmark engine (paper §4).
//!
//! "STMBench7 runs a user-specified number of concurrent threads, all
//! performing operations on the shared data structure. The threads are
//! uniform in a sense that each picks its next operation randomly from
//! the whole pool of 45 STMBench7 operations. Each thread registers
//! locally its performance measurements. These are combined at the end of
//! the benchmark."

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use stmbench7_backend::{Backend, TxOperation};
use stmbench7_data::{OpOutcome, Sb7Tx, StructureParams, TxR};
use stmbench7_obs::{EventKind, FlightProbes, FlightRecorder, Layer, Recorder};

use crate::histogram::Histogram;
use crate::ops::{access_spec, run_op, shard_hint, OpCtx, OpKind};
use crate::report::{OpReport, Report, Timeseries};
use crate::workload::{OpFilter, WorkloadMix, WorkloadType};

/// How long the benchmark runs.
#[derive(Clone, Copy, Debug)]
pub enum RunMode {
    /// Wall-clock duration (the paper's `-l length`).
    Timed(Duration),
    /// A fixed number of operations per thread — deterministic with one
    /// thread; used by tests and benches.
    FixedOps(u64),
}

/// Full benchmark configuration.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Worker thread count (the paper's `-t`).
    pub threads: usize,
    /// Timed or fixed-operation-count run.
    pub mode: RunMode,
    /// Read-dominated / read-write / write-dominated mix (`-w`).
    pub workload: WorkloadType,
    /// The paper's `--no-traversals` switch, inverted.
    pub long_traversals: bool,
    /// The paper's `--no-sms` switch, inverted.
    pub structure_mods: bool,
    /// The §5 operation filter (e.g. `--astm-friendly`).
    pub filter: OpFilter,
    /// Root RNG seed; every thread and operation derives from it.
    pub seed: u64,
    /// Collect TTC histograms (`--ttc-histograms`).
    pub histograms: bool,
    /// Lifecycle trace recorder (`--trace`). Disabled by default — a
    /// disabled recorder costs one branch per probe site.
    pub recorder: Recorder,
    /// Flight-recorder sampling window (`--window`), milliseconds.
    /// `None` disables windowed telemetry entirely.
    pub window_ms: Option<u64>,
}

impl BenchConfig {
    /// A deterministic single-thread configuration used by tests.
    pub fn deterministic(workload: WorkloadType, ops: u64, seed: u64) -> Self {
        BenchConfig {
            threads: 1,
            mode: RunMode::FixedOps(ops),
            workload,
            long_traversals: true,
            structure_mods: true,
            filter: OpFilter::none(),
            seed,
            histograms: true,
            recorder: Recorder::default(),
            window_ms: None,
        }
    }
}

/// Per-thread, per-operation measurements.
#[derive(Clone, Debug, Default)]
struct ThreadOpStats {
    completed: u64,
    failed: u64,
    aborts: u64,
    max_ns: u64,
    sum_ns: u64,
    hist: Histogram,
}

/// A worker's not-yet-flushed flight-recorder chunk. Measurements
/// batch locally and flush every [`FLUSH_EVERY`] operations, so
/// windowed sampling costs a few atomic adds per chunk rather than
/// per operation.
struct WindowAcc {
    completed: u64,
    failed: u64,
    aborts: u64,
    busy_ns: u64,
    lat_sum_ns: u64,
    hist: Histogram,
}

/// Operations per chunk flush — small against even a 1 ms window at
/// realistic throughputs, so windows stay sharp.
const FLUSH_EVERY: u64 = 64;

impl WindowAcc {
    fn new() -> Self {
        WindowAcc {
            completed: 0,
            failed: 0,
            aborts: 0,
            busy_ns: 0,
            lat_sum_ns: 0,
            hist: Histogram::micros(),
        }
    }

    fn flush(&mut self, flight: &FlightRecorder, window_lat: &Mutex<Histogram>) {
        if self.completed == 0 && self.aborts == 0 {
            return;
        }
        flight.add_ops(self.completed, self.failed, self.aborts);
        flight.add_busy_ns(self.busy_ns);
        flight.add_latency_us(self.lat_sum_ns / 1_000, self.hist.samples());
        window_lat
            .lock()
            .expect("window histogram poisoned")
            .merge(&self.hist);
        *self = WindowAcc::new();
    }
}

struct Runner<'c> {
    op: OpKind,
    ctx: &'c mut OpCtx,
    /// RNG state at the start of this operation; every attempt restarts
    /// from here so retries (STM) and re-executions (fine-grained
    /// discovery + execution) replay identical random choices.
    attempt_rng: rand::rngs::SmallRng,
    /// Execution attempts the backend made for this operation; anything
    /// past the first is an abort-and-retry.
    attempts: u64,
}

impl<'c> Runner<'c> {
    fn new(op: OpKind, ctx: &'c mut OpCtx) -> Self {
        Runner {
            op,
            attempt_rng: ctx.rng.clone(),
            ctx,
            attempts: 0,
        }
    }
}

impl TxOperation<OpOutcome> for Runner<'_> {
    fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<OpOutcome> {
        run_op(self.op, tx, self.ctx)
    }

    fn begin_attempt(&mut self) {
        self.attempts += 1;
        self.ctx.rng = self.attempt_rng.clone();
    }
}

/// Runs the benchmark over a backend and merges all measurements.
pub fn run_benchmark<B: Backend>(
    backend: &B,
    params: &StructureParams,
    cfg: &BenchConfig,
) -> Report {
    assert!(cfg.threads >= 1, "at least one thread required");
    let mix = WorkloadMix::compute(
        cfg.workload,
        cfg.long_traversals,
        cfg.structure_mods,
        &cfg.filter,
    );
    let specs: Vec<_> = OpKind::ALL
        .iter()
        .map(|op| access_spec(*op, params.assembly_levels))
        .collect();

    let stop = AtomicBool::new(false);
    let started_at = Instant::now();
    let stm_before = backend.stm_stats();
    let contention_before = backend.contention();

    // Flight recorder: workers chunk-flush their measurements into it,
    // a scoped sampler thread cuts windows. The closed loop has no
    // admission queue, so the depth gauge reads zero.
    let flight = match cfg.window_ms {
        Some(ms) => FlightRecorder::new(ms),
        None => FlightRecorder::off(),
    };
    let window_lat = Mutex::new(Histogram::micros());
    let depth_probe = || 0u64;
    let latency_probe = || {
        let window = std::mem::replace(
            &mut *window_lat.lock().expect("window histogram poisoned"),
            Histogram::micros(),
        );
        window.latency_cut()
    };
    let contention_probe = || backend.contention();

    let all_stats: Vec<Vec<ThreadOpStats>> = std::thread::scope(|scope| {
        if flight.enabled() {
            let flight = &flight;
            let probes = FlightProbes {
                queue_depth: &depth_probe,
                latency_cut: &latency_probe,
                contention: &contention_probe,
            };
            scope.spawn(move || flight.run_sampler(probes));
        }
        let mut handles = Vec::with_capacity(cfg.threads);
        for thread_id in 0..cfg.threads {
            let mix = &mix;
            let specs = &specs;
            let stop = &stop;
            let flight = &flight;
            let window_lat = &window_lat;
            handles.push(scope.spawn(move || {
                let mut ctx = OpCtx::new(
                    params.clone(),
                    cfg.seed ^ (thread_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mut stats: Vec<ThreadOpStats> =
                    (0..45).map(|_| ThreadOpStats::default()).collect();
                let deadline = match cfg.mode {
                    RunMode::Timed(d) => Some(Instant::now() + d),
                    RunMode::FixedOps(_) => None,
                };
                let budget = match cfg.mode {
                    RunMode::FixedOps(n) => n,
                    RunMode::Timed(_) => u64::MAX,
                };
                let mut executed = 0u64;
                let windowed = flight.enabled();
                let mut win = WindowAcc::new();
                while executed < budget {
                    if let Some(deadline) = deadline {
                        if Instant::now() >= deadline || stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    // Sampling dispatch profiler: 1-in-N iterations get a
                    // "discovery" phase span around pick + spec narrowing.
                    let sampled = cfg.recorder.sampled();
                    let td = if sampled { cfg.recorder.now_ns() } else { 0 };
                    let op = mix.pick(&mut ctx.rng);
                    // Per-instance spec: narrow the atomic shard set when
                    // the operation's footprint is known from its pre-drawn
                    // ids (sharded structures only; see `shard_hint`).
                    let mut spec = specs[op.index()];
                    if let Some(hint) = shard_hint(op, &ctx) {
                        spec.atomic_shards = hint;
                    }
                    if sampled {
                        cfg.recorder
                            .span(Layer::Engine, EventKind::Phase, "discovery", td, 0);
                    }
                    let trace_t0 = cfg.recorder.now_ns();
                    let t0 = Instant::now();
                    let mut runner = Runner::new(op, &mut ctx);
                    let outcome = backend.execute(&spec, &mut runner);
                    let attempts = runner.attempts;
                    let dt = t0.elapsed().as_nanos() as u64;
                    if cfg.recorder.is_enabled() {
                        cfg.recorder.push(
                            Layer::Engine,
                            EventKind::Op,
                            op.name(),
                            trace_t0,
                            dt,
                            attempts,
                        );
                        if matches!(outcome, OpOutcome::Fail(_)) {
                            cfg.recorder
                                .instant(Layer::Engine, EventKind::OpFail, op.name(), 0);
                        }
                    }
                    if windowed {
                        win.completed += 1;
                        win.aborts += attempts.saturating_sub(1);
                        win.busy_ns += dt;
                        match &outcome {
                            OpOutcome::Done(_) => {
                                win.lat_sum_ns += dt;
                                win.hist.record(dt);
                            }
                            OpOutcome::Fail(_) => win.failed += 1,
                        }
                        if win.completed >= FLUSH_EVERY {
                            win.flush(flight, window_lat);
                        }
                    }
                    let s = &mut stats[op.index()];
                    s.aborts += attempts.saturating_sub(1);
                    match outcome {
                        OpOutcome::Done(_) => {
                            s.completed += 1;
                            s.max_ns = s.max_ns.max(dt);
                            s.sum_ns += dt;
                            if cfg.histograms {
                                s.hist.record(dt);
                            }
                        }
                        OpOutcome::Fail(_) => s.failed += 1,
                    }
                    executed += 1;
                }
                if windowed {
                    win.flush(flight, window_lat);
                }
                stop.store(true, Ordering::Relaxed);
                stats
            }));
        }
        let stats = handles
            .into_iter()
            .map(|h| h.join().expect("benchmark thread panicked"))
            .collect();
        // Cut the final partial window and release the sampler before
        // the scope joins it.
        flight.stop();
        stats
    });

    let elapsed = started_at.elapsed();
    let stm_after = backend.stm_stats();
    let stm = match (stm_before, stm_after) {
        (Some(before), Some(after)) => Some(after.delta(&before)),
        _ => None,
    };
    let contention = match (contention_before, backend.contention()) {
        (Some(before), Some(after)) => Some(after.delta(&before)),
        _ => None,
    };

    let mut per_op: Vec<OpReport> = OpKind::ALL
        .iter()
        .map(|op| OpReport::empty(*op, mix.expected(*op)))
        .collect();
    for thread_stats in &all_stats {
        for (i, s) in thread_stats.iter().enumerate() {
            let r = &mut per_op[i];
            r.completed += s.completed;
            r.failed += s.failed;
            r.aborts += s.aborts;
            r.max_ns = r.max_ns.max(s.max_ns);
            r.sum_ns += s.sum_ns;
            r.hist.merge(&s.hist);
        }
    }

    let timeseries = flight.window_ms().map(|window_ms| Timeseries {
        window_ms,
        windows: flight.take_samples(),
    });

    Report {
        backend: backend.name().to_string(),
        threads: cfg.threads,
        workload: cfg.workload,
        long_traversals: cfg.long_traversals,
        structure_mods: cfg.structure_mods,
        seed: cfg.seed,
        elapsed,
        per_op,
        stm,
        contention,
        service: None,
        timeseries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmbench7_backend::SequentialBackend;
    use stmbench7_data::Workspace;

    #[test]
    fn deterministic_single_thread_runs_are_identical() {
        let params = StructureParams::tiny();
        let cfg = BenchConfig::deterministic(WorkloadType::ReadWrite, 300, 42);
        let run = || {
            let ws = Workspace::build(params.clone(), 7);
            let backend = SequentialBackend::new(ws);
            run_benchmark(&backend, &params, &cfg)
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_completed(), b.total_completed());
        assert_eq!(a.total_failed(), b.total_failed());
        for (x, y) in a.per_op.iter().zip(&b.per_op) {
            assert_eq!(x.completed, y.completed, "{}", x.op.name());
            assert_eq!(x.failed, y.failed, "{}", x.op.name());
        }
    }

    #[test]
    fn fixed_ops_budget_is_respected() {
        let params = StructureParams::tiny();
        let ws = Workspace::build(params.clone(), 7);
        let backend = SequentialBackend::new(ws);
        let cfg = BenchConfig::deterministic(WorkloadType::ReadDominated, 200, 1);
        let report = run_benchmark(&backend, &params, &cfg);
        assert_eq!(report.total_started(), 200);
        // The structure must still be valid afterwards.
        stmbench7_data::validate(&backend.export()).unwrap();
    }

    #[test]
    fn histograms_account_for_every_completed_operation() {
        let params = StructureParams::tiny();
        let ws = Workspace::build(params.clone(), 7);
        let backend = SequentialBackend::new(ws);
        let cfg = BenchConfig::deterministic(WorkloadType::ReadWrite, 400, 9);
        let report = run_benchmark(&backend, &params, &cfg);
        for o in &report.per_op {
            assert_eq!(
                o.hist.samples(),
                o.completed,
                "{}: histogram samples must equal completions",
                o.op.name()
            );
        }
        // And without the flag, nothing is recorded.
        let mut cfg = BenchConfig::deterministic(WorkloadType::ReadWrite, 100, 9);
        cfg.histograms = false;
        let ws = Workspace::build(params.clone(), 7);
        let report = run_benchmark(&SequentialBackend::new(ws), &params, &cfg);
        assert!(report.per_op.iter().all(|o| o.hist.samples() == 0));
    }

    #[test]
    fn windowed_run_produces_a_timeseries_that_sums_to_the_totals() {
        let params = StructureParams::tiny();
        let ws = Workspace::build(params.clone(), 7);
        let backend = SequentialBackend::new(ws);
        let mut cfg = BenchConfig::deterministic(WorkloadType::ReadWrite, 400, 11);
        cfg.window_ms = Some(1);
        let report = run_benchmark(&backend, &params, &cfg);
        let ts = report.timeseries.as_ref().expect("sampled run");
        assert_eq!(ts.window_ms, 1);
        assert!(!ts.windows.is_empty());
        let completed: u64 = ts.windows.iter().map(|w| w.completed).sum();
        let failed: u64 = ts.windows.iter().map(|w| w.failed).sum();
        assert_eq!(completed, report.total_started());
        assert_eq!(failed, report.total_failed());
        let samples: u64 = ts.windows.iter().map(|w| w.latency.samples).sum();
        assert_eq!(samples, report.total_completed());

        // And the same run unsampled carries no timeseries.
        cfg.window_ms = None;
        let ws = Workspace::build(params.clone(), 7);
        let plain = run_benchmark(&SequentialBackend::new(ws), &params, &cfg);
        assert!(plain.timeseries.is_none());
    }

    #[test]
    fn timed_mode_stops() {
        let params = StructureParams::tiny();
        let ws = Workspace::build(params.clone(), 7);
        let backend = SequentialBackend::new(ws);
        let cfg = BenchConfig {
            threads: 2,
            mode: RunMode::Timed(Duration::from_millis(200)),
            workload: WorkloadType::ReadWrite,
            long_traversals: false,
            structure_mods: true,
            filter: OpFilter::none(),
            seed: 3,
            histograms: false,
            recorder: Recorder::default(),
            window_ms: None,
        };
        let report = run_benchmark(&backend, &params, &cfg);
        assert!(report.total_started() > 0);
        assert!(report.elapsed < Duration::from_secs(10));
    }
}
