//! STMBench7 core: operations, workloads, engine and reporting.
//!
//! This crate contains the benchmark logic of the paper:
//!
//! * [`ops`] — the 45 operations of Appendix B, written once against
//!   `stmbench7_data::Sb7Tx`, plus each operation's lock declaration;
//! * [`workload`] — the ratio solver implementing Table 2 semantics and
//!   the operation filter used by the §5 experiments;
//! * [`engine`] — the multi-threaded driver (duration- or count-bounded);
//! * [`histogram`] — TTC histograms;
//! * [`report`] — Appendix-A-format output plus CSV for the bench
//!   harness;
//! * [`json`] — the hand-rolled JSON document model backing the lab
//!   harness's machine-readable results (the build is offline, no serde).

#![warn(missing_docs)]

pub mod engine;
pub mod histogram;
pub mod json;
pub mod ops;
pub mod report;
pub mod workload;

pub use engine::{run_benchmark, BenchConfig, RunMode};
pub use histogram::{Histogram, Resolution};
pub use json::JsonValue;
pub use ops::{access_spec, primary_shard, run_op, Category, OpCtx, OpKind};
pub use report::{CategoryLatency, OpReport, Report, SampleError, ServiceStats, Timeseries};
pub use workload::{OpFilter, WorkloadMix, WorkloadType};
