//! Benchmark output, mirroring the paper's Appendix A.1 sections:
//! benchmark parameters, optional TTC histograms, detailed per-operation
//! results, sample errors, and summary results (per-category rollups,
//! total errors, throughput, elapsed time).

use std::fmt::Write as _;
use std::time::Duration;

use stmbench7_obs::{ContentionSnapshot, WindowSample};
use stmbench7_stm::StatsSnapshot;

use crate::histogram::Histogram;
use crate::json::JsonValue;
use crate::ops::{Category, OpKind};
use crate::workload::WorkloadType;

/// Merged measurements for one operation.
#[derive(Clone, Debug)]
pub struct OpReport {
    /// Which operation this row measures.
    pub op: OpKind,
    /// The configured ratio `C_T`.
    pub expected_ratio: f64,
    /// Successful executions.
    pub completed: u64,
    /// Benign failures (e.g. a drawn id that no longer exists).
    pub failed: u64,
    /// Aborted-and-retried execution attempts (attempts beyond the
    /// first; STM conflicts, lock-plan re-executions).
    pub aborts: u64,
    /// Slowest single execution, nanoseconds.
    pub max_ns: u64,
    /// Total time spent in this operation, nanoseconds.
    pub sum_ns: u64,
    /// TTC histogram (populated when `--ttc-histograms` is on).
    pub hist: Histogram,
}

impl OpReport {
    /// A zeroed row for one operation; harnesses (the engine, the service
    /// layer) fill it by merging per-thread measurements.
    pub fn empty(op: OpKind, expected_ratio: f64) -> Self {
        OpReport {
            op,
            expected_ratio,
            completed: 0,
            failed: 0,
            aborts: 0,
            max_ns: 0,
            sum_ns: 0,
            hist: Histogram::new(),
        }
    }

    /// Operations started (completed or failed).
    pub fn started(&self) -> u64 {
        self.completed + self.failed
    }

    /// Maximum observed latency in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max_ns as f64 / 1e6
    }

    /// Mean latency over completed executions, in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.completed as f64 / 1e6
        }
    }

    /// The p-th latency percentile in milliseconds, from the TTC
    /// histogram (1 ms resolution; `None` without histogram samples).
    pub fn percentile_ms(&self, p: f64) -> Option<u64> {
        self.hist.percentile(p)
    }
}

/// Per-operation sample errors (Appendix A.1, "Sample errors").
#[derive(Clone, Copy, Debug, Default)]
pub struct SampleError {
    /// Ratio computed from the input parameters.
    pub c: f64,
    /// Ratio of successful executions to all successful operations.
    pub r: f64,
    /// `E_T = |C_T - R_T|`.
    pub e: f64,
    /// Ratio of successful *and failed* executions to all successful
    /// operations.
    pub a: f64,
    /// `F_T = |A_T - R_T|`.
    pub f: f64,
}

/// Queue-wait and service-time lanes for one operation category — the
/// per-category latency split of a service run. Long traversals, short
/// traversals, short operations and structure modifications have latency
/// distributions orders of magnitude apart; folding them into one
/// histogram hides which class a tail belongs to.
#[derive(Clone, Debug)]
pub struct CategoryLatency {
    /// Which of the four categories this row covers.
    pub category: Category,
    /// Scheduled arrival → execution start for this category's requests
    /// (microsecond resolution).
    pub queue_wait: Histogram,
    /// Execution start → completion for this category's requests
    /// (microsecond resolution).
    pub service_time: Histogram,
}

impl CategoryLatency {
    /// An empty split for one category.
    pub fn empty(category: Category) -> Self {
        CategoryLatency {
            category,
            queue_wait: Histogram::micros(),
            service_time: Histogram::micros(),
        }
    }

    /// One empty split per category, in [`Category::all`] order — the
    /// shape every harness fills and merges positionally.
    pub fn all_empty() -> Vec<CategoryLatency> {
        Category::all().into_iter().map(Self::empty).collect()
    }

    /// Folds another split of the same category in (thread merge).
    pub fn merge(&mut self, other: &CategoryLatency) {
        assert_eq!(
            self.category, other.category,
            "cannot merge latency splits of different categories"
        );
        self.queue_wait.merge(&other.queue_wait);
        self.service_time.merge(&other.service_time);
    }
}

/// Measurements specific to a service-layer run (`stmbench7 serve`):
/// the offered-load accounting and the per-request latency decomposition
/// the closed-loop engine cannot express.
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// The arrival schedule's stable key (e.g. `open2000`).
    pub schedule: String,
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Bound of the request queue.
    pub queue_cap: usize,
    /// Maximum batch size (1 = batching off).
    pub batch_max: usize,
    /// Worker-affinity routing key (`none` or `shard`).
    pub affinity: String,
    /// Requests offered by the arrival schedule.
    pub offered: u64,
    /// Requests dropped by reject-on-full admission control.
    pub rejected: u64,
    /// Broken connections the remote driver re-established mid-drive
    /// (0 for in-process service runs, which have no transport to lose).
    pub reconnects: u64,
    /// Total worker time spent executing batches, summed over workers.
    pub busy_ns: u64,
    /// Total worker time spent waiting for work, summed over workers.
    pub idle_ns: u64,
    /// Busy time attributed per worker, in worker order. Work executes
    /// on the worker that *drains* it: a batch stolen from worker A's
    /// sub-queue counts toward the thief's entry, not A's — so under
    /// shard affinity this vector shows who actually carried the load.
    pub worker_busy_ns: Vec<u64>,
    /// Trace events dropped by full per-thread rings during the run
    /// (0 when tracing is off).
    pub trace_dropped: u64,
    /// Backend executions (batching folds several requests into one).
    pub batches: u64,
    /// Multi-request batches that carried at least one writing request
    /// (group commit; 0 when batching is off or write-free).
    pub write_batches: u64,
    /// Largest group-committed write batch observed (requests).
    pub max_write_batch: u64,
    /// Requests taken from another worker's sub-queue under shard
    /// affinity (0 when affinity is off).
    pub steals: u64,
    /// Scheduled arrival → execution start, per admitted request
    /// (microsecond resolution).
    pub queue_wait: Histogram,
    /// Execution start → completion, per admitted request (microsecond
    /// resolution; batched requests share their batch's service time).
    pub service_time: Histogram,
    /// Scheduled arrival → completion, per admitted request (microsecond
    /// resolution).
    pub e2e: Histogram,
    /// Client-measured transport overhead of a remote run: network round
    /// trip minus the server-reported queue+service time (microsecond
    /// resolution). `None` for in-process service runs, which have no
    /// wire to cross.
    pub network: Option<Histogram>,
    /// The queue-wait/service-time split per operation category (one
    /// entry per [`Category`], in [`Category::all`] order; categories the
    /// run never drew hold empty histograms).
    pub per_category: Vec<CategoryLatency>,
}

impl ServiceStats {
    /// `(p50, p95, p99)` of a latency histogram, in microseconds.
    pub fn percentiles_us(hist: &Histogram) -> (u64, u64, u64) {
        (
            hist.percentile_us(50.0).unwrap_or(0),
            hist.percentile_us(95.0).unwrap_or(0),
            hist.percentile_us(99.0).unwrap_or(0),
        )
    }

    /// The `{p50, p95, p99, samples}` JSON object every latency
    /// histogram serializes to — shared by report-level and lab
    /// cell-level service objects so the schema cannot diverge.
    pub fn latency_json(hist: &Histogram) -> JsonValue {
        let (p50, p95, p99) = Self::percentiles_us(hist);
        JsonValue::obj(vec![
            ("p50", JsonValue::num(p50 as f64)),
            ("p95", JsonValue::num(p95 as f64)),
            ("p99", JsonValue::num(p99 as f64)),
            ("samples", JsonValue::num(hist.samples() as f64)),
        ])
    }

    /// The `{<category>: {queue_wait_us, service_time_us}}` JSON object
    /// of a per-category split (categories with samples only) — shared by
    /// report-level and lab cell-level service objects so the schema
    /// cannot diverge.
    pub fn categories_json(per_category: &[CategoryLatency]) -> JsonValue {
        JsonValue::Obj(
            per_category
                .iter()
                .filter(|c| c.queue_wait.samples() > 0)
                .map(|c| {
                    (
                        c.category.name().to_string(),
                        JsonValue::obj(vec![
                            ("queue_wait_us", Self::latency_json(&c.queue_wait)),
                            ("service_time_us", Self::latency_json(&c.service_time)),
                        ]),
                    )
                })
                .collect(),
        )
    }

    /// The `service` object embedded in the report's JSON form.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("schedule", JsonValue::str(&self.schedule)),
            ("workers", JsonValue::num(self.workers as f64)),
            ("queue_cap", JsonValue::num(self.queue_cap as f64)),
            ("batch_max", JsonValue::num(self.batch_max as f64)),
            ("affinity", JsonValue::str(&self.affinity)),
            ("offered", JsonValue::num(self.offered as f64)),
            ("rejected", JsonValue::num(self.rejected as f64)),
            ("reconnects", JsonValue::num(self.reconnects as f64)),
            ("busy_ns", JsonValue::num(self.busy_ns as f64)),
            ("idle_ns", JsonValue::num(self.idle_ns as f64)),
            (
                "worker_busy_ns",
                JsonValue::Arr(
                    self.worker_busy_ns
                        .iter()
                        .map(|ns| JsonValue::num(*ns as f64))
                        .collect(),
                ),
            ),
            ("trace_dropped", JsonValue::num(self.trace_dropped as f64)),
            ("batches", JsonValue::num(self.batches as f64)),
            ("write_batches", JsonValue::num(self.write_batches as f64)),
            (
                "max_write_batch",
                JsonValue::num(self.max_write_batch as f64),
            ),
            ("steals", JsonValue::num(self.steals as f64)),
            ("queue_wait_us", Self::latency_json(&self.queue_wait)),
            ("service_time_us", Self::latency_json(&self.service_time)),
            ("e2e_us", Self::latency_json(&self.e2e)),
            (
                "network_us",
                match &self.network {
                    None => JsonValue::Null,
                    Some(h) => Self::latency_json(h),
                },
            ),
            ("categories", Self::categories_json(&self.per_category)),
        ])
    }
}

/// The flight recorder's windowed time-series: per-window throughput,
/// latency percentiles and gauge readings over the run (see
/// `stmbench7_obs::FlightRecorder`). Present when the run was sampled
/// (`--window`); the lab's windowed SLO gates read it back.
#[derive(Clone, Debug, Default)]
pub struct Timeseries {
    /// The sampling window length in milliseconds.
    pub window_ms: u64,
    /// The closed windows, in time order.
    pub windows: Vec<WindowSample>,
}

impl Timeseries {
    /// The `timeseries` JSON object shared by report-level and lab
    /// cell-level documents, so the schema cannot diverge.
    pub fn to_json_value(&self) -> JsonValue {
        let windows = self
            .windows
            .iter()
            .map(|w| {
                let contention = match &w.contention {
                    None => JsonValue::Null,
                    Some(c) => JsonValue::obj(vec![
                        ("lock_acquires", JsonValue::num(c.lock_acquires as f64)),
                        ("lock_contended", JsonValue::num(c.lock_contended as f64)),
                        ("lock_wait_ns", JsonValue::num(c.lock_wait_ns as f64)),
                        ("cas_retries", JsonValue::num(c.cas_retries as f64)),
                        ("shard_conflicts", JsonValue::num(c.shard_conflicts as f64)),
                    ]),
                };
                JsonValue::obj(vec![
                    ("index", JsonValue::num(w.index as f64)),
                    ("start_ms", JsonValue::num(w.start_ms as f64)),
                    ("end_ms", JsonValue::num(w.end_ms as f64)),
                    ("completed", JsonValue::num(w.completed as f64)),
                    ("failed", JsonValue::num(w.failed as f64)),
                    ("aborts", JsonValue::num(w.aborts as f64)),
                    ("rejected", JsonValue::num(w.rejected as f64)),
                    ("batches", JsonValue::num(w.batches as f64)),
                    ("write_batches", JsonValue::num(w.write_batches as f64)),
                    ("steals", JsonValue::num(w.steals as f64)),
                    ("reconnects", JsonValue::num(w.reconnects as f64)),
                    ("busy_ns", JsonValue::num(w.busy_ns as f64)),
                    ("queue_depth", JsonValue::num(w.queue_depth as f64)),
                    (
                        "latency",
                        JsonValue::obj(vec![
                            ("p50_us", JsonValue::num(w.latency.p50_us as f64)),
                            ("p95_us", JsonValue::num(w.latency.p95_us as f64)),
                            ("p99_us", JsonValue::num(w.latency.p99_us as f64)),
                            ("samples", JsonValue::num(w.latency.samples as f64)),
                        ]),
                    ),
                    ("contention", contention),
                ])
            })
            .collect();
        JsonValue::obj(vec![
            ("window_ms", JsonValue::num(self.window_ms as f64)),
            ("windows", JsonValue::Arr(windows)),
        ])
    }

    /// The rendered `== Timeseries ==` rows.
    fn render_into(&self, out: &mut String) {
        let _ = writeln!(out, "\n== Timeseries ({} ms windows) ==", self.window_ms);
        for w in &self.windows {
            let lat = if w.latency.samples > 0 {
                format!(
                    "p50 {:>7} us   p99 {:>7} us",
                    w.latency.p50_us, w.latency.p99_us
                )
            } else {
                format!("{:>29}", "no samples")
            };
            let _ = writeln!(
                out,
                "  #{:<4} {:>6}-{:<6} ms   ops {:>7}   fail {:>5}   aborts {:>5}   rej {:>5}   {}   queue {:>5}   steals {:>4}   busy {:>8.1} ms",
                w.index,
                w.start_ms,
                w.end_ms,
                w.completed,
                w.failed,
                w.aborts,
                w.rejected,
                lat,
                w.queue_depth,
                w.steals,
                w.busy_ns as f64 / 1e6,
            );
        }
    }
}

/// A complete benchmark result.
#[derive(Clone, Debug)]
pub struct Report {
    /// The strategy's canonical `-g` name.
    pub backend: String,
    /// Worker thread count of the run.
    pub threads: usize,
    /// The workload mix the run drew from.
    pub workload: WorkloadType,
    /// Whether long traversals were enabled (`--no-traversals` off).
    pub long_traversals: bool,
    /// Whether structure modifications were enabled (`--no-sms` off).
    pub structure_mods: bool,
    /// Root RNG seed of the run.
    pub seed: u64,
    /// Measured wall-clock window.
    pub elapsed: Duration,
    /// One row per operation, specification order.
    pub per_op: Vec<OpReport>,
    /// STM runtime statistics, for the STM backends.
    pub stm: Option<StatsSnapshot>,
    /// Always-on contention counters, if the backend maintains them
    /// (delta over the measured window).
    pub contention: Option<ContentionSnapshot>,
    /// Present when the run went through the service layer.
    pub service: Option<ServiceStats>,
    /// Windowed flight-recorder samples, when sampling was on
    /// (`--window`).
    pub timeseries: Option<Timeseries>,
}

impl Report {
    /// Total successfully completed operations.
    pub fn total_completed(&self) -> u64 {
        self.per_op.iter().map(|o| o.completed).sum()
    }

    /// Total benignly failed operations.
    pub fn total_failed(&self) -> u64 {
        self.per_op.iter().map(|o| o.failed).sum()
    }

    /// Total operations started.
    pub fn total_started(&self) -> u64 {
        self.total_completed() + self.total_failed()
    }

    /// Total aborted-and-retried execution attempts.
    pub fn total_aborts(&self) -> u64 {
        self.per_op.iter().map(|o| o.aborts).sum()
    }

    /// Aborted-and-retried attempts for one category's operations.
    pub fn category_aborts(&self, cat: Category) -> u64 {
        self.per_op
            .iter()
            .filter(|o| o.op.category() == cat)
            .map(|o| o.aborts)
            .sum()
    }

    /// Successful operations per second — the paper's headline
    /// throughput number.
    pub fn throughput(&self) -> f64 {
        self.total_completed() as f64 / self.elapsed.as_secs_f64()
    }

    /// Started (completed or failed) operations per second.
    pub fn throughput_attempted(&self) -> f64 {
        self.total_started() as f64 / self.elapsed.as_secs_f64()
    }

    /// Maximum latency over an operation subset, in milliseconds (the
    /// quantity Figure 3 plots for T1 and T2b).
    pub fn max_latency_ms(&self, op: OpKind) -> f64 {
        self.per_op[op.index()].max_ms()
    }

    /// The p-th latency percentile of one operation, in milliseconds
    /// (extension beyond the paper's max/mean; needs `histograms`).
    pub fn percentile_ms(&self, op: OpKind, p: f64) -> Option<u64> {
        self.per_op[op.index()].percentile_ms(p)
    }

    /// Merged report rows for one category.
    pub fn category_rollup(&self, cat: Category) -> (u64, u64, f64) {
        let mut completed = 0;
        let mut failed = 0;
        let mut max_ms = 0.0f64;
        for o in self.per_op.iter().filter(|o| o.op.category() == cat) {
            completed += o.completed;
            failed += o.failed;
            max_ms = max_ms.max(o.max_ms());
        }
        (completed, failed, max_ms)
    }

    /// Sample errors per operation, per Appendix A.1.
    pub fn sample_errors(&self) -> Vec<SampleError> {
        let total = self.total_completed().max(1) as f64;
        self.per_op
            .iter()
            .map(|o| {
                let c = o.expected_ratio;
                let r = o.completed as f64 / total;
                let a = o.started() as f64 / total;
                SampleError {
                    c,
                    r,
                    e: (c - r).abs(),
                    a,
                    f: (a - r).abs(),
                }
            })
            .collect()
    }

    /// Total sample errors `E` and `F`.
    pub fn total_errors(&self) -> (f64, f64) {
        let errs = self.sample_errors();
        (
            errs.iter().map(|s| s.e).sum(),
            errs.iter().map(|s| s.f).sum(),
        )
    }

    /// Renders the Appendix-A-style text report.
    pub fn render(&self, ttc_histograms: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== Benchmark parameters ==");
        let _ = writeln!(out, "  backend:             {}", self.backend);
        let _ = writeln!(out, "  threads:             {}", self.threads);
        let _ = writeln!(out, "  workload:            {}", self.workload.label());
        let _ = writeln!(out, "  long traversals:     {}", self.long_traversals);
        let _ = writeln!(out, "  structure mods:      {}", self.structure_mods);
        let _ = writeln!(out, "  seed:                {}", self.seed);

        if ttc_histograms {
            let _ = writeln!(out, "\n== TTC histograms ==");
            for o in &self.per_op {
                if o.hist.samples() == 0 {
                    continue;
                }
                let pairs = o
                    .hist
                    .pairs()
                    .iter()
                    .map(|(ms, c)| format!("{ms},{c}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                let _ = writeln!(out, "TTC histogram for {}: {}", o.op.name(), pairs);
            }
        }

        let _ = writeln!(out, "\n== Detailed results ==");
        for o in &self.per_op {
            if o.started() == 0 {
                continue;
            }
            // Percentiles (an extension over the paper's max/mean) are
            // shown when TTC histograms were collected.
            let tail = match (o.percentile_ms(50.0), o.percentile_ms(95.0)) {
                (Some(p50), Some(p95)) if ttc_histograms => {
                    format!("   p50 {p50:>5} ms   p95 {p95:>5} ms")
                }
                _ => String::new(),
            };
            let _ = writeln!(
                out,
                "  {:<5} completed {:>9}   max {:>10.3} ms   mean {:>9.3} ms   failed {:>7}{}",
                o.op.name(),
                o.completed,
                o.max_ms(),
                o.mean_ms(),
                o.failed,
                tail,
            );
        }

        let _ = writeln!(out, "\n== Sample errors ==");
        let errors = self.sample_errors();
        for (o, s) in self.per_op.iter().zip(&errors) {
            if o.started() == 0 && s.c == 0.0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<5} C={:.4}  R={:.4}  E={:.4}  A={:.4}  F={:.4}",
                o.op.name(),
                s.c,
                s.r,
                s.e,
                s.a,
                s.f,
            );
        }

        let _ = writeln!(out, "\n== Summary ==");
        for cat in Category::all() {
            let (completed, failed, max_ms) = self.category_rollup(cat);
            let _ = writeln!(
                out,
                "  {:<24} completed {:>9}   max {:>10.3} ms   failed {:>7}   aborts {:>7}   started {:>9}",
                cat.name(),
                completed,
                max_ms,
                failed,
                self.category_aborts(cat),
                completed + failed,
            );
        }
        let (e, f) = self.total_errors();
        let _ = writeln!(out, "  total sample errors: E={e:.4} F={f:.4}");
        let _ = writeln!(
            out,
            "  total throughput:    {:.1} op/s successful, {:.1} op/s attempted",
            self.throughput(),
            self.throughput_attempted(),
        );
        let _ = writeln!(
            out,
            "  elapsed time:        {:.3} s",
            self.elapsed.as_secs_f64()
        );

        if let Some(svc) = &self.service {
            let _ = writeln!(out, "\n== Service ==");
            let _ = writeln!(
                out,
                "  schedule:            {}   workers {}   queue cap {}   batch {}   affinity {}",
                svc.schedule, svc.workers, svc.queue_cap, svc.batch_max, svc.affinity,
            );
            // Counters render unconditionally — zero included — so the
            // output shape is stable across runs and greppable.
            let _ = writeln!(
                out,
                "  offered {}   rejected {}   batches {}   reconnects {}",
                svc.offered, svc.rejected, svc.batches, svc.reconnects,
            );
            let _ = writeln!(
                out,
                "  write batches {}   max write batch {}   steals {}",
                svc.write_batches, svc.max_write_batch, svc.steals,
            );
            let _ = writeln!(
                out,
                "  workers busy {:.3} s   idle {:.3} s   trace drops {}",
                svc.busy_ns as f64 / 1e9,
                svc.idle_ns as f64 / 1e9,
                svc.trace_dropped,
            );
            let mut lanes: Vec<(&str, &Histogram)> = vec![
                ("queue wait", &svc.queue_wait),
                ("service time", &svc.service_time),
                ("end-to-end", &svc.e2e),
            ];
            if let Some(network) = &svc.network {
                lanes.push(("network", network));
            }
            for (label, hist) in lanes {
                let (p50, p95, p99) = ServiceStats::percentiles_us(hist);
                let _ = writeln!(
                    out,
                    "  {label:<12} p50 {p50:>9} us   p95 {p95:>9} us   p99 {p99:>9} us",
                );
            }
            for cat in &svc.per_category {
                if cat.queue_wait.samples() == 0 {
                    continue;
                }
                let (qw50, qw95, _) = ServiceStats::percentiles_us(&cat.queue_wait);
                let (sv50, sv95, _) = ServiceStats::percentiles_us(&cat.service_time);
                let _ = writeln!(
                    out,
                    "  {:<24} qwait p50 {qw50:>8} us p95 {qw95:>8} us   service p50 {sv50:>8} us p95 {sv95:>8} us",
                    cat.category.name(),
                );
            }
        }

        if let Some(ts) = &self.timeseries {
            ts.render_into(&mut out);
        }

        if let Some(c) = &self.contention {
            let _ = writeln!(out, "\n== Contention ==");
            let _ = writeln!(
                out,
                "  lock acquires {}  contended {}  contention-ratio {:.4}  wait {:.3} ms",
                c.lock_acquires,
                c.lock_contended,
                c.contention_ratio(),
                c.lock_wait_ns as f64 / 1e6,
            );
            let _ = writeln!(
                out,
                "  cas retries {}  shard conflicts {}",
                c.cas_retries, c.shard_conflicts,
            );
        }

        if let Some(stm) = &self.stm {
            let _ = writeln!(out, "\n== STM statistics ==");
            let _ = writeln!(
                out,
                "  commits {}  aborts {}  abort-ratio {:.3}  reads {}  writes {}",
                stm.commits,
                stm.aborts,
                stm.abort_ratio(),
                stm.reads,
                stm.writes,
            );
            let _ = writeln!(
                out,
                "  validation steps {}  clones {}  extensions {}  enemy aborts {}",
                stm.validation_steps, stm.clones, stm.extensions, stm.enemy_aborts,
            );
        }
        out
    }

    /// The machine-readable form of this report — one JSON object with
    /// the run parameters, totals, per-operation rows (started ops only)
    /// and STM statistics. Consumed by the lab harness, which embeds it
    /// per repetition and aggregates across repetitions.
    pub fn to_json_value(&self) -> JsonValue {
        let per_op = self
            .per_op
            .iter()
            .filter(|o| o.started() > 0)
            .map(|o| {
                JsonValue::obj(vec![
                    ("op", JsonValue::str(o.op.name())),
                    ("completed", JsonValue::num(o.completed as f64)),
                    ("failed", JsonValue::num(o.failed as f64)),
                    ("aborts", JsonValue::num(o.aborts as f64)),
                    ("max_ms", JsonValue::num(o.max_ms())),
                    ("mean_ms", JsonValue::num(o.mean_ms())),
                ])
            })
            .collect();
        let categories = Category::all()
            .into_iter()
            .map(|cat| {
                let (completed, failed, max_ms) = self.category_rollup(cat);
                (
                    cat.name().to_string(),
                    JsonValue::obj(vec![
                        ("completed", JsonValue::num(completed as f64)),
                        ("failed", JsonValue::num(failed as f64)),
                        ("aborts", JsonValue::num(self.category_aborts(cat) as f64)),
                        ("max_ms", JsonValue::num(max_ms)),
                    ]),
                )
            })
            .collect();
        let stm = match &self.stm {
            None => JsonValue::Null,
            Some(s) => JsonValue::obj(vec![
                ("commits", JsonValue::num(s.commits as f64)),
                ("aborts", JsonValue::num(s.aborts as f64)),
                ("abort_ratio", JsonValue::num(s.abort_ratio())),
                ("reads", JsonValue::num(s.reads as f64)),
                ("writes", JsonValue::num(s.writes as f64)),
                (
                    "validation_steps",
                    JsonValue::num(s.validation_steps as f64),
                ),
                ("clones", JsonValue::num(s.clones as f64)),
                ("extensions", JsonValue::num(s.extensions as f64)),
                ("enemy_aborts", JsonValue::num(s.enemy_aborts as f64)),
            ]),
        };
        let contention = match &self.contention {
            None => JsonValue::Null,
            Some(c) => JsonValue::obj(vec![
                ("lock_acquires", JsonValue::num(c.lock_acquires as f64)),
                ("lock_contended", JsonValue::num(c.lock_contended as f64)),
                ("lock_wait_ns", JsonValue::num(c.lock_wait_ns as f64)),
                ("cas_retries", JsonValue::num(c.cas_retries as f64)),
                ("shard_conflicts", JsonValue::num(c.shard_conflicts as f64)),
                ("contention_ratio", JsonValue::num(c.contention_ratio())),
            ]),
        };
        let service = match &self.service {
            None => JsonValue::Null,
            Some(svc) => svc.to_json_value(),
        };
        let timeseries = match &self.timeseries {
            None => JsonValue::Null,
            Some(ts) => ts.to_json_value(),
        };
        JsonValue::obj(vec![
            ("backend", JsonValue::str(&self.backend)),
            ("threads", JsonValue::num(self.threads as f64)),
            ("workload", JsonValue::str(self.workload.label())),
            ("long_traversals", JsonValue::Bool(self.long_traversals)),
            ("structure_mods", JsonValue::Bool(self.structure_mods)),
            // Seeds are 64-bit identifiers, not quantities: a decimal
            // string survives the f64 number path exactly.
            ("seed", JsonValue::str(self.seed.to_string())),
            ("elapsed_s", JsonValue::num(self.elapsed.as_secs_f64())),
            ("completed", JsonValue::num(self.total_completed() as f64)),
            ("failed", JsonValue::num(self.total_failed() as f64)),
            ("throughput", JsonValue::num(self.throughput())),
            (
                "throughput_attempted",
                JsonValue::num(self.throughput_attempted()),
            ),
            ("aborts", JsonValue::num(self.total_aborts() as f64)),
            ("per_op", JsonValue::Arr(per_op)),
            ("categories", JsonValue::Obj(categories)),
            ("stm", stm),
            ("contention", contention),
            ("service", service),
            ("timeseries", timeseries),
        ])
    }

    /// One CSV row per operation:
    /// `backend,threads,workload,op,completed,failed,max_ms,mean_ms`.
    pub fn csv_rows(&self) -> Vec<String> {
        self.per_op
            .iter()
            .filter(|o| o.started() > 0)
            .map(|o| {
                format!(
                    "{},{},{},{},{},{},{:.3},{:.3}",
                    self.backend,
                    self.threads,
                    self.workload.name(),
                    o.op.name(),
                    o.completed,
                    o.failed,
                    o.max_ms(),
                    o.mean_ms(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmbench7_obs::LatencyCut;

    fn sample_report() -> Report {
        let mut per_op: Vec<OpReport> = OpKind::ALL
            .iter()
            .map(|op| OpReport::empty(*op, 1.0 / 45.0))
            .collect();
        per_op[OpKind::T1.index()].completed = 8;
        per_op[OpKind::T1.index()].max_ns = 2_000_000;
        per_op[OpKind::T1.index()].sum_ns = 8_000_000;
        per_op[OpKind::St1.index()].completed = 90;
        per_op[OpKind::St1.index()].failed = 10;
        per_op[OpKind::St1.index()].aborts = 4;
        Report {
            backend: "test".into(),
            threads: 2,
            workload: WorkloadType::ReadWrite,
            long_traversals: true,
            structure_mods: true,
            seed: 0,
            elapsed: Duration::from_secs(2),
            per_op,
            stm: None,
            contention: None,
            service: None,
            timeseries: None,
        }
    }

    fn sample_service_stats() -> ServiceStats {
        let mut queue_wait = Histogram::micros();
        let mut service_time = Histogram::micros();
        let mut e2e = Histogram::micros();
        for us in [3u64, 40, 700] {
            queue_wait.record(us * 1_000);
            service_time.record(2 * us * 1_000);
            e2e.record(3 * us * 1_000);
        }
        let mut per_category = CategoryLatency::all_empty();
        for us in [5u64, 90] {
            per_category[0].queue_wait.record(us * 1_000);
            per_category[0].service_time.record(4 * us * 1_000);
        }
        ServiceStats {
            schedule: "open2000".into(),
            workers: 2,
            queue_cap: 64,
            batch_max: 8,
            affinity: "none".into(),
            offered: 100,
            rejected: 2,
            reconnects: 0,
            busy_ns: 1_500_000_000,
            idle_ns: 500_000_000,
            worker_busy_ns: vec![1_000_000_000, 500_000_000],
            trace_dropped: 0,
            batches: 40,
            write_batches: 4,
            max_write_batch: 3,
            steals: 0,
            queue_wait,
            service_time,
            e2e,
            network: None,
            per_category,
        }
    }

    #[test]
    fn totals_and_throughput() {
        let r = sample_report();
        assert_eq!(r.total_completed(), 98);
        assert_eq!(r.total_failed(), 10);
        assert_eq!(r.total_started(), 108);
        assert!((r.throughput() - 49.0).abs() < 1e-9);
        assert!((r.throughput_attempted() - 54.0).abs() < 1e-9);
    }

    #[test]
    fn sample_error_arithmetic() {
        let r = sample_report();
        let errs = r.sample_errors();
        let st1 = errs[OpKind::St1.index()];
        assert!((st1.r - 90.0 / 98.0).abs() < 1e-9);
        assert!((st1.a - 100.0 / 98.0).abs() < 1e-9);
        assert!((st1.f - 10.0 / 98.0).abs() < 1e-9);
        let (e, f) = r.total_errors();
        assert!(e > 0.0);
        assert!(f > 0.0);
    }

    #[test]
    fn render_contains_all_sections() {
        let r = sample_report();
        let text = r.render(true);
        for section in [
            "== Benchmark parameters ==",
            "== Detailed results ==",
            "== Sample errors ==",
            "== Summary ==",
        ] {
            assert!(text.contains(section), "missing {section}");
        }
        assert!(text.contains("T1"));
        assert!(text.contains("total throughput"));
    }

    #[test]
    fn csv_rows_only_for_started_ops() {
        let r = sample_report();
        let rows = r.csv_rows();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with("test,2,rw,T1,8,0,"));
    }

    #[test]
    fn percentiles_render_with_histograms() {
        let mut r = sample_report();
        let op = &mut r.per_op[OpKind::T1.index()];
        for ms in [1u64, 2, 3, 40] {
            op.hist.record(ms * 1_000_000);
        }
        assert_eq!(r.percentile_ms(OpKind::T1, 50.0), Some(2));
        assert_eq!(r.percentile_ms(OpKind::T1, 100.0), Some(40));
        assert_eq!(r.percentile_ms(OpKind::St1, 50.0), None);
        let text = r.render(true);
        assert!(text.contains("p50"), "percentile column rendered");
        let plain = r.render(false);
        assert!(!plain.contains("p50"), "no percentiles without histograms");
    }

    #[test]
    fn json_value_carries_totals() {
        let r = sample_report();
        let doc = r.to_json_value();
        assert_eq!(doc.get("backend").and_then(JsonValue::as_str), Some("test"));
        assert_eq!(doc.get("completed").and_then(JsonValue::as_u64), Some(98));
        assert_eq!(doc.get("failed").and_then(JsonValue::as_u64), Some(10));
        assert_eq!(
            doc.get("throughput").and_then(JsonValue::as_f64),
            Some(r.throughput())
        );
        // Only started operations appear.
        assert_eq!(
            doc.get("per_op")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(2)
        );
        assert_eq!(doc.get("stm"), Some(&JsonValue::Null));
        assert!(doc.render().contains("\"workload\": \"rw\""));
    }

    #[test]
    fn service_section_renders_and_serializes() {
        let mut r = sample_report();
        assert_eq!(
            r.to_json_value().get("service"),
            Some(&JsonValue::Null),
            "closed-loop reports carry no service object"
        );
        r.service = Some(sample_service_stats());
        let text = r.render(false);
        assert!(text.contains("== Service =="));
        assert!(text.contains("queue wait"));
        assert!(text.contains("service time"));
        assert!(text.contains("rejected 2"));
        assert!(
            text.contains("reconnects 0"),
            "zero counters render too — shape-stable output:\n{text}"
        );
        assert!(text.contains("workers busy 1.500 s"));
        assert!(text.contains("idle 0.500 s"));
        assert!(text.contains("trace drops 0"));
        let mut noisy = r.clone();
        noisy.service.as_mut().unwrap().reconnects = 3;
        assert!(noisy.render(false).contains("reconnects 3"));

        let doc = r.to_json_value();
        let svc = doc.get("service").expect("service object");
        assert_eq!(
            svc.get("schedule").and_then(JsonValue::as_str),
            Some("open2000")
        );
        assert_eq!(svc.get("offered").and_then(JsonValue::as_u64), Some(100));
        assert_eq!(svc.get("rejected").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(svc.get("reconnects").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(
            svc.get("busy_ns").and_then(JsonValue::as_u64),
            Some(1_500_000_000)
        );
        assert_eq!(
            svc.get("idle_ns").and_then(JsonValue::as_u64),
            Some(500_000_000)
        );
        assert_eq!(
            svc.get("trace_dropped").and_then(JsonValue::as_u64),
            Some(0)
        );
        assert_eq!(svc.get("batches").and_then(JsonValue::as_u64), Some(40));
        for key in ["queue_wait_us", "service_time_us", "e2e_us"] {
            let lat = svc.get(key).unwrap_or_else(|| panic!("missing {key}"));
            let p50 = lat.get("p50").and_then(JsonValue::as_u64).unwrap();
            let p99 = lat.get("p99").and_then(JsonValue::as_u64).unwrap();
            assert!(p50 <= p99, "{key}: p50 {p50} > p99 {p99}");
            assert_eq!(lat.get("samples").and_then(JsonValue::as_u64), Some(3));
        }
    }

    #[test]
    fn worker_busy_ns_serializes_in_worker_order() {
        let mut r = sample_report();
        r.service = Some(sample_service_stats());
        let doc = r.to_json_value();
        let lanes = doc
            .get("service")
            .and_then(|s| s.get("worker_busy_ns"))
            .and_then(JsonValue::as_array)
            .expect("worker_busy_ns array");
        let ns: Vec<u64> = lanes.iter().filter_map(JsonValue::as_u64).collect();
        assert_eq!(ns, vec![1_000_000_000, 500_000_000]);
    }

    fn sample_timeseries() -> Timeseries {
        let windows = (0..2u64)
            .map(|i| WindowSample {
                index: i,
                start_ms: i * 250,
                end_ms: (i + 1) * 250,
                completed: 100 + i,
                failed: 1,
                aborts: 2,
                rejected: 0,
                batches: 10,
                write_batches: 1,
                steals: i,
                reconnects: 0,
                busy_ns: 200_000_000,
                queue_depth: 7,
                latency: LatencyCut {
                    p50_us: 40,
                    p95_us: 400,
                    p99_us: 900,
                    samples: 100,
                },
                contention: if i == 0 {
                    None
                } else {
                    Some(ContentionSnapshot {
                        lock_acquires: 50,
                        lock_contended: 5,
                        lock_wait_ns: 1_000,
                        cas_retries: 3,
                        shard_conflicts: 1,
                    })
                },
            })
            .collect();
        Timeseries {
            window_ms: 250,
            windows,
        }
    }

    #[test]
    fn timeseries_section_renders_and_serializes() {
        let mut r = sample_report();
        assert_eq!(
            r.to_json_value().get("timeseries"),
            Some(&JsonValue::Null),
            "unsampled reports carry no timeseries"
        );
        assert!(!r.render(false).contains("== Timeseries"));

        r.timeseries = Some(sample_timeseries());
        let text = r.render(false);
        assert!(text.contains("== Timeseries (250 ms windows) =="));
        assert!(text.contains("#0"), "window rows rendered:\n{text}");
        assert!(text.contains("900 us"), "p99 rendered:\n{text}");

        let doc = r.to_json_value();
        let ts = doc.get("timeseries").expect("timeseries object");
        assert_eq!(ts.get("window_ms").and_then(JsonValue::as_u64), Some(250));
        let windows = ts
            .get("windows")
            .and_then(JsonValue::as_array)
            .expect("windows array");
        assert_eq!(windows.len(), 2);
        let w0 = &windows[0];
        assert_eq!(w0.get("completed").and_then(JsonValue::as_u64), Some(100));
        assert_eq!(w0.get("end_ms").and_then(JsonValue::as_u64), Some(250));
        assert_eq!(w0.get("queue_depth").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(
            w0.get("latency")
                .and_then(|l| l.get("p99_us"))
                .and_then(JsonValue::as_u64),
            Some(900)
        );
        assert_eq!(
            w0.get("contention"),
            Some(&JsonValue::Null),
            "a window without a contention probe serializes null"
        );
        let w1 = &windows[1];
        assert_eq!(w1.get("steals").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(
            w1.get("contention")
                .and_then(|c| c.get("lock_contended"))
                .and_then(JsonValue::as_u64),
            Some(5)
        );
    }

    #[test]
    fn network_lane_and_category_split_render_and_serialize() {
        let mut r = sample_report();
        r.service = Some(sample_service_stats());

        // Without a network lane: JSON null, no rendered row.
        let doc = r.to_json_value();
        let svc = doc.get("service").expect("service object");
        assert_eq!(svc.get("network_us"), Some(&JsonValue::Null));
        assert!(!r.render(false).contains("network"));

        // The per-category split serializes only sampled categories.
        let cats = svc.get("categories").expect("categories object");
        let lt = cats
            .get(Category::LongTraversal.name())
            .expect("sampled category present");
        assert_eq!(
            lt.get("queue_wait_us")
                .and_then(|l| l.get("samples"))
                .and_then(JsonValue::as_u64),
            Some(2)
        );
        assert!(
            cats.get(Category::ShortOperation.name()).is_none(),
            "unsampled categories are omitted"
        );
        let text = r.render(false);
        assert!(text.contains("long traversals"), "category row rendered");
        assert!(text.contains("qwait"), "split columns rendered:\n{text}");

        // With a network lane: a fourth row and a populated JSON object.
        let mut network = Histogram::micros();
        for us in [12u64, 300] {
            network.record(us * 1_000);
        }
        r.service.as_mut().unwrap().network = Some(network);
        assert!(r.render(false).contains("network"));
        let doc = r.to_json_value();
        let net = doc.get("service").unwrap().get("network_us").unwrap();
        assert_eq!(net.get("samples").and_then(JsonValue::as_u64), Some(2));
        let p50 = net.get("p50").and_then(JsonValue::as_u64).unwrap();
        let p99 = net.get("p99").and_then(JsonValue::as_u64).unwrap();
        assert!(p50 <= p99);
    }

    #[test]
    #[should_panic(expected = "different categories")]
    fn merging_mismatched_category_splits_panics() {
        let mut a = CategoryLatency::empty(Category::LongTraversal);
        let b = CategoryLatency::empty(Category::ShortOperation);
        a.merge(&b);
    }

    #[test]
    fn seeds_above_2_53_survive_exactly() {
        let mut r = sample_report();
        r.seed = u64::MAX; // not representable as f64
        let doc = r.to_json_value();
        assert_eq!(
            doc.get("seed").and_then(JsonValue::as_str),
            Some("18446744073709551615")
        );
    }

    #[test]
    fn abort_counts_roll_up_and_serialize() {
        let r = sample_report();
        assert_eq!(r.total_aborts(), 4);
        assert_eq!(r.category_aborts(Category::ShortTraversal), 4);
        assert_eq!(r.category_aborts(Category::LongTraversal), 0);
        let text = r.render(false);
        assert!(text.contains("aborts"), "summary renders abort column");
        let doc = r.to_json_value();
        assert_eq!(doc.get("aborts").and_then(JsonValue::as_u64), Some(4));
        let st = doc
            .get("categories")
            .and_then(|c| c.get(Category::ShortTraversal.name()))
            .expect("short-traversal rollup");
        assert_eq!(st.get("aborts").and_then(JsonValue::as_u64), Some(4));
    }

    #[test]
    fn contention_section_renders_and_serializes() {
        let mut r = sample_report();
        assert_eq!(r.to_json_value().get("contention"), Some(&JsonValue::Null));
        assert!(!r.render(false).contains("== Contention =="));
        r.contention = Some(ContentionSnapshot {
            lock_acquires: 100,
            lock_contended: 25,
            lock_wait_ns: 3_000_000,
            cas_retries: 7,
            shard_conflicts: 2,
        });
        let text = r.render(false);
        assert!(text.contains("== Contention =="));
        assert!(text.contains("lock acquires 100"));
        assert!(text.contains("contention-ratio 0.2500"));
        assert!(text.contains("cas retries 7"));
        let doc = r.to_json_value();
        let c = doc.get("contention").expect("contention object");
        assert_eq!(
            c.get("lock_acquires").and_then(JsonValue::as_u64),
            Some(100)
        );
        assert_eq!(
            c.get("lock_wait_ns").and_then(JsonValue::as_u64),
            Some(3_000_000)
        );
        assert_eq!(
            c.get("contention_ratio").and_then(JsonValue::as_f64),
            Some(0.25)
        );
    }

    #[test]
    fn category_rollup_sums() {
        let r = sample_report();
        let (completed, failed, max_ms) = r.category_rollup(Category::LongTraversal);
        assert_eq!((completed, failed), (8, 0));
        assert!((max_ms - 2.0).abs() < 1e-9);
        let (c2, f2, _) = r.category_rollup(Category::ShortTraversal);
        assert_eq!((c2, f2), (90, 10));
    }
}
