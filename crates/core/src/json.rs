//! A minimal JSON document model and writer.
//!
//! The build environment is offline (no serde), so the machine-readable
//! results path is hand-rolled: [`JsonValue`] models a document,
//! [`JsonValue::render`] emits standards-conformant text, and the lab
//! crate provides the matching parser. Numbers are `f64` — every
//! *counter* this workspace emits fits in the 2^53 exact-integer range;
//! full-width 64-bit identifiers (RNG seeds) are emitted as decimal
//! strings instead, which round-trip exactly.

use std::fmt::Write as _;

/// One JSON value. Object keys keep insertion order so rendered
/// documents are stable and diffable.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // The six JSON value kinds; names are the docs.
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// A numeric value; non-finite numbers render as `null` (JSON has no
    /// NaN/Infinity).
    pub fn num(x: f64) -> JsonValue {
        JsonValue::Num(x)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) if x.is_finite() => Some(*x),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        (x >= 0.0 && x.fract() == 0.0 && x <= 2f64.powi(53)).then_some(x as u64)
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the document with two-space indentation and a trailing
    /// newline — the on-disk format of `results/BENCH_*.json`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => {
                if !x.is_finite() {
                    out.push_str("null");
                } else if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    // Shortest round-trip representation (Rust's Display
                    // for f64 is exact).
                    let _ = write!(out, "{x}");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(JsonValue::Null.render(), "null\n");
        assert_eq!(JsonValue::Bool(true).render(), "true\n");
        assert_eq!(JsonValue::num(42.0).render(), "42\n");
        assert_eq!(JsonValue::num(1.5).render(), "1.5\n");
        assert_eq!(JsonValue::num(f64::NAN).render(), "null\n");
        assert_eq!(JsonValue::str("a\"b\n").render(), "\"a\\\"b\\n\"\n");
    }

    #[test]
    fn renders_nested_structure() {
        let doc = JsonValue::obj(vec![
            ("name", JsonValue::str("smoke")),
            (
                "cells",
                JsonValue::Arr(vec![JsonValue::obj(vec![("threads", JsonValue::num(2.0))])]),
            ),
            ("empty", JsonValue::Arr(vec![])),
        ]);
        let text = doc.render();
        assert!(text.contains("\"name\": \"smoke\""));
        assert!(text.contains("\"threads\": 2"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn accessors() {
        let doc = JsonValue::obj(vec![
            ("n", JsonValue::num(3.0)),
            ("s", JsonValue::str("x")),
            ("b", JsonValue::Bool(false)),
            ("a", JsonValue::Arr(vec![JsonValue::Null])),
        ]);
        assert_eq!(doc.get("n").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(doc.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(doc.get("b").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(
            doc.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(doc.get("missing"), None);
        assert_eq!(JsonValue::num(1.5).as_u64(), None);
    }
}
