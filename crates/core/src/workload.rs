//! Workload types and the operation-ratio solver (paper §3, Table 2).
//!
//! The user describes the target application by a workload type
//! (read-dominated / read-write / write-dominated) and two switches
//! (long traversals, structure modifications); the benchmark derives the
//! per-operation ratios: category weights come from Table 2 (long
//! traversals 5%, short traversals 40%, short operations 45%, structure
//! modifications 10%), the read/update balance from the workload type
//! (90/10, 60/40, 10/90), and "operations from the same category have
//! equal ratios".

use rand::rngs::SmallRng;
use rand::Rng;

use crate::ops::{Category, OpKind};

/// The paper's three workload types, plus a custom update percentage —
/// the "more workloads need to be explored" extension its §6 calls for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadType {
    /// 90% reads (`-w r`).
    ReadDominated,
    /// 60% reads (`-w rw`).
    ReadWrite,
    /// 10% reads (`-w w`).
    WriteDominated,
    /// An arbitrary update percentage in `0..=100` (`-w uNN`); the
    /// category weights of Table 2 are unchanged.
    Custom {
        /// The percentage of operations that update, `0..=100`.
        update_pct: u8,
    },
}

impl WorkloadType {
    /// Fraction of update operations (Table 2's bottom half).
    pub fn update_ratio(&self) -> f64 {
        match self {
            WorkloadType::ReadDominated => 0.10,
            WorkloadType::ReadWrite => 0.40,
            WorkloadType::WriteDominated => 0.90,
            WorkloadType::Custom { update_pct } => f64::from(*update_pct) / 100.0,
        }
    }

    /// Short name used by the CLI (`-w r|rw|w`) and in CSV keys.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadType::ReadDominated => "r",
            WorkloadType::ReadWrite => "rw",
            WorkloadType::WriteDominated => "w",
            WorkloadType::Custom { .. } => "custom",
        }
    }

    /// Human-readable label including the custom percentage.
    pub fn label(&self) -> String {
        match self {
            WorkloadType::Custom { update_pct } => format!("custom ({update_pct}% updates)"),
            other => other.name().to_string(),
        }
    }

    /// Parses `r`, `rw`, `w`, or `uNN` (NN = update percent, 0..=100).
    pub fn parse(s: &str) -> Option<WorkloadType> {
        match s {
            "r" => Some(WorkloadType::ReadDominated),
            "rw" => Some(WorkloadType::ReadWrite),
            "w" => Some(WorkloadType::WriteDominated),
            _ => {
                let pct: u8 = s.strip_prefix('u')?.parse().ok()?;
                (pct <= 100).then_some(WorkloadType::Custom { update_pct: pct })
            }
        }
    }

    /// All paper workloads, for sweeps.
    pub fn all() -> [WorkloadType; 3] {
        [
            WorkloadType::ReadDominated,
            WorkloadType::ReadWrite,
            WorkloadType::WriteDominated,
        ]
    }
}

/// Category weights from Table 2 (percent).
pub fn category_weight(c: Category) -> f64 {
    match c {
        Category::LongTraversal => 0.05,
        Category::ShortTraversal => 0.40,
        Category::ShortOperation => 0.45,
        Category::StructureModification => 0.10,
    }
}

/// Explicitly disabled operations, beyond the two paper switches.
#[derive(Clone, Debug, Default)]
pub struct OpFilter {
    disabled: Vec<OpKind>,
}

impl OpFilter {
    /// Nothing disabled.
    pub fn none() -> Self {
        OpFilter::default()
    }

    /// Disables one operation.
    pub fn disable(mut self, op: OpKind) -> Self {
        if !self.disabled.contains(&op) {
            self.disabled.push(op);
        }
        self
    }

    /// The §5 configuration: "we disabled all operations that acquire too
    /// many objects in read mode or modify either the large index of
    /// atomic parts or the manual" — beyond disabling long traversals,
    /// that is OP11 (manual update), OP15 (indexed-attribute update) and
    /// SM1/SM2 (create/delete whole atomic graphs through the index).
    pub fn astm_friendly() -> Self {
        OpFilter::none()
            .disable(OpKind::Op11)
            .disable(OpKind::Op15)
            .disable(OpKind::Sm1)
            .disable(OpKind::Sm2)
    }

    /// Whether `op` is disabled by this filter.
    pub fn is_disabled(&self, op: OpKind) -> bool {
        self.disabled.contains(&op)
    }
}

/// Per-operation execution probabilities.
#[derive(Clone, Debug)]
pub struct WorkloadMix {
    probs: [f64; 45],
    cumulative: [f64; 45],
}

impl WorkloadMix {
    /// Computes the mix for a workload description (see module docs).
    pub fn compute(
        workload: WorkloadType,
        long_traversals: bool,
        structure_mods: bool,
        filter: &OpFilter,
    ) -> WorkloadMix {
        // Category weights, with disabled categories removed and the rest
        // renormalized.
        let mut weights = [0.0f64; 4];
        for (i, c) in Category::all().into_iter().enumerate() {
            let enabled = match c {
                Category::LongTraversal => long_traversals,
                Category::StructureModification => structure_mods,
                _ => true,
            };
            weights[i] = if enabled { category_weight(c) } else { 0.0 };
        }
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }

        // Split each non-SM category between read-only and update
        // operations so the global update ratio lands on the workload's
        // target; SM operations are all updates.
        let u = workload.update_ratio();
        let sm = weights[3];
        let f = if sm >= 1.0 {
            0.0
        } else {
            ((u - sm) / (1.0 - sm)).clamp(0.0, 1.0)
        };

        let mut probs = [0.0f64; 45];
        for (ci, c) in Category::all().into_iter().enumerate() {
            let members = |read_only: bool| -> Vec<OpKind> {
                OpKind::ALL
                    .iter()
                    .copied()
                    .filter(|o| {
                        o.category() == c
                            && o.is_read_only() == read_only
                            && !filter.is_disabled(*o)
                    })
                    .collect()
            };
            if c == Category::StructureModification {
                let ops = members(false);
                if !ops.is_empty() {
                    let share = weights[ci] / ops.len() as f64;
                    for op in ops {
                        probs[op.index()] = share;
                    }
                }
                continue;
            }
            for (read_only, mass) in [(true, weights[ci] * (1.0 - f)), (false, weights[ci] * f)] {
                let ops = members(read_only);
                if ops.is_empty() {
                    continue; // Mass redistributed by the final renorm.
                }
                let share = mass / ops.len() as f64;
                for op in ops {
                    probs[op.index()] = share;
                }
            }
        }

        let sum: f64 = probs.iter().sum();
        assert!(sum > 0.0, "workload mix has no enabled operations");
        for p in &mut probs {
            *p /= sum;
        }

        let mut cumulative = [0.0f64; 45];
        let mut acc = 0.0;
        for (i, p) in probs.iter().enumerate() {
            acc += p;
            cumulative[i] = acc;
        }
        cumulative[44] = 1.0;
        WorkloadMix { probs, cumulative }
    }

    /// The expected execution ratio of an operation (the `C_T` of the
    /// paper's sample-error output).
    pub fn expected(&self, op: OpKind) -> f64 {
        self.probs[op.index()]
    }

    /// Draws an operation.
    pub fn pick(&self, rng: &mut SmallRng) -> OpKind {
        let x: f64 = rng.gen();
        let idx = self.cumulative.partition_point(|c| *c < x);
        OpKind::ALL[idx.min(44)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mass(mix: &WorkloadMix, pred: impl Fn(OpKind) -> bool) -> f64 {
        OpKind::ALL
            .iter()
            .filter(|o| pred(**o))
            .map(|o| mix.expected(*o))
            .sum()
    }

    #[test]
    fn table2_read_dominated() {
        let mix = WorkloadMix::compute(WorkloadType::ReadDominated, true, true, &OpFilter::none());
        assert!((mass(&mix, |o| o.is_read_only()) - 0.90).abs() < 1e-9);
        assert!((mass(&mix, |o| o.category() == Category::LongTraversal) - 0.05).abs() < 1e-9);
        assert!((mass(&mix, |o| o.category() == Category::ShortTraversal) - 0.40).abs() < 1e-9);
        assert!((mass(&mix, |o| o.category() == Category::ShortOperation) - 0.45).abs() < 1e-9);
        assert!(
            (mass(&mix, |o| o.category() == Category::StructureModification) - 0.10).abs() < 1e-9
        );
    }

    #[test]
    fn table2_read_write_and_write_dominated() {
        let rw = WorkloadMix::compute(WorkloadType::ReadWrite, true, true, &OpFilter::none());
        assert!((mass(&rw, |o| !o.is_read_only()) - 0.40).abs() < 1e-9);
        let w = WorkloadMix::compute(WorkloadType::WriteDominated, true, true, &OpFilter::none());
        assert!((mass(&w, |o| !o.is_read_only()) - 0.90).abs() < 1e-9);
    }

    #[test]
    fn custom_workloads_hit_their_update_ratio() {
        for pct in [0u8, 25, 50, 75, 100] {
            let wl = WorkloadType::Custom { update_pct: pct };
            let mix = WorkloadMix::compute(wl, true, true, &OpFilter::none());
            let target = f64::from(pct) / 100.0;
            // SM operations are all updates and carry 10% of the mass, so
            // the reachable update ratio is clamped below at 0.10.
            let expect = target.max(0.10);
            assert!(
                (mass(&mix, |o| !o.is_read_only()) - expect).abs() < 1e-9,
                "pct {pct}"
            );
        }
        // Without structure modifications the full range is reachable.
        let wl = WorkloadType::Custom { update_pct: 0 };
        let mix = WorkloadMix::compute(wl, true, false, &OpFilter::none());
        assert!(mass(&mix, |o| !o.is_read_only()).abs() < 1e-9);
    }

    #[test]
    fn custom_workload_parse_and_label() {
        assert_eq!(
            WorkloadType::parse("u37"),
            Some(WorkloadType::Custom { update_pct: 37 })
        );
        assert_eq!(WorkloadType::parse("u101"), None);
        assert_eq!(WorkloadType::parse("u"), None);
        assert_eq!(WorkloadType::parse("x"), None);
        let wl = WorkloadType::Custom { update_pct: 37 };
        assert_eq!(wl.name(), "custom");
        assert_eq!(wl.label(), "custom (37% updates)");
        assert!((wl.update_ratio() - 0.37).abs() < 1e-12);
        assert_eq!(WorkloadType::parse("rw").unwrap().label(), "rw");
    }

    #[test]
    fn disabling_traversals_removes_their_mass() {
        let mix = WorkloadMix::compute(WorkloadType::ReadWrite, false, true, &OpFilter::none());
        assert_eq!(mass(&mix, |o| o.category() == Category::LongTraversal), 0.0);
        let total: f64 = OpKind::ALL.iter().map(|o| mix.expected(*o)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Update ratio is preserved.
        assert!((mass(&mix, |o| !o.is_read_only()) - 0.40).abs() < 1e-9);
    }

    #[test]
    fn disabling_sms_moves_updates_to_other_categories() {
        let mix = WorkloadMix::compute(WorkloadType::ReadDominated, true, false, &OpFilter::none());
        assert!((mass(&mix, |o| !o.is_read_only()) - 0.10).abs() < 1e-9);
        assert_eq!(
            mass(&mix, |o| o.category() == Category::StructureModification),
            0.0
        );
    }

    #[test]
    fn filtered_ops_get_zero_probability() {
        let mix = WorkloadMix::compute(
            WorkloadType::ReadWrite,
            false,
            true,
            &OpFilter::astm_friendly(),
        );
        assert_eq!(mix.expected(OpKind::Op11), 0.0);
        assert_eq!(mix.expected(OpKind::Op15), 0.0);
        assert_eq!(mix.expected(OpKind::Sm1), 0.0);
        assert_eq!(mix.expected(OpKind::Sm2), 0.0);
        let total: f64 = OpKind::ALL.iter().map(|o| mix.expected(*o)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn equal_ratios_within_a_bucket() {
        let mix = WorkloadMix::compute(WorkloadType::ReadWrite, true, true, &OpFilter::none());
        // All read-only long traversals share one ratio.
        let t1 = mix.expected(OpKind::T1);
        for op in [OpKind::T4, OpKind::T6, OpKind::Q6, OpKind::Q7] {
            assert!((mix.expected(op) - t1).abs() < 1e-12);
        }
    }

    #[test]
    fn pick_matches_expected_frequencies() {
        let mix = WorkloadMix::compute(WorkloadType::ReadWrite, true, true, &OpFilter::none());
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 45];
        let n = 200_000;
        for _ in 0..n {
            counts[mix.pick(&mut rng).index()] += 1;
        }
        for &op in OpKind::ALL {
            let observed = counts[op.index()] as f64 / n as f64;
            let expect = mix.expected(op);
            assert!(
                (observed - expect).abs() < 0.01,
                "{}: observed {observed:.4} vs expected {expect:.4}",
                op.name()
            );
        }
    }
}
