//! TTC (time-to-completion) histograms, as printed by the paper's
//! `--ttc-histograms` option: one count per whole millisecond.

/// A latency histogram with 1 ms buckets and an overflow bucket.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    buckets: Vec<u32>,
    overflow: u32,
    samples: u64,
}

/// Largest tracked latency, in milliseconds; beyond this, samples land in
/// the overflow bucket.
pub const MAX_TRACKED_MS: u64 = 60_000;

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, nanos: u64) {
        let ms = nanos / 1_000_000;
        self.samples += 1;
        if ms >= MAX_TRACKED_MS {
            self.overflow += 1;
            return;
        }
        let idx = ms as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Samples beyond [`MAX_TRACKED_MS`].
    pub fn overflow(&self) -> u32 {
        self.overflow
    }

    /// Folds another histogram in (thread merge).
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.overflow += other.overflow;
        self.samples += other.samples;
    }

    /// Non-empty `(ms, count)` pairs, the format of the paper's output
    /// ("a space-delimited list of pairs ttc, count").
    pub fn pairs(&self) -> Vec<(u64, u32)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(ms, c)| (ms as u64, *c))
            .collect()
    }

    /// The p-th percentile (0..=100) in milliseconds, if any samples
    /// were tracked.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.samples == 0 {
            return None;
        }
        let target = ((self.samples as f64) * (p / 100.0)).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (ms, c) in self.buckets.iter().enumerate() {
            acc += u64::from(*c);
            if acc >= target {
                return Some(ms as u64);
            }
        }
        Some(MAX_TRACKED_MS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn records_into_millisecond_buckets() {
        let mut h = Histogram::new();
        h.record(100_000); // 0.1 ms → bucket 0
        h.record(MS); // bucket 1
        h.record(MS + 999_999); // still bucket 1
        h.record(5 * MS);
        assert_eq!(h.pairs(), vec![(0, 1), (1, 2), (5, 1)]);
        assert_eq!(h.samples(), 4);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn overflow_is_tracked() {
        let mut h = Histogram::new();
        h.record(MAX_TRACKED_MS * MS + 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.samples(), 1);
        assert!(h.pairs().is_empty());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(MS);
        b.record(MS);
        b.record(3 * MS);
        a.merge(&b);
        assert_eq!(a.pairs(), vec![(1, 2), (3, 1)]);
        assert_eq!(a.samples(), 3);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Sample accounting: tracked pairs plus overflow equals the
            /// total, and merge is addition.
            #[test]
            fn merge_is_addition(
                a in proptest::collection::vec(0u64..200_000, 0..60),
                b in proptest::collection::vec(0u64..200_000, 0..60),
            ) {
                let mut ha = Histogram::new();
                let mut hb = Histogram::new();
                for ms in &a { ha.record(ms * 1_000_000); }
                for ms in &b { hb.record(ms * 1_000_000); }
                let mut merged = ha.clone();
                merged.merge(&hb);
                prop_assert_eq!(merged.samples(), (a.len() + b.len()) as u64);
                let tracked: u64 = merged.pairs().iter().map(|(_, c)| u64::from(*c)).sum();
                prop_assert_eq!(tracked + u64::from(merged.overflow()), merged.samples());
            }

            /// Percentiles are monotone in p and bounded by the extremes.
            #[test]
            fn percentiles_are_monotone(
                samples in proptest::collection::vec(0u64..50_000, 1..80),
            ) {
                let mut h = Histogram::new();
                for ms in &samples { h.record(ms * 1_000_000); }
                let lo = *samples.iter().min().unwrap();
                let hi = *samples.iter().max().unwrap();
                let mut last = 0;
                for p in [1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0] {
                    let v = h.percentile(p).unwrap();
                    prop_assert!(v >= last, "p{p} went backwards");
                    prop_assert!((lo..=hi).contains(&v));
                    last = v;
                }
            }
        }
    }

    #[test]
    fn percentiles() {
        let mut h = Histogram::new();
        for ms in 1..=100u64 {
            h.record(ms * MS);
        }
        assert_eq!(h.percentile(50.0), Some(50));
        assert_eq!(h.percentile(99.0), Some(99));
        assert_eq!(h.percentile(100.0), Some(100));
        assert_eq!(Histogram::new().percentile(50.0), None);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new();
        for p in [0.0, 50.0, 95.0, 100.0] {
            assert_eq!(h.percentile(p), None, "p{p} of empty histogram");
        }
        assert_eq!(h.samples(), 0);
        assert_eq!(h.overflow(), 0);
        assert!(h.pairs().is_empty());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = Histogram::new();
        h.record(7 * MS);
        for p in [0.0, 1.0, 50.0, 95.0, 100.0] {
            assert_eq!(h.percentile(p), Some(7), "p{p} of single sample");
        }
    }

    #[test]
    fn overflow_only_samples_report_the_cap() {
        let mut h = Histogram::new();
        h.record((MAX_TRACKED_MS + 5) * MS);
        h.record(u64::MAX);
        assert_eq!(h.overflow(), 2);
        // Every percentile saturates at the largest tracked latency.
        for p in [1.0, 50.0, 100.0] {
            assert_eq!(h.percentile(p), Some(MAX_TRACKED_MS), "p{p} overflow-only");
        }
    }

    #[test]
    fn percentiles_straddling_the_overflow_bucket() {
        let mut h = Histogram::new();
        for _ in 0..9 {
            h.record(2 * MS);
        }
        h.record(MAX_TRACKED_MS * MS); // exactly the cap → overflow
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.percentile(50.0), Some(2));
        assert_eq!(
            h.percentile(90.0),
            Some(2),
            "p90 is the last tracked sample"
        );
        assert_eq!(
            h.percentile(91.0),
            Some(MAX_TRACKED_MS),
            "p91 falls into overflow"
        );
        assert_eq!(h.percentile(100.0), Some(MAX_TRACKED_MS));
    }

    #[test]
    fn merge_carries_overflow_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(MS);
        b.record((MAX_TRACKED_MS + 1) * MS);
        a.merge(&b);
        assert_eq!(a.samples(), 2);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.percentile(50.0), Some(1));
        assert_eq!(a.percentile(100.0), Some(MAX_TRACKED_MS));
    }
}
